"""Sec. IV-C: effect of coarsening (block-level partitioning ablation).

The variant "omits coarsening of atomic components to blocks": the stage
DP runs directly over the (thousands of) atomic subcomponents, and --
because profiling every candidate stage is impossible at that scale --
estimates each stage's time and memory "by simply summing those of all
atomic subcomponents contained in a stage".  The summed estimate charges
every atomic boundary its own transfer/stash cost (in reality interior
values never leave the device), a considerable overestimation.

Reported per model:

* the full three-phase pipeline's throughput;
* the ablated variant's *achieved* throughput (its chosen plan re-costed
  with the true merged-stage profile);
* search cost (DP states / candidate-profile count) for both, with a DNF
  marker when the atomic-level search exceeds the state budget -- the
  paper's "did not finish in 24 hours" analogue.

Paper's observed numbers: 33 % slower throughput at h=1024/L=48, DNF
beyond that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware import ClusterSpec, Precision, paper_cluster
from repro.models import BertConfig, build_bert
from repro.partitioner import auto_partition
from repro.partitioner.atomic import atomic_partition
from repro.partitioner.blocks import Block
from repro.partitioner.stage_dp import DPContext, StageProfile, form_stage_dp
from repro.profiler import GraphProfiler


class SummedAtomicContext(DPContext):
    """DP context over atomic components with summed per-atom estimates.

    Per-range time = sum of per-atom compute PLUS per-atom boundary
    transfer; per-range memory = sum of per-atom static + activation +
    stash terms.  Both are monotone overestimates of the true merged
    profile (property-tested).
    """

    def __init__(self, graph, blocks, profiler, batch_size):
        super().__init__(graph, blocks, profiler, batch_size)
        in1 = np.zeros(self.k)
        out1 = np.zeros(self.k)
        static = np.zeros(self.k)
        for j, b in enumerate(self.blocks):
            i, o = profiler.boundary_bytes(b.tasks, 1)
            in1[j], out1[j] = i, o
            params = profiler.unique_param_count(self._block_idx[j])
            static[j] = profiler.memory_model.static_bytes(params)
        self._in1_prefix = np.concatenate([[0.0], np.cumsum(in1)])
        self._out1_prefix = np.concatenate([[0.0], np.cumsum(out1)])
        self._static_prefix = np.concatenate([[0.0], np.cumsum(static)])
        self._param_prefix = np.concatenate(
            [[0], np.cumsum([
                profiler.unique_param_count(self._block_idx[j])
                for j in range(self.k)
            ])]
        )

    def _profile_planes(self, bs, MB, checkpointing):
        """Whole-plane form of the summed estimate below, so
        ``profile_tensors`` can use the vectorized builder; term order
        mirrors ``stage_profile`` exactly for bit-identical entries."""
        tf_prefix, tb_prefix = self._time_prefix_at(bs)
        tf_plane = tf_prefix[None, :] - tf_prefix[:, None]
        tb_plane = tb_prefix[None, :] - tb_prefix[:, None]
        if checkpointing:
            tb_plane = tb_plane + tf_plane
        in_b = (self._in1_prefix[None, :] - self._in1_prefix[:, None]) * bs
        out_b = (self._out1_prefix[None, :] - self._out1_prefix[:, None]) * bs
        idx = np.arange(self.k + 1)
        n_atoms = idx[None, :] - idx[:, None]
        lat = self.cluster.comm_latency
        bw = self.cluster.intra_node_bandwidth
        tf_plane = tf_plane + (n_atoms * lat + out_b / bw)
        tb_plane = tb_plane + (n_atoms * lat + in_b / bw)
        act_factor = self.profiler.precision.activation_bytes_factor
        saved = (
            self._saved_prefix[None, :] - self._saved_prefix[:, None]
        ) * bs * act_factor
        mem_plane = (
            self._static_prefix[None, :] - self._static_prefix[:, None]
        ) + saved + in_b
        return tf_plane, tb_plane, mem_plane

    def stage_profile(
        self, lo: int, hi: int, replicas: int, R: int, MB: int,
        checkpointing: bool,
    ) -> Optional[StageProfile]:
        bs = self.batch_size // (R * MB * replicas)
        if bs < 1:
            return None
        tf_prefix, tb_prefix = self._time_prefix_at(bs)
        t_f = float(tf_prefix[hi] - tf_prefix[lo])
        t_b = float(tb_prefix[hi] - tb_prefix[lo])
        if checkpointing:
            t_b += t_f
        in_bytes = float(self._in1_prefix[hi] - self._in1_prefix[lo]) * bs
        out_bytes = float(self._out1_prefix[hi] - self._out1_prefix[lo]) * bs
        # every atomic boundary charged a transfer (the overestimation)
        n_atoms = hi - lo
        t_f += n_atoms * self.cluster.comm_latency + out_bytes / self.cluster.intra_node_bandwidth
        t_b += n_atoms * self.cluster.comm_latency + in_bytes / self.cluster.intra_node_bandwidth
        act_factor = self.profiler.precision.activation_bytes_factor
        saved = float(
            self._saved_prefix[hi] - self._saved_prefix[lo]
        ) * bs * act_factor
        # summing per-atom profiles counts every interior boundary once
        # (each atom's own input stash); the paper's variant sums single
        # microbatch profiles, so no MB multiplier appears here
        memory = float(
            self._static_prefix[hi] - self._static_prefix[lo]
        ) + saved + in_bytes
        return StageProfile(
            time_fwd=t_f,
            time_bwd=t_b,
            memory=memory,
            microbatch_size=bs,
            in_bytes=in_bytes,
            out_bytes=out_bytes,
            param_count=int(self._param_prefix[hi] - self._param_prefix[lo]),
        )


@dataclass
class AblationRow:
    """Coarsening-ablation outcome for one model size."""

    model: str
    full_throughput: float
    full_dp_states: int
    ablated_finished: bool
    ablated_throughput: float = 0.0
    ablated_dp_states: int = 0
    projected_states: int = 0

    @property
    def slowdown_pct(self) -> float:
        """Throughput loss of the ablated variant vs the full pipeline."""
        if not self.ablated_finished or self.full_throughput == 0:
            return float("nan")
        return 100.0 * (1.0 - self.ablated_throughput / self.full_throughput)


def run_coarsening_ablation(
    layer_counts: Sequence[int] = (24, 48, 96),
    hidden_size: int = 1024,
    batch_size: int = 256,
    cluster: Optional[ClusterSpec] = None,
    state_budget: int = 30_000_000,
    stage_counts: Sequence[int] = (2, 4, 8),
    microbatch_counts: Sequence[int] = (16, 64),
) -> List[AblationRow]:
    """Compare full three-phase partitioning vs. the no-coarsening variant."""
    if cluster is None:
        cluster = paper_cluster()
    rows: List[AblationRow] = []
    for L in layer_counts:
        cfg = BertConfig(hidden_size=hidden_size, num_layers=L)
        graph = build_bert(cfg)
        profiler = GraphProfiler(graph, cluster, Precision.FP32)
        plan = auto_partition(graph, cluster, batch_size, profiler=profiler)
        name = f"h{hidden_size}/L{L}"

        comps = atomic_partition(graph)
        k = len(comps)
        D = cluster.devices_per_node
        projected = k * k * D  # dense candidate-stage tensor entries
        if projected > state_budget:
            rows.append(
                AblationRow(
                    model=name,
                    full_throughput=plan.throughput,
                    full_dp_states=int(plan.diagnostics.dp_calls),
                    ablated_finished=False,
                    projected_states=projected,
                )
            )
            continue

        atom_blocks = [
            Block(index=i, atomic_indices=(i,), tasks=c.tasks)
            for i, c in enumerate(comps)
        ]
        ctx = SummedAtomicContext(graph, atom_blocks, profiler, batch_size)
        true_ctx = DPContext(graph, atom_blocks, profiler, batch_size)
        R = cluster.num_nodes
        best = None
        for S in stage_counts:
            for MB in microbatch_counts:
                sol = form_stage_dp(ctx, S, D, batch_size, R, MB)
                if sol is None:
                    continue
                # re-cost the chosen plan with the TRUE merged profile
                lo = 0
                tf, tb = [], []
                for hi, devs in zip(sol.boundaries, sol.device_counts):
                    prof = true_ctx.stage_profile(
                        lo, hi, devs, R, MB, checkpointing=S > 1
                    )
                    if prof is None:
                        break
                    tf.append(prof.time_fwd)
                    tb.append(prof.time_bwd)
                    lo = hi
                else:
                    from repro.pipeline.simulator import simulate_sync_pipeline

                    iteration = simulate_sync_pipeline(tf, tb, MB)
                    throughput = batch_size / iteration
                    if best is None or throughput > best:
                        best = throughput
        rows.append(
            AblationRow(
                model=name,
                full_throughput=plan.throughput,
                full_dp_states=int(plan.diagnostics.dp_calls),
                ablated_finished=best is not None,
                ablated_throughput=best or 0.0,
                ablated_dp_states=ctx.states_evaluated,
                projected_states=projected,
            )
        )
    return rows


def format_ablation(rows: List[AblationRow]) -> str:
    """Paper-style ablation table with DNF markers."""
    lines = [
        f"{'model':<12}{'full (s/s)':>12}{'no-coarsen':>12}{'slowdown':>10}"
        f"{'search states':>16}",
        "-" * 62,
    ]
    for r in rows:
        if r.ablated_finished:
            lines.append(
                f"{r.model:<12}{r.full_throughput:>12.1f}"
                f"{r.ablated_throughput:>12.1f}{r.slowdown_pct:>9.0f}%"
                f"{r.ablated_dp_states:>16,}"
            )
        else:
            lines.append(
                f"{r.model:<12}{r.full_throughput:>12.1f}{'DNF':>12}{'-':>10}"
                f"{r.projected_states:>15,}+"
            )
    return "\n".join(lines)
