"""Fig. 5: training throughput of enlarged (width-factor-8) ResNets.

Two settings, as in the paper: one node / 8 GPUs with effective batch 128
(where GPipe-Model is applicable) and four nodes / 32 GPUs with batch 512
(data parallelism and RaNNC only -- GPipe-Model "can use only GPUs on a
single node").
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines import run_data_parallel, run_gpipe_model
from repro.experiments.runner import SweepRow, plan_with_events, rannc_sweep_row
from repro.hardware import Precision, paper_cluster, single_node
from repro.models import ResNetConfig, build_resnet
from repro.partitioner import PartitioningError
from repro.planner import PlannerConfig
from repro.profiler import GraphProfiler

FIG5_DEPTHS = (50, 101, 152)


def run_fig5(
    depths: Sequence[int] = FIG5_DEPTHS,
    width_factor: int = 8,
    single_node_batch: int = 128,
    multi_node_batch: int = 512,
    precision: Precision = Precision.FP32,
    include_multi_node: bool = True,
) -> List[SweepRow]:
    """Run the Fig. 5 sweep on both cluster settings."""
    rows: List[SweepRow] = []
    settings = [("8gpu", single_node(), single_node_batch, True)]
    if include_multi_node:
        settings.append(("32gpu", paper_cluster(), multi_node_batch, False))

    for label, cluster, batch_size, with_gpipe in settings:
        for depth in depths:
            cfg = ResNetConfig(depth=depth, width_factor=width_factor)
            graph = build_resnet(cfg)
            profiler = GraphProfiler(graph, cluster, precision)
            params_b = graph.num_parameters() / 1e9
            name = f"resnet{depth}x{width_factor}/{label}"

            result = run_data_parallel(
                graph, cluster, batch_size, precision, profiler
            )
            rows.append(
                SweepRow(
                    name, "data_parallel", params_b, result.feasible,
                    result.throughput,
                    detail=dict(result.config) if result.feasible else {
                        "reason": result.reason
                    },
                )
            )
            if with_gpipe:
                result = run_gpipe_model(
                    graph, cluster, batch_size, precision, profiler=profiler
                )
                rows.append(
                    SweepRow(
                        name, "gpipe_model", params_b, result.feasible,
                        result.throughput,
                        detail=dict(result.config) if result.feasible else {
                            "reason": result.reason
                        },
                    )
                )
            try:
                plan, _events = plan_with_events(
                    graph,
                    cluster,
                    PlannerConfig(
                        batch_size=batch_size, precision=precision
                    ),
                    profiler=profiler,
                )
                rows.append(rannc_sweep_row(name, plan, params_b))
            except PartitioningError as exc:
                rows.append(
                    SweepRow(
                        name, "rannc", params_b, False,
                        detail={"reason": str(exc)},
                    )
                )
    return rows
