"""Extension experiment: quantifying the parameter-staleness argument.

Table I's last column ("parameter staleness-free") is the paper's central
qualitative argument for synchronous pipelining; Sec. II-B claims async
training "often results in training that diverges or degrades the quality
of learning results".  This harness measures it: the same model, data
stream and optimizer trained at staleness depths 0 (RaNNC/GPipe), 1, 2
and 4 (deeper async pipelines), across learning rates -- reproducing the
qualitative law that async degradation grows with both staleness depth
and learning rate, up to outright divergence, while synchronous training
stays stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.models import build_mlp
from repro.runtime.optimizer import SGD
from repro.runtime.staleness import StalenessResult, staleness_sweep


@dataclass
class StalenessRow:
    """All staleness depths at one learning rate."""

    learning_rate: float
    results: List[StalenessResult]

    def tail_by_delay(self) -> Dict[int, float]:
        """Map staleness depth -> mean loss over the last steps."""
        return {r.delay: r.tail_mean() for r in self.results}


def run_staleness_demo(
    learning_rates: Sequence[float] = (0.05, 0.3, 0.8),
    delays: Sequence[int] = (0, 1, 2, 4),
    steps: int = 40,
    seed: int = 0,
) -> List[StalenessRow]:
    """Sweep (learning rate x staleness depth) on a small regression MLP."""
    rng = np.random.default_rng(seed)
    graph = build_mlp((16, 32, 32, 8))
    batches = [
        {"x": rng.standard_normal((8, 16)), "y": rng.standard_normal((8, 8))}
        for _ in range(steps)
    ]
    rows: List[StalenessRow] = []
    for lr in learning_rates:
        results = staleness_sweep(
            graph, batches,
            lambda lr=lr: SGD(lr=lr, momentum=0.9),
            delays=delays, seed=seed,
        )
        rows.append(StalenessRow(learning_rate=lr, results=results))
    return rows


def format_staleness(rows: List[StalenessRow]) -> str:
    """Learning-rate x staleness-depth table (DIVERGED marked)."""
    delays = [r.delay for r in rows[0].results]
    header = f"{'lr':<8}" + "".join(f"delay={d:<3}".rjust(12) for d in delays)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = []
        for r in row.results:
            cells.append(
                ("DIVERGED" if r.diverged else f"{r.tail_mean():.4f}").rjust(12)
            )
        lines.append(f"{row.learning_rate:<8}" + "".join(cells))
    return "\n".join(lines)
