"""Shared sweep-result record and table formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class SweepRow:
    """One (workload, framework) measurement of a sweep."""

    workload: str
    framework: str
    params_billion: float
    feasible: bool
    throughput: float = 0.0  # samples/s; 0 when infeasible
    detail: Dict[str, object] = field(default_factory=dict)

    @property
    def cell(self) -> str:
        """Table-cell rendering: throughput or OOM."""
        return f"{self.throughput:.1f}" if self.feasible else "OOM"


def format_rows(
    rows: Sequence[SweepRow],
    title: str = "",
    frameworks: Optional[Sequence[str]] = None,
) -> str:
    """Render sweep rows as a workload x framework table (paper style)."""
    if frameworks is None:
        seen: List[str] = []
        for row in rows:
            if row.framework not in seen:
                seen.append(row.framework)
        frameworks = seen
    workloads: List[str] = []
    params: Dict[str, float] = {}
    cells: Dict[str, Dict[str, str]] = {}
    for row in rows:
        if row.workload not in cells:
            cells[row.workload] = {}
            workloads.append(row.workload)
            params[row.workload] = row.params_billion
        cells[row.workload][row.framework] = row.cell

    w0 = max([len(w) for w in workloads] + [len("model")]) + 2
    wcol = max([len(f) for f in frameworks] + [8]) + 2
    lines = []
    if title:
        lines.append(title)
    header = "model".ljust(w0) + "params".rjust(8) + "".join(
        f.rjust(wcol) for f in frameworks
    )
    lines.append(header)
    lines.append("-" * len(header))
    for w in workloads:
        line = w.ljust(w0) + f"{params[w]:.2f}B".rjust(8)
        for f in frameworks:
            line += cells[w].get(f, "-").rjust(wcol)
        lines.append(line)
    return "\n".join(lines)
