"""Shared sweep-result record, table formatting, and planner-event
aggregation across a sweep's partitioning runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.ir import TaskGraph
from repro.hardware.cluster import ClusterSpec
from repro.partitioner.plan import PartitionPlan
from repro.planner import (
    EventLog,
    PlannerConfig,
    PlanningContext,
    plan_graph,
)
from repro.profiler.profiler import GraphProfiler


@dataclass
class SweepRow:
    """One (workload, framework) measurement of a sweep."""

    workload: str
    framework: str
    params_billion: float
    feasible: bool
    throughput: float = 0.0  # samples/s; 0 when infeasible
    detail: Dict[str, object] = field(default_factory=dict)

    @property
    def cell(self) -> str:
        """Table-cell rendering: throughput or OOM."""
        return f"{self.throughput:.1f}" if self.feasible else "OOM"


def plan_with_events(
    graph: TaskGraph,
    cluster: ClusterSpec,
    config: PlannerConfig,
    profiler: Optional[GraphProfiler] = None,
) -> Tuple[PartitionPlan, EventLog]:
    """Plan one workload through the pass pipeline, returning the event
    log alongside the plan so sweeps can aggregate planner overhead.

    Raises :class:`repro.planner.PartitioningError` when infeasible, like
    ``auto_partition``.
    """
    ctx = PlanningContext(graph, cluster, config, profiler)
    plan = plan_graph(graph, cluster, config, context=ctx)
    return plan, ctx.events


def rannc_sweep_row(
    workload: str,
    plan: PartitionPlan,
    params_billion: float,
) -> SweepRow:
    """The standard "rannc" row of a sweep, with planner diagnostics."""
    return SweepRow(
        workload,
        "rannc",
        params_billion,
        True,
        plan.throughput,
        detail={
            "stages": plan.num_stages,
            "microbatches": plan.num_microbatches,
            "replica_factor": plan.replica_factor,
            "device_counts": [s.devices_per_pipeline for s in plan.stages],
            "dp_calls": plan.diagnostics.dp_calls,
            "pass_timings": dict(plan.diagnostics.pass_timings),
        },
    )


def aggregate_pass_timings(rows: Sequence[SweepRow]) -> Dict[str, float]:
    """Total per-pass planning time across every row that recorded one
    (i.e. how the sweep's planning overhead splits across passes)."""
    totals: Dict[str, float] = {}
    for row in rows:
        timings = row.detail.get("pass_timings")
        if not isinstance(timings, dict):
            continue
        for name, seconds in timings.items():
            totals[name] = totals.get(name, 0.0) + float(seconds)
    return totals


def format_pass_timings(totals: Dict[str, float]) -> str:
    """Render the aggregate as a small two-column table."""
    if not totals:
        return "(no planner timings recorded)"
    width = max(len(n) for n in totals) + 2
    lines = ["planner pass".ljust(width) + "total".rjust(10)]
    lines.append("-" * (width + 10))
    for name, seconds in sorted(
        totals.items(), key=lambda kv: kv[1], reverse=True
    ):
        lines.append(name.ljust(width) + f"{seconds * 1e3:8.1f}ms")
    return "\n".join(lines)


def format_rows(
    rows: Sequence[SweepRow],
    title: str = "",
    frameworks: Optional[Sequence[str]] = None,
) -> str:
    """Render sweep rows as a workload x framework table (paper style)."""
    if frameworks is None:
        seen: List[str] = []
        for row in rows:
            if row.framework not in seen:
                seen.append(row.framework)
        frameworks = seen
    workloads: List[str] = []
    params: Dict[str, float] = {}
    cells: Dict[str, Dict[str, str]] = {}
    for row in rows:
        if row.workload not in cells:
            cells[row.workload] = {}
            workloads.append(row.workload)
            params[row.workload] = row.params_billion
        cells[row.workload][row.framework] = row.cell

    w0 = max([len(w) for w in workloads] + [len("model")]) + 2
    wcol = max([len(f) for f in frameworks] + [8]) + 2
    lines = []
    if title:
        lines.append(title)
    header = "model".ljust(w0) + "params".rjust(8) + "".join(
        f.rjust(wcol) for f in frameworks
    )
    lines.append(header)
    lines.append("-" * len(header))
    for w in workloads:
        line = w.ljust(w0) + f"{params[w]:.2f}B".rjust(8)
        for f in frameworks:
            line += cells[w].get(f, "-").rjust(wcol)
        lines.append(line)
    return "\n".join(lines)
