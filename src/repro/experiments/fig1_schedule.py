"""Fig. 1: the synchronous pipeline-parallelism schedule.

Regenerates the schedule grid of the figure (stages x time slots with
microbatch indices, forward then backward with fill/drain bubbles) and the
quantitative series behind it: bubble fraction versus microbatch count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.pipeline.schedule import (
    bubble_fraction,
    render_schedule,
    schedule_makespan_slots,
    sync_pipeline_schedule,
)


@dataclass
class Fig1Result:
    """Rendered schedule plus its quantitative series."""

    num_stages: int
    num_microbatches: int
    rendered: str
    makespan_slots: int
    bubble_fraction: float
    bubble_series: List[float]  # bubble fraction vs MB = 1..16


def run_fig1(num_stages: int = 4, num_microbatches: int = 8) -> Fig1Result:
    """Regenerate the Fig. 1 schedule and its bubble-fraction series."""
    events = sync_pipeline_schedule(num_stages, num_microbatches)
    return Fig1Result(
        num_stages=num_stages,
        num_microbatches=num_microbatches,
        rendered=render_schedule(events, num_stages),
        makespan_slots=schedule_makespan_slots(num_stages, num_microbatches),
        bubble_fraction=bubble_fraction(num_stages, num_microbatches),
        bubble_series=[
            bubble_fraction(num_stages, mb) for mb in range(1, 17)
        ],
    )
