"""Fig. 4: pre-training throughput of enlarged BERT models.

Grid of the paper: hidden sizes {1024, 1536, 2048} x layers {24, 48, 96,
144, 192, 256}, batch size 256 on 32 GPUs (4 nodes x 8 V100), FP32 and
mixed precision; frameworks: data parallelism, Megatron-LM, GPipe-Hybrid,
PipeDream-2BW and RaNNC (AMP only for Megatron-LM and RaNNC, matching the
paper: "GPipe-Hybrid and PipeDream-2BW do not support it").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines import (
    run_data_parallel,
    run_gpipe_hybrid,
    run_megatron,
    run_pipedream_2bw,
)
from repro.experiments.runner import SweepRow, plan_with_events, rannc_sweep_row
from repro.hardware import ClusterSpec, Precision, paper_cluster
from repro.models import BertConfig, build_bert
from repro.models.configs import FIG4_HIDDEN_SIZES, FIG4_NUM_LAYERS
from repro.partitioner import PartitioningError
from repro.planner import PlannerConfig
from repro.profiler import GraphProfiler

#: the full grid of the paper (18 models x 2 precisions)
FIG4_FULL_GRID: List[Tuple[int, int]] = [
    (h, L) for h in FIG4_HIDDEN_SIZES for L in FIG4_NUM_LAYERS
]
#: a reduced grid covering the shape (small / medium / large per hidden
#: size) used by default in benchmarks to keep runtimes reasonable
FIG4_FAST_GRID: List[Tuple[int, int]] = [
    (1024, 24), (1024, 96), (1024, 256),
    (1536, 48), (1536, 192),
    (2048, 96), (2048, 256),
]

FIG4_FRAMEWORKS = (
    "data_parallel",
    "megatron_lm",
    "gpipe_hybrid",
    "pipedream_2bw",
    "rannc",
)


def run_fig4(
    grid: Sequence[Tuple[int, int]] = FIG4_FAST_GRID,
    precision: Precision = Precision.FP32,
    batch_size: int = 256,
    cluster: Optional[ClusterSpec] = None,
    frameworks: Sequence[str] = FIG4_FRAMEWORKS,
    seq_len: int = 512,
) -> List[SweepRow]:
    """Run the Fig. 4 sweep; returns one row per (model, framework)."""
    if cluster is None:
        cluster = paper_cluster()
    amp = precision is Precision.AMP
    rows: List[SweepRow] = []
    for hidden, layers in grid:
        cfg = BertConfig(hidden_size=hidden, num_layers=layers, seq_len=seq_len)
        graph = build_bert(cfg)
        profiler = GraphProfiler(graph, cluster, precision)
        params_b = graph.num_parameters() / 1e9
        name = f"h{hidden}/L{layers}"

        for framework in frameworks:
            if amp and framework in ("gpipe_hybrid", "pipedream_2bw"):
                rows.append(
                    SweepRow(
                        name, framework, params_b, False,
                        detail={"reason": "no AMP support"},
                    )
                )
                continue
            if framework == "rannc":
                try:
                    plan, _events = plan_with_events(
                        graph,
                        cluster,
                        PlannerConfig(
                            batch_size=batch_size, precision=precision
                        ),
                        profiler=profiler,
                    )
                    rows.append(rannc_sweep_row(name, plan, params_b))
                except PartitioningError as exc:
                    rows.append(
                        SweepRow(
                            name, framework, params_b, False,
                            detail={"reason": str(exc)},
                        )
                    )
                continue
            runner = {
                "data_parallel": lambda: run_data_parallel(
                    graph, cluster, batch_size, precision, profiler
                ),
                "megatron_lm": lambda: run_megatron(
                    graph, cfg, cluster, batch_size, precision, profiler
                ),
                "gpipe_hybrid": lambda: run_gpipe_hybrid(
                    graph, cluster, batch_size, precision, profiler=profiler
                ),
                "pipedream_2bw": lambda: run_pipedream_2bw(
                    graph, cluster, batch_size, precision, profiler=profiler
                ),
            }[framework]
            result = runner()
            rows.append(
                SweepRow(
                    name, framework, params_b, result.feasible,
                    result.throughput,
                    detail=dict(result.config) if result.feasible else {
                        "reason": result.reason
                    },
                )
            )
    return rows


def headline_claims(rows: Sequence[SweepRow]) -> Dict[str, bool]:
    """Check the paper's headline Fig.-4 claims on a sweep result:

    * RaNNC trains every model in the grid;
    * the largest RaNNC-trainable model is >= 4x the largest
      Megatron-trainable one ("five times larger" at the full grid);
    * RaNNC is never more than a few percent below GPipe-Hybrid and
      beats it on small models (checked as: geometric-mean ratio >= 1).
    """
    by_fw: Dict[str, List[SweepRow]] = {}
    for row in rows:
        by_fw.setdefault(row.framework, []).append(row)

    rannc = by_fw.get("rannc", [])
    claims: Dict[str, bool] = {}
    claims["rannc_trains_all"] = all(r.feasible for r in rannc)

    def largest(fw: str) -> float:
        """Largest parameter count the framework trained (billions)."""
        feas = [r.params_billion for r in by_fw.get(fw, []) if r.feasible]
        return max(feas) if feas else 0.0

    if by_fw.get("megatron_lm"):
        meg = largest("megatron_lm")
        claims["rannc_4x_larger_than_megatron"] = (
            meg > 0 and largest("rannc") >= 4.0 * meg
        )
    if by_fw.get("gpipe_hybrid"):
        ratios = []
        gp = {r.workload: r for r in by_fw["gpipe_hybrid"]}
        for r in rannc:
            other = gp.get(r.workload)
            if r.feasible and other is not None and other.feasible:
                ratios.append(r.throughput / other.throughput)
        geo = 1.0
        for x in ratios:
            geo *= x
        geo = geo ** (1.0 / len(ratios)) if ratios else 1.0
        claims["rannc_competitive_with_gpipe"] = geo >= 0.97
    return claims
