"""Experiment harnesses regenerating every table and figure of the paper.

Each module exposes a ``run_*`` function returning structured rows plus a
``format_*`` helper that prints them the way the paper reports them; the
``benchmarks/`` directory wires each one into pytest-benchmark.  See
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from repro.experiments.runner import SweepRow, format_rows
from repro.experiments.fig1_schedule import run_fig1
from repro.experiments.fig4_bert import run_fig4, FIG4_FAST_GRID, FIG4_FULL_GRID
from repro.experiments.fig5_resnet import run_fig5
from repro.experiments.table1_features import run_table1
from repro.experiments.coarsening_ablation import run_coarsening_ablation
from repro.experiments.gpt_extension import run_gpt_extension
from repro.experiments.loss_validation import run_loss_validation

__all__ = [
    "FIG4_FAST_GRID",
    "FIG4_FULL_GRID",
    "SweepRow",
    "format_rows",
    "run_coarsening_ablation",
    "run_fig1",
    "run_fig4",
    "run_fig5",
    "run_gpt_extension",
    "run_loss_validation",
    "run_table1",
]
