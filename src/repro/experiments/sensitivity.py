"""Sensitivity analysis: how the chosen plan reacts to the hardware.

Not a paper figure, but the systems-evaluation question its design
raises: RaNNC's plan is a function of device memory (the feasibility
constraint) and interconnect bandwidth (the communication term of the
DP).  Sweeping each confirms the algorithm responds the way the paper's
reasoning predicts:

* shrinking device memory forces deeper pipelines (more, smaller stages)
  until infeasibility;
* shrinking interconnect bandwidth raises stage-boundary cost and lowers
  throughput, without breaking feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import DeviceSpec
from repro.hardware.presets import V100
from repro.models import BertConfig, build_bert
from repro.partitioner import PartitioningError, auto_partition


@dataclass
class SensitivityRow:
    """Outcome of one hardware variation."""

    label: str
    feasible: bool
    num_stages: int = 0
    num_microbatches: int = 0
    replica_factor: int = 0
    throughput: float = 0.0


def _cluster_with(memory_gib: float, intra_bw: float) -> ClusterSpec:
    device = DeviceSpec(
        name=f"V100-{memory_gib:g}GiB",
        memory_bytes=int(memory_gib * 1024**3),
        peak_flops_fp32=V100.peak_flops_fp32,
        peak_flops_fp16=V100.peak_flops_fp16,
        mem_bandwidth=V100.mem_bandwidth,
    )
    return ClusterSpec(
        num_nodes=4, devices_per_node=8, device=device,
        intra_node_bandwidth=intra_bw, inter_node_bandwidth=12.5e9,
    )


def _run(graph, cluster, batch_size, label) -> SensitivityRow:
    try:
        plan = auto_partition(graph, cluster, batch_size)
    except PartitioningError:
        return SensitivityRow(label=label, feasible=False)
    return SensitivityRow(
        label=label,
        feasible=True,
        num_stages=plan.num_stages,
        num_microbatches=plan.num_microbatches,
        replica_factor=plan.replica_factor,
        throughput=plan.throughput,
    )


def run_memory_sensitivity(
    memory_gib: Sequence[float] = (8, 16, 32, 64),
    hidden_size: int = 1536,
    num_layers: int = 96,
    batch_size: int = 256,
) -> List[SensitivityRow]:
    """Sweep device memory at fixed NVLink bandwidth."""
    graph = build_bert(BertConfig(hidden_size=hidden_size,
                                  num_layers=num_layers))
    return [
        _run(graph, _cluster_with(m, 25.0e9), batch_size, f"{m:g} GiB")
        for m in memory_gib
    ]


def run_bandwidth_sensitivity(
    bandwidths_gbps: Sequence[float] = (5, 25, 100),
    hidden_size: int = 1536,
    num_layers: int = 96,
    batch_size: int = 256,
) -> List[SensitivityRow]:
    """Sweep intra-node bandwidth at fixed 32-GiB memory."""
    graph = build_bert(BertConfig(hidden_size=hidden_size,
                                  num_layers=num_layers))
    return [
        _run(graph, _cluster_with(32, bw * 1e9), batch_size, f"{bw:g} GB/s")
        for bw in bandwidths_gbps
    ]


def format_sensitivity(rows: List[SensitivityRow], title: str = "") -> str:
    """Fixed-width table of one sensitivity sweep."""
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'config':<10}{'stages':>8}{'MB':>6}{'R':>4}{'samples/s':>12}"
    )
    lines.append("-" * 40)
    for r in rows:
        if r.feasible:
            lines.append(
                f"{r.label:<10}{r.num_stages:>8}{r.num_microbatches:>6}"
                f"{r.replica_factor:>4}{r.throughput:>12.1f}"
            )
        else:
            lines.append(f"{r.label:<10}{'INFEASIBLE':>30}")
    return "\n".join(lines)
