"""Extension experiment: decoder-only (GPT) models.

Not part of the paper's evaluation grid, but its introduction motivates
RaNNC with GPT-3-scale models and the conclusion announces evaluation "of
enormous models ... in various applications" as future work.  This
harness sweeps GPT-2-family sizes (small / medium / large / XL and an
enlarged multi-billion variant) on the paper cluster, demonstrating that
the partitioner needs no architecture-specific handling: pre-LN blocks,
causal masks and the tied LM head are partitioned exactly like BERT.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.baselines import run_data_parallel
from repro.experiments.runner import SweepRow
from repro.hardware import ClusterSpec, Precision, paper_cluster
from repro.models import GPTConfig, build_gpt
from repro.partitioner import PartitioningError, auto_partition
from repro.profiler import GraphProfiler

#: (name, hidden, layers, heads) -- the GPT-2 family + an enlarged model
GPT_FAMILY: List[Tuple[str, int, int, int]] = [
    ("gpt2-small", 768, 12, 12),
    ("gpt2-medium", 1024, 24, 16),
    ("gpt2-large", 1280, 36, 20),
    ("gpt2-xl", 1600, 48, 25),
    ("gpt2-7b", 2560, 64, 32),  # enlarged: ~6.9B params
]


def run_gpt_extension(
    family: Sequence[Tuple[str, int, int, int]] = GPT_FAMILY,
    batch_size: int = 64,
    seq_len: int = 1024,
    precision: Precision = Precision.FP32,
    cluster: Optional[ClusterSpec] = None,
) -> List[SweepRow]:
    """Sweep decoder-only models; rows for data parallelism and RaNNC."""
    if cluster is None:
        cluster = paper_cluster()
    rows: List[SweepRow] = []
    for name, hidden, layers, heads in family:
        cfg = GPTConfig(hidden_size=hidden, num_layers=layers,
                        num_heads=heads, seq_len=seq_len)
        graph = build_gpt(cfg)
        profiler = GraphProfiler(graph, cluster, precision)
        params_b = graph.num_parameters() / 1e9

        dp = run_data_parallel(graph, cluster, batch_size, precision, profiler)
        rows.append(
            SweepRow(name, "data_parallel", params_b, dp.feasible,
                     dp.throughput,
                     detail=dict(dp.config) if dp.feasible else
                     {"reason": dp.reason})
        )
        try:
            plan = auto_partition(graph, cluster, batch_size,
                                  precision=precision, profiler=profiler)
            rows.append(
                SweepRow(
                    name, "rannc", params_b, True, plan.throughput,
                    detail={
                        "stages": plan.num_stages,
                        "microbatches": plan.num_microbatches,
                        "replica_factor": plan.replica_factor,
                    },
                )
            )
        except PartitioningError as exc:
            rows.append(
                SweepRow(name, "rannc", params_b, False,
                         detail={"reason": str(exc)})
            )
    return rows
