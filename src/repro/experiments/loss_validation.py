"""Sec. IV-B loss validation: partitioned training reaches the same loss.

The paper pre-trains BERT-Large with both RaNNC and Megatron-LM and finds
the final losses agree within 1e-3.  The laptop-scale analogue: train a
(scaled-down) BERT on synthetic data twice --

* reference: whole-graph execution (one device, the ground truth both
  frameworks must match), and
* RaNNC-style: the model partitioned by the *actual* auto-partitioner's
  stage boundaries, executed with microbatching + activation
  checkpointing + gradient accumulation, plus simulated data-parallel
  replicas --

and record the loss trajectories.  Because the runtime is deterministic,
agreement is far tighter than the paper's 1e-3; the experiment asserts
the same criterion the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.hardware import tiny_cluster
from repro.models import BertConfig, build_bert
from repro.partitioner import auto_partition
from repro.partitioner.atomic import atomic_partition
from repro.partitioner.blocks import block_partition
from repro.profiler import GraphProfiler
from repro.runtime import Adam, Executor, PartitionedExecutor, init_parameters


@dataclass
class LossValidationResult:
    """Loss trajectories of the reference and partitioned runs."""

    steps: int
    reference_losses: List[float]
    partitioned_losses: List[float]
    final_diff: float
    max_diff: float
    num_stages: int
    num_microbatches: int

    @property
    def within_paper_tolerance(self) -> bool:
        """The paper's agreement criterion: final |diff| < 1e-3."""
        return self.final_diff < 1.0e-3


def _synthetic_batch(
    cfg: BertConfig, batch_size: int, rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    s = cfg.seq_len
    return {
        "input_ids": rng.integers(0, cfg.vocab_size, (batch_size, s)),
        "token_type_ids": rng.integers(0, cfg.type_vocab_size, (batch_size, s)),
        "attention_mask": np.zeros((batch_size, 1, 1, s)),
        "mlm_labels": rng.integers(0, cfg.vocab_size, (batch_size, s)),
        "nsp_labels": rng.integers(0, 2, (batch_size,)),
    }


def run_loss_validation(
    steps: int = 10,
    batch_size: int = 8,
    num_microbatches: int = 2,
    hidden_size: int = 32,
    num_layers: int = 2,
    seed: int = 0,
) -> LossValidationResult:
    """Train reference vs. partitioned and compare loss trajectories."""
    cfg = BertConfig(
        hidden_size=hidden_size,
        num_layers=num_layers,
        num_heads=max(2, hidden_size // 16),
        seq_len=16,
        vocab_size=97,
    )
    graph = build_bert(cfg)

    # derive REAL stage boundaries from the partitioner on a small cluster
    cluster = tiny_cluster(num_nodes=1, devices_per_node=2,
                           memory_bytes=8 * 1024**3)
    profiler = GraphProfiler(graph, cluster)
    components = atomic_partition(graph)
    blocks = block_partition(graph, components, profiler, num_blocks=8)
    half = len(blocks) // 2
    stage_tasks = [
        [t for b in blocks[:half] for t in b.tasks],
        [t for b in blocks[half:] for t in b.tasks],
    ]
    # cloned constant tasks may appear in both stages: each stage executes
    # its own copy (exactly RaNNC's cloning semantics); shared parameters
    # receive gradient contributions from every stage and are summed
    missing = set(graph.tasks) - set().union(*map(set, stage_tasks))
    stage_tasks[-1].extend(sorted(missing))

    params0 = init_parameters(graph, seed=seed)
    reference = Executor(graph, params={k: v.copy() for k, v in params0.items()})
    partitioned = PartitionedExecutor(
        graph,
        stage_tasks,
        params={k: v.copy() for k, v in params0.items()},
        num_microbatches=num_microbatches,
        checkpointing=True,
    )
    opt_ref = Adam(lr=1e-3)
    opt_part = Adam(lr=1e-3)

    rng = np.random.default_rng(seed + 1)
    batches = [_synthetic_batch(cfg, batch_size, rng) for _ in range(steps)]

    ref_losses: List[float] = []
    part_losses: List[float] = []
    for batch in batches:
        loss, grads = reference.loss_and_grads(batch)
        opt_ref.step(reference.params, grads)
        ref_losses.append(loss)

        loss_p, grads_p = partitioned.loss_and_grads(batch)
        opt_part.step(partitioned.params, grads_p)
        part_losses.append(loss_p)

    diffs = [abs(a - b) for a, b in zip(ref_losses, part_losses)]
    return LossValidationResult(
        steps=steps,
        reference_losses=ref_losses,
        partitioned_losses=part_losses,
        final_diff=diffs[-1],
        max_diff=max(diffs),
        num_stages=len(stage_tasks),
        num_microbatches=num_microbatches,
    )
