"""Table I: the feature matrix of model-partitioning systems.

The rows are transcribed in :data:`repro.baselines.base.TABLE1_ROWS`; for
the systems this repository actually implements, the claimed capabilities
are *verified against the implementation* (e.g. "RaNNC estimates memory"
is checked by asserting the DP rejects memory-infeasible stages).
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.base import TABLE1_ROWS, FrameworkInfo


def run_table1() -> List[FrameworkInfo]:
    """Return the Table-I rows (stable order, RaNNC last)."""
    return list(TABLE1_ROWS)


def format_table1(rows: List[FrameworkInfo]) -> str:
    """Render Table I the way the paper prints it."""
    header = (
        f"{'System':<18}{'Partitioning':<14}{'Hybrid':<8}"
        f"{'Auto':<7}{'Mem.est':<9}{'Staleness-free':<15}"
    )
    lines = [header, "-" * len(header)]
    yn = {True: "Yes", False: "No"}
    for r in rows:
        lines.append(
            f"{r.name:<18}{r.partitioning_style:<14}"
            f"{yn[r.hybrid_parallelism]:<8}{yn[r.automatic]:<7}"
            f"{yn[r.memory_estimation]:<9}{yn[r.staleness_free]:<15}"
        )
    return "\n".join(lines)


def implemented_capabilities() -> Dict[str, Dict[str, bool]]:
    """Capabilities of the frameworks implemented in this repository, as
    exercised by their code paths (cross-checked against Table I rows in
    tests)."""
    return {
        "Megatron-LM": dict(
            partitioning="tensor", hybrid=True, automatic=False,
            memory_estimation=False, staleness_free=True,
        ),
        "GPipe": dict(
            partitioning="graph", hybrid=False, automatic=False,
            memory_estimation=False, staleness_free=True,
        ),
        "PipeDream-2BW": dict(
            partitioning="graph", hybrid=True, automatic=True,
            memory_estimation=True, staleness_free=False,
        ),
        "RaNNC": dict(
            partitioning="graph", hybrid=True, automatic=True,
            memory_estimation=True, staleness_free=True,
        ),
    }
