"""ASCII bar charts for the throughput figures.

The paper's Figs. 4-5 are grouped bar charts (one bar per framework per
model).  Without a plotting dependency, this renders the same comparison
as horizontal unicode bars -- good enough to eyeball who wins and by what
factor straight from the terminal or CI logs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import SweepRow

_BAR = "#"


def bar_chart(
    rows: Sequence[SweepRow],
    title: str = "",
    width: int = 50,
    frameworks: Optional[Sequence[str]] = None,
) -> str:
    """Render sweep rows as grouped horizontal bars.

    Bars are normalized per-chart to the best throughput; infeasible
    entries render as ``OOM``.
    """
    if frameworks is None:
        seen: List[str] = []
        for row in rows:
            if row.framework not in seen:
                seen.append(row.framework)
        frameworks = seen
    by_workload: Dict[str, Dict[str, SweepRow]] = {}
    order: List[str] = []
    for row in rows:
        if row.workload not in by_workload:
            by_workload[row.workload] = {}
            order.append(row.workload)
        by_workload[row.workload][row.framework] = row

    best = max((r.throughput for r in rows if r.feasible), default=1.0)
    if best <= 0:
        best = 1.0
    fw_width = max(len(f) for f in frameworks) + 1

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for workload in order:
        lines.append(f"{workload}  "
                     f"({by_workload[workload][frameworks[0]].params_billion:.2f}B)"
                     if frameworks[0] in by_workload[workload]
                     else workload)
        for fw in frameworks:
            row = by_workload[workload].get(fw)
            if row is None:
                continue
            if not row.feasible:
                lines.append(f"  {fw:<{fw_width}}|{'OOM':>8}")
                continue
            filled = max(1, int(round(width * row.throughput / best)))
            lines.append(
                f"  {fw:<{fw_width}}|{_BAR * filled} {row.throughput:.1f}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def series_chart(
    values: Sequence[float],
    labels: Sequence[str],
    title: str = "",
    width: int = 50,
) -> str:
    """Render one numeric series (e.g. bubble fraction vs MB) as bars."""
    if len(values) != len(labels):
        raise ValueError("values and labels must align")
    best = max(values) if values else 1.0
    if best <= 0:
        best = 1.0
    lw = max(len(l) for l in labels) + 1
    lines = [title] if title else []
    for label, value in zip(labels, values):
        filled = max(0, int(round(width * value / best)))
        lines.append(f"{label:<{lw}}|{_BAR * filled} {value:.3g}")
    return "\n".join(lines)
