"""Planner-as-a-service: a long-lived plan daemon over the pipeline.

The ROADMAP's production framing ("heavy traffic from millions of
users") as a front end over the existing planning substrate:

* :class:`~repro.service.engine.PlanEngine` -- the transport-free core:
  requests keyed by graph+cluster+config fingerprint, duplicate
  in-flight requests coalesced onto one future, every run attached to a
  shared :class:`~repro.planner.store.ArtifactStore` so warm requests
  reuse whole pipelines and *delta* requests (cluster resize, memory
  budget, hyperparameter change) rerun only the invalidated suffix.
* :class:`~repro.service.server.PlanServer` -- the stdlib asyncio
  HTTP/JSON transport (``repro serve`` on the CLI), with graceful
  SIGTERM/SIGINT draining of in-flight plans.
* :class:`~repro.service.client.ServiceClient` -- a blocking client for
  benchmarks, smoke tests and scripts.

Protocol reference, coalescing semantics and a walkthrough live in
``docs/SERVICE.md``; ``benchmarks/bench_service.py`` measures warm/cold
latency percentiles and the coalescing rate under a Poisson load.
"""

from repro.service.client import (
    ServiceClient,
    ServiceHTTPError,
    wait_until_healthy,
)
from repro.service.engine import PlanEngine
from repro.service.protocol import (
    ERROR_STATUS,
    PlanRequest,
    ServiceError,
    normalize_plan_request,
)
from repro.service.server import PlanServer, serve

__all__ = [
    "ERROR_STATUS",
    "PlanEngine",
    "PlanRequest",
    "PlanServer",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTPError",
    "normalize_plan_request",
    "serve",
    "wait_until_healthy",
]
