"""Asyncio HTTP front end of the plan service.

Stdlib-only: :func:`asyncio.start_server` with a minimal HTTP/1.1
reader/writer (request line + headers + ``Content-Length`` body,
keep-alive supported), dispatching JSON bodies into a
:class:`~repro.service.engine.PlanEngine` on a bounded thread pool so
the event loop never blocks on a pipeline run.

Routes (see ``docs/SERVICE.md`` for the schemas)::

    GET  /healthz         liveness (also reports draining state)
    GET  /v1/stats        counters, latency percentiles, store stats
    POST /v1/plan         plan (cold / warm / delta, coalesced)
    POST /v1/replan       plan against a warm base (409 without one)
    POST /v1/repair       replan-on-event plan repair (409 cold)
    POST /v1/simulate     plan + 1F1B flush timeline summary
    POST /v1/serving-sim  inference plan + serving simulation + SLO
                          autoscaling (see docs/SERVING_SIM.md)
    POST /v1/verify       round-trip verify a deployment document
    POST /v1/shutdown     graceful stop (drains in-flight plans)

Graceful shutdown (SIGTERM, SIGINT/KeyboardInterrupt, or POST
``/v1/shutdown``): the listener closes first, then the engine drains --
in-flight and coalesced futures complete (or are cancelled after the
drain timeout) and their HTTP responses are written before connections
close.  The artifact/deployment store only ever sees atomic
write-then-rename I/O, so even a hard kill (SIGKILL mid-plan) cannot
leave a torn cache entry: a restarted service treats any partial state
as a miss and repairs it on the next request.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import signal
import threading
from typing import Any, Dict, Optional, Tuple

from repro.service.engine import PlanEngine
from repro.service.protocol import (
    ServiceError,
    error_envelope,
    ok_envelope,
)

__all__ = ["PlanServer", "serve"]

_MAX_BODY_BYTES = 8 * 2**20
_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: (HTTP verb, path) -> engine method
_ROUTES = {
    ("POST", "/v1/plan"): "plan",
    ("POST", "/v1/replan"): "replan",
    ("POST", "/v1/repair"): "repair",
    ("POST", "/v1/verify"): "verify",
    ("POST", "/v1/simulate"): "simulate",
    ("POST", "/v1/serving-sim"): "serving_sim",
    ("GET", "/v1/stats"): "stats",
}


class PlanServer:
    """One listening plan service: engine + asyncio HTTP transport."""

    def __init__(
        self,
        engine: Optional[PlanEngine] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_timeout: float = 30.0,
        **engine_kwargs: Any,
    ) -> None:
        self.engine = engine if engine is not None else PlanEngine(**engine_kwargs)
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.engine.workers,
            thread_name_prefix="plan-worker",
        )
        self._stop_requested = asyncio.Event()
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener (resolves :attr:`port` when it was 0)."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started.set()

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`request_stop` (or a handled signal) fires,
        then drain gracefully."""
        if self._server is None:
            await self.start()
        await self._stop_requested.wait()
        await self.shutdown()

    def request_stop(self) -> None:
        """Thread/signal-safe graceful-stop trigger."""
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(self._stop_requested.set)

    async def shutdown(self) -> None:
        """Close the listener, drain the engine, release the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.engine.drain(self.drain_timeout)
        )
        # after the drain window, anything still queued is abandoned;
        # running futures were completed by their leader thread
        self._pool.shutdown(wait=drained, cancel_futures=not drained)

    # ------------------------------------------------------------------
    # background-thread harness (tests, benchmarks, in-process use)
    # ------------------------------------------------------------------
    def start_in_thread(self) -> "PlanServer":
        """Run the server on a daemon thread; returns once listening."""
        if self._thread is not None:
            raise RuntimeError("server already started")

        def _run() -> None:
            asyncio.run(self.serve_until_stopped())

        self._thread = threading.Thread(
            target=_run, name="plan-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("plan server failed to start listening")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully stop a :meth:`start_in_thread` server."""
        self.request_stop()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                verb, path, headers, body = request
                status, payload = await self._dispatch(verb, path, body)
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                data = json.dumps(payload).encode()
                writer.write(
                    (
                        f"HTTP/1.1 {status} "
                        f"{_STATUS_TEXT.get(status, 'OK')}\r\n"
                        "Content-Type: application/json\r\n"
                        f"Content-Length: {len(data)}\r\n"
                        "Connection: "
                        f"{'keep-alive' if keep_alive else 'close'}\r\n"
                        "\r\n"
                    ).encode()
                )
                writer.write(data)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            pass  # event loop tearing down mid-read; close quietly
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """One HTTP/1.1 request, or ``None`` on a clean close."""
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        try:
            verb, path, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return "GET", "/__malformed__", {}, b""
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            return verb.upper(), "/__too_large__", headers, b""
        body = await reader.readexactly(length) if length else b""
        return verb.upper(), path, headers, body

    async def _dispatch(
        self, verb: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        path = path.split("?", 1)[0]
        if path == "/__too_large__":
            err = ServiceError("bad_request", "request body too large")
            return 413, error_envelope(err)
        if path == "/__malformed__":
            err = ServiceError("bad_request", "malformed request line")
            return 400, error_envelope(err)
        if verb == "GET" and path == "/healthz":
            return 200, ok_envelope(
                {"status": "draining" if self.engine.draining else "ok"}
            )
        if verb == "POST" and path == "/v1/shutdown":
            self.request_stop()
            return 200, ok_envelope({"stopping": True})
        method = _ROUTES.get((verb, path))
        if method is None:
            err = ServiceError("not_found", f"no route for {verb} {path}")
            known_paths = {p for _v, p in _ROUTES}
            status = 405 if path in known_paths else err.status
            return status, error_envelope(err)
        if body:
            try:
                params = json.loads(body)
            except ValueError:
                err = ServiceError("bad_request", "body is not valid JSON")
                return err.status, error_envelope(err)
        else:
            params = {}
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._pool, self.engine.handle, method, params
            )
        except ServiceError as exc:
            return exc.status, error_envelope(exc)
        except RuntimeError as exc:
            # pool shut down mid-request during a non-graceful exit
            err = ServiceError("shutting_down", str(exc))
            return err.status, error_envelope(err)
        except Exception as exc:  # noqa: BLE001 - boundary of the daemon
            err = ServiceError("internal", f"{type(exc).__name__}: {exc}")
            return err.status, error_envelope(err)
        return 200, ok_envelope(result)


def serve(
    host: str = "127.0.0.1",
    port: int = 8321,
    *,
    engine: Optional[PlanEngine] = None,
    drain_timeout: float = 30.0,
    trace_out: Optional[str] = None,
    announce=print,
    **engine_kwargs: Any,
) -> int:
    """Blocking entry point used by ``repro serve``.

    Installs SIGTERM/SIGINT handlers that trigger a graceful drain, and
    optionally exports the serving window's Perfetto trace on exit.
    """

    async def _main() -> None:
        server = PlanServer(
            engine=engine,
            host=host,
            port=port,
            drain_timeout=drain_timeout,
            **engine_kwargs,
        )
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, server.request_stop)
            except NotImplementedError:  # pragma: no cover - non-posix
                pass
        announce(
            f"plan service listening on http://{server.host}:{server.port} "
            f"(workers={server.engine.workers}, "
            f"cache_dir={server.engine.cache_dir})"
        )
        await server.serve_until_stopped()
        if trace_out:
            events = server.engine.export_trace(trace_out)
            announce(f"serving-window trace written to {trace_out} "
                     f"({events} events)")
        announce("plan service stopped (drained)")

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    return 0
