"""Wire protocol of the plan service: request schemas, error codes.

Every request body is a JSON object; every response body is an envelope

``{"ok": true,  "result": {...}}`` or
``{"ok": false, "error": {"code": "...", "message": "...", ...}}``.

The request side of the protocol is *normalized* here, away from any
transport: :func:`normalize_plan_request` turns a raw ``plan`` /
``replan`` / ``simulate`` params object into a :class:`PlanRequest`
carrying the built graph, cluster and :class:`PlannerConfig`, plus the
request *fingerprint* (graph content + cluster shape + plan-determining
config) that keys coalescing and cache lookups.  The engine
(:mod:`repro.service.engine`) never re-parses JSON, and the HTTP front
end (:mod:`repro.service.server`) never builds graphs.

See ``docs/SERVICE.md`` for the endpoint-by-endpoint reference with
request/response examples and the full error-code table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.graph.ir import TaskGraph
from repro.hardware import paper_cluster
from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import Precision
from repro.planner.context import PlannerConfig

#: named model presets (also accepted by the CLI's ``--model``)
MODEL_PRESETS = (
    "bert-base",
    "bert-large",
    "gpt-tiny",
    "gpt-small",
    "gpt-medium",
)

#: gpt preset name -> GPTConfig keyword arguments (gpt-small is GPT-2
#: small, i.e. the GPTConfig defaults)
GPT_PRESETS = {
    "gpt-tiny": dict(
        hidden_size=256, num_layers=4, num_heads=4,
        seq_len=256, vocab_size=8192,
    ),
    "gpt-small": dict(),
    "gpt-medium": dict(hidden_size=1024, num_layers=24, num_heads=16),
}

#: cluster presets -> number of 8-V100 nodes
CLUSTER_PRESETS = {"v100x8": 1, "v100x16": 2, "v100x32": 4}

#: machine-readable error codes -> HTTP status
ERROR_STATUS = {
    "bad_request": 400,
    "not_found": 404,
    "no_base": 409,
    "infeasible": 422,
    "verification_failed": 422,
    "shutting_down": 503,
    "internal": 500,
}


class ServiceError(Exception):
    """A protocol-level failure with a machine-readable ``code``.

    ``code`` must be a key of :data:`ERROR_STATUS`; ``detail`` (optional)
    is attached to the error object verbatim.
    """

    def __init__(
        self,
        code: str,
        message: str,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        if code not in ERROR_STATUS:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.detail = dict(detail or {})

    @property
    def status(self) -> int:
        return ERROR_STATUS[self.code]

    def as_error_doc(self) -> Dict[str, Any]:
        doc = {"code": self.code, "message": str(self)}
        if self.detail:
            doc.update(self.detail)
        return doc


@dataclass(frozen=True)
class PlanRequest:
    """A normalized ``plan``/``replan``/``simulate`` request.

    ``key`` is the coalescing fingerprint: requests with equal keys are
    guaranteed to produce byte-identical plans (same graph content, same
    cluster shape, same plan-determining config), so concurrent
    duplicates may share one pipeline run.  ``model_key`` identifies the
    model *family* (graph content only); it scopes the per-model
    single-writer lock and the ``replan`` base check.
    """

    graph: TaskGraph
    cluster: ClusterSpec
    config: PlannerConfig
    key: str
    model_key: str
    model_spec: str
    cluster_spec: str


def _expect_object(doc: Any, what: str) -> Dict[str, Any]:
    if not isinstance(doc, dict):
        raise ServiceError("bad_request", f"{what} must be a JSON object")
    return doc


def build_model(spec: Any) -> Tuple[TaskGraph, str]:
    """Build the task graph for a request's ``model`` object.

    Accepted shapes::

        {"preset": "bert-base" | "bert-large" | "gpt-tiny" |
                   "gpt-small" | "gpt-medium"}
        {"family": "bert" | "gpt", "hidden": 768, "layers": 12,
         "heads": 12}                        # heads optional for gpt
        {"family": "resnet", "depth": 50, "width_factor": 8}
        {"family": "mlp", "widths": [64, 128, 10]}

    Returns the graph plus the canonical spec string used in cache keys.
    """
    from repro.models import (
        BertConfig,
        GPTConfig,
        ResNetConfig,
        build_bert,
        build_gpt,
        build_resnet,
    )
    from repro.models.mlp import build_mlp

    spec = _expect_object(spec, "model")
    canonical = json.dumps(spec, sort_keys=True)
    preset = spec.get("preset")
    if preset is not None:
        if preset == "bert-base":
            return (
                build_bert(
                    BertConfig(hidden_size=768, num_layers=12, num_heads=12)
                ),
                canonical,
            )
        if preset == "bert-large":
            return build_bert(BertConfig()), canonical
        if preset in GPT_PRESETS:
            return build_gpt(GPTConfig(**GPT_PRESETS[preset])), canonical
        raise ServiceError(
            "bad_request",
            f"unknown model preset {preset!r}; "
            f"expected one of {MODEL_PRESETS}",
        )
    family = spec.get("family")
    try:
        if family == "bert":
            cfg = BertConfig(
                hidden_size=int(spec.get("hidden", 1024)),
                num_layers=int(spec.get("layers", 24)),
                num_heads=int(spec.get("heads", 16)),
            )
            return build_bert(cfg), canonical
        if family == "gpt":
            hidden = int(spec.get("hidden", 768))
            kwargs = {
                "hidden_size": hidden,
                "num_layers": int(spec.get("layers", 12)),
                # heads must divide hidden; default to 64-wide heads
                "num_heads": int(spec.get("heads", max(1, hidden // 64))),
            }
            return build_gpt(GPTConfig(**kwargs)), canonical
        if family == "resnet":
            cfg = ResNetConfig(
                depth=int(spec.get("depth", 50)),
                width_factor=int(spec.get("width_factor", 1)),
            )
            return build_resnet(cfg), canonical
        if family == "mlp":
            widths = spec.get("widths", (64, 128, 128, 64, 10))
            return build_mlp([int(w) for w in widths]), canonical
    except ServiceError:
        raise
    except (TypeError, ValueError) as exc:
        raise ServiceError(
            "bad_request", f"invalid model spec: {exc}"
        ) from exc
    raise ServiceError(
        "bad_request",
        f"model needs a 'preset' ({'/'.join(MODEL_PRESETS)}) or a "
        f"'family' (bert/gpt/resnet/mlp), got {spec!r}",
    )


#: device names accepted in heterogeneous class specs
DEVICE_PRESETS = ("v100", "a100")


def _build_hetero_cluster(spec: Dict[str, Any]) -> ClusterSpec:
    """A heterogeneous cluster from a ``classes`` list, e.g.::

        {"classes": [
            {"name": "fast", "device": "a100", "nodes": 2,
             "devices_per_node": 8},
            {"name": "slow", "device": "v100", "nodes": 2,
             "devices_per_node": 8, "straggler_factor": 1.3,
             "memory_gb": 16},
        ]}
    """
    import dataclasses as _dc

    from repro.hardware import A100, V100
    from repro.hardware.cluster import DeviceClass

    devices = {"v100": V100, "a100": A100}
    classes = []
    for i, doc in enumerate(spec["classes"]):
        doc = _expect_object(doc, f"classes[{i}]")
        device_name = str(doc.get("device", "v100")).lower()
        if device_name not in devices:
            raise ServiceError(
                "bad_request",
                f"unknown device {device_name!r}; "
                f"expected one of {DEVICE_PRESETS}",
            )
        device = devices[device_name]
        if "memory_gb" in doc:
            device = _dc.replace(
                device, memory_bytes=float(doc["memory_gb"]) * 2**30
            )
        classes.append(
            DeviceClass(
                name=str(doc.get("name", f"class{i}")),
                device=device,
                num_nodes=int(doc.get("nodes", 1)),
                devices_per_node=int(doc.get("devices_per_node", 8)),
                straggler_factor=float(doc.get("straggler_factor", 1.0)),
            )
        )
    if not classes:
        raise ServiceError("bad_request", "'classes' must be non-empty")
    base = paper_cluster(1)
    return _dc.replace(
        base,
        num_nodes=sum(c.num_nodes for c in classes),
        devices_per_node=max(c.devices_per_node for c in classes),
        device=classes[0].device,
        comm_model="flat",
        device_classes=tuple(classes),
    )


def build_cluster(spec: Any) -> Tuple[ClusterSpec, str]:
    """Build the cluster for a request's ``cluster`` object.

    Accepted shapes::

        {"preset": "v100x8" | "v100x16" | "v100x32"}
        {"nodes": 2}                        # 2 x 8 V100, paper testbed
        {"nodes": 2, "comm_model": "topology", "nic_count": 2}
        {"classes": [{"name": "fast", "device": "a100", "nodes": 2,
                      "devices_per_node": 8}, ...]}   # heterogeneous
    """
    spec = _expect_object(spec, "cluster")
    canonical = json.dumps(spec, sort_keys=True)
    if "classes" in spec:
        try:
            return _build_hetero_cluster(spec), canonical
        except ServiceError:
            raise
        except (TypeError, ValueError) as exc:
            raise ServiceError(
                "bad_request", f"invalid cluster spec: {exc}"
            ) from exc
    preset = spec.get("preset")
    if preset is not None:
        if preset not in CLUSTER_PRESETS:
            raise ServiceError(
                "bad_request",
                f"unknown cluster preset {preset!r}; "
                f"expected one of {sorted(CLUSTER_PRESETS)}",
            )
        return paper_cluster(CLUSTER_PRESETS[preset]), canonical
    nodes = spec.get("nodes")
    if nodes is None:
        raise ServiceError(
            "bad_request",
            "cluster needs a 'preset' (v100x8/v100x16/v100x32) or "
            "'nodes' (number of 8-V100 nodes)",
        )
    try:
        cluster = paper_cluster(
            num_nodes=int(nodes),
            comm_model=spec.get("comm_model", "flat"),
            nvlink_degree=spec.get("nvlink_degree"),
            nic_count=int(spec.get("nic_count", 1)),
        )
    except (TypeError, ValueError) as exc:
        raise ServiceError(
            "bad_request", f"invalid cluster spec: {exc}"
        ) from exc
    return cluster, canonical


#: request option name -> PlannerConfig field it maps onto
OPTION_FIELDS = {
    "blocks": "num_blocks",
    "amp": "precision",
    "max_microbatches": "max_microbatches",
    "memory_budget_gb": "memory_budget",
    "comm_model": "comm_model",
    "dp_engine": "dp_engine",
    "search_backend": "search_backend",
    "schedule": "schedule",
    "mode": "mode",
}


def build_config(
    params: Dict[str, Any],
    *,
    cache_dir=None,
    cache_budget_bytes: Optional[int] = None,
) -> PlannerConfig:
    """The :class:`PlannerConfig` for one request.

    ``batch_size`` is required; everything else comes from the optional
    ``options`` object (see :data:`OPTION_FIELDS`).  ``verify`` is
    always on -- the service's contract is that every served plan passed
    :mod:`repro.verify` -- and the cache knobs come from the service
    deployment, not the request.
    """
    batch_size = params.get("batch_size")
    if not isinstance(batch_size, int) or batch_size < 1:
        raise ServiceError(
            "bad_request", "batch_size must be a positive integer"
        )
    options = _expect_object(params.get("options", {}), "options")
    unknown = sorted(set(options) - set(OPTION_FIELDS))
    if unknown:
        raise ServiceError(
            "bad_request",
            f"unknown options {unknown}; "
            f"supported: {sorted(OPTION_FIELDS)}",
        )
    kwargs: Dict[str, Any] = {"batch_size": batch_size, "verify": True}
    if options.get("amp"):
        kwargs["precision"] = Precision.AMP
    if "blocks" in options:
        kwargs["num_blocks"] = int(options["blocks"])
    if "max_microbatches" in options:
        kwargs["max_microbatches"] = int(options["max_microbatches"])
    if "memory_budget_gb" in options:
        kwargs["memory_budget"] = float(options["memory_budget_gb"]) * 2**30
    for name in ("comm_model", "dp_engine", "search_backend", "schedule",
                 "mode"):
        if name in options:
            kwargs[name] = options[name]
    try:
        return PlannerConfig(
            cache_dir=cache_dir,
            cache_budget_bytes=cache_budget_bytes,
            **kwargs,
        )
    except ValueError as exc:
        raise ServiceError("bad_request", str(exc)) from exc


def normalize_plan_request(
    params: Any,
    *,
    cache_dir=None,
    cache_budget_bytes: Optional[int] = None,
    graph_cache: Optional[Dict[str, TaskGraph]] = None,
) -> PlanRequest:
    """Validate raw ``plan``/``replan``/``simulate`` params into a
    :class:`PlanRequest`.

    ``graph_cache`` (canonical model spec -> built graph) makes repeated
    requests skip the graph build; graphs are immutable, so sharing them
    across requests is safe and keeps the fingerprint memo warm.
    """
    params = _expect_object(params, "params")
    model_spec = params.get("model")
    if model_spec is None:
        raise ServiceError("bad_request", "missing 'model'")
    cluster_spec = params.get("cluster")
    if cluster_spec is None:
        raise ServiceError("bad_request", "missing 'cluster'")
    canonical_model = json.dumps(
        _expect_object(model_spec, "model"), sort_keys=True
    )
    graph = None
    if graph_cache is not None:
        graph = graph_cache.get(canonical_model)
    if graph is None:
        graph, canonical_model = build_model(model_spec)
        if graph_cache is not None:
            graph_cache[canonical_model] = graph
    cluster, canonical_cluster = build_cluster(cluster_spec)
    config = build_config(
        params,
        cache_dir=cache_dir,
        cache_budget_bytes=cache_budget_bytes,
    )
    from repro.partitioner.deployment import graph_fingerprint

    model_key = graph_fingerprint(graph)
    parts = [
        model_key,
        f"{cluster.num_nodes}x{cluster.devices_per_node}",
        cluster.comm_model,
        str(cluster.nvlink_degree),
        str(cluster.nic_count),
        config.fingerprint(),
    ]
    if cluster.device_classes:
        # only keyed when present, so homogeneous request keys stay
        # identical to earlier releases
        parts.append(
            ";".join(
                f"{c.name}:{c.num_nodes}x{c.devices_per_node}"
                f"@{c.straggler_factor}:{c.device.name}"
                f":{c.device.memory_bytes}"
                for c in cluster.device_classes
            )
        )
    key = "|".join(parts)
    return PlanRequest(
        graph=graph,
        cluster=cluster,
        config=config,
        key=key,
        model_key=model_key,
        model_spec=canonical_model,
        cluster_spec=canonical_cluster,
    )


#: event type names accepted by ``parse_event`` / ``POST /v1/repair``
EVENT_TYPES = ("node_loss", "preemption", "scale_up")


def parse_event(spec: Any):
    """A :class:`~repro.planner.repair.ClusterEvent` from a request's
    ``event`` object.

    Accepted shapes::

        {"type": "node_loss",  "node_index": 1}
        {"type": "preemption", "node_index": 0}
        {"type": "scale_up",   "extra_nodes": 2, "class_name": "fast"}
    """
    from repro.planner.repair import NodeLoss, Preemption, ScaleUp

    spec = _expect_object(spec, "event")
    kind = spec.get("type")
    try:
        if kind == "node_loss":
            return NodeLoss(node_index=int(spec["node_index"]))
        if kind == "preemption":
            return Preemption(node_index=int(spec["node_index"]))
        if kind == "scale_up":
            return ScaleUp(
                extra_nodes=int(spec.get("extra_nodes", 1)),
                class_name=spec.get("class_name"),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(
            "bad_request", f"invalid event spec: {exc}"
        ) from exc
    raise ServiceError(
        "bad_request",
        f"event needs a 'type' (one of {'/'.join(EVENT_TYPES)}), "
        f"got {spec!r}",
    )


def ok_envelope(result: Dict[str, Any]) -> Dict[str, Any]:
    return {"ok": True, "result": result}


def error_envelope(exc: ServiceError) -> Dict[str, Any]:
    return {"ok": False, "error": exc.as_error_doc()}
