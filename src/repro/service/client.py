"""Blocking HTTP client for the plan service (stdlib ``http.client``).

Used by the Poisson-load benchmark, the CI smoke script and the tests;
it is also a reference for what any JSON-speaking client must send.

    >>> from repro.service import PlanServer, ServiceClient   # doctest: +SKIP
    >>> server = PlanServer(workers=2).start_in_thread()      # doctest: +SKIP
    >>> client = ServiceClient(port=server.port)              # doctest: +SKIP
    >>> client.plan(model={"preset": "bert-base"},
    ...             cluster={"preset": "v100x8"},
    ...             batch_size=256)["meta"]["cache"]          # doctest: +SKIP
    'cold'
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Optional

from repro.service.protocol import ServiceError

__all__ = ["ServiceClient", "ServiceHTTPError", "wait_until_healthy"]


class ServiceHTTPError(ServiceError):
    """A non-2xx response, re-raised with the server's error code."""

    def __init__(self, status: int, error: Dict[str, Any]) -> None:
        code = error.get("code", "internal")
        try:
            super().__init__(code, error.get("message", "service error"),
                             {k: v for k, v in error.items()
                              if k not in ("code", "message")})
        except ValueError:  # unknown code from a newer server
            super().__init__("internal", error.get("message", code))
        self.http_status = status


class ServiceClient:
    """Thin JSON-over-HTTP client; one connection, keep-alive reuse."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        timeout: float = 120.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(
        self,
        verb: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        *,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """One round trip; returns the ``result`` object of the envelope
        or raises :class:`ServiceHTTPError`.

        ``timeout`` overrides the client-wide socket timeout for this
        request only (e.g. a short timeout on a cheap ``simulate`` next
        to a generous one on a cold ``plan``); a dropped keep-alive
        connection (``ConnectionResetError`` / ``BrokenPipeError``) gets
        one automatic retry on a fresh connection.
        """
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"}
        effective = self.timeout if timeout is None else timeout
        for attempt in (0, 1):
            conn = self._connection()
            conn.timeout = effective
            try:
                if conn.sock is not None:
                    conn.sock.settimeout(effective)
                conn.request(verb, path, body=payload, headers=headers)
                response = conn.getresponse()
                doc = json.loads(response.read().decode())
                break
            except TimeoutError:
                # an exceeded per-request deadline is a real failure,
                # never retried (the server may still be working on it);
                # drop the connection so a stale late response cannot be
                # read by the next request
                self.close()
                raise
            except (
                ConnectionResetError,
                BrokenPipeError,
                http.client.HTTPException,
                ConnectionError,
                OSError,
            ):
                # a dropped keep-alive connection gets one clean retry
                self.close()
                if attempt:
                    raise
        if not doc.get("ok", False):
            raise ServiceHTTPError(response.status, doc.get("error", {}))
        return doc["result"]

    # ------------------------------------------------------------------
    def healthz(self, *, timeout: Optional[float] = None) -> Dict[str, Any]:
        return self.request("GET", "/healthz", timeout=timeout)

    def stats(self, *, timeout: Optional[float] = None) -> Dict[str, Any]:
        return self.request("GET", "/v1/stats", timeout=timeout)

    def shutdown(self, *, timeout: Optional[float] = None) -> Dict[str, Any]:
        return self.request("POST", "/v1/shutdown", timeout=timeout)

    def plan(
        self, *, timeout: Optional[float] = None, **params: Any
    ) -> Dict[str, Any]:
        return self.request("POST", "/v1/plan", params, timeout=timeout)

    def replan(
        self, *, timeout: Optional[float] = None, **params: Any
    ) -> Dict[str, Any]:
        return self.request("POST", "/v1/replan", params, timeout=timeout)

    def simulate(
        self, *, timeout: Optional[float] = None, **params: Any
    ) -> Dict[str, Any]:
        return self.request("POST", "/v1/simulate", params, timeout=timeout)

    def serving_sim(
        self, *, timeout: Optional[float] = None, **params: Any
    ) -> Dict[str, Any]:
        return self.request(
            "POST", "/v1/serving-sim", params, timeout=timeout
        )

    def verify(
        self, *, timeout: Optional[float] = None, **params: Any
    ) -> Dict[str, Any]:
        return self.request("POST", "/v1/verify", params, timeout=timeout)


def wait_until_healthy(
    host: str = "127.0.0.1",
    port: int = 8321,
    timeout: float = 30.0,
) -> ServiceClient:
    """Poll ``/healthz`` until the daemon answers; returns a client."""
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        client = ServiceClient(host, port, timeout=5.0)
        try:
            client.healthz()
            client.timeout = 120.0
            return client
        except (ServiceError, ConnectionError, OSError) as exc:
            last_error = exc
            client.close()
            time.sleep(0.1)
    raise TimeoutError(
        f"plan service at {host}:{port} not healthy after {timeout}s: "
        f"{last_error}"
    )
