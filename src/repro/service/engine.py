"""The plan engine: coalescing, shared artifact store, drain semantics.

:class:`PlanEngine` is the transport-independent core of the plan
service.  It owns

* one :class:`~repro.planner.store.ArtifactStore` shared by every
  request (optionally disk-backed under ``cache_dir`` with one LRU byte
  budget across deployment entries and serialized artifacts, exactly as
  ``repro plan --delta`` configures it),
* the **in-flight request table**: requests are keyed by the
  graph+cluster+config fingerprint
  (:attr:`~repro.service.protocol.PlanRequest.key`); concurrent
  duplicates coalesce onto the first caller's future, so N identical
  requests cost one pipeline run and N-1 waits,
* the service-level observability surface: ``service.*`` spans on a
  :class:`~repro.obs.tracer.Tracer` and request / coalesce / hit
  counters plus per-class latency histograms on a
  :class:`~repro.obs.metrics.MetricsRegistry`.

Concurrency contract (the store/replan plumbing this engine relies on):

* :class:`~repro.planner.store.DiskBackend` writes are atomic
  (write-then-rename), so concurrent readers -- including a second
  engine process over the same ``cache_dir`` -- never observe a torn
  file, and a crash mid-write leaves at most an orphaned ``*.tmp``.
* :class:`~repro.planner.store.ArtifactStore` ``get``/``put``/
  ``refresh`` are linearizable (internal lock), so requests for
  *different* models run fully in parallel against one store.
* A reused ``dp_context`` artifact is **shared and rebound in place**
  (:func:`~repro.planner.store.materialize_for_reuse`), and
  :class:`~repro.partitioner.stage_dp.DPContext` guards its memo caches
  for the intra-run Algorithm-2 sweep only -- ``rebind()`` /
  ``set_memory_budget()`` must not race with another run's DP calls.
  The engine therefore serializes pipeline executions **per model
  family** (one keyed mutex per graph fingerprint): same-model requests
  -- the only ones that can share mutable artifacts -- are single-writer,
  while different models planned concurrently never share state.

Delta requests need no special endpoint plumbing: every run attaches the
shared store, so the pass manager reruns exactly the invalidated
pipeline suffix (a cluster resize reuses atomic partition + coarsening +
profile tensors and reruns the stage search onward; see
:mod:`repro.planner.replan` for why the result is bit-identical to a
cold plan).  The ``replan`` method only adds the *contract*: it fails
with ``no_base`` unless the model family was planned before, so callers
can distinguish "cheap incremental update" from "schedule a cold plan".
"""

from __future__ import annotations

import concurrent.futures
import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.planner import PartitioningError, PlanningContext, plan_graph
from repro.planner.store import ArtifactStore, DiskBackend
from repro.service.protocol import (
    PlanRequest,
    ServiceError,
    normalize_plan_request,
)

__all__ = ["PlanEngine"]


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty list (q in [0, 100])."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


class PlanEngine:
    """Transport-independent plan service core (see module docstring).

    Args:
        cache_dir: root of the shared on-disk cache (deployment JSONs +
            serialized artifacts); ``None`` keeps everything in memory.
        cache_budget_bytes: LRU byte budget over the whole cache root.
        store_memory_budget_bytes: byte budget of the in-memory artifact
            tier (``None``: unbounded).
        workers: size of the pipeline thread pool -- the number of
            *distinct-model* requests that can plan concurrently.
        tracer / metrics: observability sinks; fresh ones are created
            when omitted (exported via :meth:`export_trace`).
    """

    def __init__(
        self,
        cache_dir: Optional[Path] = None,
        cache_budget_bytes: Optional[int] = None,
        store_memory_budget_bytes: Optional[int] = None,
        workers: int = 2,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.cache_budget_bytes = cache_budget_bytes
        disk = None
        if self.cache_dir is not None:
            disk = DiskBackend(self.cache_dir, byte_budget=cache_budget_bytes)
        self.store = ArtifactStore(
            memory_budget_bytes=store_memory_budget_bytes, disk=disk
        )
        self.workers = max(1, int(workers))
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._graph_cache: Dict[str, Any] = {}
        self._graph_cache_lock = threading.Lock()
        self._inflight: Dict[str, concurrent.futures.Future] = {}
        self._inflight_lock = threading.Lock()
        self._model_locks: Dict[str, threading.Lock] = {}
        #: model families (graph fingerprints) that completed >= 1 plan;
        #: the ``replan`` endpoint's base check
        self._planned_models: Set[str] = set()
        #: per-class latency samples backing the stats percentiles
        self._latency: Dict[str, List[float]] = {}
        self._latency_lock = threading.Lock()
        self._closing = threading.Event()
        # uptime must survive wall-clock jumps (NTP steps, DST): measure
        # it on the monotonic clock; keep the unix stamp for display only
        self.started_at = time.monotonic()
        self.started_at_unix = time.time()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle(self, method: str, params: Any) -> Dict[str, Any]:
        """Serve one request; returns the ``result`` object or raises
        :class:`ServiceError`.  Thread-safe; blocks until done."""
        handler = {
            "plan": self.plan,
            "replan": self.replan,
            "repair": self.repair,
            "verify": self.verify,
            "simulate": self.simulate,
            "serving_sim": self.serving_sim,
            "stats": lambda _params: self.stats(),
        }.get(method)
        if handler is None:
            raise ServiceError("not_found", f"unknown method {method!r}")
        return handler(params)

    # ------------------------------------------------------------------
    # plan / replan / simulate
    # ------------------------------------------------------------------
    def plan(self, params: Any) -> Dict[str, Any]:
        req = self._normalize(params)
        doc, meta = self._coalesced_plan(req)
        return {"plan": doc, "meta": meta}

    def replan(self, params: Any) -> Dict[str, Any]:
        """Delta contract: like ``plan``, but only against a warm base.

        Fails with ``no_base`` (HTTP 409) when this engine never
        finished a plan for the model family, instead of silently
        falling back to a cold run.
        """
        req = self._normalize(params)
        if req.model_key not in self._planned_models:
            raise ServiceError(
                "no_base",
                "replan requires a previous plan for this model; "
                "POST /v1/plan first",
                {"model": json.loads(req.model_spec)},
            )
        doc, meta = self._coalesced_plan(req)
        return {"plan": doc, "meta": meta}

    def repair(self, params: Any) -> Dict[str, Any]:
        """Replan-on-event: repair the deployed plan after a cluster
        event (node loss, preemption, scale-up), migrating as few
        (replica, stage) pairs as possible.

        The request is a ``plan`` request (model + *pre-event* cluster +
        batch_size/options) plus an ``event`` object (see
        :func:`~repro.service.protocol.parse_event`).  Like ``replan``,
        it fails with ``no_base`` unless this engine already planned the
        model family; the base plan itself is rebuilt from the shared
        store, which is a full reuse after any earlier ``plan``.
        """
        from repro.partitioner.deployment import plan_to_json
        from repro.planner.repair import repair as plan_repair
        from repro.service.protocol import parse_event

        params = params if isinstance(params, dict) else {}
        event = parse_event(params.get("event"))
        req = self._normalize(
            {k: v for k, v in params.items() if k != "event"}
        )
        if req.model_key not in self._planned_models:
            raise ServiceError(
                "no_base",
                "repair requires a previous plan for this model; "
                "POST /v1/plan first",
                {"model": json.loads(req.model_spec)},
            )
        started = time.perf_counter()
        self.metrics.counter("service.repair_requests").inc()
        with self._model_lock(req.model_key):
            ctx = PlanningContext(req.graph, req.cluster, req.config)
            ctx.attach_store(self.store)
            with self.tracer.span(
                "service.repair",
                category="service",
                model=req.graph.name,
                event=event.kind,
            ) as span:
                try:
                    plan_graph(req.graph, req.cluster, req.config, context=ctx)
                    result = plan_repair(ctx, event)
                except PartitioningError as exc:
                    span.set(outcome="infeasible")
                    raise ServiceError("infeasible", str(exc)) from exc
                except ValueError as exc:
                    span.set(outcome="bad_request")
                    raise ServiceError("bad_request", str(exc)) from exc
                span.set(
                    outcome="ok",
                    full_replan=result.used_full_replan,
                    migrated=result.migrated_pairs,
                )
        wall_ms = (time.perf_counter() - started) * 1e3
        self._observe_latency("repair", wall_ms)
        doc = json.loads(plan_to_json(result.plan, req.graph))
        return {
            "plan": doc,
            "repair": {
                "event": event.kind,
                "used_full_replan": result.used_full_replan,
                "fallback_reason": result.fallback_reason,
                "migrated_pairs": result.migrated_pairs,
                "migration_bytes": result.migration_bytes,
                "migration_time_s": result.migration_time,
                "repair_latency_s": result.repair_latency,
                "surviving_devices": result.cluster.total_devices,
            },
            "meta": {
                "fingerprint": req.key,
                "wall_ms": wall_ms,
                "iteration_time": result.plan.iteration_time,
                "throughput": result.plan.throughput,
                "num_stages": result.plan.num_stages,
            },
        }

    def simulate(self, params: Any) -> Dict[str, Any]:
        """Plan (warm requests reuse everything) and report the simulated
        1F1B flush timeline: makespan, bubble, per-stage utilization."""
        from repro.pipeline.timeline import plan_timeline

        req = self._normalize(params)
        doc, meta = self._coalesced_plan(req)
        plan = self._plan_object(req)
        timeline = plan_timeline(plan)
        return {
            "meta": meta,
            "timeline": {
                "makespan": timeline.makespan,
                "bubble_fraction": timeline.bubble_fraction(),
                "num_stages": timeline.num_stages,
                "stage_utilization": [
                    timeline.stage_utilization(s)
                    for s in range(timeline.num_stages)
                ],
                "iteration_time": plan.iteration_time,
                "throughput": plan.throughput,
            },
        }

    #: numeric serving-sim request knobs -> coercion applied
    _SERVING_SIM_KNOBS = {
        "rps": float,
        "slo_ms": float,
        "duration_s": float,
        "seed": int,
        "max_wait_ms": float,
        "max_replicas": int,
        "batch_size": int,
        "samples_per_request": int,
    }

    def serving_sim(self, params: Any) -> Dict[str, Any]:
        """Plan in inference mode and simulate serving the offered load
        (``POST /v1/serving-sim``).

        The request carries ``model`` / ``cluster`` (a spec object or a
        preset name string) plus the knobs of
        :func:`repro.serving.api.run_serving_sim` (``rps``, ``slo_ms``,
        ``duration_s``, ``seed``, ``max_wait_ms``, ``max_replicas``,
        ``batch_size``, ``samples_per_request``).  The whole computation
        is deterministic, so the returned ``serving`` summary is
        identical to what ``repro serve-sim`` prints for the same
        arguments -- a test holds the two surfaces to that contract.
        """
        from repro.serving import run_serving_sim

        if not isinstance(params, dict):
            raise ServiceError("bad_request", "params must be a JSON object")
        model = params.get("model")
        cluster = params.get("cluster")
        if model is None or cluster is None:
            raise ServiceError("bad_request", "missing 'model' or 'cluster'")
        unknown = sorted(
            set(params) - set(self._SERVING_SIM_KNOBS) - {"model", "cluster"}
        )
        if unknown:
            raise ServiceError(
                "bad_request",
                f"unknown serving-sim parameters {unknown}; supported: "
                f"{sorted(self._SERVING_SIM_KNOBS)}",
            )
        kwargs = {}
        for name, cast in self._SERVING_SIM_KNOBS.items():
            if name in params:
                try:
                    kwargs[name] = cast(params[name])
                except (TypeError, ValueError) as exc:
                    raise ServiceError(
                        "bad_request", f"invalid {name!r}: {exc}"
                    ) from exc
        started = time.perf_counter()
        self.metrics.counter("service.serving_sim_requests").inc()
        with self.tracer.span(
            "service.serving_sim", category="service"
        ) as span:
            try:
                summary = run_serving_sim(model, cluster, **kwargs)
            except PartitioningError as exc:
                span.set(outcome="infeasible")
                raise ServiceError("infeasible", str(exc)) from exc
            except ValueError as exc:
                span.set(outcome="bad_request")
                raise ServiceError("bad_request", str(exc)) from exc
            span.set(
                outcome="ok",
                replicas=summary["replicas"],
                met_slo=summary["met_slo"],
            )
        wall_ms = (time.perf_counter() - started) * 1e3
        self._observe_latency("serving_sim", wall_ms)
        return {"serving": summary, "meta": {"wall_ms": wall_ms}}

    # ------------------------------------------------------------------
    # verify
    # ------------------------------------------------------------------
    def verify(self, params: Any) -> Dict[str, Any]:
        """Round-trip a deployment document through
        :func:`~repro.partitioner.deployment.plan_from_json` and the full
        :mod:`repro.verify` invariants."""
        from repro.partitioner.deployment import (
            DeploymentMismatchError,
            plan_from_json,
        )
        from repro.service.protocol import build_cluster, build_model
        from repro.verify import PlanVerificationError

        if not isinstance(params, dict):
            raise ServiceError("bad_request", "params must be a JSON object")
        plan_doc = params.get("plan")
        if not isinstance(plan_doc, dict):
            raise ServiceError(
                "bad_request", "missing 'plan' (a deployment document)"
            )
        if params.get("model") is None or params.get("cluster") is None:
            raise ServiceError("bad_request", "missing 'model' or 'cluster'")
        graph, _ = build_model(params["model"])
        cluster, _ = build_cluster(params["cluster"])
        started = time.perf_counter()
        with self.tracer.span(
            "service.verify", category="service", model=graph.name
        ):
            try:
                plan = plan_from_json(
                    json.dumps(plan_doc), graph, cluster, verify=True
                )
            except PlanVerificationError as exc:
                raise ServiceError(
                    "verification_failed",
                    f"{len(exc.violations)} invariant violation(s)",
                    {"violations": [str(v) for v in exc.violations]},
                ) from exc
            except (DeploymentMismatchError, ValueError, KeyError) as exc:
                raise ServiceError(
                    "verification_failed", str(exc)
                ) from exc
        self.metrics.counter("service.verify_requests").inc()
        return {
            "verified": True,
            "model": plan.model_name,
            "num_stages": plan.num_stages,
            "num_microbatches": plan.num_microbatches,
            "replica_factor": plan.replica_factor,
            "wall_ms": (time.perf_counter() - started) * 1e3,
        }

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._inflight_lock:
            inflight = len(self._inflight)
        with self._latency_lock:
            latency = {
                kind: {
                    "count": len(samples),
                    "p50_ms": _percentile(samples, 50),
                    "p99_ms": _percentile(samples, 99),
                    "mean_ms": sum(samples) / len(samples),
                }
                for kind, samples in self._latency.items()
                if samples
            }
        return {
            "uptime_s": time.monotonic() - self.started_at,
            "started_at_unix": self.started_at_unix,
            "inflight": inflight,
            "draining": self._closing.is_set(),
            "models_planned": len(self._planned_models),
            "latency_ms": latency,
            "counters": {
                name: value
                for name, value in self.metrics.snapshot().items()
                if name.startswith("service.")
            },
            "store": self.store.stats(),
            "spans": len(self.tracer.spans()),
        }

    def export_trace(self, path) -> int:
        """Write the serving window's spans + metrics as a Perfetto /
        Chrome trace; returns the number of trace events."""
        from repro.obs import write_chrome_trace

        doc = write_chrome_trace(path, tracer=self.tracer, metrics=self.metrics)
        return len(doc["traceEvents"])

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = 30.0) -> bool:
        """Stop accepting new plan work and wait for in-flight requests.

        Returns ``True`` when everything completed inside ``timeout``.
        New submissions fail fast with ``shutting_down`` (HTTP 503);
        requests already coalesced keep their future and still get the
        leader's result.  Store writes are atomic, so even an abandoned
        drain leaves no torn cache entries -- a later engine over the
        same ``cache_dir`` sees either the old bytes or the new bytes,
        never a mix (miss-then-repair covers deleted/truncated files).
        """
        self._closing.set()
        with self._inflight_lock:
            pending = list(self._inflight.values())
        done, not_done = concurrent.futures.wait(pending, timeout=timeout)
        return not not_done

    @property
    def draining(self) -> bool:
        return self._closing.is_set()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _normalize(self, params: Any) -> PlanRequest:
        with self._graph_cache_lock:
            graph_cache = self._graph_cache
            return normalize_plan_request(
                params,
                cache_dir=self.cache_dir,
                cache_budget_bytes=self.cache_budget_bytes,
                graph_cache=graph_cache,
            )

    def _model_lock(self, model_key: str) -> threading.Lock:
        with self._inflight_lock:
            lock = self._model_locks.get(model_key)
            if lock is None:
                lock = self._model_locks[model_key] = threading.Lock()
            return lock

    def _coalesced_plan(
        self, req: PlanRequest
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """One pipeline run per in-flight key; followers share it."""
        started = time.perf_counter()
        self.metrics.counter("service.requests").inc()
        with self._inflight_lock:
            future = self._inflight.get(req.key)
            leader = future is None
            if leader:
                if self._closing.is_set():
                    raise ServiceError(
                        "shutting_down", "service is draining; retry elsewhere"
                    )
                future = concurrent.futures.Future()
                self._inflight[req.key] = future
        if leader:
            try:
                future.set_result(self._execute(req))
            except BaseException as exc:  # propagate to every waiter
                future.set_exception(exc)
            finally:
                with self._inflight_lock:
                    self._inflight.pop(req.key, None)
        else:
            self.metrics.counter("service.coalesced").inc()
        try:
            doc, meta = future.result()
        except concurrent.futures.CancelledError:
            raise ServiceError(
                "shutting_down", "request cancelled during shutdown"
            ) from None
        wall_ms = (time.perf_counter() - started) * 1e3
        meta = dict(meta)
        meta["wall_ms"] = wall_ms
        if not leader:
            meta["coalesced"] = True
            self._observe_latency("coalesced", wall_ms)
        else:
            self._observe_latency(meta["cache"], wall_ms)
        return doc, meta

    def _execute(
        self, req: PlanRequest
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """Run the planning pipeline for one (leader) request."""
        from repro.partitioner.deployment import plan_to_json

        with self._model_lock(req.model_key):
            ctx = PlanningContext(req.graph, req.cluster, req.config)
            ctx.attach_store(self.store)
            run_started = time.perf_counter()
            with self.tracer.span(
                "service.plan",
                category="service",
                model=req.graph.name,
                devices=req.cluster.total_devices,
                fingerprint=req.key,
            ) as span:
                try:
                    plan = plan_graph(
                        req.graph, req.cluster, req.config, context=ctx
                    )
                except PartitioningError as exc:
                    span.set(outcome="infeasible")
                    raise ServiceError("infeasible", str(exc)) from exc
                cache_kind, reused = self._classify(ctx)
                span.set(outcome="ok", cache=cache_kind)
            self._planned_models.add(req.model_key)
            self.metrics.counter(f"service.{cache_kind}_results").inc()
            doc = json.loads(plan_to_json(plan, req.graph))
            meta = {
                "fingerprint": req.key,
                "cache": cache_kind,
                "reused_passes": reused,
                "verified": bool(req.config.verify),
                "plan_ms": (time.perf_counter() - run_started) * 1e3,
                "iteration_time": plan.iteration_time,
                "throughput": plan.throughput,
                "num_stages": plan.num_stages,
            }
            return doc, meta

    @staticmethod
    def _classify(ctx: PlanningContext) -> Tuple[str, List[str]]:
        """``(cache kind, reused pass names)`` from the run's event log.

        * ``warm``: the whole-plan deployment entry hit, or every compute
          pass up to ``evaluate`` was reused from the store;
        * ``delta``: a proper prefix was reused (the pipeline reran only
          the invalidated suffix);
        * ``cold``: nothing was reused.
        """
        reused = []
        for event in ctx.events:
            if event.detail.get("reuse"):
                reused.append(event.name)
            if event.name == "cache_load" and event.detail.get("hit"):
                return "warm", reused
        if "evaluate" in reused:
            return "warm", reused
        if reused:
            return "delta", reused
        return "cold", reused

    def _observe_latency(self, kind: str, wall_ms: float) -> None:
        self.metrics.histogram(f"service.latency_ms.{kind}").observe(wall_ms)
        with self._latency_lock:
            samples = self._latency.setdefault(kind, [])
            samples.append(wall_ms)
            if len(samples) > 4096:  # bound stats memory under load
                del samples[: len(samples) - 4096]

    def _plan_object(self, req: PlanRequest):
        """The live plan for ``req`` (used by ``simulate``): rerun the
        pipeline, which is a full store reuse after ``_coalesced_plan``."""
        with self._model_lock(req.model_key):
            ctx = PlanningContext(req.graph, req.cluster, req.config)
            ctx.attach_store(self.store)
            return plan_graph(req.graph, req.cluster, req.config, context=ctx)
