"""Randomized differential verification harness.

Runs the *full* planner over :func:`repro.models.random_dag.build_random_dag`
graphs -- layered DAGs with skip connections and constant transposes, a
shape family no hand-written model covers -- across a seed matrix and
several cluster presets, and holds every emitted plan to the
:mod:`repro.verify` invariants.  CI runs it with a fixed seed matrix
(see ``.github/workflows/ci.yml``)::

    PYTHONPATH=src python -m repro.verify.harness --seeds 25

Exit status is non-zero if any plan fails verification (infeasible
combinations are reported but are not failures: the planner refusing to
emit a plan is the correct behaviour when no placement fits).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import tiny_cluster
from repro.models.random_dag import build_random_dag
from repro.partitioner import PartitioningError, auto_partition
from repro.verify.plan_checks import VerificationReport, Violation, check_plan

__all__ = ["HarnessCase", "HarnessResult", "default_clusters", "run_harness"]


def default_clusters() -> Dict[str, ClusterSpec]:
    """The cluster presets of the CI matrix: a flat 4-device node, a 2x2
    layout exercising inter-node boundaries, and a memory-starved node
    that forces multi-stage (pipelined, checkpointed) plans so the
    differential checks see non-trivial schedules."""
    return {
        "tiny-1x4": tiny_cluster(num_nodes=1, devices_per_node=4),
        "tiny-2x2": tiny_cluster(num_nodes=2, devices_per_node=2),
        "tiny-lowmem": tiny_cluster(
            num_nodes=1, devices_per_node=4, memory_bytes=256 * 1024
        ),
    }


@dataclass
class HarnessCase:
    """Outcome of one (seed, cluster, comm model, mode) planner run."""

    seed: int
    cluster_name: str
    feasible: bool
    comm_model: str = "flat"
    mode: str = "training"
    num_stages: int = 0
    violations: Tuple[Violation, ...] = ()
    invariants_checked: int = 0
    sim_rel_err: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class HarnessResult:
    """All cases of one harness run plus aggregate counts."""

    cases: List[HarnessCase] = field(default_factory=list)

    @property
    def total_violations(self) -> int:
        return sum(len(c.violations) for c in self.cases)

    @property
    def num_feasible(self) -> int:
        return sum(1 for c in self.cases if c.feasible)

    @property
    def ok(self) -> bool:
        return self.total_violations == 0


def run_harness(
    seeds: Sequence[int] = range(25),
    clusters: Optional[Dict[str, ClusterSpec]] = None,
    batch_size: int = 32,
    num_nodes: int = 14,
    width: int = 64,
    num_blocks: int = 8,
    comm_models: Sequence[str] = ("flat", "topology"),
    modes: Sequence[str] = ("training",),
) -> HarnessResult:
    """Plan every (seed, cluster, comm model, mode) combination and
    verify each plan.

    The planner runs with verification *disabled* so the harness is an
    independent referee: a planner bug produces a reported violation
    here instead of an exception inside the pipeline being measured.
    The ``comm_models`` column re-plans every combination under each
    communication model (:mod:`repro.comm`), so the topology model is
    held to the same zero-violation bar as the flat one; the ``modes``
    column does the same for forward-only inference plans
    (``mode="inference"``), which the verifier holds to the extra
    inference invariant family.
    """
    if clusters is None:
        clusters = default_clusters()
    result = HarnessResult()
    for seed in seeds:
        graph = build_random_dag(seed=seed, num_nodes=num_nodes, width=width)
        for cname, base_cluster in clusters.items():
            for comm_model in comm_models:
                cluster = base_cluster.with_comm_model(comm_model)
                for mode in modes:
                    try:
                        plan = auto_partition(
                            graph,
                            cluster,
                            batch_size=batch_size,
                            num_blocks=num_blocks,
                            verify=False,
                            mode=mode,
                        )
                    except PartitioningError:
                        result.cases.append(
                            HarnessCase(
                                seed=seed,
                                cluster_name=cname,
                                feasible=False,
                                comm_model=comm_model,
                                mode=mode,
                            )
                        )
                        continue
                    report: VerificationReport = check_plan(
                        plan, graph, cluster
                    )
                    result.cases.append(
                        HarnessCase(
                            seed=seed,
                            cluster_name=cname,
                            feasible=True,
                            comm_model=comm_model,
                            mode=mode,
                            num_stages=plan.num_stages,
                            violations=tuple(report.violations),
                            invariants_checked=report.invariants_checked,
                            sim_rel_err=report.stats.get("sim_rel_err", 0.0),
                        )
                    )
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seeds", type=int, default=25,
                    help="number of random-DAG seeds (0..N-1)")
    ap.add_argument("--batch-size", type=int, default=32)
    ap.add_argument("--num-nodes", type=int, default=14,
                    help="interior compute nodes per random DAG")
    ap.add_argument("--width", type=int, default=64)
    ap.add_argument("--blocks", type=int, default=8)
    ap.add_argument("--comm-models", nargs="+", default=["flat", "topology"],
                    choices=["flat", "topology"],
                    help="communication models to plan under")
    ap.add_argument("--modes", nargs="+",
                    default=["training", "inference"],
                    choices=["training", "inference"],
                    help="planning modes to cover (inference plans are "
                         "held to the extra inference invariant family)")
    args = ap.parse_args(argv)

    result = run_harness(
        seeds=range(args.seeds),
        batch_size=args.batch_size,
        num_nodes=args.num_nodes,
        width=args.width,
        num_blocks=args.blocks,
        comm_models=tuple(args.comm_models),
        modes=tuple(args.modes),
    )
    for case in result.cases:
        label = f"{case.cluster_name}/{case.comm_model}/{case.mode}"
        if not case.feasible:
            print(f"seed {case.seed:3d} {label:30s} INFEASIBLE")
            continue
        status = "OK" if case.ok else "FAIL"
        print(
            f"seed {case.seed:3d} {label:30s} {status}  "
            f"stages={case.num_stages} checks={case.invariants_checked} "
            f"sim_rel_err={case.sim_rel_err:.2e}"
        )
        for v in case.violations:
            print(f"    {v}")
    print(
        f"{len(result.cases)} cases ({result.num_feasible} feasible), "
        f"{result.total_violations} violation(s)"
    )
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
