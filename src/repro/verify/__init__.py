"""Plan-integrity verification (static invariants + differential checks).

``verify_plan(plan, graph, cluster)`` re-derives everything a
:class:`~repro.partitioner.plan.PartitionPlan` asserts about itself --
task coverage, stage topology, device budgets, microbatch divisibility,
per-stage memory, and the simulated iteration time -- and raises a
:class:`PlanVerificationError` listing *all* failed invariants.  The
planner runs it as a ``VerifyPass`` after evaluation (``PlannerConfig.
verify`` disables it), cache loads hold restored deployments to the same
bar, and ``repro verify <plan.json>`` exposes it on the CLI.

The randomized differential harness lives in
:mod:`repro.verify.harness` (imported explicitly to keep this package
import-light; it pulls in the full planner).
"""

from repro.verify.plan_checks import (
    MEM_REL_TOL,
    SIM_REL_TOL,
    TIME_REL_TOL,
    PlanVerificationError,
    VerificationReport,
    Violation,
    check_plan,
    verify_plan,
)

__all__ = [
    "MEM_REL_TOL",
    "SIM_REL_TOL",
    "TIME_REL_TOL",
    "PlanVerificationError",
    "VerificationReport",
    "Violation",
    "check_plan",
    "verify_plan",
]
