"""Static and differential integrity checks for partition plans.

RaNNC's value proposition is that the automatically found deployment is
*trustworthy*: Algorithm 2 prunes any candidate whose estimated memory
exceeds device capacity, and cached deployments are only reused when they
still match the model.  This module is the referee for that claim.  It
re-derives every property a plan asserts about itself from first
principles (the graph, the cluster and the profiler) and reports every
disagreement, in the collect-then-raise style of
:func:`repro.graph.validate.validate_graph`.

The invariant families (see ``docs/VERIFICATION.md``):

* **coverage** -- every graph task appears in >= 1 stage; every
  *non-constant* task (see :func:`repro.partitioner.atomic.classify_tasks`)
  appears in exactly one stage; only constant tasks may be cloned across
  stages; no stage lists a task twice; no stage references unknown tasks.
* **topology** -- stage indices are ``0..S-1`` in order, the block ranges
  chain contiguously from 0, and no dataflow edge between two
  non-constant tasks runs backward through the pipeline (together with
  the single-placement rule this makes every stage convex w.r.t. the
  topological order); a constant producer feeding a stage must be cloned
  into that stage.
* **devices** -- every stage owns >= 1 device per pipeline; the per-stage
  device counts sum to <= cluster size under the replica factor; an
  attached :class:`~repro.partitioner.plan.DeviceAssignment` must agree
  with those counts and use disjoint, in-range ranks.
* **divisibility** -- ``num_microbatches >= 1`` and each stage's stored
  ``microbatch_size`` equals ``batch_size // (R * MB * devices)`` with at
  least one sample per replica.
* **memory** -- each stage's stored peak memory fits the device's usable
  memory, and the memory *re-derived* from
  :mod:`repro.profiler.memory` via a fresh profile of the stage's tasks
  agrees with the stored value within :data:`MEM_REL_TOL` (and also fits).
* **differential** -- per-stage times re-derived from the profiler (plus
  the p2p terms the DP charges to the sender) agree with the stored
  profile within :data:`TIME_REL_TOL`, and re-simulating the stored
  stage times with :func:`repro.pipeline.simulator.simulate_sync_pipeline`
  reproduces the DP's ``estimated_iteration_time`` (and the recorded
  pipeline makespan) within :data:`SIM_REL_TOL`.
* **comm** -- the recorded data-parallel allreduce phase re-derives
  identically (within :data:`SIM_REL_TOL`) under the cluster's
  *configured* communication model
  (:func:`repro.pipeline.hybrid.allreduce_phase`), so an evaluation
  that priced gradient sync under one model cannot be silently reused
  under another.  Skipped for inference plans, whose allreduce phase is
  zero by definition.
* **inference** -- forward-only plans (``plan.mode == "inference"``)
  carry no training residue: every stage's backward time is exactly
  zero, the recorded allreduce and optimizer phases are zero, and the
  evaluated iteration time equals the forward pipeline makespan.  The
  memory and differential families above re-derive through an
  *inference-mode* profiler, so inference memory (weights + KV-bounded
  working set) and forward latency are held to the same tolerances as
  training plans.

Tolerances
----------

``SIM_REL_TOL = 1e-6``: the DP's iteration-time estimate *is* a memoized
``simulate_sync_pipeline`` call over the same stage times, so the
re-simulation must agree to float noise.

``MEM_REL_TOL = 1e-6``: the DP derives stage memory from block-level
prefix sums; re-profiling the stage's (de-duplicated) task set is the
same arithmetic because cloned constant tasks contribute zero saved
activation bytes and parameters are de-duplicated in both paths.

``TIME_REL_TOL = 0.05``: stage times are *not* bit-reproducible from the
task set -- the DP's block-granularity prefix sums count a constant task
cloned into several blocks of the same stage once per clone (one
``kernel_overhead`` = 4 microseconds each), while a fresh profile of the
de-duplicated task tuple counts it once.  The loose 5% bound catches
unit-level corruption (a stage time off by 2x) without false-positives
on clone accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.graph.ir import TaskGraph
from repro.hardware.cluster import ClusterSpec
from repro.partitioner.atomic import classify_tasks
from repro.partitioner.plan import PartitionPlan
from repro.pipeline.simulator import simulate_sync_pipeline
from repro.profiler.memory import OptimizerKind
from repro.profiler.profiler import GraphProfiler

__all__ = [
    "MEM_REL_TOL",
    "SIM_REL_TOL",
    "TIME_REL_TOL",
    "PlanVerificationError",
    "VerificationReport",
    "Violation",
    "check_plan",
    "verify_plan",
]

#: relative tolerance of the DP estimate vs. the re-simulation
SIM_REL_TOL = 1e-6
#: relative tolerance of stored vs. re-derived stage memory
MEM_REL_TOL = 1e-6
#: relative tolerance of stored vs. re-derived stage times
TIME_REL_TOL = 0.05


@dataclass(frozen=True)
class Violation:
    """One failed invariant: the family it belongs to plus a message."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"


class PlanVerificationError(ValueError):
    """A plan failed verification; carries *all* violations, not just the
    first (mirroring ``GraphValidationError``).

    Subclasses :class:`ValueError` so the planner's cache-load path can
    treat an invalid stored deployment as a miss.
    """

    def __init__(self, model_name: str, violations: List[Violation]) -> None:
        self.model_name = model_name
        self.violations = list(violations)
        lines = "\n".join(f"  - {v}" for v in self.violations)
        super().__init__(
            f"plan for {model_name!r} failed verification with "
            f"{len(self.violations)} violation(s):\n{lines}"
        )


@dataclass
class VerificationReport:
    """Result of :func:`check_plan`: violations plus numeric summaries."""

    model_name: str
    violations: List[Violation] = field(default_factory=list)
    invariants_checked: int = 0
    #: float-valued summaries (``sim_rel_err``, ``max_mem_rel_err``, ...)
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> None:
        if self.violations:
            raise PlanVerificationError(self.model_name, self.violations)


def _rel_err(a: float, b: float) -> float:
    """Symmetric relative error, safe at zero."""
    denom = max(abs(a), abs(b), 1e-30)
    return abs(a - b) / denom


class _Checker:
    """One verification run; accumulates violations and statistics."""

    def __init__(
        self,
        plan: PartitionPlan,
        graph: TaskGraph,
        cluster: ClusterSpec,
        profiler: Optional[GraphProfiler],
        optimizer: OptimizerKind,
        expected_iteration_time: Optional[float],
        schedule: str,
    ) -> None:
        self.plan = plan
        self.graph = graph
        self.cluster = cluster
        self.profiler = profiler
        self.optimizer = optimizer
        self.expected_iteration_time = expected_iteration_time
        self.schedule = schedule
        self.report = VerificationReport(model_name=plan.model_name)
        self.non_constant = classify_tasks(graph)
        #: task -> sorted list of stage indices it appears in
        self.placement: Dict[str, List[int]] = {}
        self.unknown_tasks = False

    # ------------------------------------------------------------------
    def _checked(self, n: int = 1) -> None:
        self.report.invariants_checked += n

    def _fail(self, invariant: str, message: str) -> None:
        self.report.violations.append(Violation(invariant, message))

    # ------------------------------------------------------------------
    def run(self) -> VerificationReport:
        plan = self.plan
        self._checked()
        if not plan.stages:
            self._fail("coverage", "plan has no stages")
            return self.report
        self._check_coverage()
        self._check_topology()
        self._check_devices()
        self._check_divisibility()
        self._check_memory_static()
        if not self.unknown_tasks:
            self._check_derived_profiles()
        self._check_differential()
        self._check_comm()
        self._check_inference()
        return self.report

    # ------------------------------------------------------------------
    def _check_coverage(self) -> None:
        plan, graph = self.plan, self.graph
        for stage in plan.stages:
            seen_in_stage = set()
            for t in stage.tasks:
                if t in seen_in_stage:
                    self._fail(
                        "coverage",
                        f"stage {stage.index} lists task {t!r} twice",
                    )
                    continue
                seen_in_stage.add(t)
                if t not in graph.tasks:
                    self.unknown_tasks = True
                    self._fail(
                        "coverage",
                        f"stage {stage.index} references unknown task {t!r}",
                    )
                    continue
                self.placement.setdefault(t, []).append(stage.index)
        self._checked(len(graph.tasks))
        for t in graph.tasks:
            stages_of = self.placement.get(t)
            if not stages_of:
                self._fail(
                    "coverage", f"task {t!r} is not assigned to any stage"
                )
            elif self.non_constant[t] and len(stages_of) > 1:
                self._fail(
                    "coverage",
                    f"non-constant task {t!r} appears in stages "
                    f"{sorted(stages_of)} (must appear in exactly one; "
                    f"only constant tasks may be cloned)",
                )

    # ------------------------------------------------------------------
    def _check_topology(self) -> None:
        plan = self.plan
        indices = [s.index for s in plan.stages]
        self._checked()
        if indices != list(range(plan.num_stages)):
            self._fail(
                "topology",
                f"stage indices {indices} are not 0..{plan.num_stages - 1} "
                f"in order",
            )
        lo_expected = 0
        for stage in plan.stages:
            lo, hi = stage.block_range
            self._checked()
            if hi <= lo:
                self._fail(
                    "topology",
                    f"stage {stage.index} has empty block range ({lo}, {hi}]",
                )
            if lo != lo_expected:
                self._fail(
                    "topology",
                    f"stage {stage.index} block range starts at {lo}, "
                    f"expected {lo_expected} (ranges must chain "
                    f"contiguously from 0)",
                )
            lo_expected = hi

        if self.unknown_tasks:
            return
        # forward-only dataflow: a non-constant producer may never sit in
        # a later stage than a non-constant consumer, and a constant
        # producer must be cloned into every stage consuming its output
        stage_of = {
            t: stages[0]
            for t, stages in self.placement.items()
            if self.non_constant[t] and len(stages) == 1
        }
        for producer, consumer in self.graph.iter_edges():
            if producer not in self.placement or consumer not in stage_of:
                continue  # unplaced tasks were already reported
            self._checked()
            if self.non_constant[producer]:
                if producer in stage_of and stage_of[producer] > stage_of[consumer]:
                    self._fail(
                        "topology",
                        f"dataflow edge {producer!r} -> {consumer!r} runs "
                        f"backward through the pipeline (stage "
                        f"{stage_of[producer]} -> {stage_of[consumer]})",
                    )
            elif stage_of[consumer] not in self.placement[producer]:
                self._fail(
                    "topology",
                    f"constant task {producer!r} feeds {consumer!r} in "
                    f"stage {stage_of[consumer]} but is not cloned into "
                    f"that stage (placed in {self.placement[producer]})",
                )

    # ------------------------------------------------------------------
    def _check_devices(self) -> None:
        plan, cluster = self.plan, self.cluster
        self._checked(2)
        if plan.replica_factor < 1:
            self._fail(
                "devices", f"replica factor {plan.replica_factor} < 1"
            )
        for stage in plan.stages:
            self._checked()
            if stage.devices_per_pipeline < 1:
                self._fail(
                    "devices",
                    f"stage {stage.index} has {stage.devices_per_pipeline} "
                    f"devices (need >= 1)",
                )
        total = plan.devices_per_pipeline * max(1, plan.replica_factor)
        if total > cluster.total_devices:
            self._fail(
                "devices",
                f"plan uses {total} devices "
                f"({plan.devices_per_pipeline} per pipeline x "
                f"{plan.replica_factor} replicas) but the cluster has "
                f"{cluster.total_devices}",
            )
        assignment = plan.assignment
        if assignment is None:
            return
        self._checked()
        seen_ranks: Dict[int, tuple] = {}
        for (replica, stage_idx), ranks in assignment.ranks.items():
            stage = (
                plan.stages[stage_idx]
                if 0 <= stage_idx < plan.num_stages
                else None
            )
            if stage is not None and len(ranks) != stage.devices_per_pipeline:
                self._fail(
                    "devices",
                    f"assignment gives stage {stage_idx} (replica "
                    f"{replica}) {len(ranks)} ranks but the stage "
                    f"declares {stage.devices_per_pipeline}",
                )
            for r in ranks:
                if not 0 <= r < cluster.total_devices:
                    self._fail(
                        "devices",
                        f"assignment rank {r} out of range "
                        f"[0, {cluster.total_devices})",
                    )
                elif r in seen_ranks:
                    self._fail(
                        "devices",
                        f"device rank {r} assigned to both "
                        f"{seen_ranks[r]} and {(replica, stage_idx)}",
                    )
                seen_ranks[r] = (replica, stage_idx)

    # ------------------------------------------------------------------
    def _check_divisibility(self) -> None:
        plan = self.plan
        self._checked()
        if plan.num_microbatches < 1:
            self._fail(
                "divisibility",
                f"num_microbatches {plan.num_microbatches} < 1",
            )
            return
        if plan.replica_factor < 1:
            return  # reported under devices; the quotient is meaningless
        for stage in plan.stages:
            if stage.devices_per_pipeline < 1:
                continue
            denom = (
                plan.replica_factor
                * plan.num_microbatches
                * stage.devices_per_pipeline
            )
            bs = plan.batch_size // denom
            self._checked(2)
            if bs < 1:
                self._fail(
                    "divisibility",
                    f"stage {stage.index}: batch size {plan.batch_size} "
                    f"leaves no samples per replica microbatch "
                    f"(R*MB*devices = {denom})",
                )
            if stage.microbatch_size != bs:
                self._fail(
                    "divisibility",
                    f"stage {stage.index} stores microbatch_size "
                    f"{stage.microbatch_size}, but batch_size // "
                    f"(R*MB*devices) = {plan.batch_size} // {denom} = {bs}",
                )

    # ------------------------------------------------------------------
    def _stage_limits(self) -> List[tuple]:
        """Per-stage ``(usable_memory, time_factor)``.

        Homogeneous clusters use the single device's capacity and a 1.0
        factor everywhere.  Heterogeneous clusters derive both from the
        ranks each stage actually occupies (the attached assignment when
        present, else the contiguous-band slot arithmetic the DP and
        ``allocate_devices`` share): the stage must fit its tightest
        device and runs at its slowest device's pace."""
        cluster = self.cluster
        if not cluster.is_heterogeneous:
            usable = cluster.device.usable_memory
            return [(usable, 1.0) for _ in self.plan.stages]
        mems = cluster.rank_memories()
        facs = cluster.rank_time_factors(self.plan.precision)
        assignment = self.plan.assignment
        R = max(1, self.plan.replica_factor)
        D = self.plan.devices_per_pipeline
        limits: List[tuple] = []
        dlo = 0
        for stage in self.plan.stages:
            ranks: List[int] = []
            if assignment is not None:
                for rep in range(R):
                    ranks.extend(assignment.ranks.get((rep, stage.index), ()))
            if not ranks:
                for rep in range(R):
                    base = rep * D + dlo
                    ranks.extend(
                        range(base, base + stage.devices_per_pipeline)
                    )
            ranks = [r for r in ranks if 0 <= r < cluster.total_devices]
            if ranks:
                limits.append(
                    (min(mems[r] for r in ranks),
                     max(facs[r] for r in ranks))
                )
            else:  # out-of-range ranks were already reported under devices
                limits.append((cluster.device.usable_memory, 1.0))
            dlo += stage.devices_per_pipeline
        return limits

    def _check_memory_static(self) -> None:
        limits = self._stage_limits()
        for stage, (usable, _factor) in zip(self.plan.stages, limits):
            self._checked()
            if stage.profile.memory > usable * (1.0 + MEM_REL_TOL):
                self._fail(
                    "memory",
                    f"stage {stage.index} stores peak memory "
                    f"{stage.profile.memory / 2**30:.3f} GiB exceeding "
                    f"usable device memory {usable / 2**30:.3f} GiB",
                )

    # ------------------------------------------------------------------
    def _ensure_profiler(self) -> GraphProfiler:
        mode = self.plan.mode
        if (
            self.profiler is not None
            and getattr(self.profiler, "mode", "training") != mode
        ):
            # a supplied training profiler cannot re-derive an inference
            # plan (and vice versa); fall back to building a matching one
            self.profiler = None
        if self.profiler is None:
            self.profiler = GraphProfiler(
                self.graph,
                self.cluster,
                self.plan.precision,
                self.optimizer,
                mode=mode,
            )
        return self.profiler

    def _check_derived_profiles(self) -> None:
        """Re-derive each stage's (t_f, t_b, m) from the profiler and
        compare against the stored profile (memory tightly, times
        loosely -- see the module docstring on clone accounting)."""
        plan, cluster = self.plan, self.cluster
        profiler = self._ensure_profiler()
        limits = self._stage_limits()
        checkpointing = plan.num_stages > 1
        inflight = plan.num_microbatches if checkpointing else 1
        max_mem_err = 0.0
        max_time_err = 0.0
        for stage, (usable, factor) in zip(plan.stages, limits):
            if stage.microbatch_size < 1:
                continue  # reported under divisibility
            prof = profiler.profile(
                stage.tasks,
                stage.microbatch_size,
                microbatches_in_flight=inflight,
                checkpointing=checkpointing,
            )
            # the DP charges boundary communication to the sender's
            # occupancy; mirror that before comparing times.  On a
            # heterogeneous cluster the profile was taken on the
            # reference device, so the stage's class time factor scales
            # the whole re-derived time exactly as the DP did.
            t_f = (prof.time_fwd + (
                cluster.p2p_time(prof.out_bytes) if prof.out_bytes else 0.0
            )) * factor
            if plan.mode == "inference":
                # no backward pass, hence no gradient-return traffic:
                # the re-derived backward time is identically zero
                t_b = 0.0
            else:
                t_b = (prof.time_bwd + (
                    cluster.p2p_time(prof.in_bytes) if prof.in_bytes else 0.0
                )) * factor
            mem_err = _rel_err(prof.memory, stage.profile.memory)
            max_mem_err = max(max_mem_err, mem_err)
            self._checked(4)
            if mem_err > MEM_REL_TOL:
                self._fail(
                    "memory",
                    f"stage {stage.index} stores peak memory "
                    f"{stage.profile.memory / 2**30:.4f} GiB but "
                    f"re-deriving it from the profiler gives "
                    f"{prof.memory / 2**30:.4f} GiB "
                    f"(rel err {mem_err:.2e} > {MEM_REL_TOL:.0e})",
                )
            if prof.memory > usable * (1.0 + MEM_REL_TOL):
                self._fail(
                    "memory",
                    f"stage {stage.index} re-derived peak memory "
                    f"{prof.memory / 2**30:.3f} GiB exceeds usable device "
                    f"memory {usable / 2**30:.3f} GiB",
                )
            tf_err = _rel_err(t_f, stage.time_fwd)
            tb_err = _rel_err(t_b, stage.time_bwd)
            max_time_err = max(max_time_err, tf_err, tb_err)
            if tf_err > TIME_REL_TOL:
                self._fail(
                    "differential",
                    f"stage {stage.index} forward time "
                    f"{stage.time_fwd:.6e}s disagrees with the re-derived "
                    f"{t_f:.6e}s (rel err {tf_err:.2e} > {TIME_REL_TOL})",
                )
            if tb_err > TIME_REL_TOL:
                self._fail(
                    "differential",
                    f"stage {stage.index} backward time "
                    f"{stage.time_bwd:.6e}s disagrees with the re-derived "
                    f"{t_b:.6e}s (rel err {tb_err:.2e} > {TIME_REL_TOL})",
                )
        self.report.stats["max_mem_rel_err"] = max_mem_err
        self.report.stats["max_time_rel_err"] = max_time_err

    # ------------------------------------------------------------------
    def _check_differential(self) -> None:
        """Re-simulate the plan's stored stage times and compare against
        the DP estimate and the recorded pipeline makespan."""
        plan = self.plan
        if plan.num_microbatches < 1 or not plan.stages:
            return
        tf = [s.time_fwd for s in plan.stages]
        tb = [s.time_bwd for s in plan.stages]
        sim = simulate_sync_pipeline(tf, tb, plan.num_microbatches)
        self.report.stats["resimulated_pipeline_time"] = sim
        if self.expected_iteration_time is not None:
            err = _rel_err(sim, self.expected_iteration_time)
            self.report.stats["sim_rel_err"] = err
            self._checked()
            if err > SIM_REL_TOL:
                self._fail(
                    "differential",
                    f"DP estimated the pipeline makespan as "
                    f"{self.expected_iteration_time:.6e}s but re-simulating "
                    f"the plan gives {sim:.6e}s "
                    f"(rel err {err:.2e} > {SIM_REL_TOL:.0e})",
                )
        recorded = plan.diagnostics.pipeline_time
        if self.schedule == "sync" and recorded > 0.0:
            err = _rel_err(sim, recorded)
            self.report.stats.setdefault("sim_rel_err", err)
            self._checked()
            if err > SIM_REL_TOL:
                self._fail(
                    "differential",
                    f"plan records pipeline_time {recorded:.6e}s but "
                    f"re-simulating its stage times gives {sim:.6e}s "
                    f"(rel err {err:.2e} > {SIM_REL_TOL:.0e})",
                )

    # ------------------------------------------------------------------
    def _check_comm(self) -> None:
        """Re-derive the data-parallel allreduce phase under the
        cluster's configured communication model and compare against the
        recorded value."""
        plan = self.plan
        if plan.iteration_time <= 0.0 or not plan.stages:
            return  # plan has not been evaluated yet
        if plan.mode == "inference":
            return  # no gradient sync exists; see _check_inference
        from repro.pipeline.hybrid import allreduce_phase

        rederived, details = allreduce_phase(plan)
        recorded = plan.diagnostics.allreduce_time
        err = _rel_err(rederived, recorded)
        self.report.stats["comm_rel_err"] = err
        self._checked()
        if err > SIM_REL_TOL:
            self._fail(
                "comm",
                f"plan records allreduce_time {recorded:.6e}s but "
                f"re-deriving it under the {details['comm_model']!r} "
                f"communication model gives {rederived:.6e}s "
                f"(rel err {err:.2e} > {SIM_REL_TOL:.0e})",
            )
        if (
            plan.diagnostics.comm_model
            and plan.diagnostics.comm_model != details["comm_model"]
        ):
            self._checked()
            self._fail(
                "comm",
                f"plan was evaluated under comm model "
                f"{plan.diagnostics.comm_model!r} but the cluster is "
                f"configured for {details['comm_model']!r}",
            )

    # ------------------------------------------------------------------
    def _check_inference(self) -> None:
        """Forward-only invariants of an inference plan: zero backward
        time per stage, zero allreduce/optimizer phases, and -- once
        evaluated -- an iteration time equal to the pipeline makespan."""
        plan = self.plan
        if plan.mode != "inference":
            return
        for stage in plan.stages:
            self._checked()
            if stage.time_bwd != 0.0:
                self._fail(
                    "inference",
                    f"stage {stage.index} stores backward time "
                    f"{stage.time_bwd:.6e}s; an inference stage runs no "
                    f"backward pass (must be exactly 0)",
                )
        if plan.iteration_time <= 0.0:
            return  # not evaluated yet; nothing more to hold it to
        self._checked(3)
        if plan.diagnostics.allreduce_time != 0.0:
            self._fail(
                "inference",
                f"inference plan records a gradient allreduce phase of "
                f"{plan.diagnostics.allreduce_time:.6e}s (must be 0)",
            )
        if plan.diagnostics.optimizer_time != 0.0:
            self._fail(
                "inference",
                f"inference plan records an optimizer step of "
                f"{plan.diagnostics.optimizer_time:.6e}s (must be 0)",
            )
        err = _rel_err(plan.iteration_time, plan.diagnostics.pipeline_time)
        if err > SIM_REL_TOL:
            self._fail(
                "inference",
                f"inference iteration time {plan.iteration_time:.6e}s is "
                f"not the forward pipeline makespan "
                f"{plan.diagnostics.pipeline_time:.6e}s "
                f"(rel err {err:.2e} > {SIM_REL_TOL:.0e})",
            )


def check_plan(
    plan: PartitionPlan,
    graph: TaskGraph,
    cluster: Optional[ClusterSpec] = None,
    *,
    profiler: Optional[GraphProfiler] = None,
    optimizer: OptimizerKind = OptimizerKind.ADAM,
    expected_iteration_time: Optional[float] = None,
    schedule: str = "sync",
) -> VerificationReport:
    """Check every plan invariant; returns a report, never raises.

    Args:
        plan: the plan to verify.
        graph: the traced model the plan claims to partition.
        cluster: target cluster (defaults to ``plan.cluster``).
        profiler: reuse an existing profiler for the re-derivation
            checks; one is built from ``plan.precision`` + ``optimizer``
            when omitted.  Must match the plan's precision.
        optimizer: optimizer whose state entered the memory estimate
            (the deployment JSON does not store it; defaults to Adam,
            the planner default).
        expected_iteration_time: the DP's ``estimated_iteration_time``
            for the differential check, when the caller has it (the
            planner's ``VerifyPass`` does; a cache load does not).
        schedule: the schedule the plan was evaluated under; the
            recorded ``diagnostics.pipeline_time`` is only compared to
            the synchronous re-simulation when this is ``"sync"``.
    """
    checker = _Checker(
        plan,
        graph,
        cluster if cluster is not None else plan.cluster,
        profiler,
        optimizer,
        expected_iteration_time,
        schedule,
    )
    return checker.run()


def verify_plan(
    plan: PartitionPlan,
    graph: TaskGraph,
    cluster: Optional[ClusterSpec] = None,
    *,
    profiler: Optional[GraphProfiler] = None,
    optimizer: OptimizerKind = OptimizerKind.ADAM,
    expected_iteration_time: Optional[float] = None,
    schedule: str = "sync",
) -> VerificationReport:
    """:func:`check_plan`, raising :class:`PlanVerificationError` (with
    *all* violations) if any invariant failed."""
    report = check_plan(
        plan,
        graph,
        cluster,
        profiler=profiler,
        optimizer=optimizer,
        expected_iteration_time=expected_iteration_time,
        schedule=schedule,
    )
    report.raise_if_failed()
    return report
