"""Core task-graph IR: value nodes, task nodes and the bipartite graph.

The graph is bipartite in the ONNX sense: *tasks* (operators) consume and
produce *values* (tensors).  Shapes are stored with a canonical batch size
of 1; every value flags whether its leading dimension is the minibatch
dimension (``batched=True``), which lets the profiler scale activation
sizes and FLOPs linearly with the batch size actually being profiled.
Parameter and constant values are never batched.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

Shape = Tuple[int, ...]


class DataType(enum.Enum):
    """Element types supported by the IR.

    Only the byte width matters to the cost and memory models, but keeping
    the distinction allows mixed-precision (AMP) experiments where
    activations are FP16 while master weights stay FP32.
    """

    FLOAT32 = "float32"
    FLOAT16 = "float16"
    INT64 = "int64"
    BOOL = "bool"

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return {
            DataType.FLOAT32: 4,
            DataType.FLOAT16: 2,
            DataType.INT64: 8,
            DataType.BOOL: 1,
        }[self]


class ValueKind(enum.Enum):
    """Role of a value node in the model graph."""

    INPUT = "input"  # input to the entire model (e.g. token ids, images)
    PARAM = "param"  # trainable weight
    CONST = "const"  # non-trainable buffer / literal
    ACTIVATION = "activation"  # produced by some task
    OUTPUT = "output"  # a model output (also produced by a task)


@dataclass
class ValueNode:
    """A tensor value flowing through the graph.

    Attributes:
        name: unique identifier within the graph.
        shape: tensor shape at canonical batch size 1.
        dtype: element type.
        kind: role (input / param / const / activation / output).
        batched: whether ``shape[0]`` is the minibatch dimension and thus
            scales with the profiled batch size.
        producer: name of the task producing this value (``None`` for
            inputs, params and consts).
        consumers: names of tasks consuming this value.
    """

    name: str
    shape: Shape
    dtype: DataType = DataType.FLOAT32
    kind: ValueKind = ValueKind.ACTIVATION
    batched: bool = True
    producer: Optional[str] = None
    consumers: List[str] = field(default_factory=list)

    def numel(self, batch_size: int = 1) -> int:
        """Number of elements at the given batch size."""
        n = 1
        for d in self.shape:
            n *= d
        if self.batched:
            n *= batch_size
        return n

    def nbytes(self, batch_size: int = 1) -> int:
        """Size in bytes at the given batch size."""
        return self.numel(batch_size) * self.dtype.itemsize

    def is_leaf(self) -> bool:
        """True if not produced by any task (input / param / const)."""
        return self.producer is None


@dataclass
class TaskNode:
    """An operator instance.

    Attributes:
        name: unique identifier within the graph.
        op_type: operator name, must exist in :data:`repro.graph.ops.registry`.
        inputs: names of consumed values, positional.
        outputs: names of produced values, positional.
        attrs: operator attributes (e.g. conv stride).
    """

    name: str
    op_type: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    attrs: Dict[str, object] = field(default_factory=dict)


class TaskGraph:
    """A directed acyclic bipartite graph of tasks and values.

    Insertion order of tasks is preserved and is required to be a valid
    topological order (builders construct graphs that way; ``validate_graph``
    checks it).  This makes topological traversal free and deterministic.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.values: Dict[str, ValueNode] = {}
        self.tasks: Dict[str, TaskNode] = {}
        self.input_names: List[str] = []
        self.output_names: List[str] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_value(self, value: ValueNode) -> ValueNode:
        """Register a value node (name must be unique)."""
        if value.name in self.values:
            raise ValueError(f"duplicate value name: {value.name!r}")
        self.values[value.name] = value
        if value.kind is ValueKind.INPUT:
            self.input_names.append(value.name)
        return value

    def add_task(self, task: TaskNode) -> TaskNode:
        """Register a task; wires producer/consumer links on its values."""
        if task.name in self.tasks:
            raise ValueError(f"duplicate task name: {task.name!r}")
        for vname in task.inputs:
            if vname not in self.values:
                raise ValueError(
                    f"task {task.name!r} consumes unknown value {vname!r}"
                )
        self.tasks[task.name] = task
        for vname in task.inputs:
            self.values[vname].consumers.append(task.name)
        for vname in task.outputs:
            if vname not in self.values:
                raise ValueError(
                    f"task {task.name!r} produces unknown value {vname!r}"
                )
            if self.values[vname].producer is not None:
                raise ValueError(f"value {vname!r} has two producers")
            self.values[vname].producer = task.name
        return task

    def mark_output(self, value_name: str) -> None:
        """Declare a value as a model output."""
        value = self.values[value_name]
        value.kind = ValueKind.OUTPUT
        if value_name not in self.output_names:
            self.output_names.append(value_name)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> List[ValueNode]:
        """Model-input value nodes, in declaration order."""
        return [self.values[n] for n in self.input_names]

    @property
    def outputs(self) -> List[ValueNode]:
        """Declared output value nodes."""
        return [self.values[n] for n in self.output_names]

    def params(self) -> List[ValueNode]:
        """All trainable parameter values, in insertion order."""
        return [v for v in self.values.values() if v.kind is ValueKind.PARAM]

    def num_parameters(self) -> int:
        """Total number of trainable parameters (batch-independent)."""
        return sum(v.numel(1) for v in self.params())

    def task_list(self) -> List[TaskNode]:
        """Tasks in insertion (topological) order."""
        return list(self.tasks.values())

    def producer_of(self, value_name: str) -> Optional[TaskNode]:
        """The task producing a value, or None for leaves."""
        producer = self.values[value_name].producer
        return self.tasks[producer] if producer is not None else None

    def consumers_of(self, value_name: str) -> List[TaskNode]:
        """All tasks consuming a value."""
        return [self.tasks[t] for t in self.values[value_name].consumers]

    def __len__(self) -> int:
        return len(self.tasks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskGraph({self.name!r}, tasks={len(self.tasks)}, "
            f"values={len(self.values)}, params={self.num_parameters():,})"
        )

    # ------------------------------------------------------------------
    # subgraph utilities (used heavily by the partitioner)
    # ------------------------------------------------------------------
    def boundary_values(
        self, task_names: Iterable[str]
    ) -> Tuple[List[str], List[str]]:
        """Input and output cut values of a set of tasks.

        Returns ``(in_values, out_values)``: values produced outside (or
        graph leaves) and consumed inside, and values produced inside that
        are consumed outside or are model outputs.
        """
        members = set(task_names)
        in_values: List[str] = []
        out_values: List[str] = []
        seen_in: set = set()
        seen_out: set = set()
        for tname in task_names:
            task = self.tasks[tname]
            for vname in task.inputs:
                producer = self.values[vname].producer
                if (producer is None or producer not in members) and (
                    vname not in seen_in
                ):
                    seen_in.add(vname)
                    in_values.append(vname)
            for vname in task.outputs:
                value = self.values[vname]
                external = any(c not in members for c in value.consumers)
                if (external or vname in self.output_names) and (
                    vname not in seen_out
                ):
                    seen_out.add(vname)
                    out_values.append(vname)
        return in_values, out_values

    def cut_bytes(
        self, task_names: Iterable[str], batch_size: int = 1
    ) -> Tuple[int, int]:
        """Bytes entering / leaving a set of tasks at the given batch size.

        Only *batched activation* traffic is counted: parameters and
        constants live on the device that owns the subcomponent and are
        never transferred per-iteration.
        """
        in_values, out_values = self.boundary_values(task_names)
        in_bytes = sum(
            self.values[v].nbytes(batch_size)
            for v in in_values
            if self.values[v].kind in (ValueKind.ACTIVATION, ValueKind.INPUT, ValueKind.OUTPUT)
        )
        out_bytes = sum(
            self.values[v].nbytes(batch_size) for v in out_values
        )
        return in_bytes, out_bytes

    def extract_subgraph(
        self, task_names: Sequence[str], name: Optional[str] = None
    ) -> "TaskGraph":
        """Materialize a standalone :class:`TaskGraph` for a task subset.

        Boundary input values become graph inputs (keeping their original
        kind for params/consts); boundary outputs become graph outputs.
        Task order follows this graph's topological order.
        """
        members = set(task_names)
        sub = TaskGraph(name or f"{self.name}.sub")
        order = [t for t in self.tasks if t in members]
        needed: List[str] = []
        seen: set = set()
        for tname in order:
            task = self.tasks[tname]
            for vname in task.inputs + task.outputs:
                if vname not in seen:
                    seen.add(vname)
                    needed.append(vname)
        for vname in needed:
            orig = self.values[vname]
            producer = orig.producer
            inside = producer is not None and producer in members
            if inside:
                kind = ValueKind.ACTIVATION
            elif orig.kind in (ValueKind.PARAM, ValueKind.CONST):
                kind = orig.kind
            else:
                kind = ValueKind.INPUT
            sub.add_value(
                ValueNode(
                    name=vname,
                    shape=orig.shape,
                    dtype=orig.dtype,
                    kind=kind,
                    batched=orig.batched,
                )
            )
        for tname in order:
            task = self.tasks[tname]
            sub.add_task(
                TaskNode(
                    name=task.name,
                    op_type=task.op_type,
                    inputs=list(task.inputs),
                    outputs=list(task.outputs),
                    attrs=dict(task.attrs),
                )
            )
        _, out_values = self.boundary_values(order)
        for vname in out_values:
            sub.mark_output(vname)
        return sub

    def iter_edges(self) -> Iterator[Tuple[str, str]]:
        """Directed task-to-task edges induced by shared values."""
        for value in self.values.values():
            if value.producer is None:
                continue
            for consumer in value.consumers:
                yield value.producer, consumer

    def total_flops(self, batch_size: int = 1) -> float:
        """Forward-pass FLOPs of the whole graph (delegates to op registry)."""
        from repro.graph.ops import registry

        return sum(
            registry.flops(task, self, batch_size) for task in self.tasks.values()
        )

    def parameter_bytes(self) -> int:
        return sum(v.nbytes(1) for v in self.params())


def human_size(num_bytes: float) -> str:
    """Render a byte count as a human-readable string (for reports)."""
    if num_bytes <= 0:
        return "0 B"
    units = ["B", "KiB", "MiB", "GiB", "TiB"]
    idx = min(int(math.log(num_bytes, 1024)), len(units) - 1)
    return f"{num_bytes / 1024 ** idx:.2f} {units[idx]}"
