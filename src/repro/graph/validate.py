"""Structural validation of task graphs.

``validate_graph`` is called by tests and by the public partitioning API to
reject malformed inputs early.  It checks:

* every task references existing values with correct arity;
* every non-leaf value has exactly one producer;
* insertion order is a topological order (and the graph is acyclic);
* re-running shape inference reproduces the stored shapes;
* declared outputs exist and are produced by some task;
* batched/param flags are consistent (params/consts never batched).
"""

from __future__ import annotations

from typing import List

from repro.graph.ir import TaskGraph, ValueKind
from repro.graph.ops import registry


class GraphValidationError(ValueError):
    """Raised when a task graph violates a structural invariant."""


def validate_graph(graph: TaskGraph) -> None:
    """Validate ``graph``; raises :class:`GraphValidationError` on failure."""
    problems: List[str] = []

    produced: set = set()
    for tname, task in graph.tasks.items():
        if task.op_type not in registry:
            problems.append(f"task {tname!r}: unknown op {task.op_type!r}")
            continue
        spec = registry.get(task.op_type)
        if spec.n_inputs is not None and len(task.inputs) != spec.n_inputs:
            problems.append(
                f"task {tname!r}: op {task.op_type!r} expects "
                f"{spec.n_inputs} inputs, has {len(task.inputs)}"
            )
        for vname in task.inputs:
            if vname not in graph.values:
                problems.append(f"task {tname!r}: missing input {vname!r}")
                continue
            value = graph.values[vname]
            if value.producer is None:
                continue
            if value.producer not in produced:
                problems.append(
                    f"task {tname!r} consumes {vname!r} before its producer "
                    f"{value.producer!r} (insertion order not topological)"
                )
        produced.add(tname)

        # shape re-inference must agree with stored shapes
        try:
            in_shapes = [graph.values[v].shape for v in task.inputs]
            out_shapes = registry.infer_shapes(task.op_type, in_shapes, task.attrs)
        except Exception as exc:  # noqa: BLE001 - collecting all problems
            problems.append(f"task {tname!r}: shape inference failed: {exc}")
        else:
            stored = [graph.values[v].shape for v in task.outputs]
            if list(map(tuple, out_shapes)) != list(map(tuple, stored)):
                problems.append(
                    f"task {tname!r}: stored output shapes {stored} != "
                    f"inferred {out_shapes}"
                )

    for vname, value in graph.values.items():
        if value.kind in (ValueKind.PARAM, ValueKind.CONST):
            if value.batched:
                problems.append(f"value {vname!r}: {value.kind.value} is batched")
            if value.producer is not None:
                problems.append(
                    f"value {vname!r}: {value.kind.value} has a producer"
                )
        if value.kind is ValueKind.ACTIVATION and value.producer is None:
            problems.append(f"value {vname!r}: activation without producer")
        for consumer in value.consumers:
            if consumer not in graph.tasks:
                problems.append(
                    f"value {vname!r}: unknown consumer {consumer!r}"
                )

    for oname in graph.output_names:
        if oname not in graph.values:
            problems.append(f"declared output {oname!r} does not exist")
        elif graph.values[oname].producer is None:
            problems.append(f"declared output {oname!r} has no producer")

    if not graph.output_names:
        problems.append("graph declares no outputs")
    if not graph.input_names:
        problems.append("graph declares no inputs")

    if problems:
        raise GraphValidationError(
            f"graph {graph.name!r} failed validation:\n  " + "\n  ".join(problems)
        )
