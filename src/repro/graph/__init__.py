"""ONNX-style task-graph intermediate representation.

The paper converts a model "to a task graph in the manner of the ONNX
format, where there are two types of nodes: tasks and values" (Sec. III-A).
This subpackage provides that IR plus every graph utility the partitioner
needs: shape inference, FLOP/byte accounting per operator, topological
ordering, reachability, convexity checks, subgraph extraction and merging,
a tracing builder, structural validation and JSON serialization.
"""

from repro.graph.ir import (
    DataType,
    TaskGraph,
    TaskNode,
    ValueKind,
    ValueNode,
)
from repro.graph.ops import OpSpec, registry
from repro.graph.builder import GraphBuilder
from repro.graph.traversal import (
    ancestors,
    descendants,
    group_graph,
    is_convex,
    task_predecessors,
    task_successors,
    topo_sort_tasks,
)
from repro.graph.validate import GraphValidationError, validate_graph
from repro.graph.serialize import graph_from_json, graph_to_json

__all__ = [
    "DataType",
    "GraphBuilder",
    "GraphValidationError",
    "OpSpec",
    "TaskGraph",
    "TaskNode",
    "ValueKind",
    "ValueNode",
    "ancestors",
    "descendants",
    "graph_from_json",
    "graph_to_json",
    "group_graph",
    "is_convex",
    "registry",
    "task_predecessors",
    "task_successors",
    "topo_sort_tasks",
    "validate_graph",
]
