"""Operator registry: shape inference and FLOP accounting per op type.

Every task's ``op_type`` must be registered here.  The registry drives

* the :class:`~repro.graph.builder.GraphBuilder` (shape inference),
* the analytic profiler (forward FLOPs, backward FLOP factor, bytes moved),
* the NumPy runtime (which binds executable kernels separately in
  :mod:`repro.runtime.tensor` keyed by the same op names).

Shapes are canonical batch-size-1 shapes; the profiler scales per-op FLOPs
linearly in the batch size for batched ops, which is exact for all
standard per-sample-separable NN operators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

Shape = Tuple[int, ...]
ShapeFn = Callable[[Sequence[Shape], Dict[str, object]], List[Shape]]
FlopFn = Callable[[Sequence[Shape], Sequence[Shape], Dict[str, object]], float]


def _numel(shape: Shape) -> int:
    n = 1
    for d in shape:
        n *= d
    return n


def _broadcast(a: Shape, b: Shape) -> Shape:
    """NumPy-style broadcast of two shapes."""
    out: List[int] = []
    ra, rb = a[::-1], b[::-1]
    for i in range(max(len(ra), len(rb))):
        da = ra[i] if i < len(ra) else 1
        db = rb[i] if i < len(rb) else 1
        if da != db and 1 not in (da, db):
            raise ValueError(f"cannot broadcast {a} with {b}")
        out.append(max(da, db))
    return tuple(out[::-1])


@dataclass
class OpSpec:
    """Static description of an operator type.

    Attributes:
        name: op type string.
        infer: shape-inference function.
        flops: forward FLOPs at the given (canonical) shapes.
        bwd_factor: backward-pass FLOPs as a multiple of forward FLOPs
            (2.0 for matmul-like ops computing both dX and dW, ~1.0 for
            elementwise ops).
        n_inputs: expected input arity (``None`` = variadic).
        elementwise: hint used by the runtime and memory model.
    """

    name: str
    infer: ShapeFn
    flops: FlopFn
    bwd_factor: float = 2.0
    n_inputs: Optional[int] = None
    elementwise: bool = False


class OpRegistry:
    """Registry mapping op-type names to :class:`OpSpec`."""

    def __init__(self) -> None:
        self._specs: Dict[str, OpSpec] = {}

    def register(self, spec: OpSpec) -> OpSpec:
        if spec.name in self._specs:
            raise ValueError(f"op {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> OpSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(f"unknown op type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def names(self) -> List[str]:
        return sorted(self._specs)

    # convenience wrappers over a TaskNode in a TaskGraph ---------------
    def infer_shapes(self, op_type: str, in_shapes: Sequence[Shape],
                     attrs: Dict[str, object]) -> List[Shape]:
        return self.get(op_type).infer(in_shapes, attrs)

    def flops(self, task, graph, batch_size: int = 1) -> float:
        """Forward FLOPs of a task instance at the given batch size."""
        spec = self.get(task.op_type)
        in_shapes = [graph.values[v].shape for v in task.inputs]
        out_shapes = [graph.values[v].shape for v in task.outputs]
        base = spec.flops(in_shapes, out_shapes, task.attrs)
        batched = any(graph.values[v].batched for v in task.inputs) or any(
            graph.values[v].batched for v in task.outputs
        )
        return base * batch_size if batched else base

    def backward_flops(self, task, graph, batch_size: int = 1) -> float:
        spec = self.get(task.op_type)
        return self.flops(task, graph, batch_size) * spec.bwd_factor


registry = OpRegistry()


def _op(name: str, *, n_inputs: Optional[int] = None, bwd_factor: float = 2.0,
        elementwise: bool = False) -> Callable[[ShapeFn], ShapeFn]:
    """Decorator registering ``infer`` and pairing it with a flops fn set
    via the ``.flops`` attribute afterwards (defaults to zero FLOPs)."""

    def wrap(infer: ShapeFn) -> ShapeFn:
        def default_flops(ins, outs, attrs):  # zero-cost by default
            return 0.0

        spec = OpSpec(
            name=name,
            infer=infer,
            flops=default_flops,
            bwd_factor=bwd_factor,
            n_inputs=n_inputs,
            elementwise=elementwise,
        )
        registry.register(spec)
        infer._spec = spec  # type: ignore[attr-defined]
        return infer

    return wrap


def _set_flops(infer: ShapeFn, fn: FlopFn) -> None:
    infer._spec.flops = fn  # type: ignore[attr-defined]


# ---------------------------------------------------------------------------
# linear algebra
# ---------------------------------------------------------------------------

@_op("matmul", n_inputs=2, bwd_factor=2.0)
def _matmul(ins: Sequence[Shape], attrs) -> List[Shape]:
    a, b = ins
    if len(a) < 1 or len(b) < 2:
        raise ValueError(f"matmul needs >=1D x >=2D, got {a} x {b}")
    if a[-1] != b[-2]:
        raise ValueError(f"matmul inner-dim mismatch: {a} x {b}")
    if len(b) == 2:
        return [a[:-1] + (b[-1],)]
    lead = _broadcast(a[:-2], b[:-2])
    return [lead + (a[-2], b[-1])]


def _matmul_flops(ins, outs, attrs) -> float:
    a, b = ins
    out = outs[0]
    return 2.0 * _numel(out) * a[-1]


_set_flops(_matmul, _matmul_flops)


@_op("linear", n_inputs=3, bwd_factor=2.0)
def _linear(ins: Sequence[Shape], attrs) -> List[Shape]:
    """x @ W^T + b with W stored as (out_features, in_features)."""
    x, w, b = ins
    if x[-1] != w[1]:
        raise ValueError(f"linear dims mismatch: x={x} W={w}")
    if b != (w[0],):
        raise ValueError(f"linear bias shape {b} != ({w[0]},)")
    return [x[:-1] + (w[0],)]


_set_flops(_linear, lambda ins, outs, attrs: 2.0 * _numel(outs[0]) * ins[0][-1])


# ---------------------------------------------------------------------------
# elementwise / broadcast arithmetic
# ---------------------------------------------------------------------------

def _binary_infer(ins: Sequence[Shape], attrs) -> List[Shape]:
    return [_broadcast(ins[0], ins[1])]


for _name in ("add", "sub", "mul", "div"):
    registry.register(
        OpSpec(
            name=_name,
            infer=_binary_infer,
            flops=lambda ins, outs, attrs: float(_numel(outs[0])),
            bwd_factor=1.0,
            n_inputs=2,
            elementwise=True,
        )
    )


def _unary_infer(ins: Sequence[Shape], attrs) -> List[Shape]:
    return [ins[0]]


def _register_unary(name: str, cost_per_elem: float, bwd_factor: float = 1.0):
    registry.register(
        OpSpec(
            name=name,
            infer=_unary_infer,
            flops=lambda ins, outs, attrs, c=cost_per_elem: c * _numel(outs[0]),
            bwd_factor=bwd_factor,
            n_inputs=1,
            elementwise=True,
        )
    )


_register_unary("relu", 1.0)
_register_unary("gelu", 10.0)
_register_unary("tanh", 5.0)
_register_unary("sigmoid", 5.0)
_register_unary("identity", 0.0)
_register_unary("dropout", 1.0)
_register_unary("neg", 1.0)


@_op("scale", n_inputs=1, bwd_factor=1.0, elementwise=True)
def _scale(ins: Sequence[Shape], attrs) -> List[Shape]:
    return [ins[0]]


_set_flops(_scale, lambda ins, outs, attrs: float(_numel(outs[0])))


@_op("softmax", n_inputs=1, bwd_factor=2.0, elementwise=True)
def _softmax(ins: Sequence[Shape], attrs) -> List[Shape]:
    return [ins[0]]


_set_flops(_softmax, lambda ins, outs, attrs: 5.0 * _numel(outs[0]))


@_op("layernorm", n_inputs=3, bwd_factor=2.0)
def _layernorm(ins: Sequence[Shape], attrs) -> List[Shape]:
    x, gamma, beta = ins
    h = x[-1]
    if gamma != (h,) or beta != (h,):
        raise ValueError(f"layernorm affine shapes {gamma}/{beta} != ({h},)")
    return [x]


_set_flops(_layernorm, lambda ins, outs, attrs: 8.0 * _numel(outs[0]))


# ---------------------------------------------------------------------------
# shape manipulation
# ---------------------------------------------------------------------------

@_op("transpose", n_inputs=1, bwd_factor=1.0)
def _transpose(ins: Sequence[Shape], attrs) -> List[Shape]:
    x = ins[0]
    perm = attrs.get("perm")
    if perm is None:
        perm = tuple(reversed(range(len(x))))
    perm = tuple(perm)
    if sorted(perm) != list(range(len(x))):
        raise ValueError(f"bad perm {perm} for rank-{len(x)} input")
    return [tuple(x[p] for p in perm)]


_set_flops(_transpose, lambda ins, outs, attrs: 0.0)


@_op("reshape", n_inputs=1, bwd_factor=0.0)
def _reshape(ins: Sequence[Shape], attrs) -> List[Shape]:
    """Reshape the *non-batch tail* of the input.

    ``attrs['shape']`` gives the full target shape at canonical batch 1
    (the leading batch axis, if the value is batched, must stay axis 0 with
    extent equal to the input's axis-0 extent -- builders enforce this).
    A single ``-1`` entry is inferred.
    """
    x = ins[0]
    target = list(attrs["shape"])  # type: ignore[index]
    if target.count(-1) > 1:
        raise ValueError("reshape allows at most one -1")
    known = 1
    for d in target:
        if d != -1:
            known *= d
    total = _numel(x)
    if -1 in target:
        if total % known:
            raise ValueError(f"cannot infer -1 reshaping {x} to {target}")
        target[target.index(-1)] = total // known
    if _numel(tuple(target)) != total:
        raise ValueError(f"reshape numel mismatch: {x} -> {target}")
    return [tuple(target)]


_set_flops(_reshape, lambda ins, outs, attrs: 0.0)


@_op("flatten", n_inputs=1, bwd_factor=0.0)
def _flatten(ins: Sequence[Shape], attrs) -> List[Shape]:
    """Flatten everything after the leading (batch) axis."""
    x = ins[0]
    return [(x[0], _numel(x[1:]))]


_set_flops(_flatten, lambda ins, outs, attrs: 0.0)


@_op("concat", bwd_factor=0.0)
def _concat(ins: Sequence[Shape], attrs) -> List[Shape]:
    axis = int(attrs.get("axis", -1))  # type: ignore[arg-type]
    base = list(ins[0])
    axis = axis % len(base)
    for s in ins[1:]:
        if len(s) != len(base):
            raise ValueError("concat rank mismatch")
        for i, (a, b) in enumerate(zip(base, s)):
            if i != axis and a != b:
                raise ValueError(f"concat non-axis mismatch: {ins}")
        base[axis] += s[axis]
    return [tuple(base)]


_set_flops(_concat, lambda ins, outs, attrs: 0.0)


# ---------------------------------------------------------------------------
# embeddings and losses
# ---------------------------------------------------------------------------

@_op("embedding", n_inputs=2, bwd_factor=1.0)
def _embedding(ins: Sequence[Shape], attrs) -> List[Shape]:
    ids, weight = ins
    if len(weight) != 2:
        raise ValueError(f"embedding weight must be 2D, got {weight}")
    return [ids + (weight[1],)]


_set_flops(_embedding, lambda ins, outs, attrs: float(_numel(outs[0])))


@_op("cross_entropy", n_inputs=2, bwd_factor=1.0)
def _cross_entropy(ins: Sequence[Shape], attrs) -> List[Shape]:
    logits, targets = ins
    if logits[:-1] != targets:
        raise ValueError(
            f"cross_entropy targets {targets} must match logits[:-1] {logits[:-1]}"
        )
    return [(1,)]


_set_flops(_cross_entropy, lambda ins, outs, attrs: 5.0 * _numel(ins[0]))


@_op("mse_loss", n_inputs=2, bwd_factor=1.0)
def _mse(ins: Sequence[Shape], attrs) -> List[Shape]:
    if ins[0] != ins[1]:
        raise ValueError(f"mse_loss shape mismatch: {ins}")
    return [(1,)]


_set_flops(_mse, lambda ins, outs, attrs: 3.0 * _numel(ins[0]))


# ---------------------------------------------------------------------------
# convolutional ops
# ---------------------------------------------------------------------------

def _conv_out(size: int, k: int, stride: int, pad: int) -> int:
    out = (size + 2 * pad - k) // stride + 1
    if out <= 0:
        raise ValueError(f"conv output collapsed: size={size} k={k} s={stride} p={pad}")
    return out


@_op("conv2d", n_inputs=2, bwd_factor=2.0)
def _conv2d(ins: Sequence[Shape], attrs) -> List[Shape]:
    x, w = ins
    if len(x) != 4 or len(w) != 4:
        raise ValueError(f"conv2d needs NCHW x OIHW, got {x} x {w}")
    n, c, h, wd = x
    o, ci, kh, kw = w
    if c != ci:
        raise ValueError(f"conv2d channels mismatch: {x} x {w}")
    stride = int(attrs.get("stride", 1))  # type: ignore[arg-type]
    pad = int(attrs.get("padding", 0))  # type: ignore[arg-type]
    return [(n, o, _conv_out(h, kh, stride, pad), _conv_out(wd, kw, stride, pad))]


def _conv2d_flops(ins, outs, attrs) -> float:
    w = ins[1]
    out = outs[0]
    return 2.0 * _numel(out) * w[1] * w[2] * w[3]


_set_flops(_conv2d, _conv2d_flops)


@_op("batchnorm2d", n_inputs=3, bwd_factor=2.0)
def _batchnorm2d(ins: Sequence[Shape], attrs) -> List[Shape]:
    x, gamma, beta = ins
    if len(x) != 4 or gamma != (x[1],) or beta != (x[1],):
        raise ValueError(f"batchnorm2d shapes: x={x} gamma={gamma} beta={beta}")
    return [x]


_set_flops(_batchnorm2d, lambda ins, outs, attrs: 5.0 * _numel(outs[0]))


@_op("maxpool2d", n_inputs=1, bwd_factor=1.0)
def _maxpool2d(ins: Sequence[Shape], attrs) -> List[Shape]:
    x = ins[0]
    k = int(attrs.get("kernel", 2))  # type: ignore[arg-type]
    stride = int(attrs.get("stride", k))  # type: ignore[arg-type]
    pad = int(attrs.get("padding", 0))  # type: ignore[arg-type]
    n, c, h, w = x
    return [(n, c, _conv_out(h, k, stride, pad), _conv_out(w, k, stride, pad))]


_set_flops(
    _maxpool2d,
    lambda ins, outs, attrs: float(
        _numel(outs[0]) * int(attrs.get("kernel", 2)) ** 2
    ),
)


@_op("global_avgpool", n_inputs=1, bwd_factor=1.0)
def _global_avgpool(ins: Sequence[Shape], attrs) -> List[Shape]:
    x = ins[0]
    if len(x) != 4:
        raise ValueError(f"global_avgpool needs NCHW, got {x}")
    return [(x[0], x[1])]


_set_flops(_global_avgpool, lambda ins, outs, attrs: float(_numel(ins[0])))


# ---------------------------------------------------------------------------
# reductions / misc
# ---------------------------------------------------------------------------

@_op("reduce_mean", n_inputs=1, bwd_factor=1.0)
def _reduce_mean(ins: Sequence[Shape], attrs) -> List[Shape]:
    x = ins[0]
    axis = attrs.get("axis")
    if axis is None:
        return [(1,)]
    axis = int(axis) % len(x)  # type: ignore[arg-type]
    return [tuple(d for i, d in enumerate(x) if i != axis)]


_set_flops(_reduce_mean, lambda ins, outs, attrs: float(_numel(ins[0])))


@_op("slice_rows", n_inputs=1, bwd_factor=0.0)
def _slice_rows(ins: Sequence[Shape], attrs) -> List[Shape]:
    """Take rows [start, stop) along axis 1 (e.g. the [CLS] token)."""
    x = ins[0]
    start = int(attrs.get("start", 0))  # type: ignore[arg-type]
    stop = int(attrs.get("stop", start + 1))  # type: ignore[arg-type]
    if not (0 <= start < stop <= x[1]):
        raise ValueError(f"bad slice [{start}:{stop}] on {x}")
    return [(x[0], stop - start) + x[2:]]


_set_flops(_slice_rows, lambda ins, outs, attrs: 0.0)
