"""JSON (de)serialization of task graphs.

Round-tripping a traced model through JSON is how partition plans and
model graphs can be cached between runs -- RaNNC similarly caches
partitioning results ("deployments") on disk so repeated launches skip the
search.
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

from repro.graph.ir import DataType, TaskGraph, TaskNode, ValueKind, ValueNode


def _canon_attr_json(value: Any, task: str, key: str) -> Any:
    """JSON form of one attr value; rejects non-serializable types.

    Sequences are emitted as lists (JSON has no tuple);
    :func:`_canon_attr_runtime` turns them back into tuples, so a
    serialize/restore round trip is idempotent instead of silently
    swapping tuple-valued attrs (strides, shapes) for lists.
    """
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_canon_attr_json(v, task, key) for v in value]
    if isinstance(value, dict):
        for k in value:
            if not isinstance(k, str):
                raise TypeError(
                    f"task {task!r} attr {key!r}: dict key {k!r} is not a "
                    f"string, cannot serialize to JSON"
                )
        return {k: _canon_attr_json(v, task, key) for k, v in value.items()}
    raise TypeError(
        f"task {task!r} attr {key!r} has non-JSON-serializable type "
        f"{type(value).__name__}; allowed: None, bool, int, float, str, "
        f"list/tuple, dict (str keys)"
    )


def _canon_attr_runtime(value: Any) -> Any:
    """Runtime form of a JSON attr value: sequences become tuples (the
    canonical in-memory form the tracer produces)."""
    if isinstance(value, list):
        return tuple(_canon_attr_runtime(v) for v in value)
    if isinstance(value, dict):
        return {k: _canon_attr_runtime(v) for k, v in value.items()}
    return value


def canonicalize_attrs(attrs: Dict[str, Any], task: str = "?") -> Dict[str, Any]:
    """The canonical runtime form of an attrs dict (tuples for
    sequences, plain python scalars); raises :class:`TypeError` for
    attrs JSON cannot represent."""
    return {
        k: _canon_attr_runtime(_canon_attr_json(v, task, k))
        for k, v in attrs.items()
    }


def canonical_json(doc: Any) -> str:
    """Deterministic JSON text for hashing: sorted keys, no whitespace
    variance, NumPy scalars coerced to plain Python.

    Content fingerprints throughout the repo (graph fingerprints, the
    planner's facet/artifact fingerprints) hash this form so the same
    logical content always produces the same digest."""

    def _default(value: Any) -> Any:
        if isinstance(value, (np.bool_,)):
            return bool(value)
        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
        raise TypeError(
            f"cannot canonicalize {type(value).__name__} for hashing"
        )

    return json.dumps(
        doc, sort_keys=True, separators=(",", ":"), default=_default
    )


def graph_to_json(graph: TaskGraph) -> str:
    """Serialize a graph to a JSON string (deterministic key order)."""
    doc: Dict[str, Any] = {
        "name": graph.name,
        "values": [
            {
                "name": v.name,
                "shape": list(v.shape),
                "dtype": v.dtype.value,
                "kind": v.kind.value,
                "batched": v.batched,
            }
            for v in graph.values.values()
        ],
        "tasks": [
            {
                "name": t.name,
                "op_type": t.op_type,
                "inputs": list(t.inputs),
                "outputs": list(t.outputs),
                "attrs": {
                    k: _canon_attr_json(v, t.name, k)
                    for k, v in t.attrs.items()
                },
            }
            for t in graph.tasks.values()
        ],
        "outputs": list(graph.output_names),
    }
    return json.dumps(doc, sort_keys=True)


def graph_from_json(text: str) -> TaskGraph:
    """Deserialize a graph previously produced by :func:`graph_to_json`."""
    doc = json.loads(text)
    graph = TaskGraph(doc["name"])
    for vdoc in doc["values"]:
        graph.add_value(
            ValueNode(
                name=vdoc["name"],
                shape=tuple(vdoc["shape"]),
                dtype=DataType(vdoc["dtype"]),
                kind=ValueKind(vdoc["kind"]),
                batched=vdoc["batched"],
            )
        )
    for tdoc in doc["tasks"]:
        graph.add_task(
            TaskNode(
                name=tdoc["name"],
                op_type=tdoc["op_type"],
                inputs=list(tdoc["inputs"]),
                outputs=list(tdoc["outputs"]),
                attrs={
                    k: _canon_attr_runtime(v)
                    for k, v in tdoc["attrs"].items()
                },
            )
        )
    for oname in doc["outputs"]:
        graph.mark_output(oname)
    return graph
