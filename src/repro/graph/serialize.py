"""JSON (de)serialization of task graphs.

Round-tripping a traced model through JSON is how partition plans and
model graphs can be cached between runs -- RaNNC similarly caches
partitioning results ("deployments") on disk so repeated launches skip the
search.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.graph.ir import DataType, TaskGraph, TaskNode, ValueKind, ValueNode


def graph_to_json(graph: TaskGraph) -> str:
    """Serialize a graph to a JSON string (deterministic key order)."""
    doc: Dict[str, Any] = {
        "name": graph.name,
        "values": [
            {
                "name": v.name,
                "shape": list(v.shape),
                "dtype": v.dtype.value,
                "kind": v.kind.value,
                "batched": v.batched,
            }
            for v in graph.values.values()
        ],
        "tasks": [
            {
                "name": t.name,
                "op_type": t.op_type,
                "inputs": list(t.inputs),
                "outputs": list(t.outputs),
                "attrs": t.attrs,
            }
            for t in graph.tasks.values()
        ],
        "outputs": list(graph.output_names),
    }
    return json.dumps(doc, sort_keys=True)


def graph_from_json(text: str) -> TaskGraph:
    """Deserialize a graph previously produced by :func:`graph_to_json`."""
    doc = json.loads(text)
    graph = TaskGraph(doc["name"])
    for vdoc in doc["values"]:
        graph.add_value(
            ValueNode(
                name=vdoc["name"],
                shape=tuple(vdoc["shape"]),
                dtype=DataType(vdoc["dtype"]),
                kind=ValueKind(vdoc["kind"]),
                batched=vdoc["batched"],
            )
        )
    for tdoc in doc["tasks"]:
        graph.add_task(
            TaskNode(
                name=tdoc["name"],
                op_type=tdoc["op_type"],
                inputs=list(tdoc["inputs"]),
                outputs=list(tdoc["outputs"]),
                attrs=dict(tdoc["attrs"]),
            )
        )
    for oname in doc["outputs"]:
        graph.mark_output(oname)
    return graph
