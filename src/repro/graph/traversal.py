"""Graph traversal utilities: topological order, reachability, convexity.

Convexity is the central structural constraint of block-level partitioning
(Sec. III-B): "a group u is convex if and only if there is no path between
any pair alpha, beta in u such that the path goes through any gamma not in
u".  A non-convex stage would deadlock the pipeline, so every merge and
every uncoarsening move must preserve it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.ir import TaskGraph


def task_successors(graph: TaskGraph) -> Dict[str, List[str]]:
    """Adjacency map task -> successor tasks (via produced values)."""
    succ: Dict[str, List[str]] = {t: [] for t in graph.tasks}
    for producer, consumer in graph.iter_edges():
        succ[producer].append(consumer)
    return succ


def task_predecessors(graph: TaskGraph) -> Dict[str, List[str]]:
    """Adjacency map task -> predecessor tasks."""
    pred: Dict[str, List[str]] = {t: [] for t in graph.tasks}
    for producer, consumer in graph.iter_edges():
        pred[consumer].append(producer)
    return pred


def topo_sort_tasks(graph: TaskGraph) -> List[str]:
    """Kahn topological sort, deterministic (insertion order tie-break).

    Raises ``ValueError`` if the graph contains a cycle.
    """
    succ = task_successors(graph)
    indeg: Dict[str, int] = {t: 0 for t in graph.tasks}
    for _, consumer in graph.iter_edges():
        indeg[consumer] += 1
    ready = deque(t for t in graph.tasks if indeg[t] == 0)
    order: List[str] = []
    while ready:
        t = ready.popleft()
        order.append(t)
        for s in succ[t]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    if len(order) != len(graph.tasks):
        raise ValueError("task graph contains a cycle")
    return order


def descendants(graph: TaskGraph, roots: Iterable[str]) -> Set[str]:
    """All tasks reachable from ``roots`` (excluding the roots themselves
    unless reachable through a cycle-free path from another root)."""
    succ = task_successors(graph)
    seen: Set[str] = set()
    stack = list(roots)
    while stack:
        t = stack.pop()
        for s in succ[t]:
            if s not in seen:
                seen.add(s)
                stack.append(s)
    return seen


def ancestors(graph: TaskGraph, roots: Iterable[str]) -> Set[str]:
    """All tasks that can reach ``roots``."""
    pred = task_predecessors(graph)
    seen: Set[str] = set()
    stack = list(roots)
    while stack:
        t = stack.pop()
        for p in pred[t]:
            if p not in seen:
                seen.add(p)
                stack.append(p)
    return seen


def is_convex(graph: TaskGraph, members: Iterable[str]) -> bool:
    """Check convexity of a task subset.

    A subset is convex iff no directed path exits the subset and re-enters
    it.  Implemented as a BFS through *external* tasks starting from the
    external successors of the subset; if any member is reached, some path
    leaves and comes back.
    """
    mset = set(members)
    succ = task_successors(graph)
    frontier: deque = deque()
    seen: Set[str] = set()
    for t in mset:
        for s in succ[t]:
            if s not in mset and s not in seen:
                seen.add(s)
                frontier.append(s)
    while frontier:
        t = frontier.popleft()
        for s in succ[t]:
            if s in mset:
                return False
            if s not in seen:
                seen.add(s)
                frontier.append(s)
    return True


class GroupGraph:
    """A DAG over disjoint task groups, supporting incremental merges.

    Used by block-level partitioning: groups start as atomic subcomponents
    and are repeatedly merged.  The class maintains group adjacency and
    answers the *convex-merge* query cheaply: merging adjacent groups
    ``v -> w`` stays convex iff every path from ``v`` to ``w`` in the group
    DAG is the direct edge (i.e. ``w`` unreachable from ``v`` once the
    direct edge is removed), and symmetrically.  This is equivalent to the
    task-level convexity definition when all current groups are convex.

    Reachability checks are pruned by a *level function*: an integer per
    group with ``level[a] < level[b]`` for every edge ``a -> b``.  Any
    path from ``n`` to ``dst`` then implies ``level[n] < level[dst]``,
    so the DFS behind :meth:`can_merge` never expands nodes at or above
    the destination's level -- near-O(1) on chain-like graphs instead of
    a full-graph sweep, with bit-identical answers (the bound only skips
    nodes that provably cannot reach ``dst``).  Levels are repaired
    incrementally on :meth:`merge`; if the input has a cycle (callers
    are expected to keep the graph a DAG) pruning disables itself and
    the unpruned search is used.
    """

    def __init__(
        self,
        node_ids: Sequence[int],
        edges: Iterable[Tuple[int, int]],
    ) -> None:
        self.succ: Dict[int, Set[int]] = {n: set() for n in node_ids}
        self.pred: Dict[int, Set[int]] = {n: set() for n in node_ids}
        for a, b in edges:
            if a == b:
                continue
            self.succ[a].add(b)
            self.pred[b].add(a)
        self._level: Optional[Dict[int, int]] = self._compute_levels()

    def _compute_levels(self) -> Optional[Dict[int, int]]:
        """Longest-path-from-source level per node; None on a cycle."""
        level = {n: 0 for n in self.succ}
        indeg = {n: len(self.pred[n]) for n in self.succ}
        stack = [n for n, d in indeg.items() if d == 0]
        processed = 0
        while stack:
            n = stack.pop()
            processed += 1
            floor = level[n] + 1
            for s in self.succ[n]:
                if level[s] < floor:
                    level[s] = floor
                indeg[s] -= 1
                if indeg[s] == 0:
                    stack.append(s)
        return level if processed == len(self.succ) else None

    def nodes(self) -> List[int]:
        return list(self.succ)

    def adjacent(self, v: int, w: int) -> bool:
        return w in self.succ[v] or w in self.pred[v]

    def _reachable_avoiding_edge(self, src: int, dst: int) -> bool:
        """Is ``dst`` reachable from ``src`` without using edge src->dst?"""
        lv = self._level
        if lv is None:  # cyclic input: no valid levels, search unpruned
            stack = [s for s in self.succ[src] if s != dst]
            seen = set(stack)
            while stack:
                n = stack.pop()
                if n == dst:
                    return True
                for s in self.succ[n]:
                    if s not in seen:
                        seen.add(s)
                        stack.append(s)
            return False
        bound = lv[dst]
        stack = [s for s in self.succ[src] if s != dst and lv[s] < bound]
        seen = set(stack)
        while stack:
            n = stack.pop()
            for s in self.succ[n]:
                if s == dst:
                    return True
                if s not in seen and lv[s] < bound:
                    seen.add(s)
                    stack.append(s)
        return False

    def can_merge(self, v: int, w: int) -> bool:
        """True if merging adjacent groups v and w keeps convexity."""
        if v == w:
            return False
        if w in self.succ[v]:
            src, dst = v, w
        elif v in self.succ[w]:
            src, dst = w, v
        else:
            return False  # not adjacent
        return not self._reachable_avoiding_edge(src, dst)

    def merge(self, keep: int, absorb: int) -> None:
        """Merge node ``absorb`` into node ``keep`` (must keep acyclicity,
        i.e. callers check :meth:`can_merge` first)."""
        if keep == absorb:
            raise ValueError("cannot merge a node with itself")
        for s in self.succ.pop(absorb):
            self.pred[s].discard(absorb)
            if s != keep:
                self.succ[keep].add(s)
                self.pred[s].add(keep)
        for p in self.pred.pop(absorb):
            self.succ[p].discard(absorb)
            if p != keep:
                self.pred[keep].add(p)
                self.succ[p].add(keep)
        self.succ[keep].discard(keep)
        self.pred[keep].discard(keep)
        if self._level is not None:
            lv = self._level
            lv[keep] = max(lv[keep], lv.pop(absorb))
            # Push-down repair: keep's level may have risen, and absorb's
            # successors now hang off keep.  Predecessor edges cannot be
            # violated (keep's level only grew).  A budget bounds the
            # worklist so a caller-introduced cycle degrades to unpruned
            # searches instead of looping forever.
            budget = 4 * len(self.succ) + 16
            stack = [keep]
            while stack and budget >= 0:
                n = stack.pop()
                floor = lv[n] + 1
                for s in self.succ[n]:
                    if lv[s] < floor:
                        lv[s] = floor
                        stack.append(s)
                        budget -= 1
            if budget < 0:
                self._level = None

    def topo_order(self) -> List[int]:
        indeg = {n: len(self.pred[n]) for n in self.succ}
        ready = deque(sorted(n for n, d in indeg.items() if d == 0))
        order: List[int] = []
        while ready:
            n = ready.popleft()
            order.append(n)
            for s in sorted(self.succ[n]):
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != len(self.succ):
            raise ValueError("group graph contains a cycle")
        return order


def group_graph(
    graph: TaskGraph, groups: Sequence[FrozenSet[str]]
) -> GroupGraph:
    """Contract a task graph onto a partition into disjoint groups."""
    owner: Dict[str, int] = {}
    for gid, members in enumerate(groups):
        for t in members:
            if t in owner:
                raise ValueError(f"task {t!r} in two groups")
            owner[t] = gid
    edges = set()
    for producer, consumer in graph.iter_edges():
        a, b = owner.get(producer), owner.get(consumer)
        if a is None or b is None or a == b:
            continue
        edges.add((a, b))
    return GroupGraph(range(len(groups)), edges)
