"""Tracing-style graph builder with automatic shape inference.

Plays the role PyTorch's tracer plays for RaNNC: model code calls builder
methods imperatively and the builder records the resulting task graph,
inferring output shapes through the op registry.  Task insertion order is
the execution order, so the recorded graph is topologically sorted by
construction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.graph.ir import DataType, Shape, TaskGraph, TaskNode, ValueKind, ValueNode
from repro.graph.ops import registry


@dataclass(frozen=True)
class Sym:
    """Lightweight handle to a value in the graph being built."""

    name: str
    shape: Shape
    dtype: DataType
    batched: bool

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sym({self.name!r}, {self.shape})"


SymLike = Union[Sym, str]


class GraphBuilder:
    """Builds a :class:`TaskGraph` op by op.

    Example::

        b = GraphBuilder("mlp")
        x = b.input("x", (1, 64))
        h = b.linear(x, 128, name="fc1")
        h = b.op("relu", [h])
        loss = b.op("mse_loss", [h, b.input("y", (1, 128))])
        graph = b.finish(outputs=[loss])
    """

    def __init__(self, name: str = "graph") -> None:
        self.graph = TaskGraph(name)
        self._counters: Dict[str, itertools.count] = {}

    # ------------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        counter = self._counters.setdefault(prefix, itertools.count())
        return f"{prefix}_{next(counter)}"

    def _sym(self, value: ValueNode) -> Sym:
        return Sym(value.name, value.shape, value.dtype, value.batched)

    def _resolve(self, v: SymLike) -> Sym:
        if isinstance(v, Sym):
            return v
        value = self.graph.values[v]
        return self._sym(value)

    # ------------------------------------------------------------------
    # leaves
    # ------------------------------------------------------------------
    def input(
        self,
        name: str,
        shape: Shape,
        dtype: DataType = DataType.FLOAT32,
        batched: bool = True,
    ) -> Sym:
        """Declare a model input (batched by default)."""
        value = ValueNode(
            name=name, shape=tuple(shape), dtype=dtype,
            kind=ValueKind.INPUT, batched=batched,
        )
        self.graph.add_value(value)
        return self._sym(value)

    def param(
        self,
        name: str,
        shape: Shape,
        dtype: DataType = DataType.FLOAT32,
    ) -> Sym:
        """Declare a trainable parameter (never batched)."""
        value = ValueNode(
            name=name, shape=tuple(shape), dtype=dtype,
            kind=ValueKind.PARAM, batched=False,
        )
        self.graph.add_value(value)
        return self._sym(value)

    def const(
        self,
        name: str,
        shape: Shape,
        dtype: DataType = DataType.FLOAT32,
    ) -> Sym:
        """Declare a non-trainable constant buffer (never batched)."""
        value = ValueNode(
            name=name, shape=tuple(shape), dtype=dtype,
            kind=ValueKind.CONST, batched=False,
        )
        self.graph.add_value(value)
        return self._sym(value)

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def op(
        self,
        op_type: str,
        inputs: Sequence[SymLike],
        attrs: Optional[Dict[str, object]] = None,
        name: Optional[str] = None,
        out_dtype: Optional[DataType] = None,
    ) -> Sym:
        """Record a single-output task; returns the output handle."""
        outs = self.op_multi(op_type, inputs, attrs, name, out_dtype)
        if len(outs) != 1:
            raise ValueError(f"op {op_type!r} produced {len(outs)} outputs")
        return outs[0]

    def op_multi(
        self,
        op_type: str,
        inputs: Sequence[SymLike],
        attrs: Optional[Dict[str, object]] = None,
        name: Optional[str] = None,
        out_dtype: Optional[DataType] = None,
    ) -> List[Sym]:
        """Record a task with any number of outputs; returns all handles."""
        spec = registry.get(op_type)
        syms = [self._resolve(v) for v in inputs]
        if spec.n_inputs is not None and len(syms) != spec.n_inputs:
            raise ValueError(
                f"op {op_type!r} expects {spec.n_inputs} inputs, got {len(syms)}"
            )
        attrs = dict(attrs or {})
        out_shapes = spec.infer([s.shape for s in syms], attrs)
        task_name = name or self._fresh(op_type)
        batched = any(s.batched for s in syms)
        if out_dtype is None:
            float_in = [s.dtype for s in syms if s.dtype in (DataType.FLOAT32, DataType.FLOAT16)]
            out_dtype = float_in[0] if float_in else DataType.FLOAT32
        outs: List[Sym] = []
        out_names: List[str] = []
        for i, shape in enumerate(out_shapes):
            vname = f"{task_name}.out" if len(out_shapes) == 1 else f"{task_name}.out{i}"
            value = ValueNode(
                name=vname, shape=tuple(shape), dtype=out_dtype,
                kind=ValueKind.ACTIVATION, batched=batched,
            )
            self.graph.add_value(value)
            out_names.append(vname)
            outs.append(self._sym(value))
        self.graph.add_task(
            TaskNode(
                name=task_name,
                op_type=op_type,
                inputs=[s.name for s in syms],
                outputs=out_names,
                attrs=attrs,
            )
        )
        return outs

    # ------------------------------------------------------------------
    # common composite helpers (shared by the model zoo)
    # ------------------------------------------------------------------
    def linear(self, x: SymLike, out_features: int, name: Optional[str] = None) -> Sym:
        """Fully connected layer: creates W (out, in) and b (out,) params."""
        xs = self._resolve(x)
        prefix = name or self._fresh("linear")
        w = self.param(f"{prefix}.weight", (out_features, xs.shape[-1]))
        b = self.param(f"{prefix}.bias", (out_features,))
        return self.op("linear", [xs, w, b], name=prefix)

    def layernorm(self, x: SymLike, name: Optional[str] = None) -> Sym:
        """Layer normalization: creates gamma/beta params over the last axis."""
        xs = self._resolve(x)
        prefix = name or self._fresh("ln")
        gamma = self.param(f"{prefix}.gamma", (xs.shape[-1],))
        beta = self.param(f"{prefix}.beta", (xs.shape[-1],))
        return self.op("layernorm", [xs, gamma, beta], name=prefix)

    def conv2d(
        self,
        x: SymLike,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        name: Optional[str] = None,
    ) -> Sym:
        """2-D convolution layer: creates an OIHW weight parameter."""
        xs = self._resolve(x)
        prefix = name or self._fresh("conv")
        w = self.param(
            f"{prefix}.weight", (out_channels, xs.shape[1], kernel, kernel)
        )
        return self.op(
            "conv2d", [xs, w], attrs={"stride": stride, "padding": padding},
            name=prefix,
        )

    def batchnorm2d(self, x: SymLike, name: Optional[str] = None) -> Sym:
        """Batch normalization over NCHW input: creates gamma/beta params."""
        xs = self._resolve(x)
        prefix = name or self._fresh("bn")
        gamma = self.param(f"{prefix}.gamma", (xs.shape[1],))
        beta = self.param(f"{prefix}.beta", (xs.shape[1],))
        return self.op("batchnorm2d", [xs, gamma, beta], name=prefix)

    # ------------------------------------------------------------------
    def finish(self, outputs: Sequence[SymLike]) -> TaskGraph:
        """Mark outputs and return the completed graph."""
        for out in outputs:
            self.graph.mark_output(self._resolve(out).name)
        return self.graph
