"""Event-driven pipeline timing simulation with real per-stage times.

Computes the makespan of one training iteration given each stage's
forward/backward microbatch time (communication to the neighbour stage is
charged to the sending stage's occupancy, matching how the DP's ``h``
includes "the communication time to send the outputs to the following
stage").

Two schedules:

* :func:`simulate_sync_pipeline` -- flush-synchronous (GPipe / RaNNC):
  all microbatches forward, then all backward in reverse, parameter
  versions consistent, bubbles at fill and drain.
* :func:`simulate_async_1f1b` -- PipeDream-2BW-style one-forward-one-
  backward steady state with no flush: per-iteration time approaches
  ``MB x (t_f + t_b)`` of the bottleneck stage (parameter staleness is the
  price; the simulator only models time).
"""

from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np


def _validate(tf: Sequence[float], tb: Sequence[float], num_microbatches: int) -> None:
    if len(tf) != len(tb) or not tf:
        raise ValueError("tf and tb must be equal-length, non-empty")
    if num_microbatches < 1:
        raise ValueError("need >= 1 microbatch")


def simulate_sync_pipeline(
    tf: Sequence[float],
    tb: Sequence[float],
    num_microbatches: int,
) -> float:
    """Makespan of one flush-synchronous iteration.

    Forward waves: microbatch ``m`` on stage ``s`` starts when both the
    stage is free and the microbatch's previous-stage forward finished.
    Backward waves run in reverse microbatch order after the last forward
    of the last stage (loss flush), stage order S-1 .. 0.
    """
    _validate(tf, tb, num_microbatches)
    S = len(tf)
    MB = num_microbatches

    f_done = np.zeros((S, MB))
    stage_free = np.zeros(S)
    for m in range(MB):
        for s in range(S):
            dep = f_done[s - 1, m] if s > 0 else 0.0
            start = max(stage_free[s], dep)
            f_done[s, m] = start + tf[s]
            stage_free[s] = f_done[s, m]

    b_done = np.zeros((S, MB))
    # the backward of microbatch m on stage s depends on the backward of m
    # on stage s+1; the last stage's first backward waits for that
    # microbatch's own forward (which is the flush point for m = MB-1)
    for m in reversed(range(MB)):
        for s in reversed(range(S)):
            dep = b_done[s + 1, m] if s + 1 < S else f_done[S - 1, m]
            start = max(stage_free[s], dep)
            b_done[s, m] = start + tb[s]
            stage_free[s] = b_done[s, m]
    return float(b_done.max())


def simulate_async_1f1b(
    tf: Sequence[float],
    tb: Sequence[float],
    num_microbatches: int,
) -> float:
    """Per-iteration time of an asynchronous 1F1B pipeline in steady state.

    Without a flush, every stage is continuously busy processing one
    forward and one backward per microbatch; the slowest stage paces the
    pipeline, and fill/drain costs amortize away across iterations:

        T = MB x max_s (t_f[s] + t_b[s])

    (This is the idealization PipeDream-2BW's planner also uses; the
    parameter-staleness cost is semantic, not temporal.)
    """
    _validate(tf, tb, num_microbatches)
    bottleneck = max(f + b for f, b in zip(tf, tb))
    return num_microbatches * bottleneck


def sync_pipeline_wave_estimate(
    tf: Sequence[float],
    tb: Sequence[float],
    num_microbatches: int,
) -> float:
    """Closed-form wave estimate: ``(MB + S - 1) x (max tf + max tb)``.

    Counts the ``MB + S - 1`` forward/backward wave slots of a flush
    pipeline, charging every slot at the slowest stage's rate.  Exact for
    uniform stages; an **upper bound** on
    :func:`simulate_sync_pipeline` in general (a faster stage finishes
    its slot early, it never stretches one), so it must NOT be used as
    an admissible lower bound when pruning candidates -- it can only
    over-estimate, never under-estimate.
    """
    _validate(tf, tb, num_microbatches)
    S = len(tf)
    return (num_microbatches + S - 1) * (max(tf) + max(tb))


def sync_pipeline_lower_bound(
    tf: Sequence[float],
    tb: Sequence[float],
    num_microbatches: int,
) -> float:
    """Deprecated alias of :func:`sync_pipeline_wave_estimate`.

    The historical name mischaracterized the bound direction: the wave
    formula is an *upper*-bounding approximation of the simulated
    makespan, not an admissible lower bound.
    """
    warnings.warn(
        "sync_pipeline_lower_bound is a misnomer (the wave formula is an "
        "upper bound); use sync_pipeline_wave_estimate",
        DeprecationWarning,
        stacklevel=2,
    )
    return sync_pipeline_wave_estimate(tf, tb, num_microbatches)
