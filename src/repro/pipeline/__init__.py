"""Pipeline-parallel execution simulators.

Computes iteration times for synchronous (GPipe-style, used by RaNNC) and
asynchronous (PipeDream-2BW 1F1B) pipeline schedules from per-stage
microbatch times, plus the data-parallel gradient-synchronization costs of
hybrid parallelism.  This is the measurement substrate standing in for the
paper's wall-clock throughput runs (see DESIGN.md).
"""

from repro.pipeline.schedule import ScheduleEvent, sync_pipeline_schedule
from repro.pipeline.simulator import (
    simulate_async_1f1b,
    simulate_sync_pipeline,
    sync_pipeline_wave_estimate,
)
from repro.pipeline.one_f_one_b import simulate_sync_1f1b
from repro.pipeline.timeline import Timeline, build_sync_timeline, render_gantt
from repro.pipeline.hybrid import evaluate_plan

__all__ = [
    "ScheduleEvent",
    "Timeline",
    "build_sync_timeline",
    "evaluate_plan",
    "render_gantt",
    "simulate_async_1f1b",
    "simulate_sync_1f1b",
    "simulate_sync_pipeline",
    "sync_pipeline_schedule",
    "sync_pipeline_wave_estimate",
]
