"""Synchronous pipeline schedule construction (the paper's Fig. 1).

Produces the explicit (stage, time-slot) -> microbatch grid of a
flush-synchronous pipeline: every microbatch flows forward through all
stages, then backward in reverse order, with the classic (S - 1)-slot
fill/drain bubbles.  Used to regenerate Fig. 1 and to cross-check the
event-driven simulator on uniform stage times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class ScheduleEvent:
    """One cell of the pipeline schedule grid."""

    stage: int
    microbatch: int
    phase: str  # "F" or "B"
    slot: int


def sync_pipeline_schedule(num_stages: int, num_microbatches: int) -> List[ScheduleEvent]:
    """Slot-level synchronous schedule (unit-time stages).

    Forward: stage ``s`` runs microbatch ``m`` at slot ``s + m``.
    Backward: begins after the last forward drains; stage ``s`` runs
    microbatch ``m`` (in reverse order) at slot
    ``F_end + (S - 1 - s) + (MB - 1 - m)`` counted per its wave.

    Returns events sorted by slot then stage.
    """
    if num_stages < 1 or num_microbatches < 1:
        raise ValueError("need >= 1 stage and >= 1 microbatch")
    S, MB = num_stages, num_microbatches
    events: List[ScheduleEvent] = []
    for m in range(MB):
        for s in range(S):
            events.append(ScheduleEvent(stage=s, microbatch=m, phase="F", slot=s + m))
    f_end = S + MB - 1
    for j, m in enumerate(reversed(range(MB))):
        for s in range(S):
            slot = f_end + (S - 1 - s) + j
            events.append(ScheduleEvent(stage=s, microbatch=m, phase="B", slot=slot))
    events.sort(key=lambda e: (e.slot, e.stage))
    return events


def schedule_makespan_slots(num_stages: int, num_microbatches: int) -> int:
    """Total slots of the synchronous schedule: 2 (MB + S - 1)."""
    return 2 * (num_microbatches + num_stages - 1)


def bubble_fraction(num_stages: int, num_microbatches: int) -> float:
    """Idle fraction of the synchronous pipeline: (S-1)/(MB+S-1)."""
    S, MB = num_stages, num_microbatches
    return (S - 1) / (MB + S - 1)


def render_schedule(
    events: List[ScheduleEvent], num_stages: int
) -> str:
    """ASCII rendering of the schedule grid (one row per stage), e.g.::

        stage0 | F0 F1 F2 F3 .  .  .  B3 B2 B1 B0
        stage1 | .  F0 F1 F2 F3 .  B3 B2 B1 B0 .
    """
    max_slot = max(e.slot for e in events)
    grid: List[List[Optional[str]]] = [
        [None] * (max_slot + 1) for _ in range(num_stages)
    ]
    for e in events:
        grid[e.stage][e.slot] = f"{e.phase}{e.microbatch}"
    width = max(len(c) for row in grid for c in row if c) + 1
    lines = []
    for s in range(num_stages):
        cells = [
            (c or ".").ljust(width) for c in grid[s]
        ]
        lines.append(f"stage{s} | " + "".join(cells).rstrip())
    return "\n".join(lines)
