"""Hybrid-parallel iteration timing: pipeline + data-parallel sync.

Combines the pipeline simulator with the gradient-allreduce cost of each
stage's replica group and a parameter-update estimate, producing the
iteration time and samples/second throughput recorded in Figs. 4 and 5.

The allreduce phase is priced by the cluster's configured communication
model (:mod:`repro.comm`): under the default flat model each stage group
pays the legacy closed-form ring cost and the phase is the slowest group
(disjoint devices, free overlap -- bit-identical to the historical
behaviour); under the topology model each group is priced over its
*actual* device ranks with automatic allreduce-algorithm selection, and
the phase additionally respects bandwidth conservation on shared links
(concurrent stage groups contending for the same NIC uplinks cannot all
run at full rate).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Tuple

from repro.pipeline.simulator import simulate_async_1f1b, simulate_sync_pipeline

if TYPE_CHECKING:  # avoid a circular import with repro.partitioner
    from repro.partitioner.plan import PartitionPlan

#: bytes per parameter moved by the optimizer update (read p, g, m, v;
#: write p, m, v -- Adam in FP32)
_OPT_BYTES_PER_PARAM = 28.0


def allreduce_phase(plan: "PartitionPlan") -> Tuple[float, Dict[str, Any]]:
    """Duration of the data-parallel gradient sync phase, plus detail.

    Returns ``(seconds, details)`` where ``details`` carries the comm
    model name and, under the topology model, the allreduce algorithm
    chosen for the dominant (slowest) stage group and the per-stage
    algorithm map.
    """
    cluster = plan.cluster
    comm = cluster.comm
    details: Dict[str, Any] = {"comm_model": comm.name}
    if comm.name != "flat" and plan.assignment is not None:
        from repro.comm.contention import concurrent_makespan

        costs = []
        algorithms: Dict[int, str] = {}
        dominant_time, dominant_algo = 0.0, ""
        for stage in plan.stages:
            group = sorted({
                rank
                for replica in range(plan.replica_factor)
                for rank in plan.assignment.devices_of(replica, stage.index)
            })
            grad_bytes = stage.profile.param_count * 4.0
            if len(group) <= 1 or grad_bytes <= 0:
                continue
            cost = comm.allreduce(grad_bytes, group)
            costs.append(cost)
            algorithms[stage.index] = cost.algorithm
            if cost.time > dominant_time:
                dominant_time, dominant_algo = cost.time, cost.algorithm
        time = concurrent_makespan(costs)
        details["allreduce_algorithm"] = dominant_algo
        details["allreduce_algorithms"] = algorithms
        details["allreduce_solo_time"] = dominant_time
        details["allreduce_contention_factor"] = (
            time / dominant_time if dominant_time > 0 else 1.0
        )
        return time, details

    # flat model: the historical loop, expression for expression
    allreduce = 0.0
    for stage in plan.stages:
        n_ranks = stage.devices_per_pipeline * plan.replica_factor
        grad_bytes = stage.profile.param_count * 4.0
        # a replica group spans nodes whenever whole-pipeline replicas
        # exist (they live on different nodes) or the intra-pipeline
        # replicas straddle a node boundary; with non-uniform nodes the
        # uniform-width heuristic is wrong, so consult the actual ranks
        if cluster.is_heterogeneous and plan.assignment is not None:
            spans = plan.replica_factor > 1 or any(
                plan.assignment.stage_spans_nodes(rep, stage.index)
                for rep in range(plan.replica_factor)
            )
        else:
            spans = plan.replica_factor > 1 or (
                stage.devices_per_pipeline > cluster.devices_per_node
            )
        allreduce = max(
            allreduce, cluster.allreduce_time(grad_bytes, n_ranks, spans)
        )
    details["allreduce_algorithm"] = "ring"
    return allreduce, details


def evaluate_plan(plan: "PartitionPlan", schedule: str = "sync") -> "PartitionPlan":
    """Fill ``plan.iteration_time`` / ``plan.throughput`` in place.

    The iteration consists of the pipeline makespan, the data-parallel
    gradient-sync phase (see :func:`allreduce_phase`), and the slowest
    stage's local optimizer step.

    Args:
        plan: a populated partition plan.
        schedule: "sync" (RaNNC/GPipe flush) or "async_1f1b"
            (PipeDream-2BW steady state).
    """
    tf = [s.time_fwd for s in plan.stages]
    tb = [s.time_bwd for s in plan.stages]
    if schedule == "sync":
        pipe_time = simulate_sync_pipeline(tf, tb, plan.num_microbatches)
    elif schedule == "sync_1f1b":
        from repro.pipeline.one_f_one_b import simulate_sync_1f1b

        pipe_time = simulate_sync_1f1b(tf, tb, plan.num_microbatches).makespan
    elif schedule == "async_1f1b":
        pipe_time = simulate_async_1f1b(tf, tb, plan.num_microbatches)
    else:
        raise ValueError(f"unknown schedule {schedule!r}")

    cluster = plan.cluster
    device = cluster.device
    if plan.mode == "inference":
        # no gradients to sync, no optimizer step: the iteration is the
        # forward-only pipeline makespan (tb is identically zero)
        allreduce, comm_details = 0.0, {"comm_model": cluster.comm.name}
        opt_step = 0.0
    else:
        allreduce, comm_details = allreduce_phase(plan)
        opt_step = 0.0
        for stage in plan.stages:
            opt_step = max(
                opt_step,
                stage.profile.param_count * _OPT_BYTES_PER_PARAM
                / device.mem_bandwidth,
            )

    plan.iteration_time = pipe_time + allreduce + opt_step
    plan.throughput = plan.batch_size / plan.iteration_time
    plan.diagnostics.pipeline_time = pipe_time
    plan.diagnostics.allreduce_time = allreduce
    plan.diagnostics.optimizer_time = opt_step
    plan.diagnostics.comm_model = comm_details["comm_model"]
    plan.diagnostics.allreduce_algorithm = comm_details.get(
        "allreduce_algorithm", ""
    )
    return plan
