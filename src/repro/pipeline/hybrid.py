"""Hybrid-parallel iteration timing: pipeline + data-parallel sync.

Combines the pipeline simulator with the gradient-allreduce cost of each
stage's replica group and a parameter-update estimate, producing the
iteration time and samples/second throughput recorded in Figs. 4 and 5.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.pipeline.simulator import simulate_async_1f1b, simulate_sync_pipeline

if TYPE_CHECKING:  # avoid a circular import with repro.partitioner
    from repro.partitioner.plan import PartitionPlan

#: bytes per parameter moved by the optimizer update (read p, g, m, v;
#: write p, m, v -- Adam in FP32)
_OPT_BYTES_PER_PARAM = 28.0


def evaluate_plan(plan: "PartitionPlan", schedule: str = "sync") -> "PartitionPlan":
    """Fill ``plan.iteration_time`` / ``plan.throughput`` in place.

    The iteration consists of the pipeline makespan, the slowest stage's
    gradient allreduce across its replica group (stage groups sync
    concurrently on disjoint devices), and the slowest stage's local
    optimizer step.

    Args:
        plan: a populated partition plan.
        schedule: "sync" (RaNNC/GPipe flush) or "async_1f1b"
            (PipeDream-2BW steady state).
    """
    tf = [s.time_fwd for s in plan.stages]
    tb = [s.time_bwd for s in plan.stages]
    if schedule == "sync":
        pipe_time = simulate_sync_pipeline(tf, tb, plan.num_microbatches)
    elif schedule == "sync_1f1b":
        from repro.pipeline.one_f_one_b import simulate_sync_1f1b

        pipe_time = simulate_sync_1f1b(tf, tb, plan.num_microbatches).makespan
    elif schedule == "async_1f1b":
        pipe_time = simulate_async_1f1b(tf, tb, plan.num_microbatches)
    else:
        raise ValueError(f"unknown schedule {schedule!r}")

    cluster = plan.cluster
    device = cluster.device
    allreduce = 0.0
    opt_step = 0.0
    for stage in plan.stages:
        n_ranks = stage.devices_per_pipeline * plan.replica_factor
        grad_bytes = stage.profile.param_count * 4.0
        # a replica group spans nodes whenever whole-pipeline replicas
        # exist (they live on different nodes) or the intra-pipeline
        # replicas straddle a node boundary
        spans = plan.replica_factor > 1 or (
            stage.devices_per_pipeline > cluster.devices_per_node
        )
        allreduce = max(
            allreduce, cluster.allreduce_time(grad_bytes, n_ranks, spans)
        )
        opt_step = max(
            opt_step,
            stage.profile.param_count * _OPT_BYTES_PER_PARAM / device.mem_bandwidth,
        )

    plan.iteration_time = pipe_time + allreduce + opt_step
    plan.throughput = plan.batch_size / plan.iteration_time
    plan.diagnostics.pipeline_time = pipe_time
    plan.diagnostics.allreduce_time = allreduce
    plan.diagnostics.optimizer_time = opt_step
    return plan
