"""Synchronous 1F1B (PipeDream-Flush) pipeline schedule.

Footnote 4 of the paper notes Megatron-LM later added pipeline
parallelism; the schedule it adopted is *PipeDream-Flush*: each stage
runs a warm-up of forwards, then strictly alternates one-backward-one-
forward, then drains -- still flush-synchronous (staleness-free, Table I)
but holding at most ``min(MB, S - s)`` microbatch stashes on stage ``s``
instead of GPipe's ``MB``.  For uniform stages its makespan equals the
GPipe flush schedule, so the memory saving is free.

This module provides an event-driven simulation that also tracks the
peak number of in-flight microbatches per stage, plus the plan-level
memory comparison used by the extension benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass
class OneFOneBResult:
    """Outcome of a 1F1B simulation."""

    makespan: float
    peak_inflight: List[int]  # per stage: max live forward stashes

    def memory_ratio_vs_gpipe(self, num_microbatches: int) -> float:
        """Worst-stage stash count relative to GPipe's MB everywhere."""
        return max(self.peak_inflight) / num_microbatches


def simulate_sync_1f1b(
    tf: Sequence[float],
    tb: Sequence[float],
    num_microbatches: int,
) -> OneFOneBResult:
    """Event-driven simulation of the PipeDream-Flush schedule.

    Per-stage policy: run forwards until ``min(S - s, MB)`` are in flight
    (warm-up), then prefer a backward whenever one is ready, else a
    forward if available -- the classic 1F1B alternation.  The iteration
    still flushes (all microbatches complete before the optimizer step),
    so parameters stay consistent.
    """
    S = len(tf)
    if S != len(tb) or S == 0:
        raise ValueError("tf and tb must be equal-length, non-empty")
    MB = num_microbatches
    if MB < 1:
        raise ValueError("need >= 1 microbatch")

    f_done = np.full((S, MB), np.inf)  # completion time of F(s, m)
    b_done = np.full((S, MB), np.inf)
    next_f = [0] * S          # next forward microbatch index per stage
    done_b = [0] * S          # backwards completed per stage
    stage_time = [0.0] * S    # when the stage becomes free
    inflight = [0] * S
    peak = [0] * S
    warmup = [min(S - s, MB) for s in range(S)]

    # The canonical PipeDream-Flush order per stage: a warm-up of
    # forwards, a strict backward/forward alternation, then the
    # backward drain.  Greedy "backward whenever ready" is NOT
    # equivalent -- it can run consecutive backwards and starve a
    # downstream stage of forwards, inflating the makespan.
    queues: List[str] = []
    for s in range(S):
        w = warmup[s]
        ops = "F" * w + "BF" * (MB - w) + "B" * w
        queues.append(ops)
    pos = [0] * S

    remaining = 2 * S * MB
    while remaining:
        # each stage executes its fixed sequence as soon as the next
        # op's dependency is met; the resulting schedule is unique, so
        # any execution order works -- earliest start keeps it readable
        best = None
        for s in range(S):
            if pos[s] == len(queues[s]):
                continue
            if queues[s][pos[s]] == "F":
                m = next_f[s]
                dep = f_done[s - 1, m] if s > 0 else 0.0
            else:
                m = done_b[s]
                dep = b_done[s + 1, m] if s + 1 < S else f_done[s, m]
            if dep == np.inf:
                continue
            start = max(stage_time[s], dep)
            if best is None or start < best[0]:
                best = (start, s, m)
        if best is None:  # pragma: no cover - schedule deadlock guard
            raise RuntimeError("1F1B simulation deadlocked")
        start, s, m = best
        if queues[s][pos[s]] == "F":
            f_done[s, m] = start + tf[s]
            stage_time[s] = f_done[s, m]
            next_f[s] += 1
            inflight[s] += 1
            peak[s] = max(peak[s], inflight[s])
        else:
            b_done[s, m] = start + tb[s]
            stage_time[s] = b_done[s, m]
            done_b[s] += 1
            inflight[s] -= 1
        pos[s] += 1
        remaining -= 1

    return OneFOneBResult(makespan=float(b_done.max()), peak_inflight=peak)


def gpipe_peak_inflight(num_stages: int, num_microbatches: int) -> List[int]:
    """GPipe flush: every stage stashes every microbatch."""
    return [num_microbatches] * num_stages


def compare_schedules(
    tf: Sequence[float], tb: Sequence[float], num_microbatches: int
) -> Tuple[float, float, List[int], List[int]]:
    """(gpipe_makespan, 1f1b_makespan, gpipe_stash, 1f1b_stash)."""
    from repro.pipeline.simulator import simulate_sync_pipeline

    gpipe = simulate_sync_pipeline(tf, tb, num_microbatches)
    obo = simulate_sync_1f1b(tf, tb, num_microbatches)
    return (
        gpipe,
        obo.makespan,
        gpipe_peak_inflight(len(tf), num_microbatches),
        obo.peak_inflight,
    )
