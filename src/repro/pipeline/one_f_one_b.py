"""Synchronous 1F1B (PipeDream-Flush) pipeline schedule.

Footnote 4 of the paper notes Megatron-LM later added pipeline
parallelism; the schedule it adopted is *PipeDream-Flush*: each stage
runs a warm-up of forwards, then strictly alternates one-backward-one-
forward, then drains -- still flush-synchronous (staleness-free, Table I)
but holding at most ``min(MB, S - s)`` microbatch stashes on stage ``s``
instead of GPipe's ``MB``.  For uniform stages its makespan equals the
GPipe flush schedule, so the memory saving is free.

This module provides an event-driven simulation that also tracks the
peak number of in-flight microbatches per stage, plus the plan-level
memory comparison used by the extension benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass
class OneFOneBResult:
    """Outcome of a 1F1B simulation."""

    makespan: float
    peak_inflight: List[int]  # per stage: max live forward stashes

    def memory_ratio_vs_gpipe(self, num_microbatches: int) -> float:
        """Worst-stage stash count relative to GPipe's MB everywhere."""
        return max(self.peak_inflight) / num_microbatches


def simulate_sync_1f1b(
    tf: Sequence[float],
    tb: Sequence[float],
    num_microbatches: int,
) -> OneFOneBResult:
    """Event-driven simulation of the PipeDream-Flush schedule.

    Per-stage policy: run forwards until ``min(S - s, MB)`` are in flight
    (warm-up), then prefer a backward whenever one is ready, else a
    forward if available -- the classic 1F1B alternation.  The iteration
    still flushes (all microbatches complete before the optimizer step),
    so parameters stay consistent.
    """
    S = len(tf)
    if S != len(tb) or S == 0:
        raise ValueError("tf and tb must be equal-length, non-empty")
    MB = num_microbatches
    if MB < 1:
        raise ValueError("need >= 1 microbatch")

    f_done = np.full((S, MB), np.inf)  # completion time of F(s, m)
    b_done = np.full((S, MB), np.inf)
    next_f = [0] * S          # next forward microbatch index per stage
    done_b = [0] * S          # backwards completed per stage
    stage_time = [0.0] * S    # when the stage becomes free
    inflight = [0] * S
    peak = [0] * S
    warmup = [min(S - s, MB) for s in range(S)]

    remaining = 2 * S * MB
    while remaining:
        progressed = False
        # earliest-available-stage first keeps the replay deterministic
        for s in sorted(range(S), key=lambda i: stage_time[i]):
            # candidate backward: the next unfinished backward (in order)
            m_b = done_b[s]
            b_ready = None
            if m_b < MB and f_done[s, m_b] < np.inf:
                dep = b_done[s + 1, m_b] if s + 1 < S else f_done[s, m_b]
                if dep < np.inf:
                    b_ready = max(stage_time[s], dep)
            # candidate forward
            m_f = next_f[s]
            f_ready = None
            if m_f < MB:
                dep = f_done[s - 1, m_f] if s > 0 else 0.0
                if dep < np.inf:
                    f_ready = max(stage_time[s], dep)

            # strict 1F1B: a forward may only run while the stash is
            # below the warm-up bound; backwards always take priority.
            # Otherwise the stage WAITS (bounded memory is the point).
            f_allowed = f_ready is not None and inflight[s] < warmup[s]
            b_allowed = b_ready is not None
            if not f_allowed and not b_allowed:
                continue
            do_backward = b_allowed and (
                not f_allowed or b_ready <= f_ready
            )

            if do_backward:
                start = b_ready
                b_done[s, m_b] = start + tb[s]
                stage_time[s] = b_done[s, m_b]
                done_b[s] += 1
                inflight[s] -= 1
            else:
                start = f_ready
                f_done[s, m_f] = start + tf[s]
                stage_time[s] = f_done[s, m_f]
                next_f[s] += 1
                inflight[s] += 1
                peak[s] = max(peak[s], inflight[s])
            remaining -= 1
            progressed = True
            break  # re-evaluate global earliest stage
        if not progressed:  # pragma: no cover - schedule deadlock guard
            raise RuntimeError("1F1B simulation deadlocked")

    return OneFOneBResult(makespan=float(b_done.max()), peak_inflight=peak)


def gpipe_peak_inflight(num_stages: int, num_microbatches: int) -> List[int]:
    """GPipe flush: every stage stashes every microbatch."""
    return [num_microbatches] * num_stages


def compare_schedules(
    tf: Sequence[float], tb: Sequence[float], num_microbatches: int
) -> Tuple[float, float, List[int], List[int]]:
    """(gpipe_makespan, 1f1b_makespan, gpipe_stash, 1f1b_stash)."""
    from repro.pipeline.simulator import simulate_sync_pipeline

    gpipe = simulate_sync_pipeline(tf, tb, num_microbatches)
    obo = simulate_sync_1f1b(tf, tb, num_microbatches)
    return (
        gpipe,
        obo.makespan,
        gpipe_peak_inflight(len(tf), num_microbatches),
        obo.peak_inflight,
    )
