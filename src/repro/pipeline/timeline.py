"""Timeline extraction, Gantt rendering and trace export for simulated
pipelines.

:mod:`repro.pipeline.simulator` reduces a schedule to scalar figures
(makespan, and via :func:`~repro.pipeline.hybrid.evaluate_plan` the
iteration-time diagnostics stamped onto every plan); this module keeps
the *full* event set instead — every (stage, microbatch, phase) interval
of the flush-synchronous schedule with real per-stage times — and feeds
the diagnostics layers built on top of it:

* utilization/bubble accounting per stage (the quantitative version of
  Fig. 1's idle slots; surfaced as ``stage.*.utilization`` /
  ``stage.bubble_frac`` metrics by the planner's evaluate pass),
* ASCII Gantt rendering of a concrete plan's iteration,
* Chrome-trace/Perfetto export — :meth:`Timeline.to_trace_events` emits
  one track per stage with forward/backward colour-coded by category
  (see :mod:`repro.obs.export` and ``repro trace`` on the CLI),
* exact agreement with the scalar simulator (tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Interval:
    """One executed unit of work on a stage."""

    stage: int
    microbatch: int
    phase: str  # "F" or "B"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """All intervals of one training iteration."""

    intervals: List[Interval]
    num_stages: int
    num_microbatches: int

    @property
    def makespan(self) -> float:
        return max(iv.end for iv in self.intervals)

    def stage_busy_time(self, stage: int) -> float:
        return sum(iv.duration for iv in self.intervals if iv.stage == stage)

    def stage_utilization(self, stage: int) -> float:
        """Busy fraction of the stage over the whole iteration."""
        return self.stage_busy_time(stage) / self.makespan

    def bubble_fraction(self) -> float:
        """Mean idle fraction across stages (Fig. 1's bubble, measured)."""
        utils = [self.stage_utilization(s) for s in range(self.num_stages)]
        return 1.0 - float(np.mean(utils))

    def to_trace_events(self, pid: int = 2) -> List[dict]:
        """Chrome-trace complete events: one track (``tid``) per stage,
        forward/backward split by event category.  Delegates to
        :func:`repro.obs.export.timeline_to_trace_events`; the sum of
        ``dur`` on a stage's track equals ``stage_busy_time(stage)`` in
        microseconds."""
        from repro.obs.export import timeline_to_trace_events

        return timeline_to_trace_events(self, pid=pid)

    def validate(self) -> None:
        """Structural checks: no overlap per stage, dependencies hold."""
        by_stage: List[List[Interval]] = [[] for _ in range(self.num_stages)]
        for iv in self.intervals:
            by_stage[iv.stage].append(iv)
        for stage_ivs in by_stage:
            stage_ivs.sort(key=lambda iv: iv.start)
            for a, b in zip(stage_ivs, stage_ivs[1:]):
                if b.start < a.end - 1e-12:
                    raise AssertionError(
                        f"overlap on stage {a.stage}: {a} vs {b}"
                    )
        index = {(iv.stage, iv.microbatch, iv.phase): iv for iv in self.intervals}
        for iv in self.intervals:
            if iv.phase == "F" and iv.stage > 0:
                dep = index[(iv.stage - 1, iv.microbatch, "F")]
                if iv.start < dep.end - 1e-12:
                    raise AssertionError(f"F-dependency violated at {iv}")
            if iv.phase == "B" and iv.stage < self.num_stages - 1:
                dep = index[(iv.stage + 1, iv.microbatch, "B")]
                if iv.start < dep.end - 1e-12:
                    raise AssertionError(f"B-dependency violated at {iv}")


def build_sync_timeline(
    tf: Sequence[float],
    tb: Sequence[float],
    num_microbatches: int,
) -> Timeline:
    """Replay of :func:`simulate_sync_pipeline` that keeps every interval."""
    if len(tf) != len(tb) or not tf:
        raise ValueError("tf and tb must be equal-length, non-empty")
    if num_microbatches < 1:
        raise ValueError("need >= 1 microbatch")
    S, MB = len(tf), num_microbatches
    intervals: List[Interval] = []
    f_done = np.zeros((S, MB))
    stage_free = np.zeros(S)
    for m in range(MB):
        for s in range(S):
            dep = f_done[s - 1, m] if s > 0 else 0.0
            start = max(stage_free[s], dep)
            f_done[s, m] = start + tf[s]
            stage_free[s] = f_done[s, m]
            intervals.append(Interval(s, m, "F", start, f_done[s, m]))
    b_done = np.zeros((S, MB))
    for m in reversed(range(MB)):
        for s in reversed(range(S)):
            dep = b_done[s + 1, m] if s + 1 < S else f_done[S - 1, m]
            start = max(stage_free[s], dep)
            b_done[s, m] = start + tb[s]
            stage_free[s] = b_done[s, m]
            intervals.append(Interval(s, m, "B", start, b_done[s, m]))
    return Timeline(intervals=intervals, num_stages=S,
                    num_microbatches=MB)


def render_gantt(timeline: Timeline, width: int = 80) -> str:
    """ASCII Gantt chart: one row per stage, characters are time buckets.

    Forward work renders as the microbatch digit, backward as letters
    (``a`` = microbatch 0), idle as ``.``.
    """
    makespan = timeline.makespan
    scale = width / makespan
    rows = []
    for s in range(timeline.num_stages):
        row = ["."] * width
        for iv in timeline.intervals:
            if iv.stage != s:
                continue
            lo = int(iv.start * scale)
            hi = max(lo + 1, int(iv.end * scale))
            if iv.phase == "F":
                ch = str(iv.microbatch % 10)
            else:
                ch = chr(ord("a") + iv.microbatch % 26)
            for x in range(lo, min(hi, width)):
                row[x] = ch
        util = timeline.stage_utilization(s)
        rows.append(f"stage{s} |{''.join(row)}| {util * 100:4.0f}%")
    rows.append(
        f"makespan {makespan * 1e3:.2f} ms, bubble "
        f"{timeline.bubble_fraction() * 100:.1f}%"
    )
    return "\n".join(rows)


def plan_timeline(plan) -> Timeline:
    """Timeline of one iteration of a partition plan."""
    tf = [s.time_fwd for s in plan.stages]
    tb = [s.time_bwd for s in plan.stages]
    return build_sync_timeline(tf, tb, plan.num_microbatches)
