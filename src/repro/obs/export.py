"""Exporters: JSON-lines and Chrome-trace/Perfetto ``trace.json``.

Two output formats:

* **JSON-lines** (:func:`spans_to_jsonl`, :func:`write_jsonl`): one
  object per line — ``{"type": "span", ...}`` records followed by a
  single ``{"type": "metrics", "values": {...}}`` record.  Greppable,
  streamable, diff-able.
* **Chrome trace** (:func:`chrome_trace`, :func:`write_chrome_trace`):
  the ``traceEvents`` JSON that `Perfetto <https://ui.perfetto.dev>`_
  and ``chrome://tracing`` load directly.  Spans become complete events
  (``"ph": "X"``) with microsecond ``ts``/``dur``; process/thread
  metadata events (``"ph": "M"``) name the tracks.

Track layout in the Chrome trace:

* ``pid 1`` ("planner"): one track (``tid``) per OS thread that recorded
  spans — the parallel Algorithm-2 sweep shows up as concurrent tracks.
* ``pid 2`` ("pipeline (simulated)"): one track per pipeline stage from
  a :class:`~repro.pipeline.timeline.Timeline`, forward ("F") and
  backward ("B") phases colour-separated via the event ``cat``.

The metrics snapshot rides along under the top-level ``"metrics"`` key
(Chrome-trace consumers ignore unknown top-level keys).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.timeline import Timeline

#: pid values of the two logical "processes" in the exported trace
PLANNER_PID = 1
PIPELINE_PID = 2

_PHASE_NAMES = {"F": "forward", "B": "backward"}


def _metadata(kind: str, pid: int, tid: int = 0, **args: Any) -> Dict[str, Any]:
    event: Dict[str, Any] = {
        "ph": "M", "name": kind, "pid": pid, "args": args,
    }
    if kind == "thread_name":
        event["tid"] = tid
    return event


def spans_to_trace_events(
    spans: Iterable[Span],
    origin: Optional[float] = None,
    pid: int = PLANNER_PID,
    process_name: str = "planner",
) -> List[Dict[str, Any]]:
    """Complete events (``ph: "X"``) for tracer spans, one track per
    recording thread.  ``ts``/``dur`` are microseconds relative to
    ``origin`` (default: the earliest span start)."""
    spans = list(spans)
    if not spans:
        return []
    if origin is None:
        origin = min(s.start for s in spans)
    # compact thread ids: OS idents are huge; number tracks 1..T in
    # order of first appearance (main/coordinating thread first)
    tid_map: Dict[int, int] = {}
    for span in spans:
        if span.thread_id not in tid_map:
            tid_map[span.thread_id] = len(tid_map) + 1
    events: List[Dict[str, Any]] = [
        _metadata("process_name", pid, name=process_name)
    ]
    for tid in tid_map.values():
        label = "main" if tid == 1 else f"worker-{tid - 1}"
        events.append(_metadata("thread_name", pid, tid, name=label))
    for span in spans:
        args: Dict[str, Any] = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "name": span.name,
            "cat": span.category or "span",
            "ph": "X",
            "ts": (span.start - origin) * 1e6,
            "dur": span.duration * 1e6,
            "pid": pid,
            "tid": tid_map[span.thread_id],
            "args": args,
        })
    return events


def timeline_to_trace_events(
    timeline: "Timeline",
    pid: int = PIPELINE_PID,
    origin: float = 0.0,
    process_name: str = "pipeline (simulated)",
) -> List[Dict[str, Any]]:
    """One complete event per (stage, microbatch, phase) interval, one
    track per pipeline stage.

    Interval times are simulated seconds from iteration start, exported
    as microseconds, so the sum of ``dur`` on a stage's track equals
    ``Timeline.stage_busy_time(stage) * 1e6`` exactly (tested)."""
    events: List[Dict[str, Any]] = [
        _metadata("process_name", pid, name=process_name)
    ]
    for s in range(timeline.num_stages):
        events.append(_metadata("thread_name", pid, s, name=f"stage {s}"))
    for iv in timeline.intervals:
        events.append({
            "name": f"{iv.phase} mb{iv.microbatch}",
            "cat": _PHASE_NAMES.get(iv.phase, iv.phase),
            "ph": "X",
            "ts": (iv.start - origin) * 1e6,
            "dur": iv.duration * 1e6,
            "pid": pid,
            "tid": iv.stage,
            "args": {
                "stage": iv.stage,
                "microbatch": iv.microbatch,
                "phase": iv.phase,
            },
        })
    return events


def chrome_trace(
    tracer: Optional[Union[Tracer, Iterable[Span]]] = None,
    timeline: Optional["Timeline"] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Assemble the Chrome-trace document from any subset of sources."""
    events: List[Dict[str, Any]] = []
    if tracer is not None:
        spans = tracer.spans() if isinstance(tracer, Tracer) else list(tracer)
        events.extend(spans_to_trace_events(spans))
    if timeline is not None:
        events.extend(timeline_to_trace_events(timeline))
    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        doc["metrics"] = metrics.snapshot()
    return doc


def write_chrome_trace(
    path: str,
    tracer: Optional[Union[Tracer, Iterable[Span]]] = None,
    timeline: Optional["Timeline"] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Write ``trace.json``; returns the document written."""
    doc = chrome_trace(tracer=tracer, timeline=timeline, metrics=metrics)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
    return doc


# ----------------------------------------------------------------------
def spans_to_jsonl(
    spans: Iterable[Span],
    metrics: Optional[MetricsRegistry] = None,
) -> str:
    """JSON-lines rendering: span records, then one metrics record."""
    lines = [
        json.dumps({"type": "span", **span.as_dict()}, sort_keys=True)
        for span in spans
    ]
    if metrics is not None:
        lines.append(
            json.dumps(
                {"type": "metrics", "values": metrics.snapshot()},
                sort_keys=True,
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(
    path: str,
    tracer: Union[Tracer, Iterable[Span]],
    metrics: Optional[MetricsRegistry] = None,
) -> None:
    spans = tracer.spans() if isinstance(tracer, Tracer) else tracer
    with open(path, "w") as fh:
        fh.write(spans_to_jsonl(spans, metrics))
