"""Unified observability: trace spans, metrics, Perfetto export.

One tracer + one metrics registry thread through the planner (pass
spans, Algorithm-2 candidate spans, Algorithm-1 DP counters), the
pipeline simulator (per-stage timeline tracks) and the runtime
(opt-in per-task spans); :mod:`repro.obs.export` renders everything as
JSON-lines or a Chrome-trace ``trace.json`` that Perfetto loads.

See ``docs/OBSERVABILITY.md`` for the span/metric naming scheme, the
exporter formats, and a Perfetto walkthrough; ``repro trace`` on the CLI
produces a trace file in one command.
"""

from repro.obs.export import (
    PIPELINE_PID,
    PLANNER_PID,
    chrome_trace,
    spans_to_jsonl,
    spans_to_trace_events,
    timeline_to_trace_events,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    point_name,
)
from repro.obs.rss import peak_rss_bytes
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "PIPELINE_PID",
    "PLANNER_PID",
    "Span",
    "Tracer",
    "chrome_trace",
    "peak_rss_bytes",
    "point_name",
    "spans_to_jsonl",
    "spans_to_trace_events",
    "timeline_to_trace_events",
    "write_chrome_trace",
    "write_jsonl",
]
