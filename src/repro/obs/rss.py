"""Peak-RSS observability.

``resource.getrusage`` reports the process's resident-set high-water
mark; the planner records it as the ``planner.peak_rss_bytes`` gauge and
as per-pass deltas, which is what makes the banded DP engine's
O(band * D) memory claim *observable* (see docs/SCALING.md).  The
``resource`` module is POSIX-only, so callers must tolerate ``None``.
"""

from __future__ import annotations

import sys
from typing import Optional

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

__all__ = ["peak_rss_bytes"]


def peak_rss_bytes() -> Optional[int]:
    """The process's peak resident set size in bytes, or ``None`` where
    ``resource`` is unavailable.  ``ru_maxrss`` is kibibytes on Linux and
    bytes on macOS; both are normalized to bytes."""
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024
