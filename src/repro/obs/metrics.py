"""Named counters, gauges and histograms for the planning pipeline.

A :class:`MetricsRegistry` is a flat, thread-safe namespace of metrics
created on first use::

    metrics.counter("dp.states_evaluated").inc(1742)
    metrics.gauge("pipeline.bubble_frac").set(0.31)
    metrics.histogram("dp.states_per_call").observe(1742)

Naming scheme (see ``docs/OBSERVABILITY.md``): dot-separated lowercase
components, ``<layer>.<quantity>``; per-point variants append bracketed
labels, e.g. ``dp.states_evaluated[S=4,MB=8]``.  The registry preserves
insertion order, so snapshots read in the order metrics first appeared.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Union


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """Streaming summary (count / total / min / max) of observations."""

    __slots__ = ("_lock", "count", "total", "vmin", "vmax")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.vmin:
                self.vmin = value
            if value > self.vmax:
                self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        with self._lock:
            if not self.count:
                return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                        "mean": 0.0}
            return {
                "count": self.count,
                "total": self.total,
                "min": self.vmin,
                "max": self.vmax,
                "mean": self.total / self.count,
            }


_Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Ordered, thread-safe namespace of named metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, name: str, kind: type) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = kind()
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)  # type: ignore[return-value]

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view: counters/gauges to their value, histograms to
        their summary dict.  Safe to ``json.dumps``."""
        with self._lock:
            items = list(self._metrics.items())
        doc: Dict[str, Any] = {}
        for name, metric in items:
            if isinstance(metric, Histogram):
                doc[name] = metric.summary()
            else:
                doc[name] = metric.value
        return doc

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics


def point_name(base: str, **labels: Any) -> str:
    """Bracketed per-point metric name: ``point_name("dp.states",
    S=4, MB=8)`` → ``"dp.states[MB=8,S=4]"`` (labels sorted for
    stability)."""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{base}[{inner}]"
