"""Hierarchical trace spans with monotonic timestamps.

The :class:`Tracer` is the storage backend of the whole observability
layer: planner passes, Algorithm-2 candidates, Algorithm-1 DP calls,
pipeline-timeline intervals and (opt-in) runtime tasks all become
:class:`Span` records on one tracer, which the exporters in
:mod:`repro.obs.export` turn into JSON-lines or a Chrome-trace/Perfetto
``trace.json``.

Design points:

* **Monotonic clock.**  Timestamps are ``time.perf_counter()`` seconds;
  only differences (and differences to :attr:`Tracer.origin`) are
  meaningful, which is exactly what trace viewers need.
* **Nesting via a thread-local stack.**  ``span()`` is a context
  manager; the innermost open span on the *same thread* becomes the
  parent.  Work fanned out to a thread pool (the parallel Algorithm-2
  sweep) passes the coordinating span's id explicitly via ``parent_id``,
  so cross-thread edges survive.
* **Thread ids.**  Every span records ``threading.get_ident()`` at entry;
  the Perfetto exporter maps them to one track per thread, making the
  parallel sweep's interleaving visible.
* **Cheap when disabled.**  A ``Tracer(enabled=False)`` hands out a
  shared no-op span and appends nothing, so instrumented hot paths cost
  one attribute check.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One named, timed interval with attributes and lineage."""

    __slots__ = (
        "name",
        "category",
        "start",
        "duration",
        "attrs",
        "span_id",
        "parent_id",
        "thread_id",
    )

    def __init__(
        self,
        name: str,
        category: str = "",
        start: float = 0.0,
        duration: float = 0.0,
        attrs: Optional[Dict[str, Any]] = None,
        span_id: int = 0,
        parent_id: Optional[int] = None,
        thread_id: int = 0,
    ) -> None:
        self.name = name
        self.category = category
        self.start = start
        self.duration = duration
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = thread_id

    @property
    def end(self) -> float:
        return self.start + self.duration

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "duration": self.duration,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, cat={self.category!r}, "
            f"dur={self.duration * 1e3:.3f}ms, attrs={self.attrs})"
        )


class _NullSpan:
    """Shared do-nothing span handed out by disabled tracers."""

    __slots__ = ()
    name = ""
    category = ""
    start = 0.0
    duration = 0.0
    end = 0.0
    span_id = 0
    parent_id = None
    thread_id = 0
    attrs: Dict[str, Any] = {}

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects completed :class:`Span` records, thread-safely.

    Args:
        enabled: when ``False``, :meth:`span` and :meth:`add_span` are
            no-ops (a shared null span is yielded), so instrumentation
            can stay in place at zero recording cost.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.origin = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Optional[Span]:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "",
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Open a timed span; the context body runs inside it.

        ``parent_id`` overrides the implicit thread-local parent — use
        it when the logical parent lives on another thread (e.g. the
        Algorithm-2 sweep submitting DP candidates to a pool).
        """
        if not self.enabled:
            yield NULL_SPAN
            return
        stack = self._stack()
        if parent_id is None and stack:
            parent_id = stack[-1].span_id
        span = Span(
            name,
            category=category,
            start=time.perf_counter(),
            attrs=attrs,
            span_id=next(self._ids),
            parent_id=parent_id,
            thread_id=threading.get_ident(),
        )
        stack.append(span)
        try:
            yield span
        finally:
            span.duration = time.perf_counter() - span.start
            stack.pop()
            with self._lock:
                self._spans.append(span)

    def add_span(
        self,
        name: str,
        category: str = "",
        duration: float = 0.0,
        start: Optional[float] = None,
        parent_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Record an already-measured interval.

        When ``start`` is omitted the span is back-dated so it *ends*
        now — right for the "measure first, record after" pattern of the
        pass manager.  Returns the recorded span (a null span when the
        tracer is disabled).
        """
        if not self.enabled:
            return NULL_SPAN  # type: ignore[return-value]
        now = time.perf_counter()
        if start is None:
            start = now - duration
        stack = self._stack()
        if parent_id is None and stack:
            parent_id = stack[-1].span_id
        span = Span(
            name,
            category=category,
            start=start,
            duration=duration,
            attrs=attrs,
            span_id=next(self._ids),
            parent_id=parent_id,
            thread_id=threading.get_ident(),
        )
        with self._lock:
            self._spans.append(span)
        return span

    # ------------------------------------------------------------------
    def spans(self, category: Optional[str] = None) -> List[Span]:
        """Snapshot of completed spans, optionally filtered by category.

        Ordered by completion time (append order), which for the pass
        pipeline equals execution order.
        """
        with self._lock:
            snapshot = list(self._spans)
        if category is None:
            return snapshot
        return [s for s in snapshot if s.category == category]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: shared disabled tracer for call sites that want "maybe trace" syntax
NULL_TRACER = Tracer(enabled=False)
