"""Measured profiler: wall-clock profiling on the NumPy runtime.

The paper's profiler *runs* candidate subcomponents on a GPU and monitors
time/memory.  For small graphs this module does the same on the NumPy
runtime: execute forward and backward passes of a subgraph several times
and report median wall-clock times plus actually-allocated tensor bytes.

Its role here is **calibration**: tests check that the analytic cost model
ranks subcomponents the same way real execution does (rank correlation),
which is all the partitioning algorithms need from a profile oracle --
they compare candidates, they never consume absolute seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graph.ir import DataType, TaskGraph, ValueKind
from repro.runtime.executor import Executor


@dataclass(frozen=True)
class MeasuredProfile:
    """Wall-clock profile of one subgraph."""

    time_fwd: float
    time_bwd: float
    activation_bytes: int
    param_bytes: int


def _synth_inputs(
    graph: TaskGraph, batch_size: int, rng: np.random.Generator
) -> Dict[str, np.ndarray]:
    """Synthesize runtime inputs for every INPUT value of a (sub)graph."""
    feeds: Dict[str, np.ndarray] = {}
    for value in graph.values.values():
        if value.kind is not ValueKind.INPUT:
            continue
        shape = list(value.shape)
        if value.batched and shape:
            shape[0] = shape[0] * batch_size
        if value.dtype is DataType.INT64:
            # integer inputs are ids/labels: keep them small and positive
            feeds[value.name] = rng.integers(0, 2, tuple(shape))
        else:
            feeds[value.name] = rng.standard_normal(tuple(shape))
    return feeds


def measure_subgraph(
    graph: TaskGraph,
    task_names: Sequence[str],
    batch_size: int = 1,
    repeats: int = 3,
    seed: int = 0,
    dtype=np.float32,
) -> MeasuredProfile:
    """Execute a subgraph forward+backward and measure wall-clock time.

    Mirrors the paper's ``profile``: "we actually run forward and backward
    passes of the subcomponents multiple times and monitor the profiles"
    -- the median of ``repeats`` runs is reported.

    Integer-typed boundary inputs (ids) are synthesized in-range; float
    boundaries get standard normals.
    """
    sub = graph.extract_subgraph(list(task_names))
    executor = Executor(sub, dtype=dtype)
    rng = np.random.default_rng(seed)
    feeds = _synth_inputs(sub, batch_size, rng)

    fwd_times: List[float] = []
    bwd_times: List[float] = []
    env: Dict[str, np.ndarray] = {}
    for _ in range(repeats):
        t0 = time.perf_counter()
        env = executor.forward(feeds)
        fwd_times.append(time.perf_counter() - t0)
        out_grads = {
            name: np.ones_like(env[name]) for name in sub.output_names
        }
        t0 = time.perf_counter()
        executor.backward(env, out_grads)
        bwd_times.append(time.perf_counter() - t0)

    act_bytes = sum(
        arr.nbytes
        for name, arr in env.items()
        if name in sub.values
        and sub.values[name].kind in (ValueKind.ACTIVATION, ValueKind.OUTPUT)
    )
    param_bytes = sum(p.nbytes for p in executor.params.values())
    return MeasuredProfile(
        time_fwd=float(np.median(fwd_times)),
        time_bwd=float(np.median(bwd_times)),
        activation_bytes=act_bytes,
        param_bytes=param_bytes,
    )


def rank_correlation(analytic: Sequence[float], measured: Sequence[float]) -> float:
    """Spearman rank correlation between two cost sequences.

    Used by calibration tests: the analytic oracle is adequate for the
    partitioner as soon as it *orders* candidate subcomponents like real
    execution does."""
    if len(analytic) != len(measured) or len(analytic) < 2:
        raise ValueError("need two equal-length sequences of >= 2 items")
    ar = np.argsort(np.argsort(analytic)).astype(float)
    mr = np.argsort(np.argsort(measured)).astype(float)
    ac = ar - ar.mean()
    mc = mr - mr.mean()
    denom = float(np.sqrt((ac**2).sum() * (mc**2).sum()))
    if denom == 0.0:
        return 1.0
    return float((ac * mc).sum() / denom)
