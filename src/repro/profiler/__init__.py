"""Analytic profiler: the `profile(U, batch_size) -> (t_f, t_b, m)` oracle.

RaNNC obtains computation times and memory usage by actually running
forward/backward passes of candidate subcomponents on a GPU ("we actually
run forward and backward passes of the subcomponents multiple times and
monitor the profiles", Sec. III-B).  Without GPUs, this package supplies a
deterministic analytic equivalent: a per-operator roofline time model on
the simulated device, an explicit training-memory model (parameters,
gradients, optimizer state, activations, checkpoint stashes), and the same
memoization layer the paper relies on to keep the search tractable.
"""

from repro.profiler.cost_model import CostModel, TaskCost
from repro.profiler.memory import MemoryModel, OptimizerKind
from repro.profiler.profiler import GraphProfiler, ProfileResult

__all__ = [
    "CostModel",
    "GraphProfiler",
    "MemoryModel",
    "OptimizerKind",
    "ProfileResult",
    "TaskCost",
]
