"""Training-memory model for a stage replica.

The paper's feasibility test is ``m > M`` where ``m`` "is the sum of the
peak memory usage monitored during forward/backward passes and the memory
used for such an optimizer as Adam.  The latter was estimated from the
sizes of parameters used in the subcomponents and the type of optimizer."
(Sec. III-C).  This module reproduces that accounting analytically:

* parameter storage (plus an FP16 copy under AMP),
* gradient buffers,
* optimizer state (Adam: two FP32 moments; SGD: one momentum buffer),
* activation memory, in three schemes:
  - ``none``: every intermediate of every in-flight microbatch is kept;
  - ``checkpoint``: only each in-flight microbatch's *stage-input* tensors
    are stashed, plus one microbatch's full activations transiently during
    recompute-backward (RaNNC "automatically implements gradient
    checkpointing when it partitions a model to more than one stage").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hardware.device import Precision


class OptimizerKind(enum.Enum):
    """Optimizer whose state size enters the memory estimate."""

    SGD = "sgd"           # no extra state
    SGD_MOMENTUM = "sgd_momentum"  # 1x params
    ADAM = "adam"         # 2x params (exp_avg + exp_avg_sq), FP32

    @property
    def state_floats_per_param(self) -> int:
        return {"sgd": 0, "sgd_momentum": 1, "adam": 2}[self.value]


@dataclass(frozen=True)
class MemoryModel:
    """Computes per-device training memory for a stage replica."""

    precision: Precision = Precision.FP32
    optimizer: OptimizerKind = OptimizerKind.ADAM

    def static_bytes(self, param_count: int) -> float:
        """Parameters + gradients + optimizer state (batch-independent)."""
        per_param = 4.0 + 4.0  # fp32 weights + fp32 grads
        if self.precision is Precision.AMP:
            per_param += 2.0  # fp16 working copy (Apex AMP O2)
        per_param += 4.0 * self.optimizer.state_floats_per_param
        return param_count * per_param

    def activation_bytes(
        self,
        saved_act_bytes_micro: float,
        boundary_in_bytes_micro: float,
        microbatches_in_flight: int,
        checkpointing: bool,
    ) -> float:
        """Activation memory at peak.

        Args:
            saved_act_bytes_micro: full backward-tape activation bytes of
                ONE microbatch of this stage (already precision-scaled).
            boundary_in_bytes_micro: stage-input bytes of one microbatch
                (already precision-scaled).
            microbatches_in_flight: microbatches resident at once
                (synchronous pipeline: up to the number of microbatches).
            checkpointing: whether activation checkpointing is on.
        """
        inflight = max(1, microbatches_in_flight)
        if not checkpointing:
            return saved_act_bytes_micro * inflight
        return boundary_in_bytes_micro * inflight + saved_act_bytes_micro

    def total_bytes(
        self,
        param_count: int,
        saved_act_bytes_micro: float,
        boundary_in_bytes_micro: float,
        microbatches_in_flight: int,
        checkpointing: bool,
    ) -> float:
        return self.static_bytes(param_count) + self.activation_bytes(
            saved_act_bytes_micro,
            boundary_in_bytes_micro,
            microbatches_in_flight,
            checkpointing,
        )
