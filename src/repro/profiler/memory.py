"""Training-memory model for a stage replica.

The paper's feasibility test is ``m > M`` where ``m`` "is the sum of the
peak memory usage monitored during forward/backward passes and the memory
used for such an optimizer as Adam.  The latter was estimated from the
sizes of parameters used in the subcomponents and the type of optimizer."
(Sec. III-C).  This module reproduces that accounting analytically:

* parameter storage (plus an FP16 copy under AMP),
* gradient buffers,
* optimizer state (Adam: two FP32 moments; SGD: one momentum buffer),
* activation memory, in three schemes:
  - ``none``: every intermediate of every in-flight microbatch is kept;
  - ``checkpoint``: only each in-flight microbatch's *stage-input* tensors
    are stashed, plus one microbatch's full activations transiently during
    recompute-backward (RaNNC "automatically implements gradient
    checkpointing when it partitions a model to more than one stage").

Inference mode (``mode="inference"``) drops everything training-only:
no gradients, no optimizer state, no FP32 master weights under AMP
(weights live in FP16), and no backward tape.  What persists per extra
in-flight microbatch is the KV-cache-style attention state (or, when
the stage-boundary stash is cheaper, the boundary tensors for a
recompute) -- never more than the training scheme keeps, so an
inference plan is always at least as memory-feasible as its training
twin on the same stage split.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.hardware.device import Precision


class OptimizerKind(enum.Enum):
    """Optimizer whose state size enters the memory estimate."""

    SGD = "sgd"           # no extra state
    SGD_MOMENTUM = "sgd_momentum"  # 1x params
    ADAM = "adam"         # 2x params (exp_avg + exp_avg_sq), FP32

    @property
    def state_floats_per_param(self) -> int:
        return {"sgd": 0, "sgd_momentum": 1, "adam": 2}[self.value]


@dataclass(frozen=True)
class MemoryModel:
    """Computes per-device training (or inference) memory for a stage
    replica.  ``mode="training"`` reproduces the paper's accounting;
    ``mode="inference"`` keeps only weights and the forward working set."""

    precision: Precision = Precision.FP32
    optimizer: OptimizerKind = OptimizerKind.ADAM
    mode: str = "training"

    def static_bytes(self, param_count: int) -> float:
        """Parameters + gradients + optimizer state (batch-independent)."""
        if self.mode == "inference":
            # weights only: fp16 under AMP, fp32 otherwise
            per_param = 2.0 if self.precision is Precision.AMP else 4.0
            return param_count * per_param
        per_param = 4.0 + 4.0  # fp32 weights + fp32 grads
        if self.precision is Precision.AMP:
            per_param += 2.0  # fp16 working copy (Apex AMP O2)
        per_param += 4.0 * self.optimizer.state_floats_per_param
        return param_count * per_param

    def activation_bytes(
        self,
        saved_act_bytes_micro: float,
        boundary_in_bytes_micro: float,
        microbatches_in_flight: int,
        checkpointing: bool,
        kv_bytes_micro: float = 0.0,
    ) -> float:
        """Activation memory at peak.

        Args:
            saved_act_bytes_micro: full backward-tape activation bytes of
                ONE microbatch of this stage (already precision-scaled).
            boundary_in_bytes_micro: stage-input bytes of one microbatch
                (already precision-scaled).
            microbatches_in_flight: microbatches resident at once
                (synchronous pipeline: up to the number of microbatches).
            checkpointing: whether activation checkpointing is on
                (training only; inference never keeps a backward tape).
            kv_bytes_micro: attention K/V bytes of one microbatch of this
                stage (already precision-scaled); only the inference mode
                reads it.
        """
        inflight = max(1, microbatches_in_flight)
        if self.mode == "inference":
            # one microbatch's forward working set, plus -- per *extra*
            # in-flight microbatch -- whichever persistent state is
            # cheaper: its KV cache (clamped into the working set it is
            # part of) or its boundary stash for a recompute
            # np.minimum: the DP planes pass whole arrays through here
            kv = np.minimum(kv_bytes_micro, saved_act_bytes_micro)
            persist = np.minimum(kv, boundary_in_bytes_micro)
            return saved_act_bytes_micro + persist * (inflight - 1)
        if not checkpointing:
            return saved_act_bytes_micro * inflight
        return boundary_in_bytes_micro * inflight + saved_act_bytes_micro

    def total_bytes(
        self,
        param_count: int,
        saved_act_bytes_micro: float,
        boundary_in_bytes_micro: float,
        microbatches_in_flight: int,
        checkpointing: bool,
        kv_bytes_micro: float = 0.0,
    ) -> float:
        return self.static_bytes(param_count) + self.activation_bytes(
            saved_act_bytes_micro,
            boundary_in_bytes_micro,
            microbatches_in_flight,
            checkpointing,
            kv_bytes_micro=kv_bytes_micro,
        )
