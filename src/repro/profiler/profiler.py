"""Graph profiler: vectorized per-task times + the Algorithm-1 oracle.

``GraphProfiler`` plays the role of the paper's ``profile(U, batch)``
procedure.  Per-task cost coefficients are extracted once into NumPy
arrays (one slot per task, in the graph's topological insertion order) and
every batch size seen gets a vectorized time table, so profiling any
subcomponent is a fancy-indexed sum -- fast enough for the DP's thousands
of candidate stages.  Results are memoized per ``(key, batch, ...)``
exactly where RaNNC caches device profiles.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.ir import TaskGraph, ValueKind
from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import Precision
from repro.profiler.cost_model import CostModel
from repro.profiler.memory import MemoryModel, OptimizerKind


@dataclass(frozen=True)
class ProfileResult:
    """Output of one ``profile`` call: the tuple (t_f, t_b, m) of
    Algorithm 1, plus the boundary traffic used for communication costs."""

    time_fwd: float
    time_bwd: float
    memory: float
    param_count: int
    in_bytes: float
    out_bytes: float


class GraphProfiler:
    """Profiling oracle over one task graph on one cluster."""

    def __init__(
        self,
        graph: TaskGraph,
        cluster: ClusterSpec,
        precision: Precision = Precision.FP32,
        optimizer: OptimizerKind = OptimizerKind.ADAM,
        mode: str = "training",
    ) -> None:
        self.graph = graph
        self.cluster = cluster
        self.precision = precision
        self.mode = mode
        self.cost_model = CostModel(cluster.device, precision)
        self.memory_model = MemoryModel(precision, optimizer, mode)

        names = list(graph.tasks)
        self._index: Dict[str, int] = {t: i for i, t in enumerate(names)}
        self._names = names
        n = len(names)
        self.fwd_flops = np.zeros(n)
        self.bwd_flops = np.zeros(n)
        self.act_bytes = np.zeros(n)
        self.param_bytes = np.zeros(n)
        self.saved_bytes = np.zeros(n)
        self.kv_saved_bytes = np.zeros(n)
        self.param_count = np.zeros(n, dtype=np.int64)
        self.is_matmul = np.zeros(n, dtype=bool)
        self.is_free = np.zeros(n, dtype=bool)
        for i, tname in enumerate(names):
            task = graph.tasks[tname]
            cost = self.cost_model.task_cost(graph, task)
            self.fwd_flops[i] = cost.fwd_flops
            self.bwd_flops[i] = cost.bwd_flops
            self.act_bytes[i] = cost.act_bytes
            self.param_bytes[i] = cost.param_bytes
            self.saved_bytes[i] = cost.saved_bytes
            self.kv_saved_bytes[i] = self._kv_bytes(graph, task)
            self.param_count[i] = cost.param_count
            self.is_matmul[i] = cost.is_matmul
            self.is_free[i] = cost.is_free

        # param values consumed per task, for unique-parameter accounting
        # (a tied/shared weight must be stored once per stage, not once per
        # consuming task)
        param_ids: Dict[str, int] = {}
        self._task_param_ids: List[Tuple[int, ...]] = []
        self._param_sizes: List[int] = []
        for tname in names:
            ids = []
            for vname in graph.tasks[tname].inputs:
                value = graph.values[vname]
                if value.kind is ValueKind.PARAM:
                    pid = param_ids.get(vname)
                    if pid is None:
                        pid = len(self._param_sizes)
                        param_ids[vname] = pid
                        self._param_sizes.append(value.numel(1))
                    ids.append(pid)
            self._task_param_ids.append(tuple(ids))
        self._param_sizes_arr = np.asarray(self._param_sizes, dtype=np.int64)

        # the parallel Algorithm-2 sweep profiles from worker threads;
        # the lock keeps the memo tables and hit counters deterministic
        self._lock = threading.RLock()
        self._time_tables: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._cache: Dict[Hashable, ProfileResult] = {}
        self.profile_calls = 0
        self.cache_hits = 0
        self.table_calls = 0
        self.table_hits = 0

    @staticmethod
    def _kv_bytes(graph: TaskGraph, task) -> float:
        """Per-sample attention K/V bytes persisted by ``task`` while a
        microbatch stays in flight during inference.

        Structural rule: a ``matmul`` whose two operands are both batched
        activations is an attention contraction (``q @ k^T`` or
        ``probs @ v``); its second operand is the cached K (or V) tensor.
        Weight matmuls never qualify -- a PARAM/CONST operand (or any
        value derived only from them, e.g. a transposed embedding table)
        is not batched, so ``lm_head``-style projections are excluded.
        """
        if task.op_type != "matmul" or len(task.inputs) != 2:
            return 0.0
        operands = [graph.values[v] for v in task.inputs]
        for value in operands:
            if value.kind in (ValueKind.PARAM, ValueKind.CONST):
                return 0.0
            if not value.batched:
                return 0.0
        return float(operands[1].nbytes(1))

    # ------------------------------------------------------------------
    # pickling (process-pool Algorithm-2 workers ship the profiler with
    # its memo tables; only the lock is recreated on the far side)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        with self._lock:
            state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # delta-replan support
    # ------------------------------------------------------------------
    #: device fields the per-task cost tables were extracted from; a
    #: rebind target must agree on all of them (capacity fields --
    #: ``memory_bytes``, ``memory_reserve_fraction`` -- may differ: they
    #: never enter a time table or a profile result)
    _PERF_FIELDS = (
        "peak_flops_fp32",
        "peak_flops_fp16",
        "mem_bandwidth",
        "matmul_efficiency",
        "kernel_overhead",
    )

    def rebind_cluster(self, cluster: ClusterSpec) -> "GraphProfiler":
        """Retarget the profiler at a new cluster, keeping every memo.

        Used by delta replanning: the per-task cost arrays and time
        tables depend on the device's *performance* model only, so a
        cluster that merely changed shape, interconnect or memory
        capacity can reuse them all.  ``comm_time`` prices through
        ``self.cluster``, so it immediately sees the new topology.

        Raises:
            ValueError: if the new device's performance fields differ
                (the memoized tables would be silently wrong).
        """
        old, new = self.cluster.device, cluster.device
        for fname in self._PERF_FIELDS:
            if getattr(old, fname) != getattr(new, fname):
                raise ValueError(
                    f"cannot rebind profiler: device.{fname} changed "
                    f"({getattr(old, fname)!r} -> {getattr(new, fname)!r})"
                )
        self.cluster = cluster
        return self

    # ------------------------------------------------------------------
    # vectorized time tables
    # ------------------------------------------------------------------
    def _times_at(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-task (t_f, t_b) arrays at one batch size (cached)."""
        with self._lock:
            self.table_calls += 1
            table = self._time_tables.get(batch_size)
            if table is not None:
                self.table_hits += 1
                return table
            return self._build_time_table(batch_size)

    def _build_time_table(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        device = self.cost_model.device
        act_factor = self.precision.activation_bytes_factor
        peak_mm = device.peak_flops(self.precision) * device.matmul_efficiency
        peak_other = device.peak_flops_fp32 * device.matmul_efficiency
        peak = np.where(self.is_matmul, peak_mm, peak_other)

        compute_f = self.fwd_flops * batch_size / peak
        traffic_f = (
            self.act_bytes * batch_size * act_factor + self.param_bytes
        ) / device.mem_bandwidth
        tf = np.maximum(compute_f, traffic_f) + device.kernel_overhead
        tf[self.is_free] = 0.0

        if self.mode == "inference":
            tb = np.zeros_like(tf)  # no backward pass is ever run
        else:
            compute_b = self.bwd_flops * batch_size / peak
            traffic_b = (
                2.0 * self.act_bytes * batch_size * act_factor
                + 2.0 * self.param_bytes
            ) / device.mem_bandwidth
            tb = np.maximum(compute_b, traffic_b) + device.kernel_overhead
            tb[self.is_free] = 0.0

        table = (tf, tb)
        self._time_tables[batch_size] = table
        return table

    def indices_of(self, task_names: Iterable[str]) -> np.ndarray:
        return np.fromiter(
            (self._index[t] for t in task_names), dtype=np.int64
        )

    # ------------------------------------------------------------------
    # the Algorithm-1 oracle
    # ------------------------------------------------------------------
    def profile(
        self,
        task_names: Sequence[str],
        batch_size: int,
        microbatches_in_flight: int = 1,
        checkpointing: bool = False,
        key: Optional[Hashable] = None,
    ) -> ProfileResult:
        """Profile a subcomponent: ``(t_f, t_b, m)`` plus boundary bytes.

        Args:
            task_names: tasks forming the subcomponent ``U``.
            batch_size: per-replica microbatch size (the
                ``BS/R/MB/(d-d')`` of Algorithm 1); clamped to >= 1.
            microbatches_in_flight: how many microbatches' stashes are
                resident simultaneously (the pipeline depth term).
            checkpointing: activation checkpointing (adds one forward
                recompute to ``t_b`` and shrinks the stash to the stage
                boundary).
            key: optional hashable identity of ``U`` for memoization.
        """
        batch_size = max(1, int(batch_size))
        cache_key = None
        with self._lock:
            if key is not None:
                cache_key = (
                    key, batch_size, microbatches_in_flight, checkpointing
                )
                hit = self._cache.get(cache_key)
                if hit is not None:
                    self.cache_hits += 1
                    return hit
            self.profile_calls += 1

        idx = self.indices_of(task_names)
        tf_all, tb_all = self._times_at(batch_size)
        t_f = float(tf_all[idx].sum())
        t_b = float(tb_all[idx].sum())
        if checkpointing and self.mode == "training":
            t_b += t_f  # recompute the forward before the backward

        act_factor = self.precision.activation_bytes_factor
        saved = float(self.saved_bytes[idx].sum()) * batch_size * act_factor
        kv = float(self.kv_saved_bytes[idx].sum()) * batch_size * act_factor
        params = self.unique_param_count(idx)

        in_bytes, out_bytes = self.boundary_bytes(task_names, batch_size)
        memory = self.memory_model.total_bytes(
            param_count=params,
            saved_act_bytes_micro=saved,
            boundary_in_bytes_micro=in_bytes,
            microbatches_in_flight=microbatches_in_flight,
            checkpointing=checkpointing,
            kv_bytes_micro=kv,
        )
        result = ProfileResult(
            time_fwd=t_f,
            time_bwd=t_b,
            memory=memory,
            param_count=params,
            in_bytes=in_bytes,
            out_bytes=out_bytes,
        )
        if cache_key is not None:
            with self._lock:
                self._cache[cache_key] = result
        return result

    def unique_param_count(self, task_indices: np.ndarray) -> int:
        """Number of distinct parameters consumed by a set of tasks
        (shared/tied weights counted once)."""
        seen: set = set()
        for i in task_indices:
            seen.update(self._task_param_ids[i])
        if not seen:
            return 0
        return int(
            self._param_sizes_arr[np.fromiter(seen, dtype=np.int64)].sum()
        )

    # ------------------------------------------------------------------
    # communication helpers
    # ------------------------------------------------------------------
    def boundary_bytes(
        self, task_names: Sequence[str], batch_size: int
    ) -> Tuple[float, float]:
        """Precision-scaled activation bytes crossing the boundary of U."""
        in_values, out_values = self.graph.boundary_values(task_names)
        factor = self.precision.activation_bytes_factor
        in_bytes = 0.0
        for vname in in_values:
            value = self.graph.values[vname]
            if value.kind in (ValueKind.PARAM, ValueKind.CONST):
                continue
            scale = factor if value.dtype.value.startswith("float") else 1.0
            in_bytes += value.nbytes(batch_size) * scale
        out_bytes = 0.0
        for vname in out_values:
            value = self.graph.values[vname]
            scale = factor if value.dtype.value.startswith("float") else 1.0
            out_bytes += value.nbytes(batch_size) * scale
        return in_bytes, out_bytes

    def comm_time(self, nbytes: float, same_node: bool = True) -> float:
        """Stage-to-stage transfer time (footnote 3: intra-node bandwidth).

        Delegates to the cluster's configured communication model
        (:mod:`repro.comm`): the flat model reproduces the paper's
        closed form, the topology model prices the transfer over the
        actual NVLink/NIC route."""
        if nbytes <= 0:
            return 0.0
        return self.cluster.p2p_time(nbytes, same_node=same_node)

    # ------------------------------------------------------------------
    @property
    def memo_hit_rate(self) -> float:
        """Fraction of profiling lookups (subcomponent memo + per-batch
        time tables) answered from a cache."""
        hits = self.cache_hits + self.table_hits
        total = self.profile_calls + self.cache_hits + self.table_calls
        return hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "profile_calls": self.profile_calls,
            "cache_hits": self.cache_hits,
            "cached_entries": len(self._cache),
            "table_calls": self.table_calls,
            "table_hits": self.table_hits,
            "memo_hit_rate": self.memo_hit_rate,
        }
