"""Per-operator roofline cost model on a simulated device.

Each task's execution time is ``max(compute, memory-traffic) + launch
overhead`` where the compute term runs at the device's sustained matmul
efficiency (tensor cores under AMP for matmul-class ops) and the traffic
term moves every input/output byte through device memory once.  Both
FLOPs and *activation* bytes scale linearly with batch size; parameter
bytes do not -- so small batches drift toward the bandwidth-bound regime
exactly as real kernels do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.graph.ir import TaskGraph, TaskNode, ValueKind
from repro.graph.ops import registry
from repro.hardware.device import DeviceSpec, Precision

#: op types executed on tensor cores under AMP and at matmul efficiency
#: under FP32 (dense GEMM/conv kernels).
MATMUL_OPS = frozenset({"matmul", "linear", "conv2d"})

#: ops that are pure metadata on contiguous layouts (no kernel at all).
FREE_OPS = frozenset({"reshape", "flatten", "identity"})


@dataclass(frozen=True)
class TaskCost:
    """Batch-size-1, FP32-reference cost coefficients of one task.

    ``act_bytes`` are the batched tensor bytes touched (inputs + outputs),
    ``param_bytes`` the non-batched bytes (weights/constants read),
    ``saved_bytes`` the activation storage this task adds to the backward
    tape (its outputs), all at canonical batch 1 in FP32.
    """

    fwd_flops: float
    bwd_flops: float
    act_bytes: float
    param_bytes: float
    saved_bytes: float
    param_count: int
    is_matmul: bool
    is_free: bool


class CostModel:
    """Computes :class:`TaskCost` entries and evaluates roofline times."""

    def __init__(self, device: DeviceSpec, precision: Precision = Precision.FP32):
        self.device = device
        self.precision = precision

    # ------------------------------------------------------------------
    def task_cost(self, graph: TaskGraph, task: TaskNode) -> TaskCost:
        """Extract the cost coefficients of one task instance."""
        fwd = registry.flops(task, graph, 1)
        bwd = registry.backward_flops(task, graph, 1)
        act_bytes = 0.0
        param_bytes = 0.0
        param_count = 0
        for vname in task.inputs:
            value = graph.values[vname]
            if value.batched:
                act_bytes += value.nbytes(1)
            else:
                param_bytes += value.nbytes(1)
                if value.kind is ValueKind.PARAM:
                    param_count += value.numel(1)
        saved = 0.0
        for vname in task.outputs:
            value = graph.values[vname]
            nbytes = value.nbytes(1)
            if value.batched:
                act_bytes += nbytes
                saved += nbytes
            else:
                param_bytes += nbytes
        is_free = task.op_type in FREE_OPS
        return TaskCost(
            fwd_flops=fwd,
            bwd_flops=bwd,
            act_bytes=act_bytes,
            param_bytes=param_bytes,
            saved_bytes=0.0 if is_free else saved,
            param_count=param_count,
            is_matmul=task.op_type in MATMUL_OPS,
            is_free=is_free,
        )

    # ------------------------------------------------------------------
    def _compute_time(self, flops: float, is_matmul: bool) -> float:
        if flops <= 0:
            return 0.0
        if is_matmul:
            peak = self.device.peak_flops(self.precision)
        else:
            # pointwise/reduction kernels do not use tensor cores
            peak = self.device.peak_flops_fp32
        return flops / (peak * self.device.matmul_efficiency)

    def _traffic_time(self, act_bytes: float, param_bytes: float) -> float:
        nbytes = act_bytes * self.precision.activation_bytes_factor + param_bytes
        return nbytes / self.device.mem_bandwidth

    def fwd_time(self, cost: TaskCost, batch_size: int) -> float:
        """Forward execution time of one task at the given batch size."""
        if cost.is_free:
            return 0.0
        return (
            max(
                self._compute_time(cost.fwd_flops * batch_size, cost.is_matmul),
                self._traffic_time(cost.act_bytes * batch_size, cost.param_bytes),
            )
            + self.device.kernel_overhead
        )

    def bwd_time(self, cost: TaskCost, batch_size: int) -> float:
        """Backward execution time (reads saved activations, writes both
        input grads and weight grads: ~2x the forward traffic)."""
        if cost.is_free:
            return 0.0
        return (
            max(
                self._compute_time(cost.bwd_flops * batch_size, cost.is_matmul),
                self._traffic_time(
                    2.0 * cost.act_bytes * batch_size, 2.0 * cost.param_bytes
                ),
            )
            + self.device.kernel_overhead
        )

    # ------------------------------------------------------------------
    def activation_nbytes(self, saved_bytes_fp32: float, batch_size: int) -> float:
        """Stored-activation bytes at the working precision."""
        return saved_bytes_fp32 * batch_size * self.precision.activation_bytes_factor
