"""Alpha-beta cost models for collectives over an explicit topology.

Every cost is derived from the links a transfer actually crosses
(:class:`~repro.comm.topology.NetworkTopology` routes), with perfectly
fair link sharing *within* one collective: a communication step that
puts ``f`` concurrent flows over one link runs that link at ``1/f`` per
flow.  Cross-collective contention is the business of
:mod:`repro.comm.contention`.

Algorithms
----------

``ring`` (allreduce)
    ``2(n-1)`` steps moving ``nbytes/n`` chunks around the sorted rank
    ring.  Every step uses the same hop pattern, so the cost collapses
    to the textbook closed form ``2(n-1) a + 2(n-1)/n * nbytes / bw``
    with ``bw`` the slowest effective hop -- *by construction the exact
    expression of the legacy ``ClusterSpec.allreduce_time``*, which the
    flat-parity suite pins.

``halving_doubling`` (allreduce)
    Recursive halving reduce-scatter + recursive doubling allgather;
    ``2 log2(n)`` rounds, round ``k`` exchanging ``nbytes / 2^k`` with
    the partner at XOR-distance ``n / 2^k``.  Power-of-two rank counts
    only.  Wins on latency, collapses over node uplinks (every rank of
    a node crosses the NIC simultaneously in the far rounds).

``hierarchical`` (allreduce, NCCL-style)
    Intra-node ring reduce-scatter, ``m`` concurrent inter-node rings
    over the shards, intra-node ring allgather.  Requires >= 2 nodes
    with equal per-node membership ``m >= 2``.  The bucketed/pipelined
    implementation overlaps the intra and inter fabrics, so the beta
    term is ``max(intra reduce-scatter + allgather, inter ring)`` while
    the alpha terms sum.

``direct`` (p2p), ``binomial_tree`` / ``ring`` (broadcast)
    One route, or ``log2(n)``-round tree vs. a pipelined chain.

:func:`allreduce_cost` evaluates every applicable algorithm and keeps
the cheapest (first-listed wins ties), reporting the winner's name so
planners can surface *which* algorithm a cost assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.comm.topology import NetworkTopology, Route

__all__ = [
    "ALLREDUCE_ALGORITHMS",
    "CollectiveCost",
    "allreduce_cost",
    "broadcast_cost",
    "hierarchical_allreduce_cost",
    "halving_doubling_allreduce_cost",
    "p2p_cost",
    "ring_allreduce_cost",
]

#: candidate order = deterministic tie-break order
ALLREDUCE_ALGORITHMS = ("ring", "halving_doubling", "hierarchical")


@dataclass(frozen=True)
class CollectiveCost:
    """One modeled collective: its time, the algorithm that achieves it,
    and the per-link busy time it induces (for contention analysis)."""

    op: str
    algorithm: str
    time: float
    nbytes: float
    n_ranks: int
    #: link name -> seconds the link is busy carrying this collective
    link_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def max_link_seconds(self) -> float:
        return max(self.link_seconds.values(), default=0.0)


def _zero(op: str, algorithm: str, nbytes: float, n: int) -> CollectiveCost:
    return CollectiveCost(op=op, algorithm=algorithm, time=0.0,
                          nbytes=nbytes, n_ranks=n)


def _add_route_bytes(
    loads: Dict[str, Tuple[float, float]], route: Route, nbytes: float
) -> None:
    """Accumulate ``nbytes`` onto every link of ``route`` (tracking the
    link bandwidth alongside, so loads convert to seconds at the end)."""
    for link in route.links:
        total, _ = loads.get(link.name, (0.0, link.bandwidth))
        loads[link.name] = (total + nbytes, link.bandwidth)


def _loads_to_seconds(loads: Dict[str, Tuple[float, float]]) -> Dict[str, float]:
    return {name: total / bw for name, (total, bw) in loads.items()}


def _step_flow_bandwidth(
    topo: NetworkTopology, hops: Sequence[Tuple[int, int]]
) -> float:
    """Effective per-flow bandwidth of one communication step in which
    all ``hops`` (rank pairs) transfer concurrently: each link serves
    its flows fairly, and the step runs at the slowest flow."""
    flows: Dict[str, Tuple[int, float]] = {}
    for src, dst in hops:
        for link in topo.route(src, dst).links:
            count, _ = flows.get(link.name, (0, link.bandwidth))
            flows[link.name] = (count + 1, link.bandwidth)
    if not flows:
        return float("inf")
    return min(bw / count for count, bw in flows.values())


# ----------------------------------------------------------------------
# point-to-point / broadcast
# ----------------------------------------------------------------------
def p2p_cost(
    topo: NetworkTopology, src_rank: int, dst_rank: int, nbytes: float
) -> CollectiveCost:
    """Single transfer between two ranks (cut-through, uncontended)."""
    if nbytes <= 0 or src_rank == dst_rank:
        return _zero("p2p", "direct", nbytes, 2)
    route = topo.route(src_rank, dst_rank)
    loads: Dict[str, Tuple[float, float]] = {}
    _add_route_bytes(loads, route, nbytes)
    return CollectiveCost(
        op="p2p",
        algorithm="direct",
        time=route.time(nbytes, topo.cluster.comm_latency),
        nbytes=nbytes,
        n_ranks=2,
        link_seconds=_loads_to_seconds(loads),
    )


def broadcast_cost(
    topo: NetworkTopology,
    ranks: Sequence[int],
    nbytes: float,
    algorithm: Optional[str] = None,
) -> CollectiveCost:
    """One-to-all broadcast from ``ranks[0]``: binomial tree vs. a
    pipelined chain, cheapest kept."""
    group = list(ranks)
    n = len(group)
    if n <= 1 or nbytes <= 0:
        return _zero("broadcast", algorithm or "binomial_tree", nbytes, n)
    lat = topo.cluster.comm_latency
    candidates: List[CollectiveCost] = []

    if algorithm in (None, "binomial_tree"):
        time = 0.0
        loads: Dict[str, Tuple[float, float]] = {}
        have = 1
        while have < n:
            hops = [
                (group[i], group[i + have])
                for i in range(have)
                if i + have < n
            ]
            bw = _step_flow_bandwidth(topo, hops)
            time += lat + nbytes / bw
            for src, dst in hops:
                _add_route_bytes(loads, topo.route(src, dst), nbytes)
            have *= 2
        candidates.append(CollectiveCost(
            op="broadcast", algorithm="binomial_tree", time=time,
            nbytes=nbytes, n_ranks=n,
            link_seconds=_loads_to_seconds(loads),
        ))

    if algorithm in (None, "ring"):
        hops = [(group[i], group[i + 1]) for i in range(n - 1)]
        bw = _step_flow_bandwidth(topo, hops)
        loads = {}
        for src, dst in hops:
            _add_route_bytes(loads, topo.route(src, dst), nbytes)
        candidates.append(CollectiveCost(
            op="broadcast", algorithm="ring",
            # perfectly pipelined chain: one latency per hop, the
            # payload streams at the slowest effective hop
            time=lat * (n - 1) + nbytes / bw,
            nbytes=nbytes, n_ranks=n,
            link_seconds=_loads_to_seconds(loads),
        ))

    if not candidates:
        raise ValueError(f"unknown broadcast algorithm {algorithm!r}")
    best = candidates[0]
    for cand in candidates[1:]:
        if cand.time < best.time:
            best = cand
    return best


# ----------------------------------------------------------------------
# allreduce algorithms
# ----------------------------------------------------------------------
def ring_allreduce_cost(
    topo: NetworkTopology, ranks: Sequence[int], nbytes: float
) -> CollectiveCost:
    """Ring allreduce over the sorted rank group.

    Every one of the ``2(n-1)`` steps uses the identical hop pattern
    (rank -> next rank), so the total is the legacy closed form with the
    bandwidth of the slowest *effective* hop -- written as the exact
    expression of ``ClusterSpec.allreduce_time`` so a uniform topology
    reproduces the flat model bit-for-bit.
    """
    group = sorted(ranks)
    n = len(group)
    if n <= 1 or nbytes <= 0:
        return _zero("allreduce", "ring", nbytes, n)
    hops = [(group[i], group[(i + 1) % n]) for i in range(n)]
    bw = _step_flow_bandwidth(topo, hops)
    lat = topo.cluster.comm_latency
    time = lat * 2 * (n - 1) + (2.0 * (n - 1) / n) * nbytes / bw
    loads: Dict[str, Tuple[float, float]] = {}
    hop_bytes = (2.0 * (n - 1) / n) * nbytes
    for src, dst in hops:
        _add_route_bytes(loads, topo.route(src, dst), hop_bytes)
    return CollectiveCost(
        op="allreduce", algorithm="ring", time=time,
        nbytes=nbytes, n_ranks=n,
        link_seconds=_loads_to_seconds(loads),
    )


def halving_doubling_allreduce_cost(
    topo: NetworkTopology, ranks: Sequence[int], nbytes: float
) -> Optional[CollectiveCost]:
    """Recursive halving-doubling allreduce; ``None`` unless the rank
    count is a power of two (the classic algorithm's requirement)."""
    group = sorted(ranks)
    n = len(group)
    if n <= 1 or nbytes <= 0:
        return _zero("allreduce", "halving_doubling", nbytes, n)
    if n & (n - 1):
        return None
    lat = topo.cluster.comm_latency
    time = 0.0
    loads: Dict[str, Tuple[float, float]] = {}
    dist, chunk = n // 2, nbytes / 2.0
    while dist >= 1:
        # both partners of a pair exchange simultaneously
        hops = [(group[i], group[i ^ dist]) for i in range(n)]
        bw = _step_flow_bandwidth(topo, hops)
        # reduce-scatter round + the mirrored allgather round
        time += 2.0 * (lat + chunk / bw)
        for src, dst in hops:
            _add_route_bytes(loads, topo.route(src, dst), 2.0 * chunk)
        dist //= 2
        chunk /= 2.0
    return CollectiveCost(
        op="allreduce", algorithm="halving_doubling", time=time,
        nbytes=nbytes, n_ranks=n,
        link_seconds=_loads_to_seconds(loads),
    )


def hierarchical_allreduce_cost(
    topo: NetworkTopology, ranks: Sequence[int], nbytes: float
) -> Optional[CollectiveCost]:
    """NCCL-style hierarchical allreduce: intra-node ring reduce-scatter,
    ``m`` concurrent inter-node rings over the shards, intra-node ring
    allgather.  ``None`` unless the group spans >= 2 nodes with equal
    per-node membership ``m >= 2``.

    The bucketed implementation pipelines chunks through the phases, so
    the beta terms of the intra fabric (reduce-scatter + allgather share
    the NVLinks) and the inter fabric overlap: beta = max of the two.
    Alpha terms sum (every chunk still pays each phase's latency chain).
    """
    group = sorted(ranks)
    n = len(group)
    if n <= 1 or nbytes <= 0:
        return _zero("allreduce", "hierarchical", nbytes, n)
    cl = topo.cluster
    by_node: Dict[int, List[int]] = {}
    for r in group:
        by_node.setdefault(cl.node_of(r), []).append(r)
    nodes = sorted(by_node)
    N = len(nodes)
    m = len(by_node[nodes[0]])
    if N < 2 or m < 2 or any(len(by_node[nd]) != m for nd in nodes):
        return None
    lat = cl.comm_latency
    loads: Dict[str, Tuple[float, float]] = {}

    # intra phase: a ring over each node's members; all nodes run
    # concurrently, the slowest node paces the phase
    intra_bw = float("inf")
    for nd in nodes:
        members = by_node[nd]
        hops = [(members[i], members[(i + 1) % m]) for i in range(m)]
        intra_bw = min(intra_bw, _step_flow_bandwidth(topo, hops))
        # reduce-scatter + allgather each move (m-1)/m * nbytes per hop
        hop_bytes = 2.0 * ((m - 1) / m) * nbytes
        for src, dst in hops:
            _add_route_bytes(loads, topo.route(src, dst), hop_bytes)
    intra_beta = 2.0 * ((m - 1) / m) * nbytes / intra_bw

    # inter phase: ring i connects the i-th member of every node and
    # carries the nbytes/m shard; the m rings run concurrently and
    # share each node's NIC uplinks
    hops = []
    for i in range(m):
        for a in range(N):
            hops.append((by_node[nodes[a]][i], by_node[nodes[(a + 1) % N]][i]))
    inter_bw = _step_flow_bandwidth(topo, hops)
    shard = nbytes / m
    inter_beta = (2.0 * (N - 1) / N) * shard / inter_bw
    hop_bytes = (2.0 * (N - 1) / N) * shard
    for src, dst in hops:
        _add_route_bytes(loads, topo.route(src, dst), hop_bytes)

    alpha = 2.0 * (m - 1) * lat + 2.0 * (N - 1) * lat
    time = alpha + max(intra_beta, inter_beta)
    return CollectiveCost(
        op="allreduce", algorithm="hierarchical", time=time,
        nbytes=nbytes, n_ranks=n,
        link_seconds=_loads_to_seconds(loads),
    )


def allreduce_cost(
    topo: NetworkTopology,
    ranks: Sequence[int],
    nbytes: float,
    algorithm: Optional[str] = None,
) -> CollectiveCost:
    """Allreduce cost under ``algorithm``, or the cheapest applicable
    algorithm when ``algorithm`` is ``None`` (ties keep the
    first-listed candidate, so ``ring`` wins exact ties)."""
    builders = {
        "ring": ring_allreduce_cost,
        "halving_doubling": halving_doubling_allreduce_cost,
        "hierarchical": hierarchical_allreduce_cost,
    }
    if algorithm is not None:
        if algorithm not in builders:
            raise ValueError(
                f"unknown allreduce algorithm {algorithm!r} "
                f"(known: {ALLREDUCE_ALGORITHMS})"
            )
        cost = builders[algorithm](topo, ranks, nbytes)
        if cost is None:
            raise ValueError(
                f"allreduce algorithm {algorithm!r} is not applicable to "
                f"rank group {sorted(ranks)}"
            )
        return cost
    best: Optional[CollectiveCost] = None
    for name in ALLREDUCE_ALGORITHMS:
        cost = builders[name](topo, ranks, nbytes)
        if cost is not None and (best is None or cost.time < best.time):
            best = cost
    assert best is not None  # ring always applies
    return best
