"""Link-level network topology constructed from a :class:`ClusterSpec`.

The paper's testbed (Sec. IV-A) has three distinct interconnect tiers:
an intra-node NVLink mesh between the eight V100s of a node, one or more
NICs per node, and an InfiniBand switch connecting the nodes.  The flat
cost model collapses all of that into two scalar bandwidths; this module
keeps the tiers explicit so collective-algorithm costs
(:mod:`repro.comm.collectives`) and link contention
(:mod:`repro.comm.contention`) can be derived from the actual links a
transfer crosses.

Vertices are endpoint strings:

* ``gpu:<rank>`` -- one accelerator, identified by its *global* rank;
* ``nic:<node>:<i>`` -- NIC ``i`` of node ``node``;
* ``switch`` -- the single inter-node switch tier.

Links are directed (full-duplex fabric: the reverse direction is a
separate :class:`Link` with its own capacity):

* ``nvlink`` -- GPU <-> GPU inside a node, at
  ``cluster.intra_node_bandwidth``.  With ``cluster.nvlink_degree`` set
  below ``devices_per_node - 1`` the mesh degrades to a ring
  neighbourhood: local GPUs ``i`` and ``j`` are linked iff their ring
  distance is at most ``max(1, nvlink_degree // 2)``.
* ``pci`` -- GPU <-> NIC, at the intra-node bandwidth (never the
  bottleneck below NVLink; it exists so cross-node routes occupy
  intra-node fabric for contention accounting).
* ``uplink`` / ``downlink`` -- NIC <-> switch, at
  ``cluster.inter_node_bandwidth / nic_count`` each, so the *node's*
  aggregate uplink capacity equals the spec'd inter-node bandwidth
  regardless of the NIC count.

Routing is deterministic (see :meth:`NetworkTopology.route`) and
cut-through: a transfer is charged the per-transfer ``comm_latency``
once plus its size over the *bottleneck* bandwidth along the route,
which makes single-transfer times on default presets identical to the
flat model's closed forms (the parity property the test suite pins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.hardware.cluster import ClusterSpec

__all__ = ["Link", "Route", "NetworkTopology"]


@dataclass(frozen=True)
class Link:
    """One directed physical link of the network graph."""

    src: str
    dst: str
    bandwidth: float  # B/s
    kind: str  # "nvlink" | "pci" | "uplink" | "downlink"

    @property
    def name(self) -> str:
        """Stable identifier used by the contention simulator."""
        return f"{self.src}->{self.dst}"


@dataclass(frozen=True)
class Route:
    """The ordered links one point-to-point transfer crosses."""

    links: Tuple[Link, ...]

    @property
    def bottleneck_bandwidth(self) -> float:
        """Slowest link bandwidth along the route (inf for empty routes,
        i.e. src == dst)."""
        if not self.links:
            return float("inf")
        return min(link.bandwidth for link in self.links)

    @property
    def hops(self) -> int:
        return len(self.links)

    def time(self, nbytes: float, latency: float) -> float:
        """Cut-through transfer time: one latency charge plus the size
        over the bottleneck bandwidth."""
        if nbytes <= 0 or not self.links:
            return 0.0
        return latency + nbytes / self.bottleneck_bandwidth


def _ring_distance(i: int, j: int, d: int) -> int:
    return min((i - j) % d, (j - i) % d)


class NetworkTopology:
    """Explicit network graph of one cluster, with deterministic routing.

    Construct via :meth:`from_cluster`; instances are immutable in
    practice and shared through the ``comm_model_for`` cache.
    """

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster
        self.links: Dict[Tuple[str, str], Link] = {}
        d = cluster.devices_per_node
        degree = cluster.nvlink_degree
        self._full_mesh = degree is None or degree >= d - 1
        self._ring_radius = 0 if self._full_mesh else max(1, int(degree) // 2)
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add(self, src: str, dst: str, bandwidth: float, kind: str) -> None:
        self.links[(src, dst)] = Link(src, dst, bandwidth, kind)

    def _build(self) -> None:
        cl = self.cluster
        d = cl.devices_per_node
        # nodes may host fewer than ``devices_per_node`` devices on a
        # heterogeneous cluster; rank arithmetic goes through the
        # per-node prefix sums (identical to ``node * d`` when uniform)
        firsts = cl.node_first_ranks()
        widths = cl.node_device_counts()
        for node in range(cl.num_nodes):
            base = firsts[node]
            width = widths[node]
            # NVLink mesh (or ring neighbourhood) between local GPUs; a
            # narrower-than-max node keeps the full mesh (few devices)
            for i in range(width):
                for j in range(i + 1, width):
                    if width < d or self._nvlink_peers(i, j):
                        gi, gj = f"gpu:{base + i}", f"gpu:{base + j}"
                        self._add(gi, gj, cl.intra_node_bandwidth, "nvlink")
                        self._add(gj, gi, cl.intra_node_bandwidth, "nvlink")
            # NIC tier: every GPU reaches every local NIC over the
            # intra-node fabric; each NIC owns an equal share of the
            # node's aggregate uplink
            per_nic = cl.inter_node_bandwidth / cl.nic_count
            for n in range(cl.nic_count):
                nic = f"nic:{node}:{n}"
                for i in range(width):
                    gpu = f"gpu:{base + i}"
                    self._add(gpu, nic, cl.intra_node_bandwidth, "pci")
                    self._add(nic, gpu, cl.intra_node_bandwidth, "pci")
                if cl.num_nodes > 1:
                    self._add(nic, "switch", per_nic, "uplink")
                    self._add("switch", nic, per_nic, "downlink")

    def _nvlink_peers(self, i: int, j: int) -> bool:
        """Whether local GPUs ``i`` and ``j`` share a direct NVLink."""
        if i == j:
            return False
        if self._full_mesh:
            return True
        return _ring_distance(i, j, self.cluster.devices_per_node) <= self._ring_radius

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def link(self, src: str, dst: str) -> Link:
        return self.links[(src, dst)]

    def nic_of(self, rank: int) -> str:
        """The NIC a rank's cross-node traffic leaves through (static,
        local-rank round-robin over the node's NICs)."""
        cl = self.cluster
        node = cl.node_of(rank)
        local = rank - cl.node_first_ranks()[node]
        return f"nic:{node}:{local % cl.nic_count}"

    def _intra_path(self, node: int, src_local: int, dst_local: int) -> List[Link]:
        """Deterministic same-node GPU->GPU path: the direct NVLink when
        present, otherwise greedy max-stride hops around the ring in the
        shorter direction (ties broken toward increasing local index)."""
        base = self.cluster.node_first_ranks()[node]
        d = self.cluster.devices_per_node
        width = self.cluster.node_device_counts()[node]
        if width < d or self._nvlink_peers(src_local, dst_local):
            # narrower nodes were built full-mesh; direct link exists
            return [self.link(f"gpu:{base + src_local}", f"gpu:{base + dst_local}")]
        fwd = (dst_local - src_local) % d
        bwd = (src_local - dst_local) % d
        step = 1 if fwd <= bwd else -1
        remaining = min(fwd, bwd)
        path: List[Link] = []
        cur = src_local
        while remaining > 0:
            stride = min(self._ring_radius, remaining)
            nxt = (cur + step * stride) % d
            path.append(self.link(f"gpu:{base + cur}", f"gpu:{base + nxt}"))
            cur = nxt
            remaining -= stride
        return path

    def route(self, src_rank: int, dst_rank: int) -> Route:
        """The deterministic route between two global device ranks.

        Same node: NVLink (multi-hop under a constrained mesh).  Cross
        node: ``gpu -> nic -> switch -> nic -> gpu``, with each
        endpoint's NIC chosen by local-rank round-robin.
        """
        if src_rank == dst_rank:
            return Route(())
        cl = self.cluster
        src_node, dst_node = cl.node_of(src_rank), cl.node_of(dst_rank)
        if src_node == dst_node:
            base = cl.node_first_ranks()[src_node]
            return Route(tuple(
                self._intra_path(src_node, src_rank - base, dst_rank - base)
            ))
        src_nic, dst_nic = self.nic_of(src_rank), self.nic_of(dst_rank)
        return Route((
            self.link(f"gpu:{src_rank}", src_nic),
            self.link(src_nic, "switch"),
            self.link("switch", dst_nic),
            self.link(dst_nic, f"gpu:{dst_rank}"),
        ))

    # ------------------------------------------------------------------
    def p2p_time(self, src_rank: int, dst_rank: int, nbytes: float) -> float:
        """Single uncontended transfer time between two ranks."""
        return self.route(src_rank, dst_rank).time(nbytes, self.cluster.comm_latency)

    def num_links(self) -> int:
        return len(self.links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cl = self.cluster
        return (
            f"NetworkTopology({cl.num_nodes}x{cl.devices_per_node}, "
            f"{self.num_links()} links, "
            f"{'full-mesh' if self._full_mesh else f'ring-r{self._ring_radius}'} NVLink, "
            f"{cl.nic_count} NIC/node)"
        )
