"""Swappable communication cost models behind one shared API.

Two tiers of API, one namespace:

*Legacy tier* -- ``p2p_time(nbytes, same_node)`` and
``allreduce_time(nbytes, n_ranks, spans_nodes)`` mirror the historical
``ClusterSpec`` methods, which now delegate here.  Under
:class:`FlatCommModel` (the default) these are the verbatim legacy
closed forms, so ``comm_model="flat"`` is bit-for-bit identical to
pre-subsystem behaviour.  ``p2p_affine`` exposes the ``(latency,
bandwidth)`` pair those closed forms use, so vectorized planner code
(``stage_dp._profile_planes``) can stay exact while being model-aware.

*Rank-aware tier* -- ``rank_p2p_time(src, dst, nbytes)`` and
``allreduce(nbytes, ranks)`` take actual device ranks and, under
:class:`TopologyCommModel`, derive costs from the links the transfer
really crosses, including automatic cheapest-allreduce-algorithm
selection (the chosen algorithm is reported on the returned
:class:`~repro.comm.collectives.CollectiveCost`).

Models are constructed through :func:`comm_model_for`, an lru-cached
factory keyed by the (frozen, hashable) :class:`ClusterSpec`, so the
topology graph is built once per distinct cluster.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

from repro.comm.collectives import CollectiveCost, allreduce_cost
from repro.comm.topology import NetworkTopology
from repro.hardware.cluster import ClusterSpec

__all__ = [
    "COMM_MODELS",
    "CommModel",
    "FlatCommModel",
    "TopologyCommModel",
    "boundary_internode",
    "comm_model_for",
    "stage_boundary_p2p_times",
]

#: recognised values of ``ClusterSpec.comm_model`` / ``--comm-model``
COMM_MODELS = ("flat", "topology")


class CommModel:
    """Base communication model over one cluster."""

    name = "base"

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster

    # -- legacy tier ---------------------------------------------------
    def p2p_affine(self, same_node: bool = True) -> Tuple[float, float]:
        """``(latency, bandwidth)`` of the affine p2p cost
        ``latency + nbytes / bandwidth`` for this tier."""
        raise NotImplementedError

    def p2p_time(self, nbytes: float, same_node: bool = True) -> float:
        """Point-to-point transfer time between two devices."""
        lat, bw = self.p2p_affine(same_node)
        return lat + nbytes / bw

    def allreduce_time(self, nbytes: float, n_ranks: int,
                       spans_nodes: bool = True) -> float:
        """Allreduce time over ``n_ranks`` replicas (rank-agnostic)."""
        raise NotImplementedError

    # -- rank-aware tier -----------------------------------------------
    def rank_p2p_time(self, src_rank: int, dst_rank: int, nbytes: float) -> float:
        """Transfer time between two concrete device ranks."""
        if src_rank == dst_rank or nbytes <= 0:
            return 0.0
        cl = self.cluster
        return self.p2p_time(
            nbytes, same_node=cl.node_of(src_rank) == cl.node_of(dst_rank)
        )

    def allreduce(self, nbytes: float, ranks: Sequence[int]) -> CollectiveCost:
        """Allreduce cost over a concrete rank group, reporting the
        algorithm the cost assumes."""
        raise NotImplementedError


class FlatCommModel(CommModel):
    """The legacy two-scalar-bandwidth model, expression for expression.

    ``p2p_time``/``allreduce_time`` reproduce the historical
    ``ClusterSpec`` arithmetic verbatim -- this class is the reason
    ``comm_model="flat"`` is bit-identical to pre-subsystem planners.
    """

    name = "flat"

    def p2p_affine(self, same_node: bool = True) -> Tuple[float, float]:
        cl = self.cluster
        bw = cl.intra_node_bandwidth if same_node else cl.inter_node_bandwidth
        return cl.comm_latency, bw

    def allreduce_time(self, nbytes: float, n_ranks: int,
                       spans_nodes: bool = True) -> float:
        cl = self.cluster
        if n_ranks <= 1:
            return 0.0
        bw = cl.inter_node_bandwidth if spans_nodes else cl.intra_node_bandwidth
        return cl.comm_latency * 2 * (n_ranks - 1) + (
            2.0 * (n_ranks - 1) / n_ranks
        ) * nbytes / bw

    def allreduce(self, nbytes: float, ranks: Sequence[int]) -> CollectiveCost:
        group = sorted(set(ranks))
        n = len(group)
        cl = self.cluster
        spans = len({cl.node_of(r) for r in group}) > 1
        return CollectiveCost(
            op="allreduce",
            algorithm="ring",
            time=self.allreduce_time(nbytes, n, spans_nodes=spans),
            nbytes=nbytes,
            n_ranks=n,
        )


class TopologyCommModel(CommModel):
    """Costs derived from the explicit link-level topology.

    The legacy-tier methods keep their rank-agnostic signatures by
    costing *representative* rank groups: ``same_node`` picks two
    NVLink-adjacent local ranks, ``spans_nodes`` spreads the group
    round-robin across nodes (the worst placement the flat model
    assumes).  When a representative group cannot be formed on this
    cluster (more ranks than devices, a spanning group on one node),
    the flat closed form is used so estimates degrade conservatively
    rather than crash.
    """

    name = "topology"

    def __init__(self, cluster: ClusterSpec) -> None:
        super().__init__(cluster)
        self.topology = NetworkTopology(cluster)
        self._flat = FlatCommModel(cluster)
        self._groups: Dict[Tuple[int, bool], Optional[Tuple[int, ...]]] = {}

    def p2p_affine(self, same_node: bool = True) -> Tuple[float, float]:
        cl = self.cluster
        if same_node:
            if cl.devices_per_node < 2:
                return self._flat.p2p_affine(same_node=True)
            bw = self.topology.route(0, 1).bottleneck_bandwidth
        else:
            if cl.num_nodes < 2:
                return self._flat.p2p_affine(same_node=False)
            bw = self.topology.route(0, cl.devices_per_node).bottleneck_bandwidth
        return cl.comm_latency, bw

    def rank_p2p_time(self, src_rank: int, dst_rank: int, nbytes: float) -> float:
        return self.topology.p2p_time(src_rank, dst_rank, nbytes)

    def _representative_group(
        self, n_ranks: int, spans_nodes: bool
    ) -> Optional[Tuple[int, ...]]:
        """A concrete rank group realizing the rank-agnostic query, or
        ``None`` when this cluster cannot host one."""
        key = (n_ranks, spans_nodes)
        if key in self._groups:
            return self._groups[key]
        cl = self.cluster
        group: Optional[Tuple[int, ...]]
        if n_ranks > cl.total_devices:
            group = None
        elif spans_nodes:
            if cl.num_nodes < 2:
                group = None
            else:
                # round-robin over nodes: maximal node spread, the
                # placement the flat model's inter-node rate assumes
                group = tuple(
                    (i % cl.num_nodes) * cl.devices_per_node + i // cl.num_nodes
                    for i in range(n_ranks)
                )
        else:
            if n_ranks > cl.devices_per_node:
                group = None
            else:
                group = tuple(range(n_ranks))
        self._groups[key] = group
        return group

    def allreduce_time(self, nbytes: float, n_ranks: int,
                       spans_nodes: bool = True) -> float:
        if n_ranks <= 1:
            return 0.0
        group = self._representative_group(n_ranks, spans_nodes)
        if group is None:
            return self._flat.allreduce_time(nbytes, n_ranks, spans_nodes)
        return allreduce_cost(self.topology, group, nbytes).time

    def allreduce(self, nbytes: float, ranks: Sequence[int]) -> CollectiveCost:
        return allreduce_cost(self.topology, sorted(set(ranks)), nbytes)


@lru_cache(maxsize=64)
def comm_model_for(cluster: ClusterSpec) -> CommModel:
    """The communication model a cluster asks for via its
    ``comm_model`` field (cached per distinct cluster spec)."""
    if cluster.comm_model == "flat":
        return FlatCommModel(cluster)
    if cluster.comm_model == "topology":
        return TopologyCommModel(cluster)
    raise ValueError(
        f"unknown comm_model {cluster.comm_model!r} (known: {COMM_MODELS})"
    )


def boundary_internode(
    cluster: ClusterSpec,
    device_counts: Sequence[int],
    replica_factor: int,
    boundary: int,
) -> bool:
    """Whether the boundary after stage ``boundary`` crosses a node
    boundary for *any* pipeline replica, under the standard contiguous
    rank allocation (``allocate_devices``).

    The worst replica gates iteration time, so baselines charge the
    inter-node rate as soon as one replica's crossing is inter-node.
    """
    D = sum(device_counts)
    prefix = sum(device_counts[: boundary + 1])
    if prefix >= D:
        return False
    for r in range(replica_factor):
        last = r * D + prefix - 1
        first = r * D + prefix
        if cluster.node_of(last) != cluster.node_of(first):
            return True
    return False


def stage_boundary_p2p_times(
    cluster: ClusterSpec,
    device_counts: Sequence[int],
    replica_factor: int,
    stage: int,
    out_bytes: float,
    in_bytes: float,
) -> Tuple[float, float]:
    """``(send, recv)`` p2p times for one pipeline stage, charging each
    boundary at the interconnect tier it actually crosses.

    ``send`` prices ``out_bytes`` over the boundary after ``stage``;
    ``recv`` prices ``in_bytes`` (the backward gradient) over the
    boundary before it.  A boundary that straddles a node boundary for
    any replica pays the inter-node rate -- the fix for baselines that
    historically charged every boundary at the NVLink rate.  The edges
    of the pipeline (stage 0's input, the last stage's output) keep the
    same-node rate, matching the legacy convention for data loading and
    loss outputs.
    """
    send = 0.0
    if out_bytes:
        send = cluster.p2p_time(
            out_bytes,
            same_node=not boundary_internode(
                cluster, device_counts, replica_factor, stage
            ),
        )
    recv = 0.0
    if in_bytes:
        same = True
        if stage > 0:
            same = not boundary_internode(
                cluster, device_counts, replica_factor, stage - 1
            )
        recv = cluster.p2p_time(in_bytes, same_node=same)
    return send, recv
