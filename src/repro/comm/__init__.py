"""Topology-aware communication subsystem.

Three layers, consumed through one swappable model API:

* :mod:`repro.comm.topology` -- an explicit link-level network graph
  (NVLink mesh, NIC uplinks, IB switch tier) built from a
  :class:`~repro.hardware.cluster.ClusterSpec`, with deterministic
  routing.
* :mod:`repro.comm.collectives` -- alpha-beta cost models for p2p,
  broadcast and allreduce (ring, recursive halving-doubling,
  NCCL-style hierarchical) with automatic cheapest-algorithm
  selection.
* :mod:`repro.comm.contention` -- max-min fair link-occupancy
  simulation for concurrent transfers.

Planners pick a model with the ``comm_model`` knob (``"flat"`` keeps
the legacy closed forms bit-for-bit; ``"topology"`` routes through the
link-level model).  See ``docs/COMMUNICATION.md``.
"""

from repro.comm.collectives import (
    ALLREDUCE_ALGORITHMS,
    CollectiveCost,
    allreduce_cost,
    broadcast_cost,
    halving_doubling_allreduce_cost,
    hierarchical_allreduce_cost,
    p2p_cost,
    ring_allreduce_cost,
)
from repro.comm.contention import (
    Transfer,
    TransferResult,
    concurrent_makespan,
    simulate_transfers,
)
from repro.comm.model import (
    COMM_MODELS,
    CommModel,
    FlatCommModel,
    TopologyCommModel,
    boundary_internode,
    comm_model_for,
    stage_boundary_p2p_times,
)
from repro.comm.topology import Link, NetworkTopology, Route

__all__ = [
    "ALLREDUCE_ALGORITHMS",
    "COMM_MODELS",
    "CollectiveCost",
    "CommModel",
    "FlatCommModel",
    "Link",
    "NetworkTopology",
    "Route",
    "TopologyCommModel",
    "Transfer",
    "TransferResult",
    "allreduce_cost",
    "boundary_internode",
    "broadcast_cost",
    "comm_model_for",
    "concurrent_makespan",
    "halving_doubling_allreduce_cost",
    "hierarchical_allreduce_cost",
    "p2p_cost",
    "ring_allreduce_cost",
    "simulate_transfers",
    "stage_boundary_p2p_times",
]
