"""Contention-aware transfer simulation: max-min fair link sharing.

The collective cost models in :mod:`repro.comm.collectives` assume each
collective has the network to itself.  When a planner wants to know what
happens if several transfers run *concurrently* -- e.g. the data-parallel
allreduces of every pipeline stage firing together, or p2p activations
overlapping a gradient allreduce -- this module simulates them over the
shared links of a :class:`~repro.comm.topology.NetworkTopology`.

The model is classic progressive filling: at any instant, every active
transfer receives its max-min fair share of each link it crosses and
progresses at the minimum share along its route.  The simulation advances
event by event (next transfer completion), recomputing fair shares as
transfers finish, which yields the exact fluid-model completion times.

For collective phases (where per-transfer routing is already folded into
:class:`~repro.comm.collectives.CollectiveCost.link_seconds`) the cheaper
:func:`concurrent_makespan` bound applies bandwidth conservation: the
phase cannot finish before the last collective would alone, nor before
the busiest link has streamed every byte scheduled across it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.comm.collectives import CollectiveCost
from repro.comm.topology import NetworkTopology

__all__ = [
    "Transfer",
    "TransferResult",
    "concurrent_makespan",
    "simulate_transfers",
]

_EPS = 1e-12


@dataclass(frozen=True)
class Transfer:
    """One point-to-point transfer submitted to the simulator."""

    src_rank: int
    dst_rank: int
    nbytes: float
    start: float = 0.0
    tag: str = ""


@dataclass
class TransferResult:
    """Completion record for one transfer."""

    transfer: Transfer
    finish: float
    #: finish time the transfer would have had with the network to itself
    solo_finish: float

    @property
    def slowdown(self) -> float:
        """Contention slowdown factor (1.0 = no interference)."""
        solo = self.solo_finish - self.transfer.start
        actual = self.finish - self.transfer.start
        if solo <= _EPS:
            return 1.0
        return actual / solo


@dataclass
class _Active:
    transfer: Transfer
    links: List[str]
    remaining: float
    rate: float = 0.0
    result: Optional[TransferResult] = field(default=None)


def _fair_rates(
    active: List[_Active], capacity: Dict[str, float]
) -> None:
    """Assign max-min fair rates to ``active`` transfers (progressive
    filling: repeatedly saturate the most constrained link and freeze
    the flows crossing it)."""
    unfrozen = [t for t in active if t.links]
    for t in active:
        t.rate = float("inf") if not t.links else 0.0
    remaining_cap = dict(capacity)
    flows: Dict[str, List[_Active]] = {}
    for t in unfrozen:
        for name in t.links:
            flows.setdefault(name, []).append(t)
    frozen: Dict[int, bool] = {id(t): False for t in unfrozen}
    while True:
        # per-link fair share among its not-yet-frozen flows
        best_share = None
        for name, ts in flows.items():
            live = [t for t in ts if not frozen[id(t)]]
            if not live:
                continue
            share = remaining_cap[name] / len(live)
            if best_share is None or share < best_share:
                best_share = share
        if best_share is None:
            break
        # freeze every flow whose bottleneck link is (one of) the
        # most-constrained: it can never do better than this share
        newly = []
        for name, ts in flows.items():
            live = [t for t in ts if not frozen[id(t)]]
            if not live:
                continue
            if remaining_cap[name] / len(live) <= best_share + _EPS:
                newly.extend(live)
        if not newly:  # pragma: no cover - numerical safety valve
            break
        for t in newly:
            if frozen[id(t)]:
                continue
            frozen[id(t)] = True
            t.rate = best_share
            for name in t.links:
                remaining_cap[name] = max(0.0, remaining_cap[name] - best_share)


def simulate_transfers(
    topo: NetworkTopology, transfers: Sequence[Transfer]
) -> List[TransferResult]:
    """Simulate ``transfers`` sharing the topology max-min fairly.

    Returns one :class:`TransferResult` per input transfer, in input
    order.  Zero-byte and self transfers complete instantly at their
    start time.  Each transfer pays ``comm_latency`` once up front
    (cut-through, as in the uncontended models), then streams at its
    instantaneous fair rate.
    """
    lat = topo.cluster.comm_latency
    capacity = {link.name: link.bandwidth for link in topo.links.values()}
    results: Dict[int, TransferResult] = {}
    pending: List[_Active] = []
    for tr in transfers:
        route = topo.route(tr.src_rank, tr.dst_rank)
        solo = tr.start + route.time(tr.nbytes, lat)
        if tr.nbytes <= 0 or not route.links:
            results[id(tr)] = TransferResult(tr, finish=tr.start, solo_finish=tr.start)
            continue
        pending.append(_Active(
            transfer=tr,
            links=[link.name for link in route.links],
            remaining=tr.nbytes,
            result=TransferResult(tr, finish=solo, solo_finish=solo),
        ))
    # transfers become active at start + latency (the cut-through charge)
    pending.sort(key=lambda a: a.transfer.start)
    active: List[_Active] = []
    now = 0.0
    while pending or active:
        if not active:
            now = pending[0].transfer.start + lat
            while pending and pending[0].transfer.start + lat <= now + _EPS:
                active.append(pending.pop(0))
        _fair_rates(active, capacity)
        # next event: a completion or an arrival
        dt_done = min(
            (a.remaining / a.rate for a in active if a.rate > _EPS),
            default=float("inf"),
        )
        dt_arrival = float("inf")
        if pending:
            dt_arrival = pending[0].transfer.start + lat - now
        dt = min(dt_done, dt_arrival)
        if dt == float("inf"):  # pragma: no cover - all rates zero
            raise RuntimeError("contention simulation stalled")
        dt = max(dt, 0.0)
        now += dt
        still: List[_Active] = []
        for a in active:
            a.remaining -= a.rate * dt
            if a.remaining <= _EPS * max(1.0, a.transfer.nbytes):
                a.result.finish = now
                results[id(a.transfer)] = a.result
            else:
                still.append(a)
        active = still
        while pending and pending[0].transfer.start + lat <= now + _EPS:
            active.append(pending.pop(0))
    return [results[id(tr)] for tr in transfers]


def concurrent_makespan(costs: Iterable[CollectiveCost], latency: float = 0.0) -> float:
    """Lower-bound makespan of collectives running concurrently.

    Bandwidth conservation: the phase takes at least as long as (a) the
    slowest collective alone, and (b) the busiest link needs to stream
    every byte scheduled across it (its summed ``link_seconds``).  This
    is exact when the busiest link is shared work-conservingly, which is
    how the planner charges overlapping per-stage allreduces.
    """
    costs = list(costs)
    if not costs:
        return 0.0
    solo = max(c.time for c in costs)
    per_link: Dict[str, float] = {}
    for c in costs:
        for name, seconds in c.link_seconds.items():
            per_link[name] = per_link.get(name, 0.0) + seconds
    busiest = max(per_link.values(), default=0.0)
    return max(solo, busiest + latency)
