"""GPT-2-like decoder-only Transformer (extension workload).

Not part of the paper's evaluation grid, but the paper motivates RaNNC
with GPT-3-scale models; this graph demonstrates that the partitioner is
architecture-agnostic (pre-LN blocks, causal mask, no NSP head).
"""

from __future__ import annotations

import math

from repro.graph.builder import GraphBuilder, Sym
from repro.graph.ir import DataType, TaskGraph
from repro.models.configs import GPTConfig


def _decoder_layer(b: GraphBuilder, cfg: GPTConfig, x: Sym, mask: Sym, idx: int) -> Sym:
    """Pre-LN decoder layer with causal self-attention."""
    h, a, dh, s = cfg.hidden_size, cfg.num_heads, cfg.head_dim, cfg.seq_len
    p = f"layer{idx}"

    ln1 = b.layernorm(x, name=f"{p}.ln1")
    q = b.linear(ln1, h, name=f"{p}.attn.q")
    k = b.linear(ln1, h, name=f"{p}.attn.k")
    v = b.linear(ln1, h, name=f"{p}.attn.v")

    qh = b.op("reshape", [q], {"shape": (1, s, a, dh)}, name=f"{p}.attn.q_split")
    qh = b.op("transpose", [qh], {"perm": (0, 2, 1, 3)}, name=f"{p}.attn.q_perm")
    kh = b.op("reshape", [k], {"shape": (1, s, a, dh)}, name=f"{p}.attn.k_split")
    kh = b.op("transpose", [kh], {"perm": (0, 2, 3, 1)}, name=f"{p}.attn.k_perm")
    vh = b.op("reshape", [v], {"shape": (1, s, a, dh)}, name=f"{p}.attn.v_split")
    vh = b.op("transpose", [vh], {"perm": (0, 2, 1, 3)}, name=f"{p}.attn.v_perm")

    scores = b.op("matmul", [qh, kh], name=f"{p}.attn.scores")
    scores = b.op(
        "scale", [scores], {"factor": 1.0 / math.sqrt(dh)}, name=f"{p}.attn.scale"
    )
    scores = b.op("add", [scores, mask], name=f"{p}.attn.causal_mask")
    probs = b.op("softmax", [scores], name=f"{p}.attn.softmax")
    ctx = b.op("matmul", [probs, vh], name=f"{p}.attn.context")
    ctx = b.op("transpose", [ctx], {"perm": (0, 2, 1, 3)}, name=f"{p}.attn.merge_perm")
    ctx = b.op("reshape", [ctx], {"shape": (1, s, h)}, name=f"{p}.attn.merge")
    attn_out = b.linear(ctx, h, name=f"{p}.attn.out")
    x = b.op("add", [x, attn_out], name=f"{p}.attn.residual")

    ln2 = b.layernorm(x, name=f"{p}.ln2")
    ff = b.linear(ln2, 4 * h, name=f"{p}.ffn.up")
    ff = b.op("gelu", [ff], name=f"{p}.ffn.gelu")
    ff = b.linear(ff, h, name=f"{p}.ffn.down")
    return b.op("add", [x, ff], name=f"{p}.ffn.residual")


def gpt3_like(
    depth: int = 96,
    hidden_size: int = 1536,
    num_heads: int = 16,
    seq_len: int = 512,
    vocab_size: int = 32000,
) -> TaskGraph:
    """Synthetic GPT-3-shaped decoder graph with a configurable depth.

    The planner-scaling workload (``benchmarks/bench_scale.py``,
    docs/SCALING.md): each decoder layer traces to ~25 tasks, so
    ``depth=420`` yields a >10k-task graph -- the regime where the dense
    profile tensors stop fitting and the banded DP engine takes over.
    The per-layer width is kept at trainable-on-V100 scale so the stage
    search exercises real feasibility trade-offs instead of failing on
    memory outright.
    """
    cfg = GPTConfig(
        hidden_size=hidden_size,
        num_layers=depth,
        num_heads=num_heads,
        seq_len=seq_len,
        vocab_size=vocab_size,
    )
    return build_gpt(cfg)


def build_gpt(cfg: GPTConfig = GPTConfig()) -> TaskGraph:
    """Trace a GPT-2-like language-modeling graph (next-token loss)."""
    b = GraphBuilder(cfg.name)
    h, s = cfg.hidden_size, cfg.seq_len

    input_ids = b.input("input_ids", (1, s), DataType.INT64)
    # additive causal mask (upper-triangular -inf), supplied as model input
    causal_mask = b.input("causal_mask", (1, 1, s, s))
    labels = b.input("labels", (1, s), DataType.INT64)

    tok_table = b.param("wte", (cfg.vocab_size, h))
    pos_table = b.param("wpe", (s, h))

    x = b.op("embedding", [input_ids, tok_table], name="embed.tok")
    x = b.op("add", [x, pos_table], name="embed.add_pos")

    for layer in range(cfg.num_layers):
        x = _decoder_layer(b, cfg, x, causal_mask, layer)

    x = b.layernorm(x, name="final_ln")
    lm_w = b.op("transpose", [tok_table], name="lm_head.weight_t")
    logits = b.op("matmul", [x, lm_w], name="lm_head")
    loss = b.op("cross_entropy", [logits, labels], name="lm_loss")
    return b.finish([loss])
