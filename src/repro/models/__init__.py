"""Model zoo: traced task graphs for the paper's workloads.

All models are built through :class:`repro.graph.builder.GraphBuilder` the
way RaNNC's PyTorch tracer would record them -- at the granularity of
individual tensor ops, *without any partitioning annotations*.  The zoo
covers the exact configurations evaluated in the paper:

* enlarged BERT (Fig. 4): hidden in {1024, 1536, 2048}, layers in
  {24, 48, 96, 144, 192, 256}, sequence length 512, up to 12.9 B params;
* enlarged BiT-style ResNet (Fig. 5): ResNet{50,101,152} with width
  factor 8, up to 3.7 B params;
* a GPT-2-like decoder (extension beyond the paper's eval);
* small MLP / diamond / Fig. 2-example graphs for tests and examples.
"""

from repro.models.configs import BertConfig, GPTConfig, ResNetConfig, T5Config, t5_11b
from repro.models.bert import build_bert
from repro.models.resnet import build_resnet
from repro.models.gpt import build_gpt, gpt3_like
from repro.models.t5 import build_t5
from repro.models.mlp import build_diamond, build_fig2_example, build_mlp

__all__ = [
    "BertConfig",
    "GPTConfig",
    "ResNetConfig",
    "T5Config",
    "build_bert",
    "build_diamond",
    "build_fig2_example",
    "build_gpt",
    "build_mlp",
    "build_resnet",
    "build_t5",
    "gpt3_like",
    "t5_11b",
]
