"""Enlarged (BiT-style) ResNet traced at tensor-op granularity.

Follows torchvision's ResNet-v1 bottleneck architecture -- the "model
description available at PyTorch's official repository" that the paper
feeds to RaNNC and data parallelism -- with every convolution's filter
count multiplied by a Big-Transfer-style ``width_factor`` (the paper uses
8, yielding 3.7 B parameters for ResNet152x8).

Unlike BERT, layer compute here is strongly *imbalanced* (early layers see
large spatial extents, late layers many channels), which is the paper's
argument for automatic block balancing over manual stage selection
(Sec. IV-B: "the ResNet model architecture has many more imbalanced layers
than BERT").
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder, Sym
from repro.graph.ir import DataType, TaskGraph
from repro.models.configs import ResNetConfig

_EXPANSION = 4


def _bottleneck(
    b: GraphBuilder, x: Sym, width: int, stride: int, idx: str
) -> Sym:
    """Standard ResNet-v1 bottleneck: 1x1 -> 3x3 -> 1x1 with projection
    shortcut when shape changes."""
    in_ch = x.shape[1]
    out_ch = width * _EXPANSION

    h = b.conv2d(x, width, kernel=1, name=f"{idx}.conv1")
    h = b.batchnorm2d(h, name=f"{idx}.bn1")
    h = b.op("relu", [h], name=f"{idx}.relu1")

    h = b.conv2d(h, width, kernel=3, stride=stride, padding=1, name=f"{idx}.conv2")
    h = b.batchnorm2d(h, name=f"{idx}.bn2")
    h = b.op("relu", [h], name=f"{idx}.relu2")

    h = b.conv2d(h, out_ch, kernel=1, name=f"{idx}.conv3")
    h = b.batchnorm2d(h, name=f"{idx}.bn3")

    if stride != 1 or in_ch != out_ch:
        sc = b.conv2d(x, out_ch, kernel=1, stride=stride, name=f"{idx}.downsample")
        sc = b.batchnorm2d(sc, name=f"{idx}.downsample_bn")
    else:
        sc = x

    h = b.op("add", [h, sc], name=f"{idx}.residual")
    return b.op("relu", [h], name=f"{idx}.relu3")


def build_resnet(cfg: ResNetConfig = ResNetConfig()) -> TaskGraph:
    """Trace an enlarged ResNet classification graph (cross-entropy loss)."""
    b = GraphBuilder(cfg.name)
    wf = cfg.width_factor

    x = b.input("images", (1, 3, cfg.image_size, cfg.image_size))
    labels = b.input("labels", (1,), DataType.INT64)

    h = b.conv2d(x, 64 * wf, kernel=7, stride=2, padding=3, name="stem.conv")
    h = b.batchnorm2d(h, name="stem.bn")
    h = b.op("relu", [h], name="stem.relu")
    h = b.op(
        "maxpool2d", [h], {"kernel": 3, "stride": 2, "padding": 1}, name="stem.pool"
    )

    widths = [64 * wf, 128 * wf, 256 * wf, 512 * wf]
    for stage, (width, blocks) in enumerate(zip(widths, cfg.stage_blocks)):
        for block in range(blocks):
            stride = 2 if (stage > 0 and block == 0) else 1
            h = _bottleneck(b, h, width, stride, f"stage{stage}.block{block}")

    h = b.op("global_avgpool", [h], name="head.pool")
    logits = b.linear(h, cfg.num_classes, name="head.fc")
    loss = b.op("cross_entropy", [logits, labels], name="head.loss")
    return b.finish([loss])
