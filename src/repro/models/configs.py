"""Model configuration dataclasses and the paper's evaluated grids."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class BertConfig:
    """Configuration of an (enlarged) BERT model.

    Defaults give BERT-Large (340 M parameters).  The paper enlarges the
    model by sweeping ``hidden_size`` over {1024, 1536, 2048} and
    ``num_layers`` over {24, 48, 96, 144, 192, 256}; the largest
    (2048 x 256) has 12.9 B parameters.
    """

    hidden_size: int = 1024
    num_layers: int = 24
    num_heads: int = 16
    seq_len: int = 512
    vocab_size: int = 30522
    intermediate_size: int = 0  # 0 -> 4 * hidden_size
    type_vocab_size: int = 2
    include_nsp: bool = True
    tie_word_embeddings: bool = True

    @property
    def ffn_size(self) -> int:
        return self.intermediate_size or 4 * self.hidden_size

    @property
    def head_dim(self) -> int:
        if self.hidden_size % self.num_heads:
            raise ValueError("hidden_size must be divisible by num_heads")
        return self.hidden_size // self.num_heads

    def approx_params(self) -> int:
        """Closed-form parameter count (cross-checked against the traced
        graph in tests)."""
        h, f = self.hidden_size, self.ffn_size
        emb = self.vocab_size * h + self.seq_len * h + self.type_vocab_size * h + 2 * h
        per_layer = (
            4 * (h * h + h)          # q, k, v, attention output projections
            + (h * f + f)            # FFN up
            + (f * h + h)            # FFN down
            + 4 * h                  # two layernorms
        )
        head = h * h + h + 2 * h + (0 if self.tie_word_embeddings else self.vocab_size * h)
        head += self.vocab_size  # decoder bias
        if self.include_nsp:
            head += h * h + h + 2 * h + 2
        return emb + self.num_layers * per_layer + head

    @property
    def name(self) -> str:
        return f"bert_h{self.hidden_size}_l{self.num_layers}"


@dataclass(frozen=True)
class ResNetConfig:
    """Configuration of an (enlarged) BiT-style ResNet.

    ``width_factor`` multiplies every convolution's filter count, following
    Big Transfer (BiT); the paper uses width factor 8, making
    ResNet152x8 a 3.7 B-parameter model.
    """

    depth: int = 50  # one of 50, 101, 152
    width_factor: int = 1
    num_classes: int = 1000
    image_size: int = 224

    BLOCKS = {50: (3, 4, 6, 3), 101: (3, 4, 23, 3), 152: (3, 8, 36, 3)}

    @property
    def stage_blocks(self) -> Tuple[int, int, int, int]:
        try:
            return self.BLOCKS[self.depth]
        except KeyError:
            raise ValueError(f"unsupported ResNet depth {self.depth}") from None

    @property
    def name(self) -> str:
        return f"resnet{self.depth}x{self.width_factor}"


@dataclass(frozen=True)
class GPTConfig:
    """GPT-2-like decoder-only Transformer (extension workload)."""

    hidden_size: int = 768
    num_layers: int = 12
    num_heads: int = 12
    seq_len: int = 1024
    vocab_size: int = 50257

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def name(self) -> str:
        return f"gpt_h{self.hidden_size}_l{self.num_layers}"


@dataclass(frozen=True)
class T5Config:
    """T5-style encoder-decoder configuration (extension workload).

    Defaults approximate T5-Small's shape; ``t5_11b()`` below gives the
    paper-motivating 11 B-parameter scale."""

    hidden_size: int = 512
    num_encoder_layers: int = 6
    num_decoder_layers: int = 6
    num_heads: int = 8
    enc_seq_len: int = 512
    dec_seq_len: int = 128
    vocab_size: int = 32128
    intermediate_size: int = 0  # 0 -> 4 * hidden_size

    @property
    def ffn_size(self) -> int:
        return self.intermediate_size or 4 * self.hidden_size

    @property
    def head_dim(self) -> int:
        if self.hidden_size % self.num_heads:
            raise ValueError("hidden_size must be divisible by num_heads")
        return self.hidden_size // self.num_heads

    @property
    def name(self) -> str:
        return (
            f"t5_h{self.hidden_size}"
            f"_e{self.num_encoder_layers}d{self.num_decoder_layers}"
        )


def t5_11b() -> T5Config:
    """Roughly T5-XXL scale (the 11 B-parameter model the paper cites)."""
    return T5Config(
        hidden_size=4096, num_encoder_layers=24, num_decoder_layers=24,
        num_heads=64, intermediate_size=10240,
    )


# The exact grids of the paper's evaluation -------------------------------

FIG4_HIDDEN_SIZES: List[int] = [1024, 1536, 2048]
FIG4_NUM_LAYERS: List[int] = [24, 48, 96, 144, 192, 256]

FIG5_RESNETS: List[ResNetConfig] = [
    ResNetConfig(depth=50, width_factor=8),
    ResNetConfig(depth=101, width_factor=8),
    ResNetConfig(depth=152, width_factor=8),
]
