"""T5-style encoder-decoder Transformer (extension workload).

The paper's introduction opens with T5 (11 B parameters) as a motivating
model; this graph adds the encoder-decoder *topology* to the zoo.  It
matters to the partitioner beyond size: the encoder's output feeds the
cross-attention of EVERY decoder layer, so the task DAG is not a chain --
one boundary value fans out across many prospective stages, exercising
convexity checks and boundary-byte accounting on skip-like edges.

Simplifications vs. real T5 (which do not change the partitioning
structure): learned absolute position embeddings instead of relative
position biases, GELU instead of gated GeLU, and a standard LayerNorm.
"""

from __future__ import annotations

import math

from repro.graph.builder import GraphBuilder, Sym
from repro.graph.ir import DataType, TaskGraph
from repro.models.configs import T5Config


def _attention(
    b: GraphBuilder,
    cfg: T5Config,
    q_src: Sym,
    kv_src: Sym,
    mask: Sym,
    q_len: int,
    kv_len: int,
    prefix: str,
) -> Sym:
    """Multi-head attention; ``q_src`` and ``kv_src`` may differ
    (cross-attention reads the encoder output)."""
    h, a, dh = cfg.hidden_size, cfg.num_heads, cfg.head_dim
    q = b.linear(q_src, h, name=f"{prefix}.q")
    k = b.linear(kv_src, h, name=f"{prefix}.k")
    v = b.linear(kv_src, h, name=f"{prefix}.v")

    qh = b.op("reshape", [q], {"shape": (1, q_len, a, dh)}, name=f"{prefix}.q_split")
    qh = b.op("transpose", [qh], {"perm": (0, 2, 1, 3)}, name=f"{prefix}.q_perm")
    kh = b.op("reshape", [k], {"shape": (1, kv_len, a, dh)}, name=f"{prefix}.k_split")
    kh = b.op("transpose", [kh], {"perm": (0, 2, 3, 1)}, name=f"{prefix}.k_perm")
    vh = b.op("reshape", [v], {"shape": (1, kv_len, a, dh)}, name=f"{prefix}.v_split")
    vh = b.op("transpose", [vh], {"perm": (0, 2, 1, 3)}, name=f"{prefix}.v_perm")

    scores = b.op("matmul", [qh, kh], name=f"{prefix}.scores")
    scores = b.op("scale", [scores], {"factor": 1.0 / math.sqrt(dh)},
                  name=f"{prefix}.scale")
    scores = b.op("add", [scores, mask], name=f"{prefix}.mask")
    probs = b.op("softmax", [scores], name=f"{prefix}.softmax")
    ctx = b.op("matmul", [probs, vh], name=f"{prefix}.context")
    ctx = b.op("transpose", [ctx], {"perm": (0, 2, 1, 3)},
               name=f"{prefix}.merge_perm")
    ctx = b.op("reshape", [ctx], {"shape": (1, q_len, h)}, name=f"{prefix}.merge")
    return b.linear(ctx, h, name=f"{prefix}.out")


def _ffn(b: GraphBuilder, cfg: T5Config, x: Sym, prefix: str) -> Sym:
    ff = b.linear(x, cfg.ffn_size, name=f"{prefix}.up")
    ff = b.op("gelu", [ff], name=f"{prefix}.gelu")
    return b.linear(ff, cfg.hidden_size, name=f"{prefix}.down")


def build_t5(cfg: T5Config = None) -> TaskGraph:
    """Trace a T5-style seq2seq graph (teacher-forced LM loss)."""
    cfg = cfg or T5Config()
    b = GraphBuilder(cfg.name)
    h = cfg.hidden_size
    se, sd = cfg.enc_seq_len, cfg.dec_seq_len

    input_ids = b.input("input_ids", (1, se), DataType.INT64)
    decoder_ids = b.input("decoder_input_ids", (1, sd), DataType.INT64)
    enc_mask = b.input("encoder_mask", (1, 1, 1, se))
    causal_mask = b.input("causal_mask", (1, 1, sd, sd))
    cross_mask = b.input("cross_mask", (1, 1, 1, se))
    labels = b.input("labels", (1, sd), DataType.INT64)

    shared = b.param("shared.embedding", (cfg.vocab_size, h))
    enc_pos = b.param("encoder.position", (se, h))
    dec_pos = b.param("decoder.position", (sd, h))

    # ---- encoder -----------------------------------------------------
    x = b.op("embedding", [input_ids, shared], name="encoder.embed")
    x = b.op("add", [x, enc_pos], name="encoder.add_pos")
    for i in range(cfg.num_encoder_layers):
        p = f"encoder.layer{i}"
        ln = b.layernorm(x, name=f"{p}.ln1")
        attn = _attention(b, cfg, ln, ln, enc_mask, se, se, f"{p}.attn")
        x = b.op("add", [x, attn], name=f"{p}.attn_residual")
        ln = b.layernorm(x, name=f"{p}.ln2")
        x = b.op("add", [x, _ffn(b, cfg, ln, f"{p}.ffn")],
                 name=f"{p}.ffn_residual")
    memory = b.layernorm(x, name="encoder.final_ln")

    # ---- decoder (cross-attends to `memory` in every layer) ----------
    y = b.op("embedding", [decoder_ids, shared], name="decoder.embed")
    y = b.op("add", [y, dec_pos], name="decoder.add_pos")
    for i in range(cfg.num_decoder_layers):
        p = f"decoder.layer{i}"
        ln = b.layernorm(y, name=f"{p}.ln1")
        self_attn = _attention(b, cfg, ln, ln, causal_mask, sd, sd,
                               f"{p}.self_attn")
        y = b.op("add", [y, self_attn], name=f"{p}.self_residual")
        ln = b.layernorm(y, name=f"{p}.ln2")
        cross = _attention(b, cfg, ln, memory, cross_mask, sd, se,
                           f"{p}.cross_attn")
        y = b.op("add", [y, cross], name=f"{p}.cross_residual")
        ln = b.layernorm(y, name=f"{p}.ln3")
        y = b.op("add", [y, _ffn(b, cfg, ln, f"{p}.ffn")],
                 name=f"{p}.ffn_residual")
    y = b.layernorm(y, name="decoder.final_ln")

    lm_w = b.op("transpose", [shared], name="lm_head.weight_t")
    logits = b.op("matmul", [y, lm_w], name="lm_head")
    loss = b.op("cross_entropy", [logits, labels], name="lm_loss")
    return b.finish([loss])
