"""Small synthetic graphs: MLP chains, a branching diamond, and the
running example of the paper's Fig. 2(b).

These are the workhorses of the test suite and of the NumPy-runtime
numerical-equivalence experiments (real training fits in milliseconds).
"""

from __future__ import annotations

from typing import Sequence

from repro.graph.builder import GraphBuilder
from repro.graph.ir import TaskGraph


def build_mlp(
    widths: Sequence[int] = (64, 128, 128, 64, 10),
    activation: str = "relu",
    name: str = "mlp",
) -> TaskGraph:
    """A plain MLP regression model: ``len(widths) - 1`` linear layers with
    ``activation`` between them and an MSE loss at the end."""
    if len(widths) < 2:
        raise ValueError("need at least input and output widths")
    b = GraphBuilder(name)
    x = b.input("x", (1, widths[0]))
    h = x
    for i, width in enumerate(widths[1:]):
        h = b.linear(h, width, name=f"fc{i}")
        if i < len(widths) - 2:
            h = b.op(activation, [h], name=f"act{i}")
    y = b.input("y", (1, widths[-1]))
    loss = b.op("mse_loss", [h, y], name="loss")
    return b.finish([loss])


def build_diamond(width: int = 32, name: str = "diamond") -> TaskGraph:
    """A branch-and-merge graph::

            fc_in
           /     \\
        fc_a     fc_b
           \\     /
            add -> fc_out -> loss

    Exercises convexity: {fc_in, fc_a, fc_out} is NOT convex (a path runs
    through fc_b), while {fc_a}, {fc_a, add, fc_b} etc. are.
    """
    b = GraphBuilder(name)
    x = b.input("x", (1, width))
    h = b.linear(x, width, name="fc_in")
    left = b.linear(h, width, name="fc_a")
    left = b.op("relu", [left], name="act_a")
    right = b.linear(h, width, name="fc_b")
    right = b.op("relu", [right], name="act_b")
    merged = b.op("add", [left, right], name="merge")
    out = b.linear(merged, width, name="fc_out")
    y = b.input("y", (1, width))
    loss = b.op("mse_loss", [out, y], name="loss")
    return b.finish([loss])


def build_fig2_example(dim: int = 8) -> TaskGraph:
    """The task graph of the paper's Fig. 2(b).

    Input ``x`` feeds ``matmul(w1^T)``; the result and ``x`` are added; the
    sum feeds ``matmul(w3^T)``.  The two weight transposes are *constant
    tasks* whose outputs flow into non-constant matmuls -- the example the
    paper uses to illustrate atomic subcomponents C1..C3 (transposes get
    folded into the consuming matmul's subcomponent).
    """
    b = GraphBuilder("fig2")
    x = b.input("x", (1, dim))
    w1 = b.param("w1", (dim, dim))
    w3 = b.param("w3", (dim, dim))

    w1t = b.op("transpose", [w1], name="transpose_w1")   # constant task
    m1 = b.op("matmul", [x, w1t], name="matmul_1")       # C2's non-constant task
    s = b.op("add", [x, m1], name="add_1")               # C1's non-constant task
    w3t = b.op("transpose", [w3], name="transpose_w3")   # constant task
    m2 = b.op("matmul", [s, w3t], name="matmul_2")       # C3's non-constant task
    y = b.input("y", (1, dim))
    loss = b.op("mse_loss", [m2, y], name="loss")
    return b.finish([loss])


def build_shared_constant(dim: int = 8) -> TaskGraph:
    """A graph where one constant task's output feeds TWO non-constant
    consumers -- the cloning case of atomic partitioning ("the output of a
    constant task can have multiple outgoing edges that target different
    subcomponents, so ... we clone the task and its (constant)
    predecessors")."""
    b = GraphBuilder("shared_const")
    x = b.input("x", (1, dim))
    w = b.param("w", (dim, dim))
    wt = b.op("transpose", [w], name="transpose_w")  # shared constant task
    m1 = b.op("matmul", [x, wt], name="matmul_a")
    m2 = b.op("matmul", [x, wt], name="matmul_b")
    s = b.op("add", [m1, m2], name="add_ab")
    y = b.input("y", (1, dim))
    loss = b.op("mse_loss", [s, y], name="loss")
    return b.finish([loss])
