"""Enlarged BERT traced at tensor-op granularity.

The graph reproduces the structure of NVIDIA's BERT pretraining model (the
description the paper feeds to RaNNC unmodified): embeddings, ``L``
transformer encoder layers, the masked-LM head and (optionally) the
next-sentence-prediction head.

Two structural details matter for the partitioner and are kept faithful:

* the MLM decoder re-uses the *transposed* token-embedding matrix
  (weight tying).  The ``transpose`` of a parameter is a **constant task**
  -- exactly the pattern in Fig. 2(b) where transposes of ``w1``/``w3``
  get folded into the consuming matmul's atomic subcomponent and cloned if
  shared;
* this final vocabulary projection is a (S*H) x (H*V) matmul which
  dominates per-layer compute (about 40 % of total time in BERT-Base,
  Sec. II-C) -- the motivating example for automatic block balancing.
"""

from __future__ import annotations

import math

from repro.graph.builder import GraphBuilder, Sym
from repro.graph.ir import DataType, TaskGraph
from repro.models.configs import BertConfig


def _encoder_layer(b: GraphBuilder, cfg: BertConfig, x: Sym, mask: Sym, idx: int) -> Sym:
    """One transformer encoder layer (post-LN, as in original BERT)."""
    h, a, dh, s = cfg.hidden_size, cfg.num_heads, cfg.head_dim, cfg.seq_len
    p = f"layer{idx}"

    q = b.linear(x, h, name=f"{p}.attn.q")
    k = b.linear(x, h, name=f"{p}.attn.k")
    v = b.linear(x, h, name=f"{p}.attn.v")

    qh = b.op("reshape", [q], {"shape": (1, s, a, dh)}, name=f"{p}.attn.q_split")
    qh = b.op("transpose", [qh], {"perm": (0, 2, 1, 3)}, name=f"{p}.attn.q_perm")
    kh = b.op("reshape", [k], {"shape": (1, s, a, dh)}, name=f"{p}.attn.k_split")
    kh = b.op("transpose", [kh], {"perm": (0, 2, 3, 1)}, name=f"{p}.attn.k_perm")
    vh = b.op("reshape", [v], {"shape": (1, s, a, dh)}, name=f"{p}.attn.v_split")
    vh = b.op("transpose", [vh], {"perm": (0, 2, 1, 3)}, name=f"{p}.attn.v_perm")

    scores = b.op("matmul", [qh, kh], name=f"{p}.attn.scores")
    scores = b.op(
        "scale", [scores], {"factor": 1.0 / math.sqrt(dh)}, name=f"{p}.attn.scale"
    )
    scores = b.op("add", [scores, mask], name=f"{p}.attn.mask")
    probs = b.op("softmax", [scores], name=f"{p}.attn.softmax")
    probs = b.op("dropout", [probs], {"p": 0.1}, name=f"{p}.attn.drop")

    ctx = b.op("matmul", [probs, vh], name=f"{p}.attn.context")
    ctx = b.op("transpose", [ctx], {"perm": (0, 2, 1, 3)}, name=f"{p}.attn.merge_perm")
    ctx = b.op("reshape", [ctx], {"shape": (1, s, h)}, name=f"{p}.attn.merge")

    attn_out = b.linear(ctx, h, name=f"{p}.attn.out")
    attn_out = b.op("dropout", [attn_out], {"p": 0.1}, name=f"{p}.attn.out_drop")
    x = b.op("add", [x, attn_out], name=f"{p}.attn.residual")
    x = b.layernorm(x, name=f"{p}.attn.ln")

    ff = b.linear(x, cfg.ffn_size, name=f"{p}.ffn.up")
    ff = b.op("gelu", [ff], name=f"{p}.ffn.gelu")
    ff = b.linear(ff, h, name=f"{p}.ffn.down")
    ff = b.op("dropout", [ff], {"p": 0.1}, name=f"{p}.ffn.drop")
    x = b.op("add", [x, ff], name=f"{p}.ffn.residual")
    return b.layernorm(x, name=f"{p}.ffn.ln")


def build_bert(cfg: BertConfig = BertConfig()) -> TaskGraph:
    """Trace an enlarged BERT pretraining graph (MLM + optional NSP loss)."""
    b = GraphBuilder(cfg.name)
    h, s = cfg.hidden_size, cfg.seq_len

    input_ids = b.input("input_ids", (1, s), DataType.INT64)
    token_type_ids = b.input("token_type_ids", (1, s), DataType.INT64)
    # additive attention mask, already expanded the way NVIDIA's model does
    attn_mask = b.input("attention_mask", (1, 1, 1, s))
    mlm_labels = b.input("mlm_labels", (1, s), DataType.INT64)

    tok_table = b.param("embeddings.word", (cfg.vocab_size, h))
    pos_table = b.param("embeddings.position", (s, h))
    seg_table = b.param("embeddings.token_type", (cfg.type_vocab_size, h))

    tok = b.op("embedding", [input_ids, tok_table], name="embeddings.word_lookup")
    seg = b.op("embedding", [token_type_ids, seg_table], name="embeddings.type_lookup")
    x = b.op("add", [tok, pos_table], name="embeddings.add_pos")
    x = b.op("add", [x, seg], name="embeddings.add_type")
    x = b.layernorm(x, name="embeddings.ln")
    x = b.op("dropout", [x], {"p": 0.1}, name="embeddings.drop")

    for layer in range(cfg.num_layers):
        x = _encoder_layer(b, cfg, x, attn_mask, layer)

    # masked-LM head: transform + tied-decoder projection to the vocabulary
    t = b.linear(x, h, name="mlm.transform")
    t = b.op("gelu", [t], name="mlm.gelu")
    t = b.layernorm(t, name="mlm.ln")
    if cfg.tie_word_embeddings:
        # constant task: transpose of the embedding parameter (Fig. 2 pattern)
        dec_w = b.op("transpose", [tok_table], name="mlm.decoder_weight_t")
    else:
        dec_w = b.param("mlm.decoder.weight_t", (h, cfg.vocab_size))
    logits = b.op("matmul", [t, dec_w], name="mlm.decoder")
    dec_bias = b.param("mlm.decoder.bias", (cfg.vocab_size,))
    logits = b.op("add", [logits, dec_bias], name="mlm.decoder_bias")
    mlm_loss = b.op("cross_entropy", [logits, mlm_labels], name="mlm.loss")

    outputs = [mlm_loss]
    if cfg.include_nsp:
        nsp_labels = b.input("nsp_labels", (1,), DataType.INT64)
        cls = b.op("slice_rows", [x], {"start": 0, "stop": 1}, name="nsp.take_cls")
        cls = b.op("reshape", [cls], {"shape": (1, h)}, name="nsp.squeeze")
        pooled = b.linear(cls, h, name="nsp.pooler")
        pooled = b.op("tanh", [pooled], name="nsp.tanh")
        nsp_logits = b.linear(pooled, 2, name="nsp.classifier")
        nsp_loss = b.op("cross_entropy", [nsp_logits, nsp_labels], name="nsp.loss")
        total = b.op("add", [mlm_loss, nsp_loss], name="total_loss")
        outputs = [total]

    return b.finish(outputs)
