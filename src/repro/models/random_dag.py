"""Random layered-DAG model generator for stress and property testing.

The paper's workloads are mostly chains; the partitioner, however, claims
to handle arbitrary model graphs.  This generator produces random
*layered* DAGs -- each node consumes one or two earlier values (skip
connections allowed), with occasional constant transposes of weights (the
Fig. 2 pattern) -- all executable by the NumPy runtime, so property tests
can assert end-to-end invariants (atomic/block/DP structure, partitioned
vs. whole numerical equivalence) on shapes no hand-written model covers.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graph.builder import GraphBuilder, Sym
from repro.graph.ir import TaskGraph


def build_random_dag(
    seed: int = 0,
    num_nodes: int = 12,
    width: int = 16,
    skip_prob: float = 0.35,
    const_prob: float = 0.15,
    name: Optional[str] = None,
) -> TaskGraph:
    """Generate a random executable model graph.

    Args:
        seed: RNG seed (graphs are deterministic per seed).
        num_nodes: number of generated interior compute nodes.
        width: feature width of every value (uniform so any pair of
            values can be combined).
        skip_prob: probability a node consumes a second, earlier value
            (creating branch/merge structure).
        const_prob: probability a matmul uses a constant-transposed
            weight (exercising constant folding/cloning).

    Returns:
        A validated graph ending in an MSE loss.
    """
    rng = np.random.default_rng(seed)
    b = GraphBuilder(name or f"random_dag_{seed}")
    x = b.input("x", (1, width))
    values: List[Sym] = [x]

    for i in range(num_nodes):
        src = values[int(rng.integers(0, len(values)))]
        kind = rng.random()
        if kind < 0.45:
            if rng.random() < const_prob:
                # matmul with a transposed weight: constant task feeding a
                # non-constant one (Fig. 2 pattern)
                w = b.param(f"w{i}", (width, width))
                wt = b.op("transpose", [w], name=f"wt{i}")
                out = b.op("matmul", [src, wt], name=f"mm{i}")
            else:
                out = b.linear(src, width, name=f"fc{i}")
        elif kind < 0.65:
            op = ["relu", "gelu", "tanh", "sigmoid"][int(rng.integers(0, 4))]
            out = b.op(op, [src], name=f"{op}{i}")
        elif kind < 0.8:
            out = b.layernorm(src, name=f"ln{i}")
        else:
            other = values[int(rng.integers(0, len(values)))]
            out = b.op("add", [src, other], name=f"add{i}")
        if rng.random() < skip_prob and len(values) > 1:
            other = values[int(rng.integers(0, len(values)))]
            out = b.op("add", [out, other], name=f"skip{i}")
        values.append(out)

    # fan everything unused into the head so no value dangles
    head = values[-1]
    used = set()
    for task in b.graph.tasks.values():
        used.update(task.inputs)
    dangling = [
        v for v in values[:-1]
        if v.name not in used and v.name != x.name
    ]
    for j, v in enumerate(dangling):
        head = b.op("add", [head, v], name=f"collect{j}")

    y = b.input("y", (1, width))
    loss = b.op("mse_loss", [head, y], name="loss")
    graph = b.finish([loss])

    from repro.graph.validate import validate_graph

    validate_graph(graph)
    return graph


def random_batch(graph: TaskGraph, batch_size: int, seed: int = 0):
    """Synthesize a runtime batch for a random-DAG graph."""
    rng = np.random.default_rng(seed)
    feeds = {}
    for value in graph.inputs:
        shape = (batch_size,) + value.shape[1:]
        feeds[value.name] = rng.standard_normal(shape)
    return feeds
