"""Megatron-LM-style tensor partitioning (manual, Transformer-only).

Implements Megatron's intra-layer model parallelism as a cost/memory
policy: attention and FFN matmuls (and the embedding table) are split
``t``-ways with two activation allreduces per layer per pass; layernorms,
residual adds and dropout buffers are replicated.  Faithful to the paper's
experimental notes:

* Transformer-only -- inapplicable to ResNet (Sec. IV-A "Models");
* no gradient accumulation, so each device processes its full data-
  parallel shard at once -- the memory behaviour behind "the largest model
  RaNNC could train was five times larger than those Megatron-LM could";
* activation buffers of the distributed matmuls are *not* reduced by
  ``t`` after their allreduce ("the size of the buffer to store the
  results is not reduced"), while intra-matmul intermediates are;
* gradient checkpointing enabled (the authors added it to every baseline).

The degree ``t`` sweeps powers of two up to the device count; the best
feasible configuration is reported (the paper manually tried all).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.baselines.base import FrameworkResult
from repro.graph.ir import TaskGraph
from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import Precision
from repro.models.configs import BertConfig
from repro.planner import (
    FRAMEWORK_RESULT,
    PlannerConfig,
    PlannerPass,
    PlanningContext,
    run_framework_pipeline,
)
from repro.profiler.profiler import GraphProfiler

#: op types whose compute and weights Megatron splits across t devices
_SPLIT_OPS = frozenset({"matmul", "linear", "softmax", "gelu", "embedding"})


def _is_transformer(graph: TaskGraph) -> bool:
    return any(t.startswith("layer0.attn.") for t in graph.tasks)


class MegatronPass(PlannerPass):
    """Planner pass sweeping Megatron's tensor-parallel degree ``t``."""

    name = "megatron_search"
    produces = (FRAMEWORK_RESULT,)

    def __init__(self, cfg: BertConfig) -> None:
        self.cfg = cfg

    def run(self, ctx: PlanningContext) -> Dict[str, Any]:
        result = _search_megatron(
            ctx.graph,
            self.cfg,
            ctx.cluster,
            ctx.config.batch_size,
            ctx.config.precision,
            ctx.ensure_profiler(),
        )
        ctx.put(FRAMEWORK_RESULT, result)
        return {"feasible": result.feasible}


def run_megatron(
    graph: TaskGraph,
    cfg: BertConfig,
    cluster: ClusterSpec,
    batch_size: int,
    precision: Precision = Precision.FP32,
    profiler: Optional[GraphProfiler] = None,
) -> FrameworkResult:
    """Evaluate Megatron-LM tensor parallelism on a BERT-family graph."""
    return run_framework_pipeline(
        graph,
        cluster,
        PlannerConfig(
            batch_size=batch_size, precision=precision, validate=False
        ),
        [MegatronPass(cfg)],
        profiler=profiler,
    )


def _search_megatron(
    graph: TaskGraph,
    cfg: BertConfig,
    cluster: ClusterSpec,
    batch_size: int,
    precision: Precision,
    profiler: GraphProfiler,
) -> FrameworkResult:
    if not _is_transformer(graph):
        return FrameworkResult(
            "megatron_lm", False,
            reason="tensor partitioning applies only to Transformer models",
        )
    world = cluster.total_devices
    M = cluster.device.usable_memory
    device = cluster.device
    act_factor = precision.activation_bytes_factor

    names = list(graph.tasks)
    idx_all = profiler.indices_of(names)
    split_mask = np.array(
        [graph.tasks[t].op_type in _SPLIT_OPS for t in names]
    )
    # unique parameter split: weights of split ops shard t-ways
    split_params = 0
    seen: set = set()
    for i, _tname in enumerate(names):
        for pid in profiler._task_param_ids[i]:
            if pid in seen:
                continue
            seen.add(pid)
            if split_mask[i]:
                split_params += int(profiler._param_sizes_arr[pid])
    total_params = graph.num_parameters()
    unsplit_params = total_params - split_params

    # per-layer checkpoint boundary: one (S, H) activation per layer
    boundary_per_sample = (
        (cfg.num_layers + 1) * cfg.seq_len * cfg.hidden_size * 4.0 * act_factor
    )
    # recompute peak: densest single layer's saved activations
    layer_tasks = [t for t in names if t.startswith("layer0.")]
    layer_idx = profiler.indices_of(layer_tasks)
    layer_split = np.array(
        [graph.tasks[t].op_type in _SPLIT_OPS for t in layer_tasks]
    )
    layer_saved_split = float(profiler.saved_bytes[layer_idx][layer_split].sum())
    layer_saved_unsplit = float(
        profiler.saved_bytes[layer_idx][~layer_split].sum()
    )
    # the MLM head's vocabulary logits buffer (vocab-parallel: /t)
    head_logits_per_sample = cfg.seq_len * cfg.vocab_size * 4.0 * act_factor

    best: Optional[FrameworkResult] = None
    t = 1
    while t <= min(world, cfg.num_heads):
        dp_ways = world // t
        if batch_size % dp_ways == 0:
            bs_dev = batch_size // dp_ways  # no gradient accumulation
            params_dev = split_params / t + unsplit_params
            static = profiler.memory_model.static_bytes(int(params_dev))
            act = (
                boundary_per_sample * bs_dev
                + (layer_saved_split / t + layer_saved_unsplit)
                * bs_dev
                * act_factor
                + head_logits_per_sample * bs_dev / t
            )
            memory = static + act
            if memory <= M:
                result = _throughput(
                    profiler, graph, cfg, cluster, batch_size, bs_dev, t,
                    dp_ways, split_mask, idx_all, params_dev, memory,
                )
                if best is None or result.throughput > best.throughput:
                    best = result
        t *= 2

    if best is None:
        return FrameworkResult(
            "megatron_lm", False,
            reason=(
                "no tensor-parallel degree fits device memory "
                "(no gradient accumulation: per-device batch "
                f"{batch_size}/dp_ways must be resident at once)"
            ),
        )
    return best


def _throughput(
    profiler: GraphProfiler,
    graph: TaskGraph,
    cfg: BertConfig,
    cluster: ClusterSpec,
    batch_size: int,
    bs_dev: int,
    t: int,
    dp_ways: int,
    split_mask: np.ndarray,
    idx_all: np.ndarray,
    params_dev: float,
    memory: float,
) -> FrameworkResult:
    tf_all, tb_all = profiler._times_at(bs_dev)
    tf_dev = float(
        tf_all[idx_all][split_mask].sum() / t + tf_all[idx_all][~split_mask].sum()
    )
    tb_dev = float(
        tb_all[idx_all][split_mask].sum() / t + tb_all[idx_all][~split_mask].sum()
    )
    tb_dev += tf_dev  # gradient checkpointing recompute

    act_factor = profiler.precision.activation_bytes_factor
    layer_act_bytes = bs_dev * cfg.seq_len * cfg.hidden_size * 4.0 * act_factor
    # two allreduces per layer per direction (attention out + FFN out)
    spans = t > cluster.devices_per_node
    tensor_comm = (
        cfg.num_layers * 4 * cluster.allreduce_time(layer_act_bytes, t, spans)
    )
    grad_allreduce = cluster.allreduce_time(
        params_dev * 4.0, dp_ways, spans_nodes=cluster.num_nodes > 1
    ) if dp_ways > 1 else 0.0
    opt = params_dev * 28.0 / cluster.device.mem_bandwidth
    iteration = tf_dev + tb_dev + tensor_comm + grad_allreduce + opt
    return FrameworkResult(
        "megatron_lm",
        True,
        throughput=batch_size / iteration,
        iteration_time=iteration,
        config={
            "tensor_parallel": t,
            "data_parallel": dp_ways,
            "per_device_batch": bs_dev,
            "memory_gib": memory / 2**30,
        },
    )
