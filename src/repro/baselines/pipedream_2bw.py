"""PipeDream-2BW: asynchronous 1F1B pipeline with double-buffered weights.

Partitions the model exactly like GPipe-Hybrid ("PipeDream-2BW partitions
a model in the same way as GPipe-Hybrid", Sec. IV-B): equal layer counts
per stage, uniform whole-pipeline replication.  Differences from GPipe:

* **schedule** -- asynchronous one-forward-one-backward with no flush, so
  the pipeline bubble disappears and per-iteration time approaches
  ``MB x max_s(t_f + t_b)``;
* **memory** -- two weight versions are kept resident (the "2BW" double
  buffer: +4 bytes/param) but only ~S microbatches are in flight at once
  instead of all MB;
* **semantics** -- parameter staleness: a microbatch's forward and
  backward may use different weight versions.  The simulator only models
  time; the staleness-free column of Table I records the semantic cost.

The paper could not run 2BW's automatic stage-count planner, so -- like
the authors -- we sweep S over {2, 4, 8, 16} and keep the best.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.baselines.base import FrameworkResult
from repro.baselines.gpipe import (
    _transformer_layer_count,
    _uniform_layer_stages,
    layer_units,
)
from repro.comm.model import stage_boundary_p2p_times
from repro.graph.ir import TaskGraph
from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import Precision
from repro.pipeline.simulator import simulate_async_1f1b
from repro.planner import (
    FRAMEWORK_RESULT,
    PlannerConfig,
    PlannerPass,
    PlanningContext,
    run_framework_pipeline,
)
from repro.profiler.profiler import GraphProfiler


class PipeDream2BWPass(PlannerPass):
    """Planner pass running the PipeDream-2BW (stages, MB) sweep."""

    name = "pipedream_2bw_search"
    produces = (FRAMEWORK_RESULT,)

    def __init__(self, stage_counts: Sequence[int] = (2, 4, 8, 16)) -> None:
        self.stage_counts = tuple(stage_counts)

    def run(self, ctx: PlanningContext) -> Dict[str, Any]:
        result = _search_pipedream_2bw(
            ctx.graph,
            ctx.cluster,
            ctx.config.batch_size,
            self.stage_counts,
            ctx.ensure_profiler(),
        )
        ctx.put(FRAMEWORK_RESULT, result)
        return {"feasible": result.feasible}


def run_pipedream_2bw(
    graph: TaskGraph,
    cluster: ClusterSpec,
    batch_size: int,
    precision: Precision = Precision.FP32,
    stage_counts: Sequence[int] = (2, 4, 8, 16),
    profiler: Optional[GraphProfiler] = None,
) -> FrameworkResult:
    """Evaluate PipeDream-2BW on a Transformer graph."""
    return run_framework_pipeline(
        graph,
        cluster,
        PlannerConfig(
            batch_size=batch_size, precision=precision, validate=False
        ),
        [PipeDream2BWPass(stage_counts)],
        profiler=profiler,
    )


def _search_pipedream_2bw(
    graph: TaskGraph,
    cluster: ClusterSpec,
    batch_size: int,
    stage_counts: Sequence[int],
    profiler: GraphProfiler,
) -> FrameworkResult:
    units = layer_units(graph)
    if _transformer_layer_count(units) == 0:
        return FrameworkResult(
            "pipedream_2bw", False,
            reason="available implementation is specialized to BERT",
        )
    world = cluster.total_devices
    M = cluster.device.usable_memory
    best: Optional[FrameworkResult] = None

    for S in stage_counts:
        if world % S:
            continue
        stages = _uniform_layer_stages(units, S)
        if stages is None:
            continue
        replicas = world // S
        if batch_size % replicas:
            continue
        MB = 1
        while MB <= batch_size // replicas:
            per_pipeline = batch_size // replicas
            if per_pipeline % MB == 0:
                bs_micro = per_pipeline // MB
                tf, tb = [], []
                max_mem, max_param = 0.0, 0
                feasible = True
                for i, tasks in enumerate(stages):
                    prof = profiler.profile(
                        tasks,
                        bs_micro,
                        # 1F1B keeps at most S microbatches in flight
                        microbatches_in_flight=min(MB, S),
                        checkpointing=True,
                        key=("2bw", S, i),
                    )
                    memory = prof.memory + prof.param_count * 4.0  # 2nd buffer
                    if memory > M:
                        feasible = False
                        break
                    max_mem = max(max_mem, memory)
                    max_param = max(max_param, prof.param_count)
                    # boundary-aware p2p: a stage boundary that crosses
                    # nodes pays the inter-node rate, not NVLink
                    send, recv = stage_boundary_p2p_times(
                        cluster, [1] * S, replicas, i,
                        prof.out_bytes, prof.in_bytes,
                    )
                    tf.append(prof.time_fwd + send)
                    tb.append(prof.time_bwd + recv)
                if feasible:
                    pipe = simulate_async_1f1b(tf, tb, MB)
                    allreduce = (
                        cluster.allreduce_time(
                            max_param * 4.0, replicas,
                            spans_nodes=cluster.num_nodes > 1,
                        )
                        if replicas > 1
                        else 0.0
                    )
                    opt = max_param * 28.0 / cluster.device.mem_bandwidth
                    iteration = pipe + allreduce + opt
                    result = FrameworkResult(
                        "pipedream_2bw",
                        True,
                        throughput=batch_size / iteration,
                        iteration_time=iteration,
                        config={
                            "stages": S,
                            "replicas": replicas,
                            "microbatches": MB,
                            "memory_gib": max_mem / 2**30,
                        },
                    )
                    if best is None or result.throughput > best.throughput:
                        best = result
            MB *= 2
    if best is None:
        return FrameworkResult(
            "pipedream_2bw", False,
            reason="no (stages, microbatches) setting fits device memory",
        )
    return best
