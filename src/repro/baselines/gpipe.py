"""GPipe baselines: GPipe-Hybrid and GPipe-Model.

*GPipe-Hybrid* (the PipeDream-2BW authors' PyTorch port used in Fig. 4)
splits a Transformer into ``S`` stages of equal *layer counts* -- the
manual rewriting the paper contrasts with RaNNC -- and replicates the
whole pipeline uniformly (``world / S`` copies).  Following Sec. IV-B we
sweep S over {2, 4, 8, 16}, require the layer count to divide evenly,
sweep the microbatch count, and report the best feasible setting.

*GPipe-Model* (torchgpipe, used for ResNet in Fig. 5) runs model-parallel
pipeline stages on the GPUs of a single node (max 8 stages), with the
microbatch count fixed to 64 as in the paper, and stage boundaries chosen
to balance computation as well as a human reasonably could at coarse layer
granularity (greedy prefix balancing over whole residual blocks).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.baselines.base import FrameworkResult
from repro.comm.model import stage_boundary_p2p_times
from repro.graph.ir import TaskGraph
from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import Precision
from repro.pipeline.simulator import simulate_sync_pipeline
from repro.planner import (
    FRAMEWORK_RESULT,
    PlannerConfig,
    PlannerPass,
    PlanningContext,
    run_framework_pipeline,
)
from repro.profiler.profiler import GraphProfiler


def layer_units(graph: TaskGraph) -> List[Tuple[str, List[str]]]:
    """Group tasks into the coarse 'layers' a manual user would see.

    Units are task-name prefixes: ``layerN`` / ``embeddings`` / ``mlm`` /
    ``nsp`` for BERT, ``stem`` / ``stageX.blockY`` / ``head`` for ResNet.
    Order follows first appearance (topological).
    """
    units: Dict[str, List[str]] = {}
    order: List[str] = []
    for tname in graph.tasks:
        parts = tname.split(".")
        if parts[0].startswith("stage") and len(parts) > 1 and parts[1].startswith(
            "block"
        ):
            key = f"{parts[0]}.{parts[1]}"
        else:
            key = parts[0]
        if key not in units:
            units[key] = []
            order.append(key)
        units[key].append(tname)
    return [(key, units[key]) for key in order]


def _transformer_layer_count(units: Sequence[Tuple[str, List[str]]]) -> int:
    return sum(1 for key, _ in units if key.startswith("layer"))


def _uniform_layer_stages(
    units: Sequence[Tuple[str, List[str]]], num_stages: int
) -> Optional[List[List[str]]]:
    """Equal-layer-count stages; embeddings join the first stage, heads
    the last.  ``None`` when the layer count is not divisible by S."""
    layer_keys = [k for k, _ in units if k.startswith("layer")]
    L = len(layer_keys)
    if L % num_stages:
        return None
    per = L // num_stages
    unit_map = dict(units)
    stages: List[List[str]] = []
    for s in range(num_stages):
        tasks: List[str] = []
        if s == 0:
            for k, t in units:
                if not k.startswith(("layer", "mlm", "nsp", "total_loss")):
                    tasks.extend(t)
        for k in layer_keys[s * per : (s + 1) * per]:
            tasks.extend(unit_map[k])
        if s == num_stages - 1:
            for k, t in units:
                if k.startswith(("mlm", "nsp")) or k == "total_loss":
                    tasks.extend(t)
        stages.append(tasks)
    return stages


def _evaluate_pipeline(
    profiler: GraphProfiler,
    cluster: ClusterSpec,
    stages: List[List[str]],
    batch_size: int,
    replicas: int,
    num_microbatches: int,
    key_prefix: str,
    extra_static_bytes_per_param: float = 0.0,
    in_flight: Optional[int] = None,
) -> Optional[Tuple[float, float, float]]:
    """(iteration_time, pipeline_time, max_mem) or None if OOM/invalid."""
    per_pipeline_batch = batch_size // replicas
    if per_pipeline_batch == 0 or per_pipeline_batch % num_microbatches:
        return None
    bs_micro = per_pipeline_batch // num_microbatches
    M = cluster.device.usable_memory
    tf: List[float] = []
    tb: List[float] = []
    max_mem = 0.0
    max_param = 0
    for i, tasks in enumerate(stages):
        prof = profiler.profile(
            tasks,
            bs_micro,
            microbatches_in_flight=(
                in_flight if in_flight is not None else num_microbatches
            ),
            checkpointing=True,
            key=(key_prefix, len(stages), i),
        )
        memory = prof.memory + prof.param_count * extra_static_bytes_per_param
        if memory > M:
            return None
        max_mem = max(max_mem, memory)
        max_param = max(max_param, prof.param_count)
        # charge each stage boundary at the tier it actually crosses:
        # with one device per stage, boundary ranks follow the same
        # contiguous layout the runtime would use, so a pipeline
        # straddling nodes pays the inter-node rate there
        send, recv = stage_boundary_p2p_times(
            cluster, [1] * len(stages), replicas, i,
            prof.out_bytes, prof.in_bytes,
        )
        tf.append(prof.time_fwd + send)
        tb.append(prof.time_bwd + recv)
    pipe = simulate_sync_pipeline(tf, tb, num_microbatches)
    allreduce = (
        cluster.allreduce_time(
            max_param * 4.0, replicas, spans_nodes=cluster.num_nodes > 1
        )
        if replicas > 1
        else 0.0
    )
    opt = max_param * 28.0 / cluster.device.mem_bandwidth
    return pipe + allreduce + opt, pipe, max_mem


class GpipeHybridPass(PlannerPass):
    """Planner pass running the GPipe-Hybrid (stages, MB) sweep."""

    name = "gpipe_hybrid_search"
    produces = (FRAMEWORK_RESULT,)

    def __init__(self, stage_counts: Sequence[int] = (2, 4, 8, 16)) -> None:
        self.stage_counts = tuple(stage_counts)

    def run(self, ctx: PlanningContext) -> Dict[str, Any]:
        result = _search_gpipe_hybrid(
            ctx.graph,
            ctx.cluster,
            ctx.config.batch_size,
            ctx.config.precision,
            self.stage_counts,
            ctx.ensure_profiler(),
        )
        ctx.put(FRAMEWORK_RESULT, result)
        return {"feasible": result.feasible}


class GpipeModelPass(PlannerPass):
    """Planner pass running the torchgpipe single-node split."""

    name = "gpipe_model_search"
    produces = (FRAMEWORK_RESULT,)

    def __init__(self, num_stages: int = 8, num_microbatches: int = 64) -> None:
        self.num_stages = num_stages
        self.num_microbatches = num_microbatches

    def run(self, ctx: PlanningContext) -> Dict[str, Any]:
        result = _search_gpipe_model(
            ctx.graph,
            ctx.cluster,
            ctx.config.batch_size,
            self.num_stages,
            self.num_microbatches,
            ctx.ensure_profiler(),
        )
        ctx.put(FRAMEWORK_RESULT, result)
        return {"feasible": result.feasible}


def run_gpipe_hybrid(
    graph: TaskGraph,
    cluster: ClusterSpec,
    batch_size: int,
    precision: Precision = Precision.FP32,
    stage_counts: Sequence[int] = (2, 4, 8, 16),
    profiler: Optional[GraphProfiler] = None,
) -> FrameworkResult:
    """GPipe with hybrid parallelism on a Transformer graph."""
    return run_framework_pipeline(
        graph,
        cluster,
        PlannerConfig(
            batch_size=batch_size, precision=precision, validate=False
        ),
        [GpipeHybridPass(stage_counts)],
        profiler=profiler,
    )


def _search_gpipe_hybrid(
    graph: TaskGraph,
    cluster: ClusterSpec,
    batch_size: int,
    precision: Precision,
    stage_counts: Sequence[int],
    profiler: GraphProfiler,
) -> FrameworkResult:
    units = layer_units(graph)
    if _transformer_layer_count(units) == 0:
        return FrameworkResult(
            "gpipe_hybrid", False,
            reason="implementation is specialized to BERT-style models",
        )
    world = cluster.total_devices
    best: Optional[FrameworkResult] = None
    for S in stage_counts:
        if world % S:
            continue
        stages = _uniform_layer_stages(units, S)
        if stages is None:
            continue
        replicas = world // S
        if batch_size % replicas:
            continue
        MB = 1
        while MB <= batch_size // replicas:
            outcome = _evaluate_pipeline(
                profiler, cluster, stages, batch_size, replicas, MB,
                key_prefix="gpipe_hybrid",
            )
            if outcome is not None:
                iteration, pipe, mem = outcome
                result = FrameworkResult(
                    "gpipe_hybrid",
                    True,
                    throughput=batch_size / iteration,
                    iteration_time=iteration,
                    config={
                        "stages": S,
                        "replicas": replicas,
                        "microbatches": MB,
                        "memory_gib": mem / 2**30,
                    },
                )
                if best is None or result.throughput > best.throughput:
                    best = result
            MB *= 2
    if best is None:
        return FrameworkResult(
            "gpipe_hybrid", False,
            reason="no (stages, microbatches) setting fits device memory",
        )
    return best


def run_gpipe_model(
    graph: TaskGraph,
    cluster: ClusterSpec,
    batch_size: int,
    precision: Precision = Precision.FP32,
    num_stages: int = 8,
    num_microbatches: int = 64,
    profiler: Optional[GraphProfiler] = None,
) -> FrameworkResult:
    """torchgpipe-style model parallelism on one node (Fig. 5 baseline)."""
    return run_framework_pipeline(
        graph,
        cluster,
        PlannerConfig(
            batch_size=batch_size, precision=precision, validate=False
        ),
        [GpipeModelPass(num_stages, num_microbatches)],
        profiler=profiler,
    )


def _search_gpipe_model(
    graph: TaskGraph,
    cluster: ClusterSpec,
    batch_size: int,
    num_stages: int,
    num_microbatches: int,
    profiler: GraphProfiler,
) -> FrameworkResult:
    if cluster.num_nodes != 1:
        return FrameworkResult(
            "gpipe_model", False,
            reason="GPipe-Model can use only GPUs on a single node",
        )
    num_stages = min(num_stages, cluster.devices_per_node)
    units = layer_units(graph)
    stages = _balanced_unit_stages(profiler, units, num_stages)

    MB = num_microbatches
    while MB >= 1:
        if batch_size % MB == 0:
            outcome = _evaluate_pipeline(
                profiler, cluster, stages, batch_size, 1, MB,
                key_prefix="gpipe_model",
            )
            if outcome is not None:
                iteration, pipe, mem = outcome
                return FrameworkResult(
                    "gpipe_model",
                    True,
                    throughput=batch_size / iteration,
                    iteration_time=iteration,
                    config={
                        "stages": len(stages),
                        "microbatches": MB,
                        "memory_gib": mem / 2**30,
                    },
                )
        MB //= 2
    return FrameworkResult(
        "gpipe_model", False, reason="stages exceed device memory at all MB",
    )


def _balanced_unit_stages(
    profiler: GraphProfiler,
    units: Sequence[Tuple[str, List[str]]],
    num_stages: int,
) -> List[List[str]]:
    """Greedy prefix balancing of whole units into contiguous stages --
    the 'as balanced as possible by hand' split of Sec. IV-B."""
    tf, tb = profiler._times_at(1)
    weights = []
    for _, tasks in units:
        idx = profiler.indices_of(tasks)
        weights.append(float(tf[idx].sum() + tb[idx].sum()))
    total = sum(weights)
    target = total / num_stages
    stages: List[List[str]] = []
    current: List[str] = []
    acc = 0.0
    remaining = num_stages
    for (_key, tasks), w in zip(units, weights):
        units_left = len(units) - len(stages)
        if (
            current
            and acc + w > target * 1.05
            and len(stages) < num_stages - 1
        ):
            stages.append(current)
            current = []
            acc = 0.0
        current.extend(tasks)
        acc += w
    if current:
        stages.append(current)
    # merge tail stages if we overshot the stage count
    while len(stages) > num_stages:
        stages[-2].extend(stages[-1])
        stages.pop()
    return stages
