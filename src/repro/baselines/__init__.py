"""Comparator frameworks, re-implemented as partitioning policies over the
shared cost model (see DESIGN.md for the substitution rationale).

* :mod:`repro.baselines.data_parallel` -- PyTorch-style DDP with gradient
  accumulation.
* :mod:`repro.baselines.megatron` -- Megatron-LM tensor partitioning
  (Transformer-only, manual, no gradient accumulation).
* :mod:`repro.baselines.gpipe` -- GPipe-Hybrid (uniform layer split x
  uniform replicas) and GPipe-Model (single-node model parallelism).
* :mod:`repro.baselines.pipedream_2bw` -- PipeDream-2BW (GPipe-Hybrid
  partitioning + asynchronous 1F1B + double-buffered weights).
"""

from repro.baselines.base import FrameworkInfo, FrameworkResult, TABLE1_ROWS
from repro.baselines.data_parallel import DataParallelPass, run_data_parallel
from repro.baselines.megatron import MegatronPass, run_megatron
from repro.baselines.gpipe import (
    GpipeHybridPass,
    GpipeModelPass,
    run_gpipe_hybrid,
    run_gpipe_model,
)
from repro.baselines.pipedream_2bw import PipeDream2BWPass, run_pipedream_2bw

__all__ = [
    "DataParallelPass",
    "FrameworkInfo",
    "FrameworkResult",
    "GpipeHybridPass",
    "GpipeModelPass",
    "MegatronPass",
    "PipeDream2BWPass",
    "TABLE1_ROWS",
    "run_data_parallel",
    "run_gpipe_hybrid",
    "run_gpipe_model",
    "run_megatron",
    "run_pipedream_2bw",
]
