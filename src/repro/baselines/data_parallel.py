"""Pure data parallelism (PyTorch DDP) with gradient accumulation.

Every device holds the complete model; the global batch is sharded across
all devices and each shard optionally split into accumulation steps to
shrink activation memory ("we also used gradient accumulation ... for
data parallelism", Sec. IV-A).  Parameters, gradients and optimizer state
cannot shrink, so DP OOMs first as models grow -- the Fig. 4/5 baseline
behaviour.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.baselines.base import FrameworkResult
from repro.graph.ir import TaskGraph
from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import Precision
from repro.planner import (
    FRAMEWORK_RESULT,
    PlannerConfig,
    PlannerPass,
    PlanningContext,
    run_framework_pipeline,
)
from repro.profiler.profiler import GraphProfiler


class DataParallelPass(PlannerPass):
    """Planner pass sizing pure DP (accumulation steps, feasibility)."""

    name = "data_parallel_search"
    produces = (FRAMEWORK_RESULT,)

    def run(self, ctx: PlanningContext) -> Dict[str, Any]:
        result = _search_data_parallel(
            ctx.graph,
            ctx.cluster,
            ctx.config.batch_size,
            ctx.ensure_profiler(),
        )
        ctx.put(FRAMEWORK_RESULT, result)
        return {"feasible": result.feasible}


def run_data_parallel(
    graph: TaskGraph,
    cluster: ClusterSpec,
    batch_size: int,
    precision: Precision = Precision.FP32,
    profiler: Optional[GraphProfiler] = None,
) -> FrameworkResult:
    """Evaluate pure DP: feasibility, accumulation steps, throughput."""
    return run_framework_pipeline(
        graph,
        cluster,
        PlannerConfig(
            batch_size=batch_size, precision=precision, validate=False
        ),
        [DataParallelPass()],
        profiler=profiler,
    )


def _search_data_parallel(
    graph: TaskGraph,
    cluster: ClusterSpec,
    batch_size: int,
    profiler: GraphProfiler,
) -> FrameworkResult:
    world = cluster.total_devices
    if batch_size % world:
        return FrameworkResult(
            "data_parallel", False,
            reason=f"batch {batch_size} not divisible by {world} devices",
        )
    per_device = batch_size // world
    M = cluster.device.usable_memory
    tasks = list(graph.tasks)

    # smallest power-of-two accumulation count whose chunk fits memory
    chosen = None
    accum = 1
    while accum <= per_device:
        chunk = per_device // accum
        if per_device % accum == 0:
            prof = profiler.profile(
                tasks, chunk, microbatches_in_flight=1,
                checkpointing=False, key="__dp__",
            )
            if prof.memory <= M:
                chosen = (accum, chunk, prof)
                break
        accum *= 2
    if chosen is None:
        smallest = profiler.profile(
            tasks, 1, microbatches_in_flight=1, checkpointing=False,
            key="__dp__",
        )
        return FrameworkResult(
            "data_parallel", False,
            reason=(
                f"model needs {smallest.memory / 2**30:.1f} GiB at batch 1, "
                f"device has {M / 2**30:.1f} GiB"
            ),
        )

    accum, chunk, prof = chosen
    compute = accum * (prof.time_fwd + prof.time_bwd)
    grad_bytes = graph.num_parameters() * 4.0
    allreduce = cluster.allreduce_time(
        grad_bytes, world, spans_nodes=cluster.num_nodes > 1
    )
    opt = graph.num_parameters() * 28.0 / cluster.device.mem_bandwidth
    iteration = compute + allreduce + opt
    return FrameworkResult(
        "data_parallel",
        True,
        throughput=batch_size / iteration,
        iteration_time=iteration,
        config={
            "accumulation_steps": accum,
            "per_device_chunk": chunk,
            "memory_gib": prof.memory / 2**30,
        },
    )
