"""Shared baseline types and the Table-I feature matrix."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class FrameworkInfo:
    """One row of the paper's Table I."""

    name: str
    partitioning_style: str  # "tensor" | "graph" | "data"
    hybrid_parallelism: bool
    automatic: bool
    memory_estimation: bool
    staleness_free: bool


#: Table I of the paper, verbatim (plus the data-parallel reference row).
TABLE1_ROWS: List[FrameworkInfo] = [
    FrameworkInfo("Mesh-TensorFlow", "tensor", True, False, False, True),
    FrameworkInfo("Megatron-LM", "tensor", True, False, False, True),
    FrameworkInfo("OptCNN", "tensor", True, True, False, True),
    FrameworkInfo("FlexFlow", "tensor", True, True, False, True),
    FrameworkInfo("Tofu", "tensor", True, True, False, True),
    FrameworkInfo("GPipe", "graph", False, False, False, True),
    FrameworkInfo("AMPNet", "graph", False, False, False, False),
    FrameworkInfo("XPipe", "graph", False, False, False, False),
    FrameworkInfo("PipeDream", "graph", True, True, False, False),
    FrameworkInfo("SpecTrain", "graph", True, True, False, False),
    FrameworkInfo("PipeDream-2BW", "graph", True, True, True, False),
    FrameworkInfo("HetPipe", "graph", True, True, True, False),
    FrameworkInfo("RaNNC", "graph", True, True, True, True),
]


@dataclass
class FrameworkResult:
    """Outcome of one framework on one workload.

    ``feasible=False`` means the framework OOMs (or is inapplicable);
    ``reason`` explains why.  Throughput is samples/second.
    """

    framework: str
    feasible: bool
    throughput: float = 0.0
    iteration_time: float = 0.0
    reason: str = ""
    config: Dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        if not self.feasible:
            return f"{self.framework}: INFEASIBLE ({self.reason})"
        return (
            f"{self.framework}: {self.throughput:.1f} samples/s "
            f"(iter {self.iteration_time * 1e3:.1f} ms, {self.config})"
        )
