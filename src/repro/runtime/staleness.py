"""Parameter-staleness simulation: why RaNNC is synchronous.

The paper rejects asynchronous pipeline parallelism because it "suffers
from parameter staleness issues ... caused by computing a mini-batch using
different versions of parameters across stages", which "often results in
training that diverges or degrades the quality of learning results"
(Sec. II-B).  This module makes that argument executable: it trains the
same model on the same data stream

* synchronously (gradients applied to the weights that produced them), and
* with PipeDream-style staleness (gradients computed against weights
  ``delay`` versions old, as in an async 1F1B pipeline where a microbatch's
  forward ran before the last ``delay`` updates landed), optionally with
  PipeDream's *weight stashing* mitigation (backward replays the exact
  stale weights used by the forward -- consistent but still delayed).

Everything is deterministic, so tests can assert the degradation ordering
exactly.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.graph.ir import TaskGraph
from repro.runtime.executor import Executor, init_parameters
from repro.runtime.optimizer import Optimizer

Array = np.ndarray
BatchStream = Sequence[Dict[str, Array]]


@dataclass
class StalenessResult:
    """Loss trajectory of one training run."""

    losses: List[float]
    delay: int
    diverged: bool

    @property
    def final_loss(self) -> float:
        return self.losses[-1]

    def tail_mean(self, n: int = 5) -> float:
        return float(np.mean(self.losses[-n:]))


def train_sync(
    graph: TaskGraph,
    batches: BatchStream,
    make_optimizer: Callable[[], Optimizer],
    seed: int = 0,
) -> StalenessResult:
    """Reference: fully synchronous training (staleness 0)."""
    return train_with_staleness(graph, batches, make_optimizer, delay=0,
                                seed=seed)


def train_with_staleness(
    graph: TaskGraph,
    batches: BatchStream,
    make_optimizer: Callable[[], Optimizer],
    delay: int,
    weight_stashing: bool = True,
    seed: int = 0,
) -> StalenessResult:
    """Train with gradients that lag the weights by ``delay`` versions.

    At step ``t`` the gradient applied to the current weights was computed
    from the weights of step ``t - delay`` (an async pipeline of depth
    ``delay + 1`` in steady state).  ``weight_stashing=True`` models
    PipeDream's mitigation: forward and backward of one microbatch use the
    SAME stashed version; the only error left is applying the (consistent)
    gradient to newer weights.

    Returns the loss trajectory measured on the weights that each step's
    forward actually used.
    """
    if delay < 0:
        raise ValueError("delay must be >= 0")
    params = init_parameters(graph, seed=seed)
    executor = Executor(graph, params=params)
    optimizer = make_optimizer()

    # history of stashed weight versions (index 0 = current)
    versions: List[Dict[str, Array]] = [
        {k: v.copy() for k, v in params.items()} for _ in range(delay + 1)
    ]
    losses: List[float] = []
    diverged = False
    for batch in batches:
        stale = versions[-1] if weight_stashing else params
        # compute loss/grads against the stale version
        executor.params = stale
        loss, grads = executor.loss_and_grads(batch)
        losses.append(loss)
        if not np.isfinite(loss):
            diverged = True
            break
        # apply the (stale) gradient to the CURRENT weights
        executor.params = params
        optimizer.step(params, grads)
        # rotate stashes
        versions.pop()
        versions.insert(0, {k: v.copy() for k, v in params.items()})
    return StalenessResult(losses=losses, delay=delay, diverged=diverged)


def staleness_sweep(
    graph: TaskGraph,
    batches: BatchStream,
    make_optimizer: Callable[[], Optimizer],
    delays: Sequence[int] = (0, 1, 2, 4),
    seed: int = 0,
) -> List[StalenessResult]:
    """Run the same workload at several staleness depths."""
    return [
        train_with_staleness(graph, batches, make_optimizer, delay=d,
                             seed=seed)
        for d in delays
    ]
