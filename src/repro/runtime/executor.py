"""Whole-graph execution engine: forward pass + reverse-mode autograd.

Executes a :class:`~repro.graph.ir.TaskGraph` on NumPy arrays in the
graph's topological insertion order, then walks it backwards accumulating
vector-Jacobian products into parameter (and optionally input) gradients.

Execution can be traced: construct the executor with a
:class:`~repro.obs.tracer.Tracer` and every :meth:`Executor.forward` /
:meth:`Executor.backward` call records an enclosing span plus one
``exec.task`` span per kernel invocation (opt-in — the default is no
tracer and a single ``None`` check per task).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.graph.ir import DataType, TaskGraph, ValueKind
from repro.obs.tracer import Tracer
from repro.runtime import tensor as kernels

Array = np.ndarray


def init_parameters(
    graph: TaskGraph, seed: int = 0, dtype=np.float64, scale: float = 0.05
) -> Dict[str, Array]:
    """Deterministic Gaussian initialization for every param and const."""
    rng = np.random.default_rng(seed)
    params: Dict[str, Array] = {}
    for value in graph.values.values():
        if value.kind in (ValueKind.PARAM, ValueKind.CONST):
            params[value.name] = (rng.standard_normal(value.shape) * scale).astype(
                dtype
            )
    return params


class Executor:
    """Forward/backward execution of one task graph.

    Args:
        graph: the graph to execute (any subgraph works too).
        params: parameter/const arrays keyed by value name; missing
            entries are initialized deterministically from ``seed``.
        train_dropout: if True, dropout uses a seeded mask (seed derived
            from the task name so clones agree); default inference-mode.
        tracer: opt-in execution tracing — when given (and enabled),
            forward/backward record per-task ``exec.task`` spans under
            ``exec.forward`` / ``exec.backward`` parents.
    """

    def __init__(
        self,
        graph: TaskGraph,
        params: Optional[Dict[str, Array]] = None,
        seed: int = 0,
        dtype=np.float64,
        train_dropout: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.graph = graph
        self.dtype = dtype
        self.train_dropout = train_dropout
        self.tracer = tracer if tracer is not None and tracer.enabled else None
        self.params: Dict[str, Array] = dict(params) if params else {}
        defaults = init_parameters(graph, seed=seed, dtype=dtype)
        for name, arr in defaults.items():
            self.params.setdefault(name, arr)
        for task in graph.tasks.values():
            if not kernels.has_kernel(task.op_type):
                raise NotImplementedError(
                    f"no runtime kernel for op {task.op_type!r}"
                )

    # ------------------------------------------------------------------
    def _task_attrs(self, task) -> Dict[str, object]:
        attrs = dict(task.attrs)
        if task.op_type == "reshape":
            attrs["_batched"] = self.graph.values[task.outputs[0]].batched
        if task.op_type == "dropout" and self.train_dropout:
            attrs["_train_seed"] = abs(hash(task.name)) % (2**31)
        return attrs

    def forward(self, inputs: Dict[str, Array]) -> Dict[str, Array]:
        """Run every task; returns the full value environment."""
        env: Dict[str, Array] = {}
        for name, arr in inputs.items():
            value = self.graph.values[name]
            if value.dtype in (DataType.FLOAT32, DataType.FLOAT16):
                arr = np.asarray(arr, dtype=self.dtype)
            env[name] = np.asarray(arr)
        for name, arr in self.params.items():
            if name in self.graph.values:
                env[name] = arr
        if self.tracer is None:
            for task in self.graph.tasks.values():
                args = [env[v] for v in task.inputs]
                attrs = self._task_attrs(task)
                out = kernels.forward_kernel(task.op_type)(*args, attrs)
                env[task.outputs[0]] = out
            return env
        with self.tracer.span(
            "exec.forward", category="runtime",
            graph=self.graph.name, num_tasks=len(self.graph.tasks),
        ):
            for task in self.graph.tasks.values():
                args = [env[v] for v in task.inputs]
                attrs = self._task_attrs(task)
                with self.tracer.span(
                    "exec.task", category="runtime",
                    task=task.name, op=task.op_type, phase="F",
                ):
                    out = kernels.forward_kernel(task.op_type)(*args, attrs)
                env[task.outputs[0]] = out
        return env

    def loss(self, inputs: Dict[str, Array]) -> float:
        env = self.forward(inputs)
        return float(env[self.graph.output_names[0]].ravel()[0])

    def backward(
        self,
        env: Dict[str, Array],
        output_grads: Optional[Dict[str, Array]] = None,
        wrt_inputs: Iterable[str] = (),
    ) -> Dict[str, Array]:
        """Reverse-mode pass over the whole graph.

        Args:
            env: environment returned by :meth:`forward`.
            output_grads: seed gradients; defaults to ones for every
                declared graph output (the scalar-loss convention).
            wrt_inputs: additional non-param value names whose gradients
                should be returned (used by the partitioned executor to
                propagate into the previous stage).

        Returns:
            gradient dict for every PARAM value and requested input.
        """
        grads: Dict[str, Array] = {}
        if output_grads is None:
            for oname in self.graph.output_names:
                grads[oname] = np.ones_like(env[oname])
        else:
            for oname, g in output_grads.items():
                grads[oname] = np.asarray(g, dtype=self.dtype)

        bwd_cm = (
            self.tracer.span(
                "exec.backward", category="runtime", graph=self.graph.name
            )
            if self.tracer is not None
            else nullcontext()
        )
        with bwd_cm:
            for task in reversed(list(self.graph.tasks.values())):
                gout = grads.get(task.outputs[0])
                if gout is None:
                    continue
                args = [env[v] for v in task.inputs]
                attrs = self._task_attrs(task)
                task_cm = (
                    self.tracer.span(
                        "exec.task", category="runtime",
                        task=task.name, op=task.op_type, phase="B",
                    )
                    if self.tracer is not None
                    else nullcontext()
                )
                with task_cm:
                    gin = kernels.vjp_kernel(task.op_type)(
                        gout, args, env[task.outputs[0]], attrs
                    )
                for vname, g in zip(task.inputs, gin):
                    if g is None:
                        continue
                    if vname in grads:
                        grads[vname] = grads[vname] + g
                    else:
                        grads[vname] = g

        result: Dict[str, Array] = {}
        for vname, value in self.graph.values.items():
            if value.kind is ValueKind.PARAM and vname in grads:
                result[vname] = grads[vname]
        for vname in wrt_inputs:
            if vname in grads:
                result[vname] = grads[vname]
        return result

    def loss_and_grads(
        self, inputs: Dict[str, Array]
    ) -> Tuple[float, Dict[str, Array]]:
        env = self.forward(inputs)
        grads = self.backward(env)
        return float(env[self.graph.output_names[0]].ravel()[0]), grads
