"""Executable NumPy semantics for the task-graph IR.

The partitioner never needs to *run* a model, but the paper's validation
experiment ("we confirmed that RaNNC and Megatron-LM reached almost the
same loss value") does: this package provides a reference autograd engine
that executes any IR graph forward and backward on NumPy arrays, a
stage-partitioned executor with microbatching, gradient accumulation and
activation checkpointing, and SGD/Adam optimizers -- so tests can assert
*numerical equivalence* between whole-graph and partitioned training, the
laptop-scale analogue of the paper's loss-validation run.
"""

from repro.runtime.executor import Executor, init_parameters
from repro.runtime.optimizer import SGD, Adam, Optimizer
from repro.runtime.partitioned import PartitionedExecutor
from repro.runtime.data_parallel import DataParallelTrainer
from repro.runtime.staleness import train_sync, train_with_staleness

__all__ = [
    "Adam",
    "DataParallelTrainer",
    "Executor",
    "Optimizer",
    "PartitionedExecutor",
    "SGD",
    "init_parameters",
    "train_sync",
    "train_with_staleness",
]
