"""Simulated data-parallel training on the NumPy runtime.

Replicates an executor across ``world_size`` simulated ranks, scatters the
minibatch, runs each replica independently and averages gradients (the
allreduce).  Tests use it to assert that DP training is numerically
equivalent to single-process large-batch training -- the invariant real
frameworks rely on -- and that hybrid parallelism (partitioned stages x
replicas) composes correctly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.ir import TaskGraph
from repro.runtime.executor import Executor, init_parameters
from repro.runtime.optimizer import Optimizer

Array = np.ndarray


def scatter_batch(
    inputs: Dict[str, Array], world_size: int
) -> List[Dict[str, Array]]:
    """Split a global batch into equal per-rank shards along axis 0."""
    shards: List[Dict[str, Array]] = [dict() for _ in range(world_size)]
    for name, arr in inputs.items():
        if arr.shape[0] % world_size:
            raise ValueError(
                f"batch dim {arr.shape[0]} of {name!r} not divisible by "
                f"world size {world_size}"
            )
        for i, chunk in enumerate(np.split(arr, world_size, axis=0)):
            shards[i][name] = chunk
    return shards


def allreduce_mean(grad_lists: List[Dict[str, Array]]) -> Dict[str, Array]:
    """Average gradients across ranks (the NCCL allreduce equivalent)."""
    if not grad_lists:
        return {}
    result: Dict[str, Array] = {}
    world = len(grad_lists)
    for name in grad_lists[0]:
        total = grad_lists[0][name].copy()
        for other in grad_lists[1:]:
            total += other[name]
        result[name] = total / world
    return result


class DataParallelTrainer:
    """Synchronous data-parallel training over simulated ranks.

    All ranks share one parameter store (as a real framework's replicas
    stay bit-identical after every synchronized update).
    """

    def __init__(
        self,
        graph: TaskGraph,
        world_size: int,
        optimizer: Optimizer,
        params: Optional[Dict[str, Array]] = None,
        seed: int = 0,
        dtype=np.float64,
    ) -> None:
        if world_size < 1:
            raise ValueError("world size must be >= 1")
        self.world_size = world_size
        self.optimizer = optimizer
        self.params = dict(params) if params else init_parameters(
            graph, seed=seed, dtype=dtype
        )
        self.replicas = [
            Executor(graph, params=self.params, dtype=dtype)
            for _ in range(world_size)
        ]

    def step(self, inputs: Dict[str, Array]) -> Tuple[float, Dict[str, Array]]:
        """One training step: scatter, local backward, allreduce, update."""
        shards = scatter_batch(inputs, self.world_size)
        losses: List[float] = []
        grad_lists: List[Dict[str, Array]] = []
        for replica, shard in zip(self.replicas, shards):
            loss, grads = replica.loss_and_grads(shard)
            losses.append(loss)
            grad_lists.append(grads)
        grads = allreduce_mean(grad_lists)
        self.optimizer.step(self.params, grads)
        return float(np.mean(losses)), grads
