"""Numerical simulation of Megatron-style tensor parallelism.

The Megatron baseline in :mod:`repro.baselines.megatron` is a cost/memory
policy; this module supplies the *semantic* half of the comparison: a
rank-by-rank NumPy simulation of Megatron's two primitive layers,

* **column-parallel linear** -- the weight is split along its output
  dimension; each rank holds a shard ``A_i`` and computes ``X @ A_i^T``;
  the shards' outputs concatenate (``f``/all-gather boundary);
* **row-parallel linear** -- the weight is split along its input
  dimension; each rank computes a partial product that is summed by an
  all-reduce (``g`` boundary);

and of Megatron's MLP block ``Y = RowParallel(gelu(ColumnParallel(X)))``
where the nonlinearity is applied independently per shard (the trick that
makes the block need only ONE allreduce per direction).  Tests assert the
simulated multi-rank computation -- forward, backward, and weight-shard
gradients -- is exactly equivalent to the dense single-device computation,
i.e. tensor partitioning is staleness-free and exact (Table I row).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

Array = np.ndarray


def split_columns(w: Array, world: int) -> List[Array]:
    """Split a (out, in) weight along OUT (Megatron column parallelism)."""
    if w.shape[0] % world:
        raise ValueError(f"out dim {w.shape[0]} not divisible by {world}")
    return list(np.split(w, world, axis=0))


def split_rows(w: Array, world: int) -> List[Array]:
    """Split a (out, in) weight along IN (Megatron row parallelism)."""
    if w.shape[1] % world:
        raise ValueError(f"in dim {w.shape[1]} not divisible by {world}")
    return list(np.split(w, world, axis=1))


@dataclass
class ShardResult:
    """Output of a simulated multi-rank forward/backward."""

    output: Array
    grad_input: Array
    weight_grads: List[Array]

    def gathered_weight_grad(self, axis: int) -> Array:
        return np.concatenate(self.weight_grads, axis=axis)


def column_parallel_linear(
    x: Array, w_shards: List[Array], grad_out: Array
) -> ShardResult:
    """Forward + backward of a column-parallel linear over all ranks.

    Forward: rank i computes ``x @ w_i^T``; outputs concatenate on the
    feature axis.  Backward: each rank gets its slice of ``grad_out``;
    input gradients all-reduce (sum) across ranks.
    """
    world = len(w_shards)
    outs = [x @ w.T for w in w_shards]
    output = np.concatenate(outs, axis=-1)
    gslices = np.split(grad_out, world, axis=-1)
    grad_input = np.zeros_like(x)
    weight_grads = []
    for w, g in zip(w_shards, gslices):
        grad_input += g @ w  # the backward allreduce
        weight_grads.append(
            g.reshape(-1, g.shape[-1]).T @ x.reshape(-1, x.shape[-1])
        )
    return ShardResult(output, grad_input, weight_grads)


def row_parallel_linear(
    x_shards: List[Array], w_shards: List[Array], grad_out: Array
) -> ShardResult:
    """Forward + backward of a row-parallel linear over all ranks.

    Forward: rank i computes ``x_i @ w_i^T``; partial outputs all-reduce
    (sum).  Backward: every rank receives the full ``grad_out``; input
    grads stay sharded (returned concatenated for comparison).
    """
    outs = [x @ w.T for x, w in zip(x_shards, w_shards)]
    output = np.sum(outs, axis=0)  # the forward allreduce
    grad_inputs = []
    weight_grads = []
    for x, w in zip(x_shards, w_shards):
        grad_inputs.append(grad_out @ w)
        weight_grads.append(
            grad_out.reshape(-1, grad_out.shape[-1]).T
            @ x.reshape(-1, x.shape[-1])
        )
    return ShardResult(
        np.asarray(output), np.concatenate(grad_inputs, axis=-1), weight_grads
    )


def _gelu(x: Array) -> Array:
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


def _gelu_grad(x: Array) -> Array:
    c = np.sqrt(2.0 / np.pi)
    t = np.tanh(c * (x + 0.044715 * x**3))
    dt = (1.0 - t**2) * c * (1.0 + 3 * 0.044715 * x**2)
    return 0.5 * (1.0 + t) + 0.5 * x * dt


def megatron_mlp_dense(x: Array, a: Array, b: Array) -> Array:
    """Reference single-device MLP: ``gelu(x @ A^T) @ B^T``."""
    return _gelu(x @ a.T) @ b.T


def megatron_mlp_parallel(
    x: Array, a: Array, b: Array, world: int, grad_out: Array
) -> Tuple[Array, Array, Array, Array]:
    """Simulate the t-way Megatron MLP block end to end.

    ``A`` is column-split, ``B`` row-split; gelu applies per shard with no
    communication.  Returns (output, grad_x, grad_A, grad_B) assembled
    from the per-rank pieces.
    """
    a_shards = split_columns(a, world)
    b_shards = split_rows(b, world)

    # forward, keeping intermediates sharded
    h_shards = [x @ ai.T for ai in a_shards]           # (.., ffn/world) each
    z_shards = [_gelu(h) for h in h_shards]
    partial = [z @ bi.T for z, bi in zip(z_shards, b_shards)]
    output = np.sum(partial, axis=0)                   # g: forward allreduce

    # backward
    grad_b_shards = []
    grad_z_shards = []
    for z, bi in zip(z_shards, b_shards):
        grad_b_shards.append(
            grad_out.reshape(-1, grad_out.shape[-1]).T
            @ z.reshape(-1, z.shape[-1])
        )
        grad_z_shards.append(grad_out @ bi)
    grad_a_shards = []
    grad_x = np.zeros_like(x)
    for h, gz, ai in zip(h_shards, grad_z_shards, a_shards):
        gh = gz * _gelu_grad(h)
        grad_a_shards.append(
            gh.reshape(-1, gh.shape[-1]).T @ x.reshape(-1, x.shape[-1])
        )
        grad_x += gh @ ai                              # f: backward allreduce

    grad_a = np.concatenate(grad_a_shards, axis=0)
    grad_b = np.concatenate(grad_b_shards, axis=1)
    return np.asarray(output), grad_x, grad_a, grad_b


def megatron_mlp_dense_grads(
    x: Array, a: Array, b: Array, grad_out: Array
) -> Tuple[Array, Array, Array, Array]:
    """Reference gradients of the dense MLP (for equivalence tests)."""
    h = x @ a.T
    z = _gelu(h)
    output = z @ b.T
    grad_b = grad_out.reshape(-1, grad_out.shape[-1]).T @ z.reshape(-1, z.shape[-1])
    grad_z = grad_out @ b
    grad_h = grad_z * _gelu_grad(h)
    grad_a = grad_h.reshape(-1, grad_h.shape[-1]).T @ x.reshape(-1, x.shape[-1])
    grad_x = grad_h @ a
    return output, grad_x, grad_a, grad_b
