"""Training-state checkpointing for the NumPy runtime.

Saves and restores parameters plus optimizer state as a single ``.npz``
archive.  Because RaNNC-style partitioned training keeps ONE logical copy
of every parameter (stages share the store), a checkpoint taken from a
partitioned run restores into a whole-graph run and vice versa -- tested
as part of the loss-validation suite.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.runtime.optimizer import SGD, Adam, Optimizer

Array = np.ndarray
PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_checkpoint(
    path: PathLike,
    params: Dict[str, Array],
    optimizer: Optional[Optimizer] = None,
    step: int = 0,
    extra: Optional[Dict[str, float]] = None,
) -> None:
    """Write parameters (+ optimizer state) to ``path`` as .npz."""
    arrays: Dict[str, Array] = {}
    for name, value in params.items():
        arrays[f"param/{name}"] = value
    meta = {
        "version": _FORMAT_VERSION,
        "step": step,
        "optimizer": None,
        "extra": extra or {},
    }
    if optimizer is not None:
        if isinstance(optimizer, Adam):
            meta["optimizer"] = {
                "kind": "adam", "lr": optimizer.lr,
                "beta1": optimizer.beta1, "beta2": optimizer.beta2,
                "eps": optimizer.eps, "t": optimizer._t,
            }
            for name, m in optimizer._m.items():
                arrays[f"adam_m/{name}"] = m
            for name, v in optimizer._v.items():
                arrays[f"adam_v/{name}"] = v
        elif isinstance(optimizer, SGD):
            meta["optimizer"] = {
                "kind": "sgd", "lr": optimizer.lr,
                "momentum": optimizer.momentum,
            }
            for name, v in optimizer._velocity.items():
                arrays[f"sgd_v/{name}"] = v
        else:
            raise TypeError(f"cannot checkpoint optimizer {type(optimizer)}")
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    ).copy()
    np.savez(str(path), **arrays)


def load_checkpoint(
    path: PathLike,
) -> Tuple[Dict[str, Array], Optional[Optimizer], int]:
    """Restore ``(params, optimizer, step)`` from a checkpoint file."""
    with np.load(str(path)) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode())
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {meta.get('version')!r}"
            )
        params: Dict[str, Array] = {}
        adam_m: Dict[str, Array] = {}
        adam_v: Dict[str, Array] = {}
        sgd_v: Dict[str, Array] = {}
        for key in archive.files:
            if key.startswith("param/"):
                params[key[len("param/"):]] = archive[key]
            elif key.startswith("adam_m/"):
                adam_m[key[len("adam_m/"):]] = archive[key]
            elif key.startswith("adam_v/"):
                adam_v[key[len("adam_v/"):]] = archive[key]
            elif key.startswith("sgd_v/"):
                sgd_v[key[len("sgd_v/"):]] = archive[key]

    optimizer: Optional[Optimizer] = None
    odoc = meta.get("optimizer")
    if odoc is not None:
        if odoc["kind"] == "adam":
            optimizer = Adam(lr=odoc["lr"], beta1=odoc["beta1"],
                             beta2=odoc["beta2"], eps=odoc["eps"])
            optimizer._m = adam_m
            optimizer._v = adam_v
            optimizer._t = {k: int(v) for k, v in odoc["t"].items()}
        elif odoc["kind"] == "sgd":
            optimizer = SGD(lr=odoc["lr"], momentum=odoc["momentum"])
            optimizer._velocity = sgd_v
    return params, optimizer, int(meta["step"])
