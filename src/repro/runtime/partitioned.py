"""Stage-partitioned training execution (the runtime RaNNC generates).

Runs a partitioned model exactly the way the synchronous pipeline would --
microbatch splitting, per-stage forward with boundary-value handoff,
activation checkpointing (stash only each stage's input, recompute at
backward), gradient accumulation across microbatches, and gradient
summation for parameters cloned into several stages (tied weights).

Because every arithmetic step is identical to the whole-graph execution
modulo associativity, losses and gradients must agree with
:class:`~repro.runtime.executor.Executor` to floating-point accumulation
error -- the property the loss-validation experiment asserts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.ir import TaskGraph, ValueKind
from repro.runtime.executor import Executor, init_parameters

Array = np.ndarray


def split_microbatches(
    inputs: Dict[str, Array], num_microbatches: int
) -> List[Dict[str, Array]]:
    """Split every input along axis 0 into equal microbatches."""
    if num_microbatches < 1:
        raise ValueError("need >= 1 microbatch")
    micro: List[Dict[str, Array]] = [dict() for _ in range(num_microbatches)]
    for name, arr in inputs.items():
        if arr.shape[0] % num_microbatches:
            raise ValueError(
                f"batch dim {arr.shape[0]} of {name!r} not divisible by "
                f"{num_microbatches} microbatches"
            )
        for i, chunk in enumerate(np.split(arr, num_microbatches, axis=0)):
            micro[i][name] = chunk
    return micro


class PartitionedExecutor:
    """Executes a model partitioned into pipeline stages.

    Args:
        graph: the full model graph.
        stage_tasks: per-stage task-name sequences (e.g.
            ``[s.tasks for s in plan.stages]``); must cover all tasks,
            in pipeline order.
        params: shared parameter store (stages referencing the same
            parameter see the same array).
        num_microbatches: microbatches per step (gradient accumulation).
        checkpointing: stash only stage inputs, recompute on backward.
    """

    def __init__(
        self,
        graph: TaskGraph,
        stage_tasks: Sequence[Sequence[str]],
        params: Optional[Dict[str, Array]] = None,
        num_microbatches: int = 1,
        checkpointing: bool = True,
        seed: int = 0,
        dtype=np.float64,
        train_dropout: bool = False,
    ) -> None:
        self.graph = graph
        self.num_microbatches = num_microbatches
        self.checkpointing = checkpointing
        covered = set()
        for tasks in stage_tasks:
            covered.update(tasks)
        missing = set(graph.tasks) - covered
        if missing:
            raise ValueError(f"stages do not cover tasks: {sorted(missing)[:5]}")

        self.params: Dict[str, Array] = dict(params) if params else {}
        defaults = init_parameters(graph, seed=seed, dtype=dtype)
        for name, arr in defaults.items():
            self.params.setdefault(name, arr)

        self.stages: List[Executor] = []
        self.stage_input_names: List[List[str]] = []
        self.stage_output_names: List[List[str]] = []
        for i, tasks in enumerate(stage_tasks):
            sub = graph.extract_subgraph(list(tasks), name=f"{graph.name}.stage{i}")
            stage_params = {
                n: self.params[n]
                for n in sub.values
                if sub.values[n].kind in (ValueKind.PARAM, ValueKind.CONST)
            }
            self.stages.append(
                Executor(
                    sub,
                    params=stage_params,
                    dtype=dtype,
                    train_dropout=train_dropout,
                )
            )
            self.stage_input_names.append(
                [v.name for v in sub.inputs]
            )
            self.stage_output_names.append(list(sub.output_names))
        self.loss_name = graph.output_names[0]

    @classmethod
    def from_plan(
        cls,
        graph: TaskGraph,
        plan,
        params: Optional[Dict[str, Array]] = None,
        seed: int = 0,
        dtype=np.float64,
    ) -> "PartitionedExecutor":
        """Build an executor directly from an ``auto_partition`` plan,
        adopting its stage boundaries, microbatch count and RaNNC's rule
        of checkpointing whenever there is more than one stage."""
        return cls(
            graph,
            [s.tasks for s in plan.stages],
            params=params,
            num_microbatches=plan.num_microbatches,
            checkpointing=len(plan.stages) > 1,
            seed=seed,
            dtype=dtype,
        )

    # ------------------------------------------------------------------
    def _forward_microbatch(
        self, micro_inputs: Dict[str, Array]
    ) -> Tuple[float, List[Dict[str, Array]], Dict[str, Array]]:
        """Run one microbatch through all stages.

        Returns (loss, per-stage stashes, boundary-value store).  With
        checkpointing the stash holds only each stage's inputs; without,
        it holds the full per-stage environments.
        """
        boundary: Dict[str, Array] = dict(micro_inputs)
        stashes: List[Dict[str, Array]] = []
        for i, stage in enumerate(self.stages):
            feed = {
                n: boundary[n]
                for n in self.stage_input_names[i]
                if n in boundary
            }
            env = stage.forward(feed)
            for oname in self.stage_output_names[i]:
                boundary[oname] = env[oname]
            stashes.append(feed if self.checkpointing else env)
        loss = float(boundary[self.loss_name].ravel()[0])
        return loss, stashes, boundary

    def _backward_microbatch(
        self,
        stashes: List[Dict[str, Array]],
        grad_scale: float,
        grads: Dict[str, Array],
    ) -> None:
        """Backward through stages in reverse, accumulating into grads."""
        # gradient of every boundary value, filled from downstream stages
        boundary_grads: Dict[str, Array] = {}
        for i in reversed(range(len(self.stages))):
            stage = self.stages[i]
            if self.checkpointing:
                env = stage.forward(stashes[i])  # recompute
            else:
                env = stashes[i]
            out_grads: Dict[str, Array] = {}
            for oname in self.stage_output_names[i]:
                if oname == self.loss_name:
                    out_grads[oname] = np.full_like(
                        env[oname], grad_scale
                    )
                elif oname in boundary_grads:
                    out_grads[oname] = boundary_grads[oname]
            if not out_grads:
                continue
            wrt = [
                n
                for n in self.stage_input_names[i]
                if stage.graph.values[n].kind is ValueKind.INPUT
            ]
            stage_grads = stage.backward(env, out_grads, wrt_inputs=wrt)
            for name, g in stage_grads.items():
                kind = stage.graph.values[name].kind
                if kind is ValueKind.PARAM:
                    if name in grads:
                        grads[name] = grads[name] + g
                    else:
                        grads[name] = g
                else:  # boundary activation: pass to the producing stage
                    if name in boundary_grads:
                        boundary_grads[name] = boundary_grads[name] + g
                    else:
                        boundary_grads[name] = g

    # ------------------------------------------------------------------
    def loss_and_grads(
        self, inputs: Dict[str, Array]
    ) -> Tuple[float, Dict[str, Array]]:
        """One full training step's loss and accumulated gradients."""
        micro = split_microbatches(inputs, self.num_microbatches)
        grads: Dict[str, Array] = {}
        total_loss = 0.0
        scale = 1.0 / self.num_microbatches
        for m in micro:
            loss, stashes, _ = self._forward_microbatch(m)
            total_loss += loss * scale
            self._backward_microbatch(stashes, scale, grads)
        return total_loss, grads

    def loss(self, inputs: Dict[str, Array]) -> float:
        micro = split_microbatches(inputs, self.num_microbatches)
        return sum(
            self._forward_microbatch(m)[0] for m in micro
        ) / self.num_microbatches
