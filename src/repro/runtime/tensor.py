"""NumPy kernels: forward functions and VJP (vector-Jacobian product)
rules for every IR operator.

Kernels receive runtime arrays (real batch sizes in axis 0 for batched
values); canonical batch-1 shape attributes (``reshape``) are re-based on
the actual leading extent.  Dropout defaults to inference behaviour
(identity) so whole-graph vs. partitioned executions are bit-comparable;
a seeded training mode is available through ``attrs['_train_seed']``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

Array = np.ndarray
FwdFn = Callable[..., Array]
# vjp(grad_out, inputs, output, attrs) -> per-input grads (None for
# non-differentiable inputs such as integer indices)
VjpFn = Callable[
    [Array, Sequence[Array], Array, Dict[str, object]],
    List[Optional[Array]],
]

_FORWARD: Dict[str, Callable] = {}
_VJP: Dict[str, VjpFn] = {}


def forward_kernel(op_type: str) -> Callable:
    return _FORWARD[op_type]


def vjp_kernel(op_type: str) -> VjpFn:
    return _VJP[op_type]


def has_kernel(op_type: str) -> bool:
    return op_type in _FORWARD


def _register(name: str, fwd: Callable, vjp: VjpFn) -> None:
    _FORWARD[name] = fwd
    _VJP[name] = vjp


def _unbroadcast(grad: Array, shape: Tuple[int, ...]) -> Array:
    """Sum ``grad`` down to ``shape`` (reverse of NumPy broadcasting)."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


# ---------------------------------------------------------------------------
# linear algebra
# ---------------------------------------------------------------------------

def _matmul_fwd(a: Array, b: Array, attrs) -> Array:
    return a @ b


def _matmul_vjp(g, ins, out, attrs):
    a, b = ins
    if b.ndim == 2:
        ga = g @ b.T
        gb = a.reshape(-1, a.shape[-1]).T @ g.reshape(-1, g.shape[-1])
    else:
        ga = _unbroadcast(g @ np.swapaxes(b, -1, -2), a.shape)
        gb = _unbroadcast(np.swapaxes(a, -1, -2) @ g, b.shape)
    return [ga, gb]


_register("matmul", _matmul_fwd, _matmul_vjp)


def _linear_fwd(x: Array, w: Array, b: Array, attrs) -> Array:
    return x @ w.T + b


def _linear_vjp(g, ins, out, attrs):
    x, w, b = ins
    gx = g @ w
    g2 = g.reshape(-1, g.shape[-1])
    x2 = x.reshape(-1, x.shape[-1])
    gw = g2.T @ x2
    gb = g2.sum(axis=0)
    return [gx, gw, gb]


_register("linear", _linear_fwd, _linear_vjp)


# ---------------------------------------------------------------------------
# elementwise arithmetic
# ---------------------------------------------------------------------------

_register(
    "add",
    lambda a, b, attrs: a + b,
    lambda g, ins, out, attrs: [
        _unbroadcast(g, ins[0].shape),
        _unbroadcast(g, ins[1].shape),
    ],
)
_register(
    "sub",
    lambda a, b, attrs: a - b,
    lambda g, ins, out, attrs: [
        _unbroadcast(g, ins[0].shape),
        _unbroadcast(-g, ins[1].shape),
    ],
)
_register(
    "mul",
    lambda a, b, attrs: a * b,
    lambda g, ins, out, attrs: [
        _unbroadcast(g * ins[1], ins[0].shape),
        _unbroadcast(g * ins[0], ins[1].shape),
    ],
)
_register(
    "div",
    lambda a, b, attrs: a / b,
    lambda g, ins, out, attrs: [
        _unbroadcast(g / ins[1], ins[0].shape),
        _unbroadcast(-g * ins[0] / ins[1] ** 2, ins[1].shape),
    ],
)
_register("neg", lambda x, attrs: -x, lambda g, ins, out, attrs: [-g])
_register("identity", lambda x, attrs: x, lambda g, ins, out, attrs: [g])
_register(
    "scale",
    lambda x, attrs: x * float(attrs.get("factor", 1.0)),
    lambda g, ins, out, attrs: [g * float(attrs.get("factor", 1.0))],
)
_register(
    "relu",
    lambda x, attrs: np.maximum(x, 0.0),
    lambda g, ins, out, attrs: [g * (ins[0] > 0)],
)
_register(
    "tanh",
    lambda x, attrs: np.tanh(x),
    lambda g, ins, out, attrs: [g * (1.0 - out**2)],
)
_register(
    "sigmoid",
    lambda x, attrs: 1.0 / (1.0 + np.exp(-x)),
    lambda g, ins, out, attrs: [g * out * (1.0 - out)],
)

_GELU_C = np.sqrt(2.0 / np.pi)


def _gelu_fwd(x: Array, attrs) -> Array:
    return 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + 0.044715 * x**3)))


def _gelu_vjp(g, ins, out, attrs):
    x = ins[0]
    t = np.tanh(_GELU_C * (x + 0.044715 * x**3))
    dt = (1.0 - t**2) * _GELU_C * (1.0 + 3 * 0.044715 * x**2)
    return [g * (0.5 * (1.0 + t) + 0.5 * x * dt)]


_register("gelu", _gelu_fwd, _gelu_vjp)


def _dropout_fwd(x: Array, attrs) -> Array:
    seed = attrs.get("_train_seed")
    if seed is None:
        return x  # inference behaviour: deterministic identity
    p = float(attrs.get("p", 0.1))
    rng = np.random.default_rng(int(seed))
    mask = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    # the mask is re-derivable from the seed, so the VJP regenerates it
    return x * mask


def _dropout_vjp(g, ins, out, attrs):
    seed = attrs.get("_train_seed")
    if seed is None:
        return [g]
    p = float(attrs.get("p", 0.1))
    rng = np.random.default_rng(int(seed))
    mask = (rng.random(ins[0].shape) >= p).astype(g.dtype) / (1.0 - p)
    return [g * mask]


_register("dropout", _dropout_fwd, _dropout_vjp)


def _softmax_fwd(x: Array, attrs) -> Array:
    shifted = x - x.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


def _softmax_vjp(g, ins, out, attrs):
    dot = (g * out).sum(axis=-1, keepdims=True)
    return [out * (g - dot)]


_register("softmax", _softmax_fwd, _softmax_vjp)

_LN_EPS = 1e-5


def _layernorm_fwd(x: Array, gamma: Array, beta: Array, attrs) -> Array:
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    xhat = (x - mu) / np.sqrt(var + _LN_EPS)
    return gamma * xhat + beta


def _layernorm_vjp(g, ins, out, attrs):
    x, gamma, beta = ins
    h = x.shape[-1]
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + _LN_EPS)
    xhat = (x - mu) * inv
    gxhat = g * gamma
    gx = inv * (
        gxhat
        - gxhat.mean(axis=-1, keepdims=True)
        - xhat * (gxhat * xhat).mean(axis=-1, keepdims=True)
    )
    axes = tuple(range(g.ndim - 1))
    ggamma = (g * xhat).sum(axis=axes)
    gbeta = g.sum(axis=axes)
    return [gx, ggamma, gbeta]


_register("layernorm", _layernorm_fwd, _layernorm_vjp)


# ---------------------------------------------------------------------------
# shape manipulation
# ---------------------------------------------------------------------------

def _transpose_fwd(x: Array, attrs) -> Array:
    perm = attrs.get("perm") or tuple(reversed(range(x.ndim)))
    return np.transpose(x, perm)


def _transpose_vjp(g, ins, out, attrs):
    perm = attrs.get("perm") or tuple(reversed(range(ins[0].ndim)))
    inv = np.argsort(perm)
    return [np.transpose(g, inv)]


_register("transpose", _transpose_fwd, _transpose_vjp)


def _runtime_target_shape(x: Array, attrs) -> Tuple[int, ...]:
    """Re-base a canonical batch-1 reshape target on the actual batch."""
    target = list(attrs["shape"])
    batched = bool(attrs.get("_batched", True))
    if batched and target and target[0] == 1:
        target[0] = x.shape[0]
    return tuple(target)


def _reshape_fwd(x: Array, attrs) -> Array:
    return x.reshape(_runtime_target_shape(x, attrs))


def _reshape_vjp(g, ins, out, attrs):
    return [g.reshape(ins[0].shape)]


_register("reshape", _reshape_fwd, _reshape_vjp)
_register(
    "flatten",
    lambda x, attrs: x.reshape(x.shape[0], -1),
    lambda g, ins, out, attrs: [g.reshape(ins[0].shape)],
)


def _concat_fwd(*args) -> Array:
    *arrays, attrs = args
    axis = int(attrs.get("axis", -1))
    return np.concatenate(arrays, axis=axis)


def _concat_vjp(g, ins, out, attrs):
    axis = int(attrs.get("axis", -1))
    sizes = [a.shape[axis] for a in ins]
    splits = np.cumsum(sizes)[:-1]
    return list(np.split(g, splits, axis=axis))


_register("concat", _concat_fwd, _concat_vjp)


def _slice_rows_fwd(x: Array, attrs) -> Array:
    start = int(attrs.get("start", 0))
    stop = int(attrs.get("stop", start + 1))
    return x[:, start:stop]


def _slice_rows_vjp(g, ins, out, attrs):
    start = int(attrs.get("start", 0))
    stop = int(attrs.get("stop", start + 1))
    gx = np.zeros_like(ins[0])
    gx[:, start:stop] = g
    return [gx]


_register("slice_rows", _slice_rows_fwd, _slice_rows_vjp)


# ---------------------------------------------------------------------------
# embeddings / losses
# ---------------------------------------------------------------------------

def _embedding_fwd(ids: Array, weight: Array, attrs) -> Array:
    return weight[ids.astype(np.int64)]


def _embedding_vjp(g, ins, out, attrs):
    ids, weight = ins
    gw = np.zeros_like(weight)
    np.add.at(gw, ids.astype(np.int64).ravel(), g.reshape(-1, g.shape[-1]))
    return [None, gw]


_register("embedding", _embedding_fwd, _embedding_vjp)


def _cross_entropy_fwd(logits: Array, targets: Array, attrs) -> Array:
    flat = logits.reshape(-1, logits.shape[-1])
    t = targets.astype(np.int64).ravel()
    shifted = flat - flat.max(axis=-1, keepdims=True)
    logz = np.log(np.exp(shifted).sum(axis=-1))
    nll = logz - shifted[np.arange(flat.shape[0]), t]
    return np.array([nll.mean()], dtype=logits.dtype)


def _cross_entropy_vjp(g, ins, out, attrs):
    logits, targets = ins
    flat = logits.reshape(-1, logits.shape[-1])
    t = targets.astype(np.int64).ravel()
    shifted = flat - flat.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    p = e / e.sum(axis=-1, keepdims=True)
    p[np.arange(flat.shape[0]), t] -= 1.0
    p /= flat.shape[0]
    return [(float(g.ravel()[0]) * p).reshape(logits.shape), None]


_register("cross_entropy", _cross_entropy_fwd, _cross_entropy_vjp)


def _mse_fwd(a: Array, b: Array, attrs) -> Array:
    return np.array([((a - b) ** 2).mean()], dtype=a.dtype)


def _mse_vjp(g, ins, out, attrs):
    a, b = ins
    scale = 2.0 * float(g.ravel()[0]) / a.size
    d = scale * (a - b)
    return [d, -d]


_register("mse_loss", _mse_fwd, _mse_vjp)

_register(
    "reduce_mean",
    lambda x, attrs: (
        np.array([x.mean()], dtype=x.dtype)
        if attrs.get("axis") is None
        else x.mean(axis=int(attrs["axis"]))
    ),
    lambda g, ins, out, attrs: [
        (
            np.full_like(ins[0], float(g.ravel()[0]) / ins[0].size)
            if attrs.get("axis") is None
            else np.repeat(
                np.expand_dims(g / ins[0].shape[int(attrs["axis"])],
                               int(attrs["axis"])),
                ins[0].shape[int(attrs["axis"])],
                axis=int(attrs["axis"]),
            )
        )
    ],
)


# ---------------------------------------------------------------------------
# convolutional ops (im2col-based)
# ---------------------------------------------------------------------------

def _im2col(x: Array, kh: int, kw: int, stride: int, pad: int):
    n, c, h, w = x.shape
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            cols[:, :, i, j] = xp[
                :, :, i : i + stride * oh : stride, j : j + stride * ow : stride
            ]
    return cols.reshape(n, c * kh * kw, oh * ow), (oh, ow, xp.shape)


def _col2im(cols: Array, x_shape, kh, kw, stride, pad):
    n, c, h, w = x_shape
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    xp = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            xp[
                :, :, i : i + stride * oh : stride, j : j + stride * ow : stride
            ] += cols[:, :, i, j]
    if pad:
        return xp[:, :, pad:-pad, pad:-pad]
    return xp


def _conv2d_fwd(x: Array, w: Array, attrs) -> Array:
    stride = int(attrs.get("stride", 1))
    pad = int(attrs.get("padding", 0))
    o, c, kh, kw = w.shape
    cols, (oh, ow, _) = _im2col(x, kh, kw, stride, pad)
    out = np.einsum("ok,nkp->nop", w.reshape(o, -1), cols)
    return out.reshape(x.shape[0], o, oh, ow)


def _conv2d_vjp(g, ins, out, attrs):
    x, w = ins
    stride = int(attrs.get("stride", 1))
    pad = int(attrs.get("padding", 0))
    o, c, kh, kw = w.shape
    cols, (oh, ow, _) = _im2col(x, kh, kw, stride, pad)
    g2 = g.reshape(x.shape[0], o, -1)
    gw = np.einsum("nop,nkp->ok", g2, cols).reshape(w.shape)
    gcols = np.einsum("ok,nop->nkp", w.reshape(o, -1), g2)
    gx = _col2im(gcols, x.shape, kh, kw, stride, pad)
    return [gx, gw]


_register("conv2d", _conv2d_fwd, _conv2d_vjp)

_BN_EPS = 1e-5


def _batchnorm2d_fwd(x: Array, gamma: Array, beta: Array, attrs) -> Array:
    mu = x.mean(axis=(0, 2, 3), keepdims=True)
    var = x.var(axis=(0, 2, 3), keepdims=True)
    xhat = (x - mu) / np.sqrt(var + _BN_EPS)
    return gamma[None, :, None, None] * xhat + beta[None, :, None, None]


def _batchnorm2d_vjp(g, ins, out, attrs):
    x, gamma, beta = ins
    axes = (0, 2, 3)
    m = x.shape[0] * x.shape[2] * x.shape[3]
    mu = x.mean(axis=axes, keepdims=True)
    var = x.var(axis=axes, keepdims=True)
    inv = 1.0 / np.sqrt(var + _BN_EPS)
    xhat = (x - mu) * inv
    gxhat = g * gamma[None, :, None, None]
    gx = inv * (
        gxhat
        - gxhat.mean(axis=axes, keepdims=True)
        - xhat * (gxhat * xhat).mean(axis=axes, keepdims=True)
    )
    ggamma = (g * xhat).sum(axis=axes)
    gbeta = g.sum(axis=axes)
    return [gx, ggamma, gbeta]


_register("batchnorm2d", _batchnorm2d_fwd, _batchnorm2d_vjp)


def _maxpool_cols(x: Array, k: int, stride: int, pad: int):
    """im2col with -inf padding so padded cells never win the max."""
    n, c, h, w = x.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)),
                constant_values=-np.inf)
    oh = (h + 2 * pad - k) // stride + 1
    ow = (w + 2 * pad - k) // stride + 1
    cols = np.empty((n, c, k, k, oh, ow), dtype=x.dtype)
    for i in range(k):
        for j in range(k):
            cols[:, :, i, j] = xp[
                :, :, i : i + stride * oh : stride, j : j + stride * ow : stride
            ]
    return cols.reshape(n, c, k * k, oh * ow), oh, ow


def _maxpool2d_fwd(x: Array, attrs) -> Array:
    k = int(attrs.get("kernel", 2))
    stride = int(attrs.get("stride", k))
    pad = int(attrs.get("padding", 0))
    cols, oh, ow = _maxpool_cols(x, k, stride, pad)
    return cols.max(axis=2).reshape(x.shape[0], x.shape[1], oh, ow)


def _maxpool2d_vjp(g, ins, out, attrs):
    x = ins[0]
    k = int(attrs.get("kernel", 2))
    stride = int(attrs.get("stride", k))
    pad = int(attrs.get("padding", 0))
    n, c, h, w = x.shape
    flat, oh, ow = _maxpool_cols(x, k, stride, pad)
    winners = flat.argmax(axis=2)
    gcols = np.zeros_like(flat)
    np.put_along_axis(
        gcols, winners[:, :, None, :], g.reshape(n, c, 1, oh * ow), axis=2
    )
    gx = _col2im(
        gcols.reshape(n, c * k * k, oh * ow), x.shape, k, k, stride, pad
    )
    return [gx]


_register("maxpool2d", _maxpool2d_fwd, _maxpool2d_vjp)

_register(
    "global_avgpool",
    lambda x, attrs: x.mean(axis=(2, 3)),
    lambda g, ins, out, attrs: [
        np.broadcast_to(
            g[:, :, None, None] / (ins[0].shape[2] * ins[0].shape[3]),
            ins[0].shape,
        ).copy()
    ],
)
