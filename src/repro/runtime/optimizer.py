"""Optimizers for the NumPy runtime (SGD, SGD+momentum, Adam).

Adam matters beyond convergence demos: its two FP32 moment buffers are
the optimizer-state term of the partitioner's memory estimate, and the
loss-validation experiment trains with it.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

Array = np.ndarray


class Optimizer:
    """Base class: subclasses implement :meth:`update_param`."""

    def __init__(self, lr: float = 1e-3) -> None:
        self.lr = lr
        self.step_count = 0

    def step(self, params: Dict[str, Array], grads: Dict[str, Array]) -> None:
        """Apply one in-place update for every param with a gradient."""
        self.step_count += 1
        for name, grad in grads.items():
            if name in params:
                self.update_param(name, params[name], grad)

    def update_param(self, name: str, param: Array, grad: Array) -> None:
        raise NotImplementedError

    def state_bytes(self) -> int:
        """Actual optimizer-state footprint (cross-checked against the
        analytic memory model in tests)."""
        return 0


class SGD(Optimizer):
    """Plain or momentum SGD."""

    def __init__(self, lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(lr)
        self.momentum = momentum
        self._velocity: Dict[str, Array] = {}

    def update_param(self, name: str, param: Array, grad: Array) -> None:
        if self.momentum:
            v = self._velocity.get(name)
            if v is None:
                v = np.zeros_like(param)
            v = self.momentum * v + grad
            self._velocity[name] = v
            param -= self.lr * v
        else:
            param -= self.lr * grad

    def state_bytes(self) -> int:
        return sum(v.nbytes for v in self._velocity.values())


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Dict[str, Array] = {}
        self._v: Dict[str, Array] = {}
        self._t: Dict[str, int] = {}

    def update_param(self, name: str, param: Array, grad: Array) -> None:
        m = self._m.get(name)
        if m is None:
            m = np.zeros_like(param)
            self._v[name] = np.zeros_like(param)
            self._t[name] = 0
        v = self._v[name]
        self._t[name] += 1
        t = self._t[name]
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad**2
        self._m[name] = m
        self._v[name] = v
        mhat = m / (1 - self.beta1**t)
        vhat = v / (1 - self.beta2**t)
        param -= self.lr * mhat / (np.sqrt(vhat) + self.eps)

    def state_bytes(self) -> int:
        return sum(v.nbytes for v in self._m.values()) + sum(
            v.nbytes for v in self._v.values()
        )
