"""Hardware presets mirroring the paper's testbed.

"Each compute node in our cluster has two Intel Xeon Gold 6140 processors,
768 GB memory, and eight NVIDIA V100s connected via NVLinks.  Each V100
has 32 GB device memory.  The bandwidth between two V100s is 25 GB/s or
50 GB/s.  The compute nodes are connected by InfiniBand, and the bandwidth
is 100 Gbps." (Sec. IV-A)
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import DeviceSpec

#: NVIDIA V100 SXM2 32 GB: 15.7 TFLOP/s FP32, 125 TFLOP/s FP16 tensor
#: cores, 900 GB/s HBM2.
V100 = DeviceSpec(
    name="V100-SXM2-32GB",
    memory_bytes=32 * 1024**3,
    peak_flops_fp32=15.7e12,
    peak_flops_fp16=125.0e12,
    mem_bandwidth=900.0e9,
)


def paper_cluster(
    num_nodes: int = 4,
    comm_model: str = "flat",
    nvlink_degree: Optional[int] = None,
    nic_count: int = 1,
) -> ClusterSpec:
    """The paper's evaluation cluster: ``num_nodes`` x 8 V100.

    NVLink pairs run at 25 or 50 GB/s; we use the conservative 25 GB/s the
    paper quotes as the lower bound.  InfiniBand 100 Gb/s = 12.5 GB/s.

    ``comm_model``/``nvlink_degree``/``nic_count`` select the
    communication model and network shape (see :mod:`repro.comm`); the
    defaults reproduce the historical flat model exactly.
    """
    return ClusterSpec(
        num_nodes=num_nodes,
        devices_per_node=8,
        device=V100,
        intra_node_bandwidth=25.0e9,
        inter_node_bandwidth=12.5e9,
        comm_model=comm_model,
        nvlink_degree=nvlink_degree,
        nic_count=nic_count,
    )


def single_node() -> ClusterSpec:
    """One node x 8 V100 (the Fig. 5 GPipe-Model setting)."""
    return paper_cluster(num_nodes=1)


def tiny_cluster(num_nodes: int = 1, devices_per_node: int = 4,
                 memory_bytes: int = 2 * 1024**3,
                 comm_model: str = "flat",
                 nvlink_degree: Optional[int] = None,
                 nic_count: int = 1) -> ClusterSpec:
    """A small cluster with shrunken device memory, for fast tests that
    still trip memory-infeasibility paths on toy models.

    The topology knobs (``comm_model``, ``nvlink_degree``,
    ``nic_count``) let memory-starved multi-stage tests exercise
    constrained NVLink meshes and contended NIC uplinks cheaply."""
    dev = DeviceSpec(
        name="tiny",
        memory_bytes=memory_bytes,
        peak_flops_fp32=V100.peak_flops_fp32,
        peak_flops_fp16=V100.peak_flops_fp16,
        mem_bandwidth=V100.mem_bandwidth,
    )
    return ClusterSpec(
        num_nodes=num_nodes,
        devices_per_node=devices_per_node,
        device=dev,
        intra_node_bandwidth=25.0e9,
        inter_node_bandwidth=12.5e9,
        comm_model=comm_model,
        nvlink_degree=nvlink_degree,
        nic_count=nic_count,
    )


PAPER_CLUSTER = paper_cluster()
SINGLE_NODE = single_node()
TINY_CLUSTER = tiny_cluster()
