"""Hardware presets mirroring the paper's testbed.

"Each compute node in our cluster has two Intel Xeon Gold 6140 processors,
768 GB memory, and eight NVIDIA V100s connected via NVLinks.  Each V100
has 32 GB device memory.  The bandwidth between two V100s is 25 GB/s or
50 GB/s.  The compute nodes are connected by InfiniBand, and the bandwidth
is 100 Gbps." (Sec. IV-A)
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.cluster import ClusterSpec, DeviceClass
from repro.hardware.device import DeviceSpec

#: NVIDIA V100 SXM2 32 GB: 15.7 TFLOP/s FP32, 125 TFLOP/s FP16 tensor
#: cores, 900 GB/s HBM2.
V100 = DeviceSpec(
    name="V100-SXM2-32GB",
    memory_bytes=32 * 1024**3,
    peak_flops_fp32=15.7e12,
    peak_flops_fp16=125.0e12,
    mem_bandwidth=900.0e9,
)

#: NVIDIA A100 SXM4 40 GB: 19.5 TFLOP/s FP32, 312 TFLOP/s FP16 tensor
#: cores, 1.56 TB/s HBM2e.
A100 = DeviceSpec(
    name="A100-SXM4-40GB",
    memory_bytes=40 * 1024**3,
    peak_flops_fp32=19.5e12,
    peak_flops_fp16=312.0e12,
    mem_bandwidth=1555.0e9,
)


def paper_cluster(
    num_nodes: int = 4,
    comm_model: str = "flat",
    nvlink_degree: Optional[int] = None,
    nic_count: int = 1,
) -> ClusterSpec:
    """The paper's evaluation cluster: ``num_nodes`` x 8 V100.

    NVLink pairs run at 25 or 50 GB/s; we use the conservative 25 GB/s the
    paper quotes as the lower bound.  InfiniBand 100 Gb/s = 12.5 GB/s.

    ``comm_model``/``nvlink_degree``/``nic_count`` select the
    communication model and network shape (see :mod:`repro.comm`); the
    defaults reproduce the historical flat model exactly.
    """
    return ClusterSpec(
        num_nodes=num_nodes,
        devices_per_node=8,
        device=V100,
        intra_node_bandwidth=25.0e9,
        inter_node_bandwidth=12.5e9,
        comm_model=comm_model,
        nvlink_degree=nvlink_degree,
        nic_count=nic_count,
    )


def single_node() -> ClusterSpec:
    """One node x 8 V100 (the Fig. 5 GPipe-Model setting)."""
    return paper_cluster(num_nodes=1)


def tiny_cluster(num_nodes: int = 1, devices_per_node: int = 4,
                 memory_bytes: int = 2 * 1024**3,
                 comm_model: str = "flat",
                 nvlink_degree: Optional[int] = None,
                 nic_count: int = 1) -> ClusterSpec:
    """A small cluster with shrunken device memory, for fast tests that
    still trip memory-infeasibility paths on toy models.

    The topology knobs (``comm_model``, ``nvlink_degree``,
    ``nic_count``) let memory-starved multi-stage tests exercise
    constrained NVLink meshes and contended NIC uplinks cheaply."""
    dev = DeviceSpec(
        name="tiny",
        memory_bytes=memory_bytes,
        peak_flops_fp32=V100.peak_flops_fp32,
        peak_flops_fp16=V100.peak_flops_fp16,
        mem_bandwidth=V100.mem_bandwidth,
    )
    return ClusterSpec(
        num_nodes=num_nodes,
        devices_per_node=devices_per_node,
        device=dev,
        intra_node_bandwidth=25.0e9,
        inter_node_bandwidth=12.5e9,
        comm_model=comm_model,
        nvlink_degree=nvlink_degree,
        nic_count=nic_count,
    )


def mixed_cluster(
    v100_nodes: int = 2,
    a100_nodes: int = 2,
    straggler_factor: float = 1.0,
) -> ClusterSpec:
    """A mixed V100/A100 cluster: the heterogeneous analogue of the
    paper's testbed.

    V100 nodes carry 8 devices, A100 nodes 8 devices with more memory
    and higher throughput; the V100 stays the profiling reference
    device, so a pure-V100 declaration reproduces homogeneous numbers.
    ``straggler_factor`` slows every V100 node (e.g. ``1.25`` models a
    thermally throttled rack)."""
    return ClusterSpec(
        num_nodes=v100_nodes + a100_nodes,
        devices_per_node=8,
        device=V100,
        intra_node_bandwidth=25.0e9,
        inter_node_bandwidth=12.5e9,
        device_classes=(
            DeviceClass(
                name="v100",
                device=V100,
                num_nodes=v100_nodes,
                devices_per_node=8,
                straggler_factor=straggler_factor,
            ),
            DeviceClass(
                name="a100",
                device=A100,
                num_nodes=a100_nodes,
                devices_per_node=8,
            ),
        ),
    )


def tiny_mixed_cluster(
    small_nodes: int = 1,
    big_nodes: int = 1,
    devices_per_node: int = 4,
    small_memory_bytes: int = 2 * 1024**3,
    big_memory_bytes: int = 8 * 1024**3,
    straggler_factor: float = 1.0,
) -> ClusterSpec:
    """A two-class toy cluster for fast heterogeneous tests: one class
    of memory-starved devices next to one class with headroom, so a
    model that cannot fit on the homogeneous small cluster becomes
    feasible once the big class joins."""
    small = DeviceSpec(
        name="tiny-small",
        memory_bytes=small_memory_bytes,
        peak_flops_fp32=V100.peak_flops_fp32,
        peak_flops_fp16=V100.peak_flops_fp16,
        mem_bandwidth=V100.mem_bandwidth,
    )
    big = DeviceSpec(
        name="tiny-big",
        memory_bytes=big_memory_bytes,
        peak_flops_fp32=V100.peak_flops_fp32,
        peak_flops_fp16=V100.peak_flops_fp16,
        mem_bandwidth=V100.mem_bandwidth,
    )
    return ClusterSpec(
        num_nodes=small_nodes + big_nodes,
        devices_per_node=devices_per_node,
        device=small,
        intra_node_bandwidth=25.0e9,
        inter_node_bandwidth=12.5e9,
        device_classes=(
            DeviceClass(
                name="small",
                device=small,
                num_nodes=small_nodes,
                devices_per_node=devices_per_node,
                straggler_factor=straggler_factor,
            ),
            DeviceClass(
                name="big",
                device=big,
                num_nodes=big_nodes,
                devices_per_node=devices_per_node,
            ),
        ),
    )


PAPER_CLUSTER = paper_cluster()
SINGLE_NODE = single_node()
TINY_CLUSTER = tiny_cluster()
