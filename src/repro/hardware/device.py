"""Accelerator device specification and precision modes."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Precision(enum.Enum):
    """Training numeric mode.

    ``FP32`` is plain single precision.  ``AMP`` models Apex-AMP style
    mixed precision (the paper trains RaNNC and Megatron-LM in both):
    FP16 activations and tensor-core matmuls with FP32 master weights.
    """

    FP32 = "fp32"
    AMP = "amp"

    @property
    def activation_bytes_factor(self) -> float:
        """Activation size relative to FP32."""
        return 1.0 if self is Precision.FP32 else 0.5


@dataclass(frozen=True)
class DeviceSpec:
    """Performance/capacity model of one accelerator.

    Attributes:
        name: human label.
        memory_bytes: device memory capacity.
        peak_flops_fp32: peak FP32 throughput (FLOP/s).
        peak_flops_fp16: peak FP16 tensor-core throughput (FLOP/s).
        mem_bandwidth: device memory bandwidth (B/s).
        matmul_efficiency: fraction of peak achievable by dense
            matmul/conv kernels (cuBLAS/cuDNN realistic sustained rate).
        kernel_overhead: fixed per-kernel launch latency (s).
        memory_reserve_fraction: fraction of device memory unavailable to
            the model (framework/NCCL/workspace reserve).
    """

    name: str
    memory_bytes: int
    peak_flops_fp32: float
    peak_flops_fp16: float
    mem_bandwidth: float
    matmul_efficiency: float = 0.50
    kernel_overhead: float = 4.0e-6
    memory_reserve_fraction: float = 0.08

    def peak_flops(self, precision: Precision) -> float:
        return (
            self.peak_flops_fp32
            if precision is Precision.FP32
            else self.peak_flops_fp16
        )

    @property
    def usable_memory(self) -> float:
        """Memory budget the partitioner may plan against."""
        return self.memory_bytes * (1.0 - self.memory_reserve_fraction)

    def matmul_time(self, flops: float, precision: Precision) -> float:
        """Time for a compute-bound kernel at sustained matmul efficiency."""
        return flops / (self.peak_flops(precision) * self.matmul_efficiency)
