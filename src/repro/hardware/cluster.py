"""Cluster topology: nodes, devices and interconnect bandwidths."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.hardware.device import DeviceSpec, Precision

#: recognised communication models (mirrors ``repro.comm.COMM_MODELS``;
#: duplicated literally to keep this module import-light)
_COMM_MODELS = ("flat", "topology")


@dataclass(frozen=True)
class DeviceClass:
    """One homogeneous slice of a heterogeneous cluster.

    A device class is ``num_nodes`` identical nodes, each carrying
    ``devices_per_node`` devices of one :class:`DeviceSpec` -- e.g. "two
    8-V100 nodes" next to "one 4-A100 node".  ``straggler_factor``
    models a class that runs slower than its spec sheet (thermal
    throttling, noisy neighbours): every stage time on the class is
    multiplied by it, so ``1.0`` is nominal and ``1.25`` is 25% slow.
    """

    name: str
    device: DeviceSpec
    num_nodes: int
    devices_per_node: int
    straggler_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.devices_per_node < 1:
            raise ValueError(
                f"device class {self.name!r} must have >=1 node and "
                f">=1 device/node"
            )
        if self.straggler_factor <= 0:
            raise ValueError(
                f"device class {self.name!r}: straggler_factor must be > 0"
            )

    @property
    def total_devices(self) -> int:
        return self.num_nodes * self.devices_per_node

    def time_factor(self, reference: DeviceSpec, precision: Precision) -> float:
        """Stage-time multiplier of this class relative to ``reference``.

        Profiles are computed once on the cluster's reference device;
        a class whose sustained matmul rate is half the reference runs
        the same stage twice as long (further scaled by the class's
        ``straggler_factor``)."""
        ref_rate = reference.peak_flops(precision) * reference.matmul_efficiency
        cls_rate = (
            self.device.peak_flops(precision) * self.device.matmul_efficiency
        )
        return self.straggler_factor * ref_rate / cls_rate


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster of accelerator nodes (homogeneous or device-classed).

    Bandwidths follow the paper's setup: ``intra_node_bandwidth`` is the
    device-to-device NVLink rate used to estimate stage-to-stage
    communication time (footnote 3: "we use the intra-node bandwidth, not
    the inter-node bandwidth" because device allocation keeps adjacent
    stages on the same node where possible); ``inter_node_bandwidth`` is
    the network rate used for cross-node data-parallel allreduce.

    Communication costs are produced by a swappable model
    (:mod:`repro.comm`): ``comm_model="flat"`` (the default) keeps the
    historical two-scalar closed forms bit-for-bit, while
    ``comm_model="topology"`` derives costs from an explicit link-level
    network graph.  The topology shape is tunable: ``nvlink_degree``
    (``None`` = full mesh) bounds how many NVLink peers each GPU has,
    and ``nic_count`` splits the node's aggregate uplink bandwidth over
    that many NICs.

    **Device classes.**  An empty ``device_classes`` (the default) is the
    historical homogeneous cluster: every code path behaves exactly as
    before.  A non-empty tuple declares a heterogeneous cluster: nodes
    are laid out in class-declaration order, ``device`` becomes the
    *reference* device that profiles are computed against (per-class
    times scale by :meth:`DeviceClass.time_factor`), and per-rank
    capacity comes from each rank's own class.  ``num_nodes`` must equal
    the classes' node total and ``devices_per_node`` their maximum;
    heterogeneous clusters currently require ``comm_model="flat"``.
    """

    num_nodes: int
    devices_per_node: int
    device: DeviceSpec
    intra_node_bandwidth: float  # B/s, e.g. NVLink 25 GB/s
    inter_node_bandwidth: float  # B/s, e.g. 100 Gb/s IB = 12.5 GB/s
    comm_latency: float = 10.0e-6  # per-transfer fixed latency (s)
    comm_model: str = "flat"  # "flat" | "topology"
    nvlink_degree: Optional[int] = None  # None = full intra-node mesh
    nic_count: int = 1  # NICs per node, sharing inter_node_bandwidth
    device_classes: Tuple[DeviceClass, ...] = ()  # () = homogeneous

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.devices_per_node < 1:
            raise ValueError("cluster must have >=1 node and >=1 device/node")
        if self.comm_model not in _COMM_MODELS:
            raise ValueError(
                f"unknown comm_model {self.comm_model!r} (known: {_COMM_MODELS})"
            )
        if self.nvlink_degree is not None and self.nvlink_degree < 1:
            raise ValueError("nvlink_degree must be >= 1 (or None for full mesh)")
        if self.nic_count < 1:
            raise ValueError("nic_count must be >= 1")
        if self.device_classes:
            # tolerate a list argument; keep the spec hashable
            object.__setattr__(
                self, "device_classes", tuple(self.device_classes)
            )
            class_nodes = sum(c.num_nodes for c in self.device_classes)
            if class_nodes != self.num_nodes:
                raise ValueError(
                    f"device classes declare {class_nodes} nodes, cluster "
                    f"says num_nodes={self.num_nodes}"
                )
            widest = max(c.devices_per_node for c in self.device_classes)
            if widest != self.devices_per_node:
                raise ValueError(
                    f"devices_per_node={self.devices_per_node} must equal "
                    f"the widest device class ({widest})"
                )
            if self.comm_model != "flat":
                raise ValueError(
                    "heterogeneous clusters require comm_model='flat' "
                    "(the topology model assumes uniform nodes)"
                )
            names = [c.name for c in self.device_classes]
            if len(set(names)) != len(names):
                raise ValueError(f"duplicate device class names: {names}")

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def is_heterogeneous(self) -> bool:
        """True when the cluster declares device classes."""
        return bool(self.device_classes)

    @property
    def total_devices(self) -> int:
        if self.device_classes:
            return sum(c.total_devices for c in self.device_classes)
        return self.num_nodes * self.devices_per_node

    def node_classes(self) -> Tuple[DeviceClass, ...]:
        """The device class of every node, in global node order."""
        if not self.device_classes:
            raise ValueError("homogeneous cluster has no device classes")
        out = []
        for cls in self.device_classes:
            out.extend([cls] * cls.num_nodes)
        return tuple(out)

    def node_device_counts(self) -> Tuple[int, ...]:
        """Devices hosted by each node, in global node order."""
        if self.device_classes:
            return tuple(c.devices_per_node for c in self.node_classes())
        return (self.devices_per_node,) * self.num_nodes

    def node_first_ranks(self) -> Tuple[int, ...]:
        """First global rank of each node plus a trailing total (prefix
        sums of :meth:`node_device_counts`)."""
        offsets = [0]
        for count in self.node_device_counts():
            offsets.append(offsets[-1] + count)
        return tuple(offsets)

    def node_of(self, device_rank: int) -> int:
        """Node index hosting a global device rank.

        Correct for non-uniform nodes: ranks are laid out node by node
        in class-declaration order, so the mapping walks the per-node
        prefix sums instead of assuming a uniform ``devices_per_node``.
        """
        if not 0 <= device_rank < self.total_devices:
            raise ValueError(f"device rank {device_rank} out of range")
        if not self.device_classes:
            return device_rank // self.devices_per_node
        offsets = self.node_first_ranks()
        lo, hi = 0, self.num_nodes - 1
        while lo < hi:  # bisect over the prefix sums
            mid = (lo + hi + 1) // 2
            if offsets[mid] <= device_rank:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def class_of_rank(self, device_rank: int) -> DeviceClass:
        """The device class hosting a global rank (heterogeneous only)."""
        return self.node_classes()[self.node_of(device_rank)]

    def device_at(self, device_rank: int) -> DeviceSpec:
        """The :class:`DeviceSpec` of one global rank."""
        if not self.device_classes:
            self.node_of(device_rank)  # range check
            return self.device
        return self.class_of_rank(device_rank).device

    # ------------------------------------------------------------------
    # per-rank capacity / speed tables (heterogeneity-aware)
    # ------------------------------------------------------------------
    def rank_memories(self) -> Tuple[float, ...]:
        """Usable memory of every global rank, in rank order."""
        if not self.device_classes:
            return (self.device.usable_memory,) * self.total_devices
        mems = []
        for cls in self.node_classes():
            mems.extend([cls.device.usable_memory] * cls.devices_per_node)
        return tuple(mems)

    def rank_time_factors(self, precision: Precision) -> Tuple[float, ...]:
        """Stage-time multiplier of every global rank relative to the
        reference device (1.0 everywhere for a homogeneous cluster)."""
        if not self.device_classes:
            return (1.0,) * self.total_devices
        factors = []
        for cls in self.node_classes():
            factors.extend(
                [cls.time_factor(self.device, precision)]
                * cls.devices_per_node
            )
        return tuple(factors)

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    @property
    def comm(self):
        """The communication model this cluster asks for (a
        :class:`repro.comm.model.CommModel`, cached per spec)."""
        from repro.comm.model import comm_model_for

        return comm_model_for(self)

    def p2p_time(self, nbytes: float, same_node: bool = True) -> float:
        """Point-to-point transfer time between two devices (delegates
        to the configured communication model)."""
        return self.comm.p2p_time(nbytes, same_node=same_node)

    def allreduce_time(self, nbytes: float, n_ranks: int,
                       spans_nodes: bool = True) -> float:
        """Allreduce time over ``n_ranks`` replicas (delegates to the
        configured communication model).

        Under the flat model this is the standard ring cost
        ``2 (n-1)/n * size / min_link_bw`` with the inter-node network as
        the bottleneck link whenever the ring spans nodes; the topology
        model instead prices a representative rank group under its
        cheapest applicable allreduce algorithm.
        """
        return self.comm.allreduce_time(nbytes, n_ranks, spans_nodes=spans_nodes)

    # ------------------------------------------------------------------
    # derived clusters (Algorithm 2, elastic events)
    # ------------------------------------------------------------------
    def scaled(self, num_nodes: int) -> "ClusterSpec":
        """Same hardware, different node count (Algorithm 2 iterates n)."""
        if self.device_classes:
            raise ValueError(
                "scaled() is undefined for heterogeneous clusters; "
                "use drop_node()/grown() instead"
            )
        return dataclasses.replace(self, num_nodes=num_nodes)

    def drop_node(self, node_index: int) -> "ClusterSpec":
        """The cluster after losing one node (elastic node-loss event)."""
        if not 0 <= node_index < self.num_nodes:
            raise ValueError(f"node index {node_index} out of range")
        if self.num_nodes == 1:
            raise ValueError("cannot drop the last node")
        if not self.device_classes:
            return dataclasses.replace(self, num_nodes=self.num_nodes - 1)
        classes = []
        seen = 0
        for cls in self.device_classes:
            if seen <= node_index < seen + cls.num_nodes:
                if cls.num_nodes > 1:
                    classes.append(
                        dataclasses.replace(cls, num_nodes=cls.num_nodes - 1)
                    )
            else:
                classes.append(cls)
            seen += cls.num_nodes
        classes = tuple(classes)
        return dataclasses.replace(
            self,
            num_nodes=self.num_nodes - 1,
            devices_per_node=max(c.devices_per_node for c in classes),
            device_classes=classes,
        )

    def grown(self, extra_nodes: int, class_name: Optional[str] = None
              ) -> "ClusterSpec":
        """The cluster after a scale-up of ``extra_nodes`` nodes.

        Homogeneous clusters just grow; heterogeneous ones grow the
        named class (default: the first class)."""
        if extra_nodes < 1:
            raise ValueError("extra_nodes must be >= 1")
        if not self.device_classes:
            return dataclasses.replace(
                self, num_nodes=self.num_nodes + extra_nodes
            )
        target = class_name or self.device_classes[0].name
        classes = []
        found = False
        for cls in self.device_classes:
            if cls.name == target:
                found = True
                cls = dataclasses.replace(
                    cls, num_nodes=cls.num_nodes + extra_nodes
                )
            classes.append(cls)
        if not found:
            raise ValueError(f"no device class named {target!r}")
        return dataclasses.replace(
            self,
            num_nodes=self.num_nodes + extra_nodes,
            device_classes=tuple(classes),
        )

    def with_comm_model(self, comm_model: str) -> "ClusterSpec":
        """Same cluster under a different communication model."""
        if comm_model == self.comm_model:
            return self
        return dataclasses.replace(self, comm_model=comm_model)
