"""Cluster topology: nodes, devices and interconnect bandwidths."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.hardware.device import DeviceSpec

#: recognised communication models (mirrors ``repro.comm.COMM_MODELS``;
#: duplicated literally to keep this module import-light)
_COMM_MODELS = ("flat", "topology")


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of accelerator nodes.

    Bandwidths follow the paper's setup: ``intra_node_bandwidth`` is the
    device-to-device NVLink rate used to estimate stage-to-stage
    communication time (footnote 3: "we use the intra-node bandwidth, not
    the inter-node bandwidth" because device allocation keeps adjacent
    stages on the same node where possible); ``inter_node_bandwidth`` is
    the network rate used for cross-node data-parallel allreduce.

    Communication costs are produced by a swappable model
    (:mod:`repro.comm`): ``comm_model="flat"`` (the default) keeps the
    historical two-scalar closed forms bit-for-bit, while
    ``comm_model="topology"`` derives costs from an explicit link-level
    network graph.  The topology shape is tunable: ``nvlink_degree``
    (``None`` = full mesh) bounds how many NVLink peers each GPU has,
    and ``nic_count`` splits the node's aggregate uplink bandwidth over
    that many NICs.
    """

    num_nodes: int
    devices_per_node: int
    device: DeviceSpec
    intra_node_bandwidth: float  # B/s, e.g. NVLink 25 GB/s
    inter_node_bandwidth: float  # B/s, e.g. 100 Gb/s IB = 12.5 GB/s
    comm_latency: float = 10.0e-6  # per-transfer fixed latency (s)
    comm_model: str = "flat"  # "flat" | "topology"
    nvlink_degree: Optional[int] = None  # None = full intra-node mesh
    nic_count: int = 1  # NICs per node, sharing inter_node_bandwidth

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.devices_per_node < 1:
            raise ValueError("cluster must have >=1 node and >=1 device/node")
        if self.comm_model not in _COMM_MODELS:
            raise ValueError(
                f"unknown comm_model {self.comm_model!r} (known: {_COMM_MODELS})"
            )
        if self.nvlink_degree is not None and self.nvlink_degree < 1:
            raise ValueError("nvlink_degree must be >= 1 (or None for full mesh)")
        if self.nic_count < 1:
            raise ValueError("nic_count must be >= 1")

    @property
    def total_devices(self) -> int:
        return self.num_nodes * self.devices_per_node

    def node_of(self, device_rank: int) -> int:
        """Node index hosting a global device rank."""
        if not 0 <= device_rank < self.total_devices:
            raise ValueError(f"device rank {device_rank} out of range")
        return device_rank // self.devices_per_node

    @property
    def comm(self):
        """The communication model this cluster asks for (a
        :class:`repro.comm.model.CommModel`, cached per spec)."""
        from repro.comm.model import comm_model_for

        return comm_model_for(self)

    def p2p_time(self, nbytes: float, same_node: bool = True) -> float:
        """Point-to-point transfer time between two devices (delegates
        to the configured communication model)."""
        return self.comm.p2p_time(nbytes, same_node=same_node)

    def allreduce_time(self, nbytes: float, n_ranks: int,
                       spans_nodes: bool = True) -> float:
        """Allreduce time over ``n_ranks`` replicas (delegates to the
        configured communication model).

        Under the flat model this is the standard ring cost
        ``2 (n-1)/n * size / min_link_bw`` with the inter-node network as
        the bottleneck link whenever the ring spans nodes; the topology
        model instead prices a representative rank group under its
        cheapest applicable allreduce algorithm.
        """
        return self.comm.allreduce_time(nbytes, n_ranks, spans_nodes=spans_nodes)

    def scaled(self, num_nodes: int) -> "ClusterSpec":
        """Same hardware, different node count (Algorithm 2 iterates n)."""
        return dataclasses.replace(self, num_nodes=num_nodes)

    def with_comm_model(self, comm_model: str) -> "ClusterSpec":
        """Same cluster under a different communication model."""
        if comm_model == self.comm_model:
            return self
        return dataclasses.replace(self, comm_model=comm_model)
