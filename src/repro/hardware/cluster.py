"""Cluster topology: nodes, devices and interconnect bandwidths."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.hardware.device import DeviceSpec


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of accelerator nodes.

    Bandwidths follow the paper's setup: ``intra_node_bandwidth`` is the
    device-to-device NVLink rate used to estimate stage-to-stage
    communication time (footnote 3: "we use the intra-node bandwidth, not
    the inter-node bandwidth" because device allocation keeps adjacent
    stages on the same node where possible); ``inter_node_bandwidth`` is
    the network rate used for cross-node data-parallel allreduce.
    """

    num_nodes: int
    devices_per_node: int
    device: DeviceSpec
    intra_node_bandwidth: float  # B/s, e.g. NVLink 25 GB/s
    inter_node_bandwidth: float  # B/s, e.g. 100 Gb/s IB = 12.5 GB/s
    comm_latency: float = 10.0e-6  # per-transfer fixed latency (s)

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.devices_per_node < 1:
            raise ValueError("cluster must have >=1 node and >=1 device/node")

    @property
    def total_devices(self) -> int:
        return self.num_nodes * self.devices_per_node

    def node_of(self, device_rank: int) -> int:
        """Node index hosting a global device rank."""
        if not 0 <= device_rank < self.total_devices:
            raise ValueError(f"device rank {device_rank} out of range")
        return device_rank // self.devices_per_node

    def p2p_time(self, nbytes: float, same_node: bool = True) -> float:
        """Point-to-point transfer time between two devices."""
        bw = self.intra_node_bandwidth if same_node else self.inter_node_bandwidth
        return self.comm_latency + nbytes / bw

    def allreduce_time(self, nbytes: float, n_ranks: int,
                       spans_nodes: bool = True) -> float:
        """Ring-allreduce time over ``n_ranks`` replicas.

        Standard ring cost ``2 (n-1)/n * size / min_link_bw``; the
        bottleneck link is the inter-node network whenever the ring spans
        nodes.
        """
        if n_ranks <= 1:
            return 0.0
        bw = self.inter_node_bandwidth if spans_nodes else self.intra_node_bandwidth
        return self.comm_latency * 2 * (n_ranks - 1) + (
            2.0 * (n_ranks - 1) / n_ranks
        ) * nbytes / bw

    def scaled(self, num_nodes: int) -> "ClusterSpec":
        """Same hardware, different node count (Algorithm 2 iterates n)."""
        return ClusterSpec(
            num_nodes=num_nodes,
            devices_per_node=self.devices_per_node,
            device=self.device,
            intra_node_bandwidth=self.intra_node_bandwidth,
            inter_node_bandwidth=self.inter_node_bandwidth,
            comm_latency=self.comm_latency,
        )
