"""Simulated accelerator hardware.

The paper's testbed -- compute nodes with eight 32 GB V100s linked by
NVLink (25-50 GB/s) and 100 Gb/s InfiniBand between nodes -- is modelled
by :class:`DeviceSpec` and :class:`ClusterSpec`.  All throughput numbers
produced by this repository are *simulated* on these specs (see DESIGN.md
for the substitution rationale).
"""

from repro.hardware.device import DeviceSpec, Precision
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import (
    PAPER_CLUSTER,
    SINGLE_NODE,
    TINY_CLUSTER,
    V100,
    paper_cluster,
    single_node,
    tiny_cluster,
)

__all__ = [
    "ClusterSpec",
    "DeviceSpec",
    "PAPER_CLUSTER",
    "Precision",
    "SINGLE_NODE",
    "TINY_CLUSTER",
    "V100",
    "paper_cluster",
    "single_node",
    "tiny_cluster",
]
