"""Simulated accelerator hardware.

The paper's testbed -- compute nodes with eight 32 GB V100s linked by
NVLink (25-50 GB/s) and 100 Gb/s InfiniBand between nodes -- is modelled
by :class:`DeviceSpec` and :class:`ClusterSpec`.  All throughput numbers
produced by this repository are *simulated* on these specs (see DESIGN.md
for the substitution rationale).  Heterogeneous clusters declare
:class:`DeviceClass` slices (mixed V100/A100 generations, stragglers);
see docs/HETEROGENEOUS.md.
"""

from repro.hardware.device import DeviceSpec, Precision
from repro.hardware.cluster import ClusterSpec, DeviceClass
from repro.hardware.presets import (
    A100,
    PAPER_CLUSTER,
    SINGLE_NODE,
    TINY_CLUSTER,
    V100,
    mixed_cluster,
    paper_cluster,
    single_node,
    tiny_cluster,
    tiny_mixed_cluster,
)

__all__ = [
    "A100",
    "ClusterSpec",
    "DeviceClass",
    "DeviceSpec",
    "PAPER_CLUSTER",
    "Precision",
    "SINGLE_NODE",
    "TINY_CLUSTER",
    "V100",
    "mixed_cluster",
    "paper_cluster",
    "single_node",
    "tiny_cluster",
    "tiny_mixed_cluster",
]
