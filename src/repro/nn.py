"""PyTorch-style module frontend over the graph builder.

RaNNC's promise is taking "a model description for PyTorch without any
specification for model parallelism".  This module provides the same user
experience for the NumPy stack: define a model by composing ``Module``
subclasses exactly like ``torch.nn``, then :func:`trace` it into the task
graph the partitioner consumes -- no annotations, no manual stages.

Example::

    class Net(nn.Module):
        def __init__(self):
            super().__init__()
            self.fc1 = nn.Linear(784, 256)
            self.act = nn.ReLU()
            self.fc2 = nn.Linear(256, 10)

        def forward(self, x):
            return self.fc2(self.act(self.fc1(x)))

    graph = nn.trace(Net(), {"x": nn.Input((1, 784))}, loss="cross_entropy",
                     targets=nn.Input((1,), dtype=DataType.INT64))
    plan = auto_partition(graph, cluster, batch_size=64)

During tracing every layer call records IR tasks through a shared
:class:`~repro.graph.builder.GraphBuilder`; parameters get hierarchical
names (``fc1.weight`` etc.) derived from attribute paths, like PyTorch's
``state_dict`` keys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.graph.builder import GraphBuilder, Sym
from repro.graph.ir import DataType, Shape, TaskGraph


@dataclass(frozen=True)
class Input:
    """Declaration of a traced model input (canonical batch-1 shape)."""

    shape: Shape
    dtype: DataType = DataType.FLOAT32
    batched: bool = True


class _TraceContext:
    """Per-trace state: the builder plus the current module name scope."""

    def __init__(self, builder: GraphBuilder) -> None:
        self.builder = builder
        self.scope: List[str] = []

    def scoped(self, name: str) -> str:
        return ".".join(self.scope + [name]) if self.scope else name


_ACTIVE: List[_TraceContext] = []


def _ctx() -> _TraceContext:
    if not _ACTIVE:
        raise RuntimeError(
            "modules can only be called inside nn.trace(...)"
        )
    return _ACTIVE[-1]


class Module:
    """Base class for composable layers.

    Subclasses implement :meth:`forward` over :class:`Sym` handles.
    Calling a module inside a trace pushes its attribute name onto the
    parameter scope, so parameters are named like PyTorch state dicts.
    """

    def __init__(self) -> None:
        self._name: Optional[str] = None

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Module) and not name.startswith("_"):
            value._name = name
        if isinstance(value, (list, tuple)) and value and all(
            isinstance(v, Module) for v in value
        ):
            for i, v in enumerate(value):
                v._name = f"{name}.{i}"
        super().__setattr__(name, value)

    def forward(self, *args: Sym) -> Sym:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, *args: Sym) -> Sym:
        ctx = _ctx()
        pushed = False
        if self._name:
            ctx.scope.append(self._name)
            pushed = True
        try:
            return self.forward(*args)
        finally:
            if pushed:
                ctx.scope.pop()

    # small helpers for subclasses ------------------------------------
    @staticmethod
    def _param(name: str, shape: Shape) -> Sym:
        ctx = _ctx()
        return ctx.builder.param(ctx.scoped(name), shape)

    @staticmethod
    def _op(op_type: str, inputs: Sequence[Sym],
            attrs: Optional[Dict[str, object]] = None,
            name: Optional[str] = None) -> Sym:
        ctx = _ctx()
        return ctx.builder.op(
            op_type, inputs, attrs,
            name=ctx.scoped(name) if name else None,
        )


class Linear(Module):
    """Fully connected layer: ``x @ W.T + b``."""

    def __init__(self, in_features: int, out_features: int) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Sym) -> Sym:
        w = self._param("weight", (self.out_features, self.in_features))
        b = self._param("bias", (self.out_features,))
        return self._op("linear", [x, w, b], name="linear")


class LayerNorm(Module):
    def __init__(self, normalized_shape: int) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape

    def forward(self, x: Sym) -> Sym:
        gamma = self._param("gamma", (self.normalized_shape,))
        beta = self._param("beta", (self.normalized_shape,))
        return self._op("layernorm", [x, gamma, beta], name="layernorm")


class Embedding(Module):
    def __init__(self, num_embeddings: int, embedding_dim: int) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim

    def forward(self, ids: Sym) -> Sym:
        table = self._param("weight", (self.num_embeddings, self.embedding_dim))
        return self._op("embedding", [ids, table], name="embedding")


class Conv2d(Module):
    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Sym) -> Sym:
        w = self._param(
            "weight",
            (self.out_channels, self.in_channels,
             self.kernel_size, self.kernel_size),
        )
        return self._op(
            "conv2d", [x, w],
            {"stride": self.stride, "padding": self.padding}, name="conv",
        )


class BatchNorm2d(Module):
    def __init__(self, num_features: int) -> None:
        super().__init__()
        self.num_features = num_features

    def forward(self, x: Sym) -> Sym:
        gamma = self._param("gamma", (self.num_features,))
        beta = self._param("beta", (self.num_features,))
        return self._op("batchnorm2d", [x, gamma, beta], name="bn")


class _Activation(Module):
    OP = "identity"

    def forward(self, x: Sym) -> Sym:
        return self._op(self.OP, [x], name=self.OP)


class ReLU(_Activation):
    OP = "relu"


class GELU(_Activation):
    OP = "gelu"


class Tanh(_Activation):
    OP = "tanh"


class Sigmoid(_Activation):
    OP = "sigmoid"


class Dropout(Module):
    def __init__(self, p: float = 0.1) -> None:
        super().__init__()
        self.p = p

    def forward(self, x: Sym) -> Sym:
        return self._op("dropout", [x], {"p": self.p}, name="dropout")


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None,
                 padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x: Sym) -> Sym:
        return self._op(
            "maxpool2d", [x],
            {"kernel": self.kernel_size, "stride": self.stride,
             "padding": self.padding},
            name="pool",
        )


class Flatten(Module):
    def forward(self, x: Sym) -> Sym:
        return self._op("flatten", [x], name="flatten")


class Sequential(Module):
    """Chain of modules, PyTorch-style."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)
        for i, m in enumerate(self.layers):
            m._name = m._name or str(i)

    def forward(self, x: Sym) -> Sym:
        for layer in self.layers:
            x = layer(x)
        return x


# ---------------------------------------------------------------------------
# functional helpers usable inside Module.forward
# ---------------------------------------------------------------------------

def add(a: Sym, b: Sym) -> Sym:
    return _ctx().builder.op("add", [a, b])


def concat(parts: Sequence[Sym], axis: int = -1) -> Sym:
    return _ctx().builder.op("concat", list(parts), {"axis": axis})


def reshape(x: Sym, shape: Shape) -> Sym:
    return _ctx().builder.op("reshape", [x], {"shape": tuple(shape)})


def global_avgpool(x: Sym) -> Sym:
    return _ctx().builder.op("global_avgpool", [x])


# ---------------------------------------------------------------------------
# tracing entry point
# ---------------------------------------------------------------------------

def trace(
    module: Module,
    inputs: Dict[str, Input],
    loss: Optional[str] = "cross_entropy",
    targets: Optional[Input] = None,
    name: Optional[str] = None,
) -> TaskGraph:
    """Trace a module into a partitionable task graph.

    Args:
        module: the model; its ``forward`` receives the declared inputs as
            :class:`Sym` handles, in dict order.
        inputs: name -> :class:`Input` declarations.
        loss: loss op appended to the model output ("cross_entropy",
            "mse_loss", or ``None`` to mark the raw output as the graph
            output -- note the partitioner and runtime expect a scalar
            loss for training workloads).
        targets: declaration of the target input when ``loss`` is set.

    Returns:
        A validated :class:`TaskGraph`.
    """
    builder = GraphBuilder(name or type(module).__name__.lower())
    ctx = _TraceContext(builder)
    _ACTIVE.append(ctx)
    try:
        syms = [
            builder.input(iname, spec.shape, spec.dtype, spec.batched)
            for iname, spec in inputs.items()
        ]
        out = module(*syms)
        if loss is not None:
            if targets is None:
                raise ValueError("loss requires a `targets` declaration")
            tgt = builder.input(
                "targets", targets.shape, targets.dtype, targets.batched
            )
            out = builder.op(loss, [out, tgt], name="loss")
        graph = builder.finish([out])
    finally:
        _ACTIVE.pop()

    from repro.graph.validate import validate_graph

    validate_graph(graph)
    return graph
