"""Command-line interface: partition models and regenerate paper results.

Examples::

    python -m repro partition --model bert --hidden 1536 --layers 96 \
        --nodes 4 --batch-size 256
    python -m repro plan --model bert --explain --cache-dir ~/.cache/repro
    python -m repro trace --model bert-base --cluster v100x8 --out trace.json
    python -m repro verify deployment.json --model bert --nodes 4
    python -m repro serve --port 8321 --cache-dir ~/.cache/repro \
        --cache-budget-mb 256 --workers 4
    python -m repro serve-sim --model gpt-tiny --cluster v100x8 \
        --rps 50 --slo-ms 200
    python -m repro fig4 --fast
    python -m repro fig5
    python -m repro table1
    python -m repro ablation
    python -m repro loss-validation
    python -m repro schedule --stages 4 --microbatches 8
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.hardware import Precision, paper_cluster
from repro.models import BertConfig, GPTConfig, ResNetConfig
from repro.models import build_bert, build_gpt, build_resnet
from repro.partitioner import PartitioningError, auto_partition

#: named model presets accepted wherever --model takes a value
MODEL_PRESETS = (
    "bert", "resnet", "gpt",
    "bert-base", "bert-large",
    "gpt-tiny", "gpt-small", "gpt-medium",
)

#: --cluster shorthand -> number of 8-V100 nodes
CLUSTER_PRESETS = {"v100x8": 1, "v100x16": 2, "v100x32": 4}


def _add_partition(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("partition", help="auto-partition one model")
    p.add_argument("--model", choices=("bert", "resnet", "gpt"), default="bert")
    p.add_argument("--hidden", type=int, default=1024, help="BERT/GPT hidden size")
    p.add_argument("--layers", type=int, default=24, help="BERT/GPT layer count")
    p.add_argument("--depth", type=int, default=50, help="ResNet depth")
    p.add_argument("--width-factor", type=int, default=8, help="ResNet width factor")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--batch-size", type=int, default=256)
    p.add_argument("--amp", action="store_true", help="mixed precision")
    p.add_argument("--blocks", type=int, default=32, help="block count k")
    p.add_argument("--save", type=str, default=None,
                   help="write the deployment JSON to this path")


def _add_plan(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "plan",
        help="run the pass-based planning pipeline on one model",
    )
    p.add_argument("--model", choices=("bert", "resnet", "gpt"), default="bert")
    p.add_argument("--hidden", type=int, default=1024, help="BERT/GPT hidden size")
    p.add_argument("--layers", type=int, default=24, help="BERT/GPT layer count")
    p.add_argument("--depth", type=int, default=50, help="ResNet depth")
    p.add_argument("--width-factor", type=int, default=8, help="ResNet width factor")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--batch-size", type=int, default=256)
    p.add_argument("--amp", action="store_true", help="mixed precision")
    p.add_argument("--blocks", type=int, default=32, help="block count k")
    p.add_argument("--cache-dir", type=str, default=None,
                   help="deployment cache directory (reruns load the plan)")
    p.add_argument("--delta", action="store_true",
                   help="delta replan: persist per-pass artifacts under "
                        "<cache-dir>/artifacts/ and reuse every artifact "
                        "whose inputs are unchanged (requires --cache-dir)")
    p.add_argument("--memory-budget-gb", type=float, default=None,
                   help="cap the per-device memory the stage search may "
                        "fill (GiB); default: hardware capacity")
    p.add_argument("--cache-budget-mb", type=int, default=None,
                   help="LRU byte budget of the on-disk cache (MiB), "
                        "deployments + artifacts; default: unbounded")
    p.add_argument("--comm-model", choices=("flat", "topology"),
                   default="flat",
                   help="communication cost model: 'flat' is the paper's "
                        "two-scalar closed forms, 'topology' routes every "
                        "transfer over the link-level network model")
    p.add_argument("--workers", type=int, default=None,
                   help="Algorithm-2 worker-pool size (default: CPU "
                        "count, capped at the candidate count)")
    p.add_argument("--dp-engine",
                   choices=("numpy", "numba", "banded", "dense", "rows"),
                   default="numpy",
                   help="Algorithm-1 evaluation engine; all engines "
                        "produce bit-identical plans (see docs/SCALING.md)")
    p.add_argument("--search-backend",
                   choices=("thread", "process", "serial"),
                   default="thread",
                   help="Algorithm-2 sweep pool: threads (default), "
                        "processes (true parallelism on large graphs) or "
                        "a serial sweep")
    p.add_argument("--a100-nodes", type=int, default=0,
                   help="add this many 8-A100 nodes, making the cluster "
                        "heterogeneous (--nodes keeps counting the V100 "
                        "nodes; forces the flat comm model)")
    p.add_argument("--straggler", type=float, default=1.0,
                   help="slowdown factor of the V100 class in a "
                        "heterogeneous cluster (with --a100-nodes)")
    p.add_argument("--repair", type=str, default=None, metavar="EVENT",
                   help="after planning, repair the plan for a cluster "
                        "event: 'node-loss:IDX', 'preemption:IDX' or "
                        "'scale-up:N'")
    p.add_argument("--explain", action="store_true",
                   help="print per-pass timings, peak-RSS deltas, "
                        "profiler statistics, and cache / artifact-reuse "
                        "gauges")
    p.add_argument("--save", type=str, default=None,
                   help="write the deployment JSON to this path")


def _add_trace(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "trace",
        help="plan a model with tracing on and export a Perfetto "
             "trace.json (planner spans + DP counters + one track per "
             "pipeline stage)",
    )
    p.add_argument("--model", choices=MODEL_PRESETS, default="bert-base",
                   help="model family, or a named preset (bert-base, "
                        "bert-large)")
    p.add_argument("--hidden", type=int, default=1024, help="BERT/GPT hidden size")
    p.add_argument("--layers", type=int, default=24, help="BERT/GPT layer count")
    p.add_argument("--depth", type=int, default=50, help="ResNet depth")
    p.add_argument("--width-factor", type=int, default=8, help="ResNet width factor")
    p.add_argument("--cluster", choices=sorted(CLUSTER_PRESETS),
                   default="v100x32",
                   help="testbed preset (number of 8-V100 nodes)")
    p.add_argument("--batch-size", type=int, default=256)
    p.add_argument("--amp", action="store_true", help="mixed precision")
    p.add_argument("--blocks", type=int, default=32, help="block count k")
    p.add_argument("--out", type=str, default="trace.json",
                   help="Chrome-trace output path (load in "
                        "https://ui.perfetto.dev)")
    p.add_argument("--jsonl", type=str, default=None,
                   help="also write the raw spans + metrics as JSON-lines")


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import write_chrome_trace, write_jsonl
    from repro.pipeline.timeline import plan_timeline
    from repro.planner import PlannerConfig, PlanningContext, plan_graph

    graph = _build_graph(args)
    cluster = paper_cluster(num_nodes=CLUSTER_PRESETS[args.cluster])
    precision = Precision.AMP if args.amp else Precision.FP32
    config = PlannerConfig(
        batch_size=args.batch_size,
        precision=precision,
        num_blocks=args.blocks,
        trace=True,
    )
    ctx = PlanningContext(graph, cluster, config)
    print(f"{graph}  on {cluster.total_devices} devices "
          f"({args.cluster}), BS={args.batch_size}, {precision.value}")
    try:
        plan = plan_graph(graph, cluster, config, context=ctx)
    except PartitioningError as exc:
        print(f"INFEASIBLE: {exc}")
        # still export whatever the planner recorded before failing
        write_chrome_trace(args.out, tracer=ctx.tracer, metrics=ctx.metrics)
        print(f"partial trace written to {args.out}")
        return 1
    print(plan.summary())
    timeline = plan_timeline(plan)
    doc = write_chrome_trace(
        args.out, tracer=ctx.tracer, timeline=timeline, metrics=ctx.metrics
    )
    spans = ctx.tracer.spans()
    dp_spans = sum(1 for s in spans if s.category == "partitioner.dp")
    print(
        f"trace written to {args.out}: {len(doc['traceEvents'])} events "
        f"({len(spans)} spans, {dp_spans} DP calls, "
        f"{timeline.num_stages} stage tracks, "
        f"{len(ctx.metrics)} metrics)"
    )
    print("open it at https://ui.perfetto.dev (or chrome://tracing)")
    if args.jsonl:
        write_jsonl(args.jsonl, ctx.tracer, ctx.metrics)
        print(f"spans written to {args.jsonl}")
    return 0


def _add_serve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve",
        help="run the plan service: a long-lived HTTP/JSON daemon over "
             "the planning pipeline (coalescing, shared artifact store, "
             "delta replanning; see docs/SERVICE.md)",
    )
    p.add_argument("--host", type=str, default="127.0.0.1")
    p.add_argument("--port", type=int, default=8321,
                   help="listen port (0 picks a free port)")
    p.add_argument("--cache-dir", type=str, default=None,
                   help="shared on-disk cache root (deployments + "
                        "artifacts); omit for a memory-only store")
    p.add_argument("--cache-budget-mb", type=int, default=None,
                   help="LRU byte budget of the on-disk cache (MiB)")
    p.add_argument("--store-budget-mb", type=int, default=None,
                   help="byte budget of the in-memory artifact tier (MiB)")
    p.add_argument("--workers", type=int, default=2,
                   help="pipeline thread-pool size (distinct-model "
                        "requests that can plan concurrently)")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="seconds to wait for in-flight plans on shutdown")
    p.add_argument("--trace-out", type=str, default=None,
                   help="write the serving window's Perfetto trace here "
                        "on exit")


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    return serve(
        host=args.host,
        port=args.port,
        drain_timeout=args.drain_timeout,
        trace_out=args.trace_out,
        cache_dir=args.cache_dir,
        cache_budget_bytes=(
            args.cache_budget_mb * 2**20
            if args.cache_budget_mb is not None else None
        ),
        store_memory_budget_bytes=(
            args.store_budget_mb * 2**20
            if args.store_budget_mb is not None else None
        ),
        workers=args.workers,
    )


def _add_serve_sim(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve-sim",
        help="plan a model in inference mode and simulate serving it: "
             "Poisson or trace-file arrivals, continuous batching, "
             "least-outstanding-work routing, and an SLO autoscaler "
             "that picks the minimum replica count whose simulated p99 "
             "latency meets the SLO (see docs/SERVING_SIM.md)",
    )
    p.add_argument("--model", default="gpt-tiny",
                   help="model preset (bert-base, bert-large, gpt-tiny, "
                        "gpt-small, gpt-medium)")
    p.add_argument("--cluster", choices=sorted(CLUSTER_PRESETS),
                   default="v100x8",
                   help="testbed preset (number of 8-V100 nodes)")
    p.add_argument("--rps", type=float, default=50.0,
                   help="offered load, requests/second (Poisson)")
    p.add_argument("--slo-ms", type=float, default=200.0,
                   help="p99 request-latency SLO (milliseconds)")
    p.add_argument("--duration", type=float, default=2.0,
                   help="simulated arrival window (seconds)")
    p.add_argument("--seed", type=int, default=0,
                   help="workload RNG seed (same seed, same stream)")
    p.add_argument("--max-wait-ms", type=float, default=10.0,
                   help="continuous-batching wait bound per batch")
    p.add_argument("--max-replicas", type=int, default=8,
                   help="autoscaler sweep ceiling")
    p.add_argument("--batch-size", type=int, default=32,
                   help="global batch the planner partitions for")
    p.add_argument("--workload-trace", type=str, default=None,
                   help="replay this arrival-trace file instead of the "
                        "Poisson stream (one arrival per line, or JSONL "
                        "{'arrival': t, 'samples': n})")
    p.add_argument("--trace-out", type=str, default=None,
                   help="write per-request/per-batch spans as a "
                        "Perfetto trace.json here")


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    from repro.service.protocol import ServiceError
    from repro.serving import run_serving_sim

    try:
        summary = run_serving_sim(
            args.model,
            args.cluster,
            rps=args.rps,
            slo_ms=args.slo_ms,
            duration_s=args.duration,
            seed=args.seed,
            max_wait_ms=args.max_wait_ms,
            max_replicas=args.max_replicas,
            batch_size=args.batch_size,
            workload_trace=args.workload_trace,
            trace_out=args.trace_out,
        )
    except ServiceError as exc:
        print(f"ERROR: {exc}")
        return 2
    except PartitioningError as exc:
        print(f"INFEASIBLE: {exc}")
        return 1
    plan = summary["plan"]
    workload = summary["workload"]
    latency = summary["latency_ms"]
    print(f"{summary['model']}  on {summary['devices']} devices "
          f"({args.cluster}), inference plan: "
          f"stages={plan['num_stages']} mb={plan['num_microbatches']} "
          f"R={plan['replica_factor']}, "
          f"{plan['capacity_per_replica']} samples/batch/replica, "
          f"batch latency {plan['batch_latency_ms']:.2f}ms")
    if workload["kind"] == "poisson":
        print(f"workload: poisson {workload['rps']:g} rps x "
              f"{workload['duration_s']:g}s (seed {workload['seed']}) = "
              f"{workload['requests']} requests, "
              f"max wait {workload['max_wait_ms']:g}ms")
    else:
        print(f"workload: trace {workload['trace']} = "
              f"{workload['requests']} requests, "
              f"max wait {workload['max_wait_ms']:g}ms")
    print(f"replicas: {summary['replicas']} "
          f"(SLO p99 <= {summary['slo_ms']:g}ms: "
          f"{'met' if summary['met_slo'] else 'NOT MET'})")
    print(f"latency: p50={latency['p50']:.2f}ms p99={latency['p99']:.2f}ms "
          f"max={latency['max']:.2f}ms")
    print(f"throughput: {summary['throughput_rps']:.1f} req/s, "
          f"batch occupancy {summary['batch_occupancy']:.0%}, "
          f"replica utilization {summary['utilization']:.0%}")
    for point in summary["sweep"]:
        marker = " <-- chosen" if point["replicas"] == summary["replicas"] else ""
        print(f"  {point['replicas']} replica(s): "
              f"p99={point['p99_ms']:.2f}ms "
              f"util={point['utilization']:.0%}{marker}")
    if args.trace_out:
        print(f"serving trace written to {args.trace_out} "
              f"(open at https://ui.perfetto.dev)")
    return 0 if summary["met_slo"] else 1


def _add_verify(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "verify",
        help="verify a saved deployment JSON against a model + cluster "
             "(static invariants + differential re-simulation)",
    )
    p.add_argument("plan", help="deployment JSON written by "
                                "'repro plan/partition --save'")
    p.add_argument("--model", choices=MODEL_PRESETS, default="bert")
    p.add_argument("--hidden", type=int, default=1024, help="BERT/GPT hidden size")
    p.add_argument("--layers", type=int, default=24, help="BERT/GPT layer count")
    p.add_argument("--depth", type=int, default=50, help="ResNet depth")
    p.add_argument("--width-factor", type=int, default=8, help="ResNet width factor")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--amp", action="store_true", help="mixed precision")


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.partitioner.deployment import (
        DeploymentMismatchError,
        plan_from_json,
    )
    from repro.verify import PlanVerificationError

    try:
        text = open(args.plan).read()
    except OSError as exc:
        print(f"FAIL: cannot read {args.plan}: {exc}")
        return 1
    graph = _build_graph(args)
    cluster = paper_cluster(num_nodes=args.nodes)
    try:
        plan = plan_from_json(text, graph, cluster)
    except PlanVerificationError as exc:
        print(f"FAIL: {args.plan}: {len(exc.violations)} invariant "
              f"violation(s)")
        for v in exc.violations:
            print(f"  - {v}")
        return 1
    except (DeploymentMismatchError, ValueError, KeyError) as exc:
        print(f"FAIL: {args.plan}: {exc}")
        return 1
    print(f"OK: {args.plan} verified against {graph.name!r} on "
          f"{cluster.total_devices} devices "
          f"(stages={plan.num_stages}, MB={plan.num_microbatches}, "
          f"R={plan.replica_factor})")
    return 0


#: gpt preset name -> GPTConfig keyword arguments
GPT_PRESETS = {
    "gpt-tiny": dict(hidden_size=256, num_layers=4, num_heads=4,
                     seq_len=256, vocab_size=8192),
    "gpt-small": dict(),  # GPT-2 small: GPTConfig defaults
    "gpt-medium": dict(hidden_size=1024, num_layers=24, num_heads=16),
}


def _build_graph(args: argparse.Namespace):
    if args.model == "bert-base":
        return build_bert(BertConfig(hidden_size=768, num_layers=12,
                                     num_heads=12))
    if args.model == "bert-large":
        return build_bert(BertConfig())
    if args.model == "bert":
        return build_bert(BertConfig(hidden_size=args.hidden,
                                     num_layers=args.layers))
    if args.model in GPT_PRESETS:
        return build_gpt(GPTConfig(**GPT_PRESETS[args.model]))
    if args.model == "gpt":
        return build_gpt(GPTConfig(hidden_size=args.hidden,
                                   num_layers=args.layers))
    return build_resnet(ResNetConfig(depth=args.depth,
                                     width_factor=args.width_factor))


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.planner import (
        ArtifactStore,
        PlannerConfig,
        PlanningContext,
        plan_graph,
    )

    if args.delta and args.cache_dir is None:
        print("ERROR: --delta needs --cache-dir (the artifacts persist "
              "under <cache-dir>/artifacts/)")
        return 2
    event = None
    if args.repair is not None:
        try:
            event = _parse_repair_event(args.repair)
        except ValueError as exc:
            print(f"ERROR: {exc}")
            return 2
    graph = _build_graph(args)
    if args.a100_nodes > 0:
        from repro.hardware import mixed_cluster

        if args.comm_model != "flat":
            print("ERROR: heterogeneous clusters support only the flat "
                  "comm model")
            return 2
        cluster = mixed_cluster(
            v100_nodes=args.nodes,
            a100_nodes=args.a100_nodes,
            straggler_factor=args.straggler,
        )
    else:
        cluster = paper_cluster(num_nodes=args.nodes)
    precision = Precision.AMP if args.amp else Precision.FP32
    config = PlannerConfig(
        batch_size=args.batch_size,
        precision=precision,
        num_blocks=args.blocks,
        cache_dir=args.cache_dir,
        comm_model=args.comm_model,
        memory_budget=(
            args.memory_budget_gb * 2**30
            if args.memory_budget_gb is not None else None
        ),
        cache_budget_bytes=(
            args.cache_budget_mb * 2**20
            if args.cache_budget_mb is not None else None
        ),
        search_workers=args.workers,
        search_backend=args.search_backend,
        dp_engine=args.dp_engine,
    )
    ctx = PlanningContext(graph, cluster, config)
    if args.delta:
        # the context lends the store its disk backend, so artifacts
        # written by earlier --delta runs are picked up across processes
        ctx.attach_store(ArtifactStore())
    print(f"{graph}  on {cluster.total_devices} devices, "
          f"BS={args.batch_size}, {precision.value}, "
          f"comm={args.comm_model}"
          + (", delta replan" if args.delta else ""))
    try:
        plan = plan_graph(graph, cluster, config, context=ctx)
    except PartitioningError as exc:
        print(f"INFEASIBLE: {exc}")
        if args.explain:
            print(_render_events(ctx))
        return 1
    print(plan.summary())
    if plan.diagnostics.cache_hit:
        print("  (plan restored from the deployment cache)")
    if event is not None:
        from repro.planner import repair

        try:
            result = repair(ctx, event)
        except (PartitioningError, ValueError) as exc:
            print(f"REPAIR FAILED: {exc}")
            return 1
        plan = result.plan
        mode = ("full replan ({})".format(result.fallback_reason)
                if result.used_full_replan else "in-place")
        print(f"repaired after {result.event.kind}: {mode}")
        print(f"  migrated (replica, stage) pairs: {result.migrated_pairs}"
              f"  ({result.migration_bytes / 2**20:.1f} MiB, "
              f"{result.migration_time * 1e3:.1f}ms simulated)")
        print(f"  repair latency: {result.repair_latency * 1e3:.1f}ms on "
              f"{result.cluster.total_devices} surviving devices")
        print(plan.summary())
    if args.explain:
        print(_render_events(ctx))
    if args.save:
        from repro.partitioner.deployment import plan_to_json

        with open(args.save, "w") as fh:
            fh.write(plan_to_json(plan, graph))
        print(f"deployment written to {args.save}")
    return 0


def _parse_repair_event(spec: str):
    """``node-loss:IDX`` / ``preemption:IDX`` / ``scale-up:N`` -> event."""
    from repro.planner import NodeLoss, Preemption, ScaleUp

    kind, _, arg = spec.partition(":")
    kind = kind.replace("_", "-").lower()
    if not arg:
        raise ValueError(
            f"--repair needs an argument, e.g. 'node-loss:1' "
            f"(got {spec!r})"
        )
    value = int(arg)
    if kind == "node-loss":
        return NodeLoss(node_index=value)
    if kind == "preemption":
        return Preemption(node_index=value)
    if kind == "scale-up":
        return ScaleUp(extra_nodes=value)
    raise ValueError(
        f"unknown repair event {kind!r}; expected node-loss, "
        f"preemption or scale-up"
    )


def _render_events(ctx) -> str:
    """Two-column per-pass report plus profiler / cache / reuse stats."""
    lines = ["", "pass".ljust(20) + "status".ljust(10) + "time".rjust(10) +
             "  detail"]
    lines.append("-" * 72)
    for event in ctx.events:
        keys = ("reason", "hit", "verified", "stored", "reuse",
                "fingerprint", "dp_calls", "candidates_tried",
                "states_evaluated", "parallel_search", "search_backend",
                "dp_engine", "memo_hit_rate",
                "num_components", "num_blocks", "range_entries",
                "num_stages", "throughput",
                "bubble_frac", "comm_model", "allreduce_algorithm",
                "internode_boundaries", "nvlink_boundary_frac",
                "invariants_checked", "violations",
                "cache_bytes", "cache_evictions")
        detail = ", ".join(
            f"{k}={event.detail[k]}" for k in keys if k in event.detail
        )
        rss_delta = event.detail.get("peak_rss_delta")
        if rss_delta:
            part = f"peak_rss_delta={rss_delta / 2**20:.1f}MiB"
            detail = f"{detail}, {part}" if detail else part
        lines.append(
            event.name.ljust(20)
            + event.status.ljust(10)
            + f"{event.wall_time * 1e3:8.1f}ms"
            + (f"  {detail}" if detail else "")
        )
    lines.append("-" * 72)
    lines.append("total".ljust(30) + f"{ctx.events.total_time() * 1e3:8.1f}ms")
    if ctx.profiler is not None:
        stats = ctx.profiler.stats()
        lines.append(
            f"profiler memo hit rate: {stats['memo_hit_rate']:.1%} "
            f"({int(stats['cache_hits'] + stats['table_hits'])} hits / "
            f"{int(stats['profile_calls'] + stats['cache_hits'] + stats['table_calls'])} lookups)"
        )
    else:
        lines.append("profiler memo hit rate: n/a (profiler never built)")
    snap = ctx.metrics.snapshot()
    if "planner.peak_rss_bytes" in snap:
        lines.append(
            "planner peak RSS: "
            f"{snap['planner.peak_rss_bytes'] / 2**20:.1f} MiB"
        )
    if "cache.bytes" in snap:
        lines.append(
            f"cache: {int(snap['cache.bytes'])} bytes on disk, "
            f"{int(snap.get('cache.evictions', 0))} eviction(s)"
        )
    if "planner.reuse.passes_skipped" in snap:
        lines.append(
            "artifact reuse: "
            f"{int(snap['planner.reuse.passes_skipped'])} pass(es) "
            "skipped, "
            f"{int(snap['planner.reuse.artifacts_loaded'])} artifact(s) "
            "loaded, "
            f"{int(snap['planner.reuse.store_misses'])} store miss(es)"
        )
    return "\n".join(lines)


def _cmd_partition(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    cluster = paper_cluster(num_nodes=args.nodes)
    precision = Precision.AMP if args.amp else Precision.FP32
    print(f"{graph}  on {cluster.total_devices} devices, BS={args.batch_size}, "
          f"{precision.value}")
    try:
        plan = auto_partition(graph, cluster, args.batch_size,
                              precision=precision, num_blocks=args.blocks)
    except PartitioningError as exc:
        print(f"INFEASIBLE: {exc}")
        return 1
    print(plan.summary())
    if args.save:
        from repro.partitioner.deployment import plan_to_json

        with open(args.save, "w") as fh:
            fh.write(plan_to_json(plan, graph))
        print(f"deployment written to {args.save}")
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.experiments import FIG4_FAST_GRID, run_fig4
    from repro.experiments.charts import bar_chart
    from repro.experiments.fig4_bert import FIG4_FULL_GRID, headline_claims
    from repro.experiments.runner import format_rows

    grid = FIG4_FAST_GRID if args.fast else FIG4_FULL_GRID
    precision = Precision.AMP if args.amp else Precision.FP32
    rows = run_fig4(grid, precision)
    if args.chart:
        print(bar_chart(rows, f"Fig. 4 ({precision.value}), samples/s"))
    else:
        print(format_rows(rows, f"Fig. 4 ({precision.value}), samples/s"))
    for claim, ok in headline_claims(rows).items():
        print(f"  {claim}: {'OK' if ok else 'VIOLATED'}")
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments import run_fig5
    from repro.experiments.charts import bar_chart
    from repro.experiments.runner import format_rows

    rows = run_fig5()
    if args.chart:
        print(bar_chart(rows, "Fig. 5, samples/s"))
    else:
        print(format_rows(rows, "Fig. 5, samples/s"))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments import run_table1
    from repro.experiments.table1_features import format_table1

    print(format_table1(run_table1()))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments import run_coarsening_ablation
    from repro.experiments.coarsening_ablation import format_ablation

    layers = (24, 48) if args.fast else (24, 48, 96)
    print(format_ablation(run_coarsening_ablation(layer_counts=layers)))
    return 0


def _cmd_loss_validation(args: argparse.Namespace) -> int:
    from repro.experiments import run_loss_validation

    result = run_loss_validation(steps=args.steps)
    for i, (a, b) in enumerate(
        zip(result.reference_losses, result.partitioned_losses)
    ):
        print(f"step {i}: whole={a:.8f} partitioned={b:.8f} diff={abs(a - b):.2e}")
    ok = result.within_paper_tolerance
    print(f"within paper tolerance (1e-3): {'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.pipeline.schedule import render_schedule, sync_pipeline_schedule

    events = sync_pipeline_schedule(args.stages, args.microbatches)
    print(render_schedule(events, args.stages))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: parse arguments and dispatch to a subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RaNNC reproduction: automatic graph partitioning "
                    "for very large-scale deep learning (IPDPS 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    _add_partition(sub)
    _add_plan(sub)
    _add_trace(sub)
    _add_verify(sub)
    _add_serve(sub)
    _add_serve_sim(sub)
    p4 = sub.add_parser("fig4", help="regenerate the Fig. 4 BERT sweep")
    p4.add_argument("--fast", action="store_true")
    p4.add_argument("--amp", action="store_true")
    p4.add_argument("--chart", action="store_true",
                    help="render as ASCII bars instead of a table")
    p5 = sub.add_parser("fig5", help="regenerate the Fig. 5 ResNet sweep")
    p5.add_argument("--chart", action="store_true",
                    help="render as ASCII bars instead of a table")
    sub.add_parser("table1", help="print the Table I feature matrix")
    pab = sub.add_parser("ablation", help="Sec. IV-C coarsening ablation")
    pab.add_argument("--fast", action="store_true")
    plv = sub.add_parser("loss-validation", help="Sec. IV-B loss validation")
    plv.add_argument("--steps", type=int, default=10)
    psc = sub.add_parser("schedule", help="render a pipeline schedule (Fig. 1)")
    psc.add_argument("--stages", type=int, default=4)
    psc.add_argument("--microbatches", type=int, default=8)

    args = parser.parse_args(argv)
    handler = {
        "partition": _cmd_partition,
        "plan": _cmd_plan,
        "trace": _cmd_trace,
        "verify": _cmd_verify,
        "serve": _cmd_serve,
        "serve-sim": _cmd_serve_sim,
        "fig4": _cmd_fig4,
        "fig5": _cmd_fig5,
        "table1": _cmd_table1,
        "ablation": _cmd_ablation,
        "loss-validation": _cmd_loss_validation,
        "schedule": _cmd_schedule,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
