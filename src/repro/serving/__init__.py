"""Inference serving over partition plans (see ``docs/SERVING_SIM.md``).

The planner's ``mode="inference"`` produces forward-only plans with
weights-plus-KV memory accounting; this package answers the deployment
question those plans raise: *how many pipeline replicas does a latency
SLO need at a given offered load?*

* :mod:`~repro.serving.workload` -- seeded Poisson or trace-replay
  request streams;
* :mod:`~repro.serving.batcher` -- continuous batching with a
  max-wait bound;
* :mod:`~repro.serving.router` -- least-outstanding-work replica
  routing;
* :mod:`~repro.serving.simulator` -- the discrete-event loop, reusing
  the pipeline flush model forward-only, with Perfetto span export;
* :mod:`~repro.serving.autoscale` -- the minimum replica count whose
  simulated p99 meets the SLO;
* :mod:`~repro.serving.api` -- :func:`~repro.serving.api.run_serving_sim`,
  the shared entry behind ``repro serve-sim`` and
  ``POST /v1/serving-sim``.
"""

from repro.serving.api import run_serving_sim
from repro.serving.autoscale import (
    AutoscaleDecision,
    ReplicaPoint,
    autoscale_replicas,
)
from repro.serving.batcher import Batch, ContinuousBatcher
from repro.serving.router import LeastOutstandingRouter
from repro.serving.simulator import (
    BatchRecord,
    RequestRecord,
    ServiceModel,
    ServingResult,
    simulate_serving,
    write_serving_trace,
)
from repro.serving.workload import Request, poisson_arrivals, trace_arrivals

__all__ = [
    "AutoscaleDecision",
    "Batch",
    "BatchRecord",
    "ContinuousBatcher",
    "LeastOutstandingRouter",
    "ReplicaPoint",
    "Request",
    "RequestRecord",
    "ServiceModel",
    "ServingResult",
    "autoscale_replicas",
    "poisson_arrivals",
    "run_serving_sim",
    "simulate_serving",
    "trace_arrivals",
    "write_serving_trace",
]
