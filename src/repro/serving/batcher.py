"""Continuous batching: group requests into pipeline-sized batches.

The batcher implements the standard serving trade-off between latency
and device utilization: requests accumulate until either the batch is
*full* (``capacity`` samples -- the number the plan's pipeline consumes
per flush on one replica) or the *oldest* pending request has waited
``max_wait_s`` seconds, whichever comes first.  ``max_wait_s = 0``
degenerates to one batch per request (lowest latency, worst
utilization); a large ``max_wait_s`` approaches fixed-size batching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.serving.workload import Request

__all__ = ["Batch", "ContinuousBatcher"]


@dataclass(frozen=True)
class Batch:
    """A closed batch awaiting dispatch to a replica."""

    index: int
    requests: Tuple[Request, ...]
    formed_at: float

    @property
    def samples(self) -> int:
        return sum(r.samples for r in self.requests)


class ContinuousBatcher:
    """Accumulate requests; close a batch on capacity or deadline.

    The simulator drives it with three calls: :meth:`offer` on each
    arrival (may close a full batch), :meth:`deadline` to learn when the
    currently open batch must flush, and :meth:`flush` to close the open
    batch at that deadline (or to drain at end of stream).

    :attr:`token` identifies the currently open batch; it changes every
    time a batch closes, so a scheduled deadline event can detect that
    "its" batch was already closed by a capacity trigger and lapse
    harmlessly (lazy invalidation in the event loop).
    """

    def __init__(self, capacity: int, max_wait_s: float) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.capacity = capacity
        self.max_wait_s = max_wait_s
        self._pending: List[Request] = []
        self._pending_samples = 0
        self._next_index = 0
        self._token = 0

    @property
    def token(self) -> int:
        return self._token

    @property
    def pending(self) -> int:
        """Number of requests currently waiting."""
        return len(self._pending)

    def offer(self, request: Request, now: float) -> Optional[Batch]:
        """Add one arrival; returns the batch if it reached capacity.

        A single request larger than the capacity still forms one batch
        (it cannot be split); it simply overflows the nominal size.
        """
        self._pending.append(request)
        self._pending_samples += request.samples
        if self._pending_samples >= self.capacity:
            return self.flush(now)
        return None

    def deadline(self) -> Optional[float]:
        """When the open batch must flush (oldest wait hits max_wait_s);
        ``None`` when nothing is pending."""
        if not self._pending:
            return None
        return self._pending[0].arrival + self.max_wait_s

    def flush(self, now: float) -> Optional[Batch]:
        """Close and return the open batch (``None`` if empty)."""
        if not self._pending:
            return None
        batch = Batch(
            index=self._next_index,
            requests=tuple(self._pending),
            formed_at=now,
        )
        self._next_index += 1
        self._token += 1
        self._pending = []
        self._pending_samples = 0
        return batch
