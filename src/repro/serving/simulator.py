"""Discrete-event serving simulator over a forward-only partition plan.

Reuses the planner's own pipeline model: a replica serves one batch by
streaming the plan's microbatches through its stages, so the batch
*latency* is the forward flush makespan
(:func:`~repro.pipeline.simulator.simulate_sync_pipeline` with zero
backward times) and the replica can *start* a new batch every
``num_microbatches x max(stage forward time)`` seconds -- the bottleneck
stage's occupancy -- which is exactly the steady-state cadence of a
pipelined server.

The event loop is a heap of (time, priority, seq) events of two kinds:
request arrivals and batch-deadline flushes.  Deadline events carry the
batcher's open-batch token and lapse harmlessly when a capacity trigger
already closed that batch (lazy invalidation).  Everything is
deterministic: equal inputs give byte-identical results.

Per-request and per-batch spans are exported through :mod:`repro.obs`
(:class:`~repro.obs.tracer.Span`), so a simulated serving window opens
in Perfetto with one track per replica.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Sequence, Tuple

from repro.pipeline.simulator import simulate_sync_pipeline
from repro.serving.batcher import Batch, ContinuousBatcher
from repro.serving.router import LeastOutstandingRouter
from repro.serving.workload import Request

if TYPE_CHECKING:  # avoid importing partitioner types at runtime
    from repro.partitioner.plan import PartitionPlan

__all__ = [
    "BatchRecord",
    "RequestRecord",
    "ServiceModel",
    "ServingResult",
    "simulate_serving",
    "write_serving_trace",
]

#: Chrome-trace process id of the serving track group (the planner uses
#: pid 1, the pipeline timeline pid 2; see repro.obs.export)
SERVING_PID = 3


@dataclass(frozen=True)
class ServiceModel:
    """Per-replica service times derived from a partition plan.

    ``latency_s`` is the time one batch spends in the pipeline (forward
    flush makespan); ``gap_s`` is the minimum separation between batch
    starts on one replica (bottleneck-stage occupancy); ``capacity`` is
    the number of samples one replica consumes per batch.
    """

    latency_s: float
    gap_s: float
    capacity: int
    num_stages: int
    num_microbatches: int

    @classmethod
    def from_plan(cls, plan: "PartitionPlan") -> "ServiceModel":
        if plan.mode != "inference":
            raise ValueError(
                "serving simulation needs an inference-mode plan "
                f"(got mode={plan.mode!r}); plan with mode='inference'"
            )
        tf = [s.time_fwd for s in plan.stages]
        mb = plan.num_microbatches
        latency = simulate_sync_pipeline(tf, [0.0] * len(tf), mb)
        return cls(
            latency_s=latency,
            gap_s=mb * max(tf),
            capacity=max(1, plan.batch_size // plan.replica_factor),
            num_stages=len(tf),
            num_microbatches=mb,
        )


@dataclass(frozen=True)
class BatchRecord:
    """One dispatched batch: when it formed, started and finished."""

    index: int
    replica: int
    num_requests: int
    samples: int
    formed_at: float
    start: float
    finish: float


@dataclass(frozen=True)
class RequestRecord:
    """One completed request and the batch that carried it."""

    index: int
    arrival: float
    samples: int
    replica: int
    batch_index: int
    finish: float

    @property
    def latency_s(self) -> float:
        return self.finish - self.arrival


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of pre-sorted values."""
    if not sorted_values:
        return 0.0
    rank = int(round(q / 100.0 * (len(sorted_values) - 1)))
    return sorted_values[max(0, min(len(sorted_values) - 1, rank))]


@dataclass
class ServingResult:
    """Everything the simulator observed over one serving window."""

    model: ServiceModel
    num_replicas: int
    max_wait_s: float
    requests: List[RequestRecord] = field(default_factory=list)
    batches: List[BatchRecord] = field(default_factory=list)
    replica_busy_s: List[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def horizon_s(self) -> float:
        """End of the window: the last batch completion."""
        return max((b.finish for b in self.batches), default=0.0)

    def latencies_s(self) -> List[float]:
        return sorted(r.latency_s for r in self.requests)

    def latency_percentile_ms(self, q: float) -> float:
        return _percentile(self.latencies_s(), q) * 1e3

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of simulated time."""
        horizon = self.horizon_s
        return len(self.requests) / horizon if horizon > 0 else 0.0

    @property
    def mean_batch_occupancy(self) -> float:
        """Mean batch fill as a fraction of replica capacity."""
        if not self.batches:
            return 0.0
        fills = [b.samples / self.model.capacity for b in self.batches]
        return sum(fills) / len(fills)

    @property
    def mean_utilization(self) -> float:
        """Mean fraction of the window each replica's pipeline front was
        occupied."""
        horizon = self.horizon_s
        if horizon <= 0 or not self.replica_busy_s:
            return 0.0
        per = [min(1.0, busy / horizon) for busy in self.replica_busy_s]
        return sum(per) / len(per)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def spans(self):
        """Per-request and per-batch :class:`~repro.obs.tracer.Span`
        objects in simulated seconds, one thread (track) per replica."""
        from repro.obs.tracer import Span

        spans = []
        for batch in self.batches:
            spans.append(
                Span(
                    name=f"batch-{batch.index}",
                    category="serving.batch",
                    start=batch.start,
                    duration=batch.finish - batch.start,
                    attrs={
                        "replica": batch.replica,
                        "requests": batch.num_requests,
                        "samples": batch.samples,
                        "queued_ms": (batch.start - batch.formed_at) * 1e3,
                    },
                    span_id=len(spans) + 1,
                    thread_id=batch.replica,
                )
            )
        for record in self.requests:
            spans.append(
                Span(
                    name=f"request-{record.index}",
                    category="serving.request",
                    start=record.arrival,
                    duration=record.latency_s,
                    attrs={
                        "replica": record.replica,
                        "batch": record.batch_index,
                        "samples": record.samples,
                        "latency_ms": record.latency_s * 1e3,
                    },
                    span_id=len(spans) + 1,
                    thread_id=record.replica,
                )
            )
        return spans

    def summary(self) -> Dict[str, Any]:
        """JSON-safe metrics block shared by the CLI and the daemon."""
        return {
            "requests": len(self.requests),
            "batches": len(self.batches),
            "replicas": self.num_replicas,
            "latency_ms": {
                "p50": self.latency_percentile_ms(50),
                "p95": self.latency_percentile_ms(95),
                "p99": self.latency_percentile_ms(99),
                "max": self.latency_percentile_ms(100),
            },
            "throughput_rps": self.throughput_rps,
            "batch_occupancy": self.mean_batch_occupancy,
            "utilization": self.mean_utilization,
            "horizon_s": self.horizon_s,
        }


#: event-kind priorities: at equal timestamps a deadline flush fires
#: before the new arrival is offered (the open batch already waited its
#: full max_wait_s)
_FLUSH, _ARRIVAL = 0, 1


def simulate_serving(
    plan: "PartitionPlan",
    requests: Sequence[Request],
    *,
    num_replicas: int = 1,
    max_wait_s: float = 0.01,
) -> ServingResult:
    """Simulate serving ``requests`` on ``num_replicas`` copies of the
    plan's pipeline with continuous batching and least-outstanding-work
    routing.  Deterministic; all times are simulated seconds."""
    model = ServiceModel.from_plan(plan)
    return _simulate(model, requests, num_replicas, max_wait_s)


def _simulate(
    model: ServiceModel,
    requests: Sequence[Request],
    num_replicas: int,
    max_wait_s: float,
) -> ServingResult:
    batcher = ContinuousBatcher(model.capacity, max_wait_s)
    router = LeastOutstandingRouter(num_replicas)
    result = ServingResult(
        model=model, num_replicas=num_replicas, max_wait_s=max_wait_s
    )

    def dispatch(batch: Batch, now: float) -> None:
        replica = router.pick(now)
        start = max(now, router.next_start[replica])
        finish = start + model.latency_s
        router.commit(replica, start, model.gap_s)
        result.batches.append(
            BatchRecord(
                index=batch.index,
                replica=replica,
                num_requests=len(batch.requests),
                samples=batch.samples,
                formed_at=batch.formed_at,
                start=start,
                finish=finish,
            )
        )
        for request in batch.requests:
            result.requests.append(
                RequestRecord(
                    index=request.index,
                    arrival=request.arrival,
                    samples=request.samples,
                    replica=replica,
                    batch_index=batch.index,
                    finish=finish,
                )
            )

    # (time, kind-priority, seq, payload): payload is the Request for
    # arrivals, the batcher token for deadline flushes
    events: List[Tuple[float, int, int, Any]] = []
    seq = 0
    for request in sorted(requests, key=lambda r: (r.arrival, r.index)):
        events.append((request.arrival, _ARRIVAL, seq, request))
        seq += 1
    heapq.heapify(events)

    while events:
        now, kind, _, payload = heapq.heappop(events)
        if kind == _ARRIVAL:
            opened = batcher.pending == 0
            batch = batcher.offer(payload, now)
            if batch is not None:
                dispatch(batch, now)
            elif opened:
                # this arrival opened a fresh batch: schedule its
                # deadline under the current token
                deadline = batcher.deadline()
                assert deadline is not None
                events_entry = (deadline, _FLUSH, seq, batcher.token)
                seq += 1
                heapq.heappush(events, events_entry)
        else:  # deadline flush; lapse if the batch already closed
            if payload == batcher.token and batcher.pending:
                batch = batcher.flush(now)
                assert batch is not None
                dispatch(batch, now)

    # drain: a final partial batch whose deadline lies past every event
    # (only possible when max_wait_s scheduling raced the last arrival)
    leftover = batcher.flush(batcher.deadline() or 0.0)
    if leftover is not None:
        dispatch(leftover, leftover.formed_at)

    result.replica_busy_s = list(router.busy_s)
    result.requests.sort(key=lambda r: r.index)
    return result


def write_serving_trace(path, result: ServingResult) -> int:
    """Write the window's spans as a Chrome/Perfetto trace; returns the
    event count.  Spans are in simulated seconds with origin 0."""
    from repro.obs.export import spans_to_trace_events

    events = spans_to_trace_events(
        result.spans(), origin=0.0, pid=SERVING_PID, process_name="serving"
    )
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(events)
