"""One-call serving simulation: plan (inference mode) + simulate + size.

:func:`run_serving_sim` is the single entry point shared by the
``repro serve-sim`` CLI and the daemon's ``POST /v1/serving-sim``
endpoint: both call it with the same arguments and print/return the
same summary document, so the two surfaces are contractually identical
(a test asserts it).  The whole computation is deterministic -- the
workload is seeded and the simulator is pure -- so equal arguments give
byte-identical summaries.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

__all__ = ["run_serving_sim"]


def _resolve_model(model: Union[str, Dict[str, Any]]):
    from repro.service.protocol import build_model

    spec = {"preset": model} if isinstance(model, str) else model
    graph, canonical = build_model(spec)
    return graph, canonical


def _resolve_cluster(cluster: Union[str, Dict[str, Any]]):
    from repro.service.protocol import build_cluster

    spec = {"preset": cluster} if isinstance(cluster, str) else cluster
    built, canonical = build_cluster(spec)
    return built, canonical


def run_serving_sim(
    model: Union[str, Dict[str, Any]] = "gpt-tiny",
    cluster: Union[str, Dict[str, Any]] = "v100x8",
    *,
    rps: float = 50.0,
    slo_ms: float = 200.0,
    duration_s: float = 2.0,
    seed: int = 0,
    max_wait_ms: float = 10.0,
    max_replicas: int = 8,
    batch_size: int = 32,
    samples_per_request: int = 1,
    workload_trace: Optional[str] = None,
    trace_out: Optional[str] = None,
    store=None,
) -> Dict[str, Any]:
    """Plan ``model`` in inference mode, simulate the offered load, and
    autoscale to the smallest replica count meeting the latency SLO.

    Args:
        model: a model preset name (see
            :data:`repro.service.protocol.MODEL_PRESETS`) or a model
            spec object (``{"family": "gpt", "hidden": 768, ...}``).
        cluster: a cluster preset name or spec object.
        rps: offered load, requests per second (Poisson).
        slo_ms: p99 request-latency SLO in milliseconds.
        duration_s: length of the simulated arrival window.
        seed: workload RNG seed.
        max_wait_ms: continuous-batching wait bound per batch.
        max_replicas: autoscaler sweep ceiling.
        batch_size: global batch the planner partitions for; one serving
            replica consumes ``batch_size / replica_factor`` samples per
            flush.
        samples_per_request: samples carried by each request.
        workload_trace: replay this arrival-trace file instead of the
            Poisson stream (see
            :func:`repro.serving.workload.trace_arrivals`).
        trace_out: write the window's per-request/per-batch spans as a
            Perfetto trace to this path.
        store: optional shared
            :class:`~repro.planner.store.ArtifactStore` (the daemon
            passes its own, so repeated simulations reuse planning
            artifacts).

    Returns:
        A JSON-safe summary: plan shape, workload description, chosen
        replica count, ``met_slo``, latency percentiles, throughput,
        utilization and the full autoscaler sweep.
    """
    from repro.planner import PlannerConfig, PlanningContext, plan_graph
    from repro.serving.autoscale import autoscale_replicas
    from repro.serving.simulator import ServiceModel, write_serving_trace
    from repro.serving.workload import poisson_arrivals, trace_arrivals

    graph, model_desc = _resolve_model(model)
    cluster_obj, cluster_desc = _resolve_cluster(cluster)
    config = PlannerConfig(
        batch_size=batch_size, mode="inference", verify=True
    )
    ctx = PlanningContext(graph, cluster_obj, config)
    if store is not None:
        ctx.attach_store(store)
    plan = plan_graph(graph, cluster_obj, config, context=ctx)

    if workload_trace is not None:
        requests = trace_arrivals(workload_trace)
        workload_doc: Dict[str, Any] = {
            "kind": "trace",
            "trace": str(workload_trace),
        }
    else:
        requests = poisson_arrivals(
            rps,
            duration_s,
            seed=seed,
            samples_per_request=samples_per_request,
        )
        workload_doc = {
            "kind": "poisson",
            "rps": rps,
            "duration_s": duration_s,
            "seed": seed,
        }
    workload_doc["requests"] = len(requests)
    workload_doc["max_wait_ms"] = max_wait_ms

    decision = autoscale_replicas(
        plan,
        requests,
        slo_ms,
        max_replicas=max_replicas,
        max_wait_s=max_wait_ms / 1e3,
    )
    if trace_out is not None:
        write_serving_trace(trace_out, decision.result)

    service = ServiceModel.from_plan(plan)
    summary = decision.result.summary()
    summary.update(
        {
            "model": graph.name,
            "model_spec": model_desc,
            "cluster_spec": cluster_desc,
            "devices": cluster_obj.total_devices,
            "mode": plan.mode,
            "plan": {
                "num_stages": plan.num_stages,
                "num_microbatches": plan.num_microbatches,
                "replica_factor": plan.replica_factor,
                "batch_size": plan.batch_size,
                "capacity_per_replica": service.capacity,
                "batch_latency_ms": service.latency_s * 1e3,
                "service_gap_ms": service.gap_s * 1e3,
            },
            "workload": workload_doc,
            "slo_ms": slo_ms,
            "met_slo": decision.met_slo,
            "sweep": [point.as_doc() for point in decision.sweep],
        }
    )
    return summary
