"""Serving workloads: request streams fed to the serving simulator.

A workload is just a list of :class:`Request` objects sorted by arrival
time.  Two generators are provided:

* :func:`poisson_arrivals` -- a seeded open-loop Poisson process (the
  standard model for independent user requests at a given offered load);
* :func:`trace_arrivals` -- replay a recorded trace file, one request
  per line, so measured production arrival patterns can be simulated.

Both are deterministic: the Poisson stream is driven by
``random.Random(seed)`` and the trace replay is a pure function of the
file contents, so the CLI and the daemon endpoint produce identical
summaries for identical inputs.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Union

__all__ = ["Request", "poisson_arrivals", "trace_arrivals"]


@dataclass(frozen=True)
class Request:
    """One inference request.

    ``arrival`` is in seconds from the start of the serving window;
    ``samples`` is the number of batchable samples the request carries
    (1 for a single query, >1 for a client-side batch).
    """

    index: int
    arrival: float
    samples: int = 1

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError(f"arrival must be >= 0, got {self.arrival}")
        if self.samples < 1:
            raise ValueError(f"samples must be >= 1, got {self.samples}")


def poisson_arrivals(
    rps: float,
    duration_s: float,
    *,
    seed: int = 0,
    samples_per_request: int = 1,
) -> List[Request]:
    """A seeded Poisson request stream at ``rps`` requests/second.

    Inter-arrival gaps are exponential with mean ``1/rps``; the stream
    covers ``[0, duration_s)``.  The same ``(rps, duration_s, seed)``
    triple always yields the same stream.
    """
    if rps <= 0:
        raise ValueError(f"rps must be positive, got {rps}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    rng = random.Random(seed)
    requests: List[Request] = []
    t = rng.expovariate(rps)
    while t < duration_s:
        requests.append(
            Request(index=len(requests), arrival=t, samples=samples_per_request)
        )
        t += rng.expovariate(rps)
    return requests


def trace_arrivals(source: Union[str, Path, Iterable[str]]) -> List[Request]:
    """Replay a trace: one request per non-empty line.

    Each line is either a bare arrival time in seconds (``0.0125``) or a
    JSON object ``{"arrival": 0.0125, "samples": 4}``.  Lines starting
    with ``#`` are comments.  Requests are sorted by arrival and
    re-indexed, so the trace file itself need not be ordered.
    """
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text().splitlines()
    else:
        lines = source
    parsed = []
    for lineno, raw in enumerate(lines, 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            if line.startswith("{"):
                doc = json.loads(line)
                arrival = float(doc["arrival"])
                samples = int(doc.get("samples", 1))
            else:
                arrival, samples = float(line), 1
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(f"trace line {lineno}: {exc}") from exc
        parsed.append((arrival, samples))
    parsed.sort(key=lambda pair: pair[0])
    return [
        Request(index=i, arrival=arrival, samples=samples)
        for i, (arrival, samples) in enumerate(parsed)
    ]
