"""Replica routing: least-outstanding-work batch placement.

Each serving *replica* is one pipeline-parallel copy of the plan
(``devices_per_pipeline`` devices per stage).  The router tracks, per
replica, the simulated time at which its dispatch slot frees up and
sends every new batch to the replica with the least outstanding work --
the smallest backlog of seconds still queued ahead of it.  Ties break
to the lowest replica index, keeping the simulation deterministic.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["LeastOutstandingRouter"]


class LeastOutstandingRouter:
    """Route batches to the replica with the smallest backlog."""

    def __init__(self, num_replicas: int) -> None:
        if num_replicas < 1:
            raise ValueError(
                f"num_replicas must be >= 1, got {num_replicas}"
            )
        self.num_replicas = num_replicas
        #: when each replica can next *start* a batch (its pipeline
        #: front frees up; steady-state batches pack at this cadence)
        self.next_start: List[float] = [0.0] * num_replicas
        self.dispatched: List[int] = [0] * num_replicas
        self.busy_s: List[float] = [0.0] * num_replicas

    def backlog(self, replica: int, now: float) -> float:
        """Seconds of work queued ahead of a batch arriving ``now``."""
        return max(0.0, self.next_start[replica] - now)

    def pick(self, now: float) -> int:
        """The replica a batch arriving at ``now`` should go to."""
        best = 0
        best_backlog = self.backlog(0, now)
        for replica in range(1, self.num_replicas):
            candidate = self.backlog(replica, now)
            if candidate < best_backlog:
                best, best_backlog = replica, candidate
        return best

    def commit(self, replica: int, start: float, gap_s: float) -> None:
        """Record a dispatch: the batch occupies the replica's front for
        ``gap_s`` seconds starting at ``start``."""
        self.next_start[replica] = start + gap_s
        self.dispatched[replica] += 1
        self.busy_s[replica] += gap_s

    def stats(self) -> Dict[str, List[float]]:
        return {
            "dispatched": list(self.dispatched),
            "busy_s": list(self.busy_s),
        }
