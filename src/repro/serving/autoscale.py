"""SLO autoscaler: the smallest replica count that meets a latency SLO.

Sweeps the replica count upward, simulating the full serving window at
each size, and stops at the first count whose simulated p99 request
latency meets the SLO -- adding a replica never increases any request's
latency under least-outstanding-work routing, so the first hit is the
minimum.  When even ``max_replicas`` misses the SLO the decision is
returned with ``met_slo=False`` and the best (largest) count, so
callers can distinguish "provision N" from "this SLO is unreachable at
this load" (e.g. the batch service time alone exceeds the SLO).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Sequence, Tuple

from repro.serving.simulator import ServingResult, simulate_serving
from repro.serving.workload import Request

if TYPE_CHECKING:
    from repro.partitioner.plan import PartitionPlan

__all__ = ["ReplicaPoint", "AutoscaleDecision", "autoscale_replicas"]


@dataclass(frozen=True)
class ReplicaPoint:
    """One evaluated replica count in the sweep."""

    replicas: int
    p50_ms: float
    p99_ms: float
    throughput_rps: float
    utilization: float

    def as_doc(self) -> Dict[str, Any]:
        return {
            "replicas": self.replicas,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "throughput_rps": self.throughput_rps,
            "utilization": self.utilization,
        }


@dataclass(frozen=True)
class AutoscaleDecision:
    """The chosen replica count plus the evidence behind it."""

    replicas: int
    met_slo: bool
    slo_ms: float
    sweep: Tuple[ReplicaPoint, ...]
    result: ServingResult


def autoscale_replicas(
    plan: "PartitionPlan",
    requests: Sequence[Request],
    slo_ms: float,
    *,
    max_replicas: int = 8,
    max_wait_s: float = 0.01,
) -> AutoscaleDecision:
    """Pick the minimum replica count whose p99 latency meets ``slo_ms``.

    Each candidate count replays the *same* request stream, so the
    sweep isolates the effect of capacity from workload randomness.
    """
    if slo_ms <= 0:
        raise ValueError(f"slo_ms must be positive, got {slo_ms}")
    if max_replicas < 1:
        raise ValueError(f"max_replicas must be >= 1, got {max_replicas}")
    sweep: List[ReplicaPoint] = []
    chosen_result = None
    for count in range(1, max_replicas + 1):
        result = simulate_serving(
            plan, requests, num_replicas=count, max_wait_s=max_wait_s
        )
        point = ReplicaPoint(
            replicas=count,
            p50_ms=result.latency_percentile_ms(50),
            p99_ms=result.latency_percentile_ms(99),
            throughput_rps=result.throughput_rps,
            utilization=result.mean_utilization,
        )
        sweep.append(point)
        chosen_result = result
        if point.p99_ms <= slo_ms:
            return AutoscaleDecision(
                replicas=count,
                met_slo=True,
                slo_ms=slo_ms,
                sweep=tuple(sweep),
                result=result,
            )
    assert chosen_result is not None
    return AutoscaleDecision(
        replicas=max_replicas,
        met_slo=False,
        slo_ms=slo_ms,
        sweep=tuple(sweep),
        result=chosen_result,
    )
