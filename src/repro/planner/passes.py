"""The built-in planner passes: one per phase of the paper's flow.

Mapping to the paper:

* :class:`ValidatePass` -- structural sanity of the traced graph.
* :class:`AtomicPartitionPass` -- atomic-level partitioning (Sec. III-A).
* :class:`CoarsenPass` -- block-level partitioning (Sec. III-B).
* :class:`ProfileTensorsPass` -- the profiling context over the block
  list (range matrices + the lazily-filled (k+1, k+1, D+1) profile
  tensors Algorithm 1 reduces over).
* :class:`StageSearchPass` -- Algorithm 2 over Algorithm 1 (Sec. III-C).
* :class:`AllocatePass` -- device-rank assignment for the winning DP
  solution.
* :class:`EvaluatePass` -- hybrid-parallel throughput estimate.
* :class:`VerifyPass` -- hold the finished plan to the
  :mod:`repro.verify` invariants (static + differential).

Each compute pass declares the input facets it reads (``facets``) and
whether its artifacts are reusable across runs (``cacheable``); the
facet boundaries are what let a delta replan that only changed the
cluster size or memory budget skip everything up to and including
``profile_tensors``.  The cache passes live in
:mod:`repro.planner.cache`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.graph.validate import validate_graph
from repro.partitioner.allocation import allocate_devices, boundary_report
from repro.partitioner.atomic import atomic_partition
from repro.partitioner.blocks import block_partition
from repro.partitioner.plan import PartitionPlan, StageSpec
from repro.partitioner.search import form_stage
from repro.partitioner.stage_dp import DPContext
from repro.pipeline.hybrid import evaluate_plan
from repro.planner.context import (
    BLOCKS,
    COMPONENTS,
    DP_CONTEXT,
    EVALUATED,
    PLAN,
    SEARCH_RESULT,
    VALIDATED,
    VERIFIED,
    PlanningContext,
)
from repro.planner.manager import PartitioningError, PlannerPass


class ValidatePass(PlannerPass):
    """Check the inputs before any expensive phase runs."""

    name = "validate"
    produces = (VALIDATED,)

    def run(self, ctx: PlanningContext) -> Optional[Dict[str, Any]]:
        if ctx.config.batch_size < 1:
            raise ValueError("batch size must be >= 1")
        if ctx.config.validate:
            validate_graph(ctx.graph)
        ctx.put(VALIDATED, True)
        return {
            "tasks": len(ctx.graph.tasks),
            "structural_check": ctx.config.validate,
        }


class AtomicPartitionPass(PlannerPass):
    """Sec. III-A: finest-grained subcomponents (constant-task cloning)."""

    name = "atomic_partition"
    produces = (COMPONENTS,)
    skip_when_planned = True
    cacheable = True
    facets = ("graph",)

    def run(self, ctx: PlanningContext) -> Optional[Dict[str, Any]]:
        components = ctx.put(COMPONENTS, atomic_partition(ctx.graph))
        return {"num_components": len(components)}


class CoarsenPass(PlannerPass):
    """Sec. III-B: multilevel coarsening to ``k`` balanced blocks.

    Reads the device's performance model (block balance weights) and its
    raw memory *capacity* (the block-size ceiling) -- deliberately not
    the planner-level ``memory_budget``, which caps only the stage
    search, so budget sweeps reuse one coarsening.
    """

    name = "coarsen"
    requires = (COMPONENTS,)
    produces = (BLOCKS,)
    skip_when_planned = True
    cacheable = True
    facets = ("arch", "capacity", "coarsen")

    def run(self, ctx: PlanningContext) -> Optional[Dict[str, Any]]:
        blocks = ctx.put(
            BLOCKS,
            block_partition(
                ctx.graph,
                ctx.require(COMPONENTS),
                ctx.ensure_profiler(),
                num_blocks=ctx.config.num_blocks,
                uncoarsen=ctx.config.uncoarsen,
            ),
        )
        return {"num_blocks": len(blocks)}


class ProfileTensorsPass(PlannerPass):
    """Build the :class:`DPContext`: the profiling state of Algorithm 1.

    The context's range matrices, per-batch time prefixes and dense
    profile tensors depend on the graph, the block list, the batch size,
    the device performance model and the same-node p2p affine -- *not*
    on the cluster shape, the memory capacity or the budget -- so a
    delta replan that only resized the cluster reuses it wholesale (the
    most expensive artifact to rebuild).  The range matrices are built
    eagerly here; the per-``(D, R, MB)`` tensors fill in lazily during
    the stage search and travel with the artifact.
    """

    name = "profile_tensors"
    requires = (BLOCKS,)
    produces = (DP_CONTEXT,)
    skip_when_planned = True
    cacheable = True
    facets = ("arch", "batch", "comm_local")

    def run(self, ctx: PlanningContext) -> Optional[Dict[str, Any]]:
        dp_ctx = ctx.put(
            DP_CONTEXT,
            DPContext(
                ctx.graph,
                ctx.require(BLOCKS),
                ctx.ensure_profiler(),
                ctx.config.batch_size,
                metrics=ctx.metrics,
                memory_budget=ctx.config.memory_budget,
            ),
        )
        dp_ctx._range_matrices()
        return {
            "num_blocks": dp_ctx.k,
            "range_entries": (dp_ctx.k + 1) ** 2,
        }


class StageSearchPass(PlannerPass):
    """Sec. III-C: Algorithm 2's (n, S, MB) search over Algorithm 1."""

    name = "stage_search"
    requires = (BLOCKS, DP_CONTEXT)
    produces = (SEARCH_RESULT,)
    skip_when_planned = True
    cacheable = True
    facets = ("cluster_shape", "batch", "search", "capacity", "budget")

    def run(self, ctx: PlanningContext) -> Optional[Dict[str, Any]]:
        profiler = ctx.ensure_profiler()
        memo_before = profiler.memo_hit_rate
        dp_ctx = ctx.require(DP_CONTEXT)
        # the budget gates feasibility only; a reused context just drops
        # its derived masks, never the profile tensors
        dp_ctx.set_memory_budget(ctx.config.memory_budget)
        result = form_stage(
            dp_ctx,
            num_nodes=ctx.cluster.num_nodes,
            devices_per_node=ctx.cluster.devices_per_node,
            batch_size=ctx.config.batch_size,
            max_microbatches=ctx.config.max_microbatches,
            parallel=ctx.config.parallel_search,
            max_workers=ctx.config.search_workers,
            backend=ctx.config.search_backend,
            engine=ctx.config.dp_engine,
            # fine-grained per-candidate spans are opt-in; the search
            # counters are cheap (per DP call, not per cell) and always on
            tracer=ctx.tracer if ctx.config.trace else None,
            metrics=ctx.metrics,
        )
        stats = profiler.stats()
        for name, value in stats.items():
            ctx.metrics.gauge(f"profiler.{name}").set(value)
        ctx.metrics.gauge("profiler.memo_hits").set(
            stats["cache_hits"] + stats["table_hits"]
        )
        if result is None:
            raise PartitioningError(
                f"no feasible partition for {ctx.graph.name!r} on "
                f"{ctx.cluster.total_devices} devices at batch size "
                f"{ctx.config.batch_size}"
            )
        ctx.put(SEARCH_RESULT, result)
        return {
            "dp_calls": result.dp_calls,
            "candidates_tried": result.candidates_tried,
            "states_evaluated": dp_ctx.states_evaluated,
            "num_stages": result.num_stages,
            "replica_factor": result.replica_factor,
            "devices_per_pipeline": result.devices_per_pipeline,
            "parallel_search": ctx.config.parallel_search,
            "search_backend": ctx.config.search_backend,
            "dp_engine": ctx.config.dp_engine,
            "memo_hit_rate": profiler.memo_hit_rate - memo_before,
        }


class AllocatePass(PlannerPass):
    """Turn the winning DP solution into a device-assigned plan."""

    name = "allocate"
    requires = (SEARCH_RESULT, DP_CONTEXT)
    produces = (PLAN,)
    skip_when_planned = True
    cacheable = True
    facets = ("cluster_shape", "comm", "batch")

    def run(self, ctx: PlanningContext) -> Optional[Dict[str, Any]]:
        result = ctx.require(SEARCH_RESULT)
        dp_ctx = ctx.require(DP_CONTEXT)
        sol = result.solution
        stages = []
        lo = 0
        for i, (hi, devs) in enumerate(
            zip(sol.boundaries, sol.device_counts)
        ):
            prof = sol.stage_profiles[i]
            stages.append(
                StageSpec(
                    index=i,
                    block_range=(lo, hi),
                    tasks=dp_ctx.range_tasks(lo, hi),
                    devices_per_pipeline=devs,
                    microbatch_size=prof.microbatch_size,
                    profile=prof.to_profile_result(),
                )
            )
            lo = hi
        assignment = allocate_devices(
            ctx.cluster,
            sol.device_counts,
            result.replica_factor,
            boundary_bytes=[
                sol.stage_profiles[i].out_bytes
                for i in range(len(sol.device_counts) - 1)
            ],
        )
        plan = PartitionPlan(
            model_name=ctx.graph.name,
            stages=stages,
            num_microbatches=sol.num_microbatches,
            replica_factor=result.replica_factor,
            batch_size=ctx.config.batch_size,
            precision=ctx.config.precision,
            cluster=ctx.cluster,
            assignment=assignment,
            mode=ctx.config.mode,
        )
        diag = plan.diagnostics
        diag.dp_calls = result.dp_calls
        diag.candidates_tried = result.candidates_tried
        diag.states_evaluated = dp_ctx.states_evaluated
        diag.num_blocks = len(ctx.get(BLOCKS, ()))
        diag.num_atomic_components = len(ctx.get(COMPONENTS, ()))
        ctx.put(PLAN, plan)
        # footnote-3 accounting: did the placement actually earn the
        # NVLink rate the cost model charges stage boundaries at?
        report = boundary_report(
            assignment, result.replica_factor, plan.num_stages
        )
        for name, value in report.items():
            ctx.metrics.gauge(f"comm.{name}").set(value)
        detail: Dict[str, Any] = {"num_stages": plan.num_stages}
        detail.update(report)
        return detail


class EvaluatePass(PlannerPass):
    """Fill iteration time / throughput via the pipeline simulator."""

    name = "evaluate"
    requires = (PLAN,)
    produces = (EVALUATED,)
    skip_when_planned = True
    cacheable = True
    facets = ("schedule", "comm")

    def run(self, ctx: PlanningContext) -> Optional[Dict[str, Any]]:
        plan = evaluate_plan(ctx.require(PLAN), schedule=ctx.config.schedule)
        ctx.put(EVALUATED, plan)
        detail: Dict[str, Any] = {
            "schedule": ctx.config.schedule,
            "iteration_time": plan.iteration_time,
            "throughput": plan.throughput,
            "comm_model": plan.diagnostics.comm_model,
        }
        ctx.metrics.gauge("comm.allreduce_time").set(
            plan.diagnostics.allreduce_time
        )
        ctx.metrics.gauge("comm.pipeline_time").set(
            plan.diagnostics.pipeline_time
        )
        if plan.diagnostics.allreduce_algorithm:
            detail["allreduce_algorithm"] = plan.diagnostics.allreduce_algorithm
        if ctx.config.schedule == "sync":
            # the flush schedule's measured bubble (Fig. 1, quantified):
            # gauges per stage plus the mean idle fraction
            from repro.pipeline.timeline import plan_timeline

            timeline = plan_timeline(plan)
            for s in range(timeline.num_stages):
                ctx.metrics.gauge(f"stage.{s}.utilization").set(
                    timeline.stage_utilization(s)
                )
            bubble = timeline.bubble_fraction()
            ctx.metrics.gauge("stage.bubble_frac").set(bubble)
            detail["bubble_frac"] = bubble
        return detail


class VerifyPass(PlannerPass):
    """Hold the finished plan to the :mod:`repro.verify` invariants.

    Runs after :class:`EvaluatePass` on every fresh plan; a cache hit
    skips it because ``CachePass("load")`` already verified the restored
    deployment (it puts the ``VERIFIED`` artifact).  Disable with
    ``PlannerConfig.verify=False``.
    """

    name = "verify"
    requires = (PLAN,)
    produces = (VERIFIED,)

    def should_skip(self, ctx: PlanningContext) -> Optional[str]:
        if not ctx.config.verify:
            return "disabled by config.verify"
        return super().should_skip(ctx)

    def run(self, ctx: PlanningContext) -> Optional[Dict[str, Any]]:
        from repro.verify import check_plan

        plan = ctx.get(EVALUATED) or ctx.require(PLAN)
        search = ctx.get(SEARCH_RESULT)
        expected = (
            search.solution.estimated_iteration_time()
            if search is not None
            else None
        )
        with ctx.tracer.span(
            "verify.plan", category="verify", model=plan.model_name
        ):
            report = check_plan(
                plan,
                ctx.graph,
                ctx.cluster,
                profiler=ctx.ensure_profiler(),
                optimizer=ctx.config.optimizer,
                expected_iteration_time=expected,
                schedule=ctx.config.schedule,
            )
        ctx.metrics.gauge("verify.invariants_checked").set(
            report.invariants_checked
        )
        ctx.metrics.gauge("verify.violations").set(len(report.violations))
        for stat, value in report.stats.items():
            ctx.metrics.gauge(f"verify.{stat}").set(value)
        report.raise_if_failed()
        ctx.put(VERIFIED, report)
        detail: Dict[str, Any] = {
            "invariants_checked": report.invariants_checked,
            "violations": 0,
        }
        detail.update(report.stats)
        return detail
