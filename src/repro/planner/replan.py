"""Delta replanning: reuse a previous run's artifacts for a new plan.

A finished :class:`~repro.planner.context.PlanningContext` holds every
intermediate the pipeline produced (atomic components, coarsened blocks,
the profile-tensor ``DPContext``, the DP solution).  When the cluster or
the planner config changes *partially* -- more nodes, a different memory
budget, another communication model -- most of those artifacts are still
valid, and recomputing them (profiling above all) dominates replanning
latency.

:func:`replan` runs the standard pipeline against an
:class:`~repro.planner.store.ArtifactStore` seeded from the previous
context (:func:`ensure_store`).  The pass manager then skips every pass
whose input fingerprint is unchanged: growing the cluster reuses the
coarsening and profile tensors and reruns only the stage search onward;
touching the memory budget does the same; touching nothing at all reuses
everything.  Because each pass is deterministic, the delta plan is
bit-identical to a cold plan for the same inputs -- and the ``verify``
pass still re-checks every delta-produced plan, reuse or not.

Typical use::

    ctx = PlanningContext(graph, cluster, config)
    plan = plan_graph(graph, cluster, config, context=ctx)
    # ... the cluster doubles ...
    new_plan = replan(ctx, cluster=bigger_cluster)

or, through the one-call API::

    plan = auto_partition(graph, cluster, batch_size=32, context=ctx)
    new_plan = auto_partition(
        graph, bigger_cluster, batch_size=32, reuse_from=ctx
    )

``repro plan --delta`` exposes the same mechanism on the command line by
persisting the artifacts under ``<cache_dir>/artifacts/``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.graph.ir import TaskGraph
from repro.hardware.cluster import ClusterSpec
from repro.planner.context import PlannerConfig, PlanningContext
from repro.planner.facets import pass_input_fingerprint
from repro.planner.store import ArtifactStore

__all__ = ["ensure_store", "replan"]


def ensure_store(prev_context: PlanningContext) -> ArtifactStore:
    """The artifact store behind ``prev_context``, creating and seeding
    one from the context's finished artifacts when it ran store-less.

    Seeding replays the fingerprint chain of the default pipeline over
    the previous run's facets: each cacheable pass's input fingerprint
    is recomputed exactly as the manager would have, and whichever of
    its artifacts the context holds are put into the store under that
    address.  A context that already carries a store (it ran with one)
    is returned as-is -- its artifacts were stored during the run.
    """
    if prev_context.store is not None:
        return prev_context.store
    from repro.planner import default_passes

    store = ArtifactStore()
    prev_context.attach_store(store)
    facets = prev_context.facets()
    chain = dict(prev_context.artifact_fps)
    for p in default_passes():
        if not (p.cacheable and p.produces):
            continue
        fp, inputs = pass_input_fingerprint(p, facets, chain)
        if fp is None:
            continue
        stored_all = True
        for artifact in p.produces:
            if not prev_context.has(artifact):
                stored_all = False
                continue
            store.put(
                artifact,
                fp,
                prev_context.get(artifact),
                inputs,
                prev_context,
            )
        if stored_all:
            # downstream fingerprints chain through this artifact
            for artifact in p.produces:
                chain[artifact] = fp
    prev_context.artifact_fps.update(chain)
    return store


def replan(
    prev_context: PlanningContext,
    *,
    graph: Optional[TaskGraph] = None,
    cluster: Optional[ClusterSpec] = None,
    config: Optional[PlannerConfig] = None,
    context: Optional[PlanningContext] = None,
    **config_overrides: Any,
):
    """Re-plan after a change, reusing every still-valid artifact.

    Args:
        prev_context: the context of a finished planning run.
        graph: replacement graph (default: the previous run's).
        cluster: replacement cluster (default: the previous run's).
        config: replacement config (default: the previous run's).
        context: supply the new run's :class:`PlanningContext` to
            inspect its event log afterwards; must not carry its own
            store.  One is created when omitted.
        **config_overrides: individual :class:`PlannerConfig` fields to
            override on top of ``config`` (e.g. ``memory_budget=16e9``).

    Returns:
        The new :class:`~repro.partitioner.plan.PartitionPlan`,
        bit-identical to what a cold run with the same inputs produces.

    Example -- after a finished run, tighten the memory budget and grow
    the cluster; only the stage search onward reruns::

        plan = plan_graph(graph, cluster, config, context=ctx)
        tighter = replan(ctx, memory_budget=16 * 2**30)
        wider = replan(ctx, cluster=paper_cluster(4))
    """
    from repro.planner import plan_graph

    store = ensure_store(prev_context)
    new_graph = graph if graph is not None else prev_context.graph
    new_cluster = cluster if cluster is not None else prev_context.cluster
    new_config = config if config is not None else prev_context.config
    if config_overrides:
        new_config = dataclasses.replace(new_config, **config_overrides)
    if context is None:
        context = PlanningContext(
            new_graph, new_cluster, new_config, store=store
        )
    else:
        context.attach_store(store)
    return plan_graph(new_graph, new_cluster, new_config, context=context)
