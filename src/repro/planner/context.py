"""Planner configuration and the context threaded through every pass."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.graph.ir import TaskGraph
from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import Precision
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.planner.events import EventLog
from repro.profiler.memory import OptimizerKind
from repro.profiler.profiler import GraphProfiler

#: canonical artifact names produced by the built-in passes
VALIDATED = "validated"
COMPONENTS = "components"
BLOCKS = "blocks"
DP_CONTEXT = "dp_context"
SEARCH_RESULT = "search_result"
PLAN = "plan"
EVALUATED = "evaluated"
VERIFIED = "verified"
FRAMEWORK_RESULT = "framework_result"


@dataclass(frozen=True)
class PlannerConfig:
    """Everything the planning pipeline needs besides graph + cluster.

    The fields mirror the historical ``auto_partition`` keyword
    arguments; :meth:`fingerprint` hashes the plan-determining subset so
    the deployment cache can key on it (``validate``, ``verify``,
    ``cache_dir``, ``parallel_search``, ``search_workers`` and ``trace``
    change how the pipeline runs, not what plan it produces, and are
    excluded -- the parallel Algorithm-2 sweep is deterministic by
    construction, and tracing/verification only record or check what
    happened).

    ``trace`` turns on fine-grained span recording (per-candidate
    Algorithm-2 spans, per-call Algorithm-1 DP spans) on the context's
    tracer; pass-level spans and search counters are always on -- they
    back the event log and ``PlanDiagnostics`` -- and are too few to
    measure.

    ``comm_model`` selects the communication cost model
    (:mod:`repro.comm`): ``None`` inherits the cluster's own setting,
    ``"flat"``/``"topology"`` override it for this run.  The model is
    plan-determining (it prices stage boundaries and allreduce), so it
    participates in :meth:`fingerprint`.
    """

    batch_size: int
    precision: Precision = Precision.FP32
    num_blocks: int = 32
    optimizer: OptimizerKind = OptimizerKind.ADAM
    uncoarsen: bool = True
    max_microbatches: Optional[int] = None
    validate: bool = True
    verify: bool = True
    schedule: str = "sync"
    cache_dir: Optional[Union[str, Path]] = None
    parallel_search: bool = True
    search_workers: Optional[int] = None
    trace: bool = False
    comm_model: Optional[str] = None

    def fingerprint(self) -> str:
        """Stable content hash of the plan-determining fields."""
        doc = {
            "batch_size": self.batch_size,
            "precision": self.precision.value,
            "num_blocks": self.num_blocks,
            "optimizer": self.optimizer.value,
            "uncoarsen": self.uncoarsen,
            "max_microbatches": self.max_microbatches,
            "schedule": self.schedule,
            "comm_model": self.comm_model,
        }
        blob = json.dumps(doc, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]


class PlanningContext:
    """Mutable state shared by the passes of one planning run.

    Holds the immutable inputs (graph, cluster, config), the lazily
    constructed profiler, the artifact store passes read from and write
    to, and the run's observability surface: a
    :class:`~repro.obs.tracer.Tracer` (also the storage behind the
    structured event log the :class:`~repro.planner.manager.PassManager`
    appends to) and a :class:`~repro.obs.metrics.MetricsRegistry` the
    search layers record counters into.
    """

    def __init__(
        self,
        graph: TaskGraph,
        cluster: ClusterSpec,
        config: PlannerConfig,
        profiler: Optional[GraphProfiler] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.graph = graph
        # an explicit config.comm_model overrides the cluster's own
        # setting, so every pass (and the plan itself) sees one
        # consistent communication model
        if (
            config.comm_model is not None
            and config.comm_model != cluster.comm_model
        ):
            cluster = cluster.with_comm_model(config.comm_model)
        self.cluster = cluster
        self.config = config
        self.profiler = profiler
        self.artifacts: Dict[str, Any] = {}
        # the tracer stays enabled regardless of config.trace: it stores
        # the pass events; config.trace gates the *fine-grained* spans
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = EventLog(self.tracer)

    # ------------------------------------------------------------------
    # artifact store
    # ------------------------------------------------------------------
    def has(self, name: str) -> bool:
        return name in self.artifacts

    def get(self, name: str, default: Any = None) -> Any:
        return self.artifacts.get(name, default)

    def require(self, name: str) -> Any:
        """Fetch an artifact an earlier pass must have produced."""
        try:
            return self.artifacts[name]
        except KeyError:
            raise KeyError(
                f"artifact {name!r} has not been produced "
                f"(available: {sorted(self.artifacts)})"
            ) from None

    def put(self, name: str, value: Any) -> Any:
        self.artifacts[name] = value
        return value

    # ------------------------------------------------------------------
    def ensure_profiler(self) -> GraphProfiler:
        """The run's profiler, constructing the default one on demand."""
        if self.profiler is None:
            self.profiler = GraphProfiler(
                self.graph,
                self.cluster,
                self.config.precision,
                self.config.optimizer,
            )
        return self.profiler

    def cache_key(self) -> str:
        """Deployment-cache key: graph content + cluster shape + the
        plan-determining planner configuration."""
        from repro.partitioner.deployment import graph_fingerprint

        blob = json.dumps(
            {
                "graph": graph_fingerprint(self.graph),
                "cluster": [
                    self.cluster.num_nodes,
                    self.cluster.devices_per_node,
                    self.cluster.comm_model,
                    self.cluster.nvlink_degree,
                    self.cluster.nic_count,
                ],
                "config": self.config.fingerprint(),
            },
            sort_keys=True,
        ).encode()
        return hashlib.sha256(blob).hexdigest()[:20]
