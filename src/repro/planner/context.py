"""Planner configuration and the context threaded through every pass."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.graph.ir import TaskGraph
from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import Precision
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.planner.events import EventLog
from repro.profiler.memory import OptimizerKind
from repro.profiler.profiler import GraphProfiler

#: canonical artifact names produced by the built-in passes
VALIDATED = "validated"
COMPONENTS = "components"
BLOCKS = "blocks"
DP_CONTEXT = "dp_context"
SEARCH_RESULT = "search_result"
PLAN = "plan"
EVALUATED = "evaluated"
VERIFIED = "verified"
FRAMEWORK_RESULT = "framework_result"


@dataclass(frozen=True)
class PlannerConfig:
    """Everything the planning pipeline needs besides graph + cluster.

    The fields mirror the historical ``auto_partition`` keyword
    arguments; :meth:`fingerprint` hashes the plan-determining subset so
    the deployment cache can key on it (``validate``, ``verify``,
    ``cache_dir``, ``parallel_search``, ``search_workers``,
    ``search_backend``, ``dp_engine`` and ``trace`` change how the
    pipeline runs, not what plan it produces, and are excluded -- the
    parallel Algorithm-2 sweep and every DP engine are bit-identical by
    construction, and tracing/verification only record or check what
    happened).

    ``dp_engine`` selects the Algorithm-1 evaluation strategy
    (:data:`~repro.partitioner.stage_dp.DP_ENGINES`): ``"numpy"``
    (default) picks the dense full-slab engine when it fits and the
    banded engine above that, ``"numba"`` opts into the JIT kernel
    (falling back to banded NumPy when numba is absent), and
    ``"banded"`` / ``"dense"`` / ``"rows"`` force specific engines for
    benchmarking.  ``search_backend`` selects the Algorithm-2 sweep pool
    (:data:`~repro.partitioner.search.SEARCH_BACKENDS`): ``"thread"``
    (default), ``"process"`` for true parallelism on large graphs, or
    ``"serial"``.  Both are run-mode knobs: every combination produces
    bit-identical plans and counters.

    ``trace`` turns on fine-grained span recording (per-candidate
    Algorithm-2 spans, per-call Algorithm-1 DP spans) on the context's
    tracer; pass-level spans and search counters are always on -- they
    back the event log and ``PlanDiagnostics`` -- and are too few to
    measure.

    ``comm_model`` selects the communication cost model
    (:mod:`repro.comm`): ``None`` inherits the cluster's own setting,
    ``"flat"``/``"topology"`` override it for this run.  The model is
    plan-determining (it prices stage boundaries and allreduce), so it
    participates in :meth:`fingerprint`.

    ``memory_budget`` optionally caps the per-device memory the stage
    search may fill *below* the hardware capacity (bytes; ``None`` means
    capacity).  It bounds only the DP's feasibility check -- coarsening
    keeps using the raw device capacity -- so a budget change invalidates
    the stage search but reuses the coarsening and profile-tensor
    artifacts under delta replanning.  Plan-determining, so it enters
    :meth:`fingerprint`; ``None`` is omitted from the hashed document to
    keep default-config fingerprints identical to earlier releases.

    ``cache_budget_bytes`` is the LRU byte budget of the on-disk cache
    backend (deployment entries + serialized artifacts); ``None`` leaves
    the cache unbounded.  A run-mode knob: it changes what stays cached,
    never what plan is produced, so it is excluded from the fingerprint.

    Example -- the paper's BERT setup with tracing and a bounded disk
    cache::

        config = PlannerConfig(
            batch_size=256,
            num_blocks=32,            # block-level partitioning k
            comm_model="topology",    # link-level communication costs
            memory_budget=24 * 2**30, # cap the stage search at 24 GiB
            cache_dir="~/.cache/repro",
            cache_budget_bytes=256 * 2**20,
            dp_engine="numpy",        # auto: dense small, banded large
            trace=True,
        )

    The full knob-by-knob table lives in ``docs/SERVICE.md`` (the plan
    service exposes most of these as request ``options``).
    """

    batch_size: int
    precision: Precision = Precision.FP32
    num_blocks: int = 32
    optimizer: OptimizerKind = OptimizerKind.ADAM
    mode: str = "training"
    uncoarsen: bool = True
    max_microbatches: Optional[int] = None
    validate: bool = True
    verify: bool = True
    schedule: str = "sync"
    cache_dir: Optional[Union[str, Path]] = None
    parallel_search: bool = True
    search_workers: Optional[int] = None
    search_backend: str = "thread"
    dp_engine: str = "numpy"
    trace: bool = False
    comm_model: Optional[str] = None
    memory_budget: Optional[float] = None
    cache_budget_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        from repro.partitioner.search import SEARCH_BACKENDS
        from repro.partitioner.stage_dp import DP_ENGINES

        if self.dp_engine not in DP_ENGINES:
            raise ValueError(
                f"unknown dp_engine {self.dp_engine!r}; "
                f"expected one of {DP_ENGINES}"
            )
        if self.search_backend not in SEARCH_BACKENDS:
            raise ValueError(
                f"unknown search_backend {self.search_backend!r}; "
                f"expected one of {SEARCH_BACKENDS}"
            )
        if self.mode not in ("training", "inference"):
            raise ValueError(
                f"unknown mode {self.mode!r}; "
                f"expected 'training' or 'inference'"
            )

    def fingerprint(self) -> str:
        """Stable content hash of the plan-determining fields."""
        doc = {
            "batch_size": self.batch_size,
            "precision": self.precision.value,
            "num_blocks": self.num_blocks,
            "optimizer": self.optimizer.value,
            "uncoarsen": self.uncoarsen,
            "max_microbatches": self.max_microbatches,
            "schedule": self.schedule,
            "comm_model": self.comm_model,
        }
        if self.memory_budget is not None:
            # only hashed when set, so pre-existing cache entries keyed
            # without the field keep hitting
            doc["memory_budget"] = self.memory_budget
        if self.mode != "training":
            # same back-compat contract as memory_budget: training-mode
            # fingerprints are byte-identical to earlier releases
            doc["mode"] = self.mode
        blob = json.dumps(doc, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]


class PlanningContext:
    """Mutable state shared by the passes of one planning run.

    Holds the immutable inputs (graph, cluster, config), the lazily
    constructed profiler, the per-run artifact dict passes read from and
    write to, optionally a cross-run content-addressed
    :class:`~repro.planner.store.ArtifactStore` (delta replanning), and
    the run's observability surface: a
    :class:`~repro.obs.tracer.Tracer` (also the storage behind the
    structured event log the :class:`~repro.planner.manager.PassManager`
    appends to) and a :class:`~repro.obs.metrics.MetricsRegistry` the
    search layers record counters into.
    """

    def __init__(
        self,
        graph: TaskGraph,
        cluster: ClusterSpec,
        config: PlannerConfig,
        profiler: Optional[GraphProfiler] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        store: Optional["ArtifactStore"] = None,
    ) -> None:
        self.graph = graph
        # an explicit config.comm_model overrides the cluster's own
        # setting, so every pass (and the plan itself) sees one
        # consistent communication model
        if (
            config.comm_model is not None
            and config.comm_model != cluster.comm_model
        ):
            cluster = cluster.with_comm_model(config.comm_model)
        self.cluster = cluster
        self.config = config
        self.profiler = profiler
        self.artifacts: Dict[str, Any] = {}
        # the tracer stays enabled regardless of config.trace: it stores
        # the pass events; config.trace gates the *fine-grained* spans
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = EventLog(self.tracer)
        #: fingerprints of the artifacts produced (or reused) this run,
        #: keyed by artifact name; feeds downstream passes' input
        #: fingerprints and seeds the store for later delta replans
        self.artifact_fps: Dict[str, str] = {}
        self.store: Optional["ArtifactStore"] = None
        self._disk = None
        if store is not None:
            self.attach_store(store)

    # ------------------------------------------------------------------
    # artifact store
    # ------------------------------------------------------------------
    def has(self, name: str) -> bool:
        return name in self.artifacts

    def get(self, name: str, default: Any = None) -> Any:
        return self.artifacts.get(name, default)

    def require(self, name: str) -> Any:
        """Fetch an artifact an earlier pass must have produced."""
        try:
            return self.artifacts[name]
        except KeyError:
            raise KeyError(
                f"artifact {name!r} has not been produced "
                f"(available: {sorted(self.artifacts)})"
            ) from None

    def put(self, name: str, value: Any) -> Any:
        self.artifacts[name] = value
        return value

    # ------------------------------------------------------------------
    # incremental replanning
    # ------------------------------------------------------------------
    def attach_store(self, store: "ArtifactStore") -> "ArtifactStore":
        """Adopt a cross-run artifact store, wiring the on-disk backend.

        When the store already carries a disk backend rooted at this
        context's ``cache_dir`` the backend is shared with the legacy
        deployment-cache path (one byte budget, one set of gauges);
        otherwise, a configured ``cache_dir`` lends the store its
        backend.
        """
        self.store = store
        if self.config.cache_dir is not None:
            root = Path(self.config.cache_dir)
            if store.disk is not None and store.disk.root == root:
                self._disk = store.disk
            elif store.disk is None:
                store.disk = self.deployment_backend()
        return store

    def deployment_backend(self):
        """The on-disk cache backend for this context's ``cache_dir``
        (``None`` when caching is off).  Shared with the artifact store
        when one is attached, so deployment entries and serialized
        artifacts live under one LRU byte budget."""
        if self.config.cache_dir is None:
            return None
        root = Path(self.config.cache_dir)
        if self._disk is None or self._disk.root != root:
            from repro.planner.store import DiskBackend

            self._disk = DiskBackend(
                root, byte_budget=self.config.cache_budget_bytes
            )
        return self._disk

    def facets(self) -> Dict[str, str]:
        """Digest of every input facet of this run (see
        :mod:`repro.planner.facets`)."""
        from repro.planner.facets import compute_facets

        return compute_facets(self.graph, self.cluster, self.config)

    # ------------------------------------------------------------------
    def ensure_profiler(self) -> GraphProfiler:
        """The run's profiler, constructing the default one on demand."""
        if self.profiler is None:
            self.profiler = GraphProfiler(
                self.graph,
                self.cluster,
                self.config.precision,
                self.config.optimizer,
                mode=self.config.mode,
            )
        return self.profiler

    def cache_key(self) -> str:
        """Deployment-cache key: graph content + cluster shape + the
        plan-determining planner configuration."""
        from repro.partitioner.deployment import graph_fingerprint

        doc = {
            "graph": graph_fingerprint(self.graph),
            "cluster": [
                self.cluster.num_nodes,
                self.cluster.devices_per_node,
                self.cluster.comm_model,
                self.cluster.nvlink_degree,
                self.cluster.nic_count,
            ],
            "config": self.config.fingerprint(),
        }
        if self.cluster.device_classes:
            # only keyed when present, so homogeneous cache keys stay
            # identical to earlier releases
            doc["classes"] = [
                [c.name, c.num_nodes, c.devices_per_node, c.straggler_factor]
                for c in self.cluster.device_classes
            ]
        blob = json.dumps(doc, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:20]
