"""The pass abstraction and the manager that runs a pipeline of passes.

Every pass declares the artifacts it ``requires`` and ``produces``; the
manager checks both around each pass, so a mis-assembled pipeline fails
with "pass X requires artifact Y" instead of an attribute error three
layers deep, and a crashing pass is reported by name with the artifacts
that existed at the time.

Passes additionally declare the input *facets* they read (see
:mod:`repro.planner.facets`).  When the context carries an
:class:`~repro.planner.store.ArtifactStore`, the manager computes each
cacheable pass's input fingerprint (facet digests + the fingerprints of
its required artifacts) before running it; a store hit on every produced
artifact skips the pass and installs the stored payloads instead, so a
delta replan reruns only the invalidated suffix of the pipeline.  Reuse
is observable: each skipped pass records a ``planner.reuse.<pass>`` span
and the run ends with ``planner.reuse.*`` gauges.  Without a store the
manager behaves exactly as before -- no fingerprinting, no extra I/O.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.rss import peak_rss_bytes
from repro.planner.context import EVALUATED, PLAN, PlanningContext
from repro.planner.events import FAILED, OK, SKIPPED


class PartitioningError(RuntimeError):
    """Raised when no feasible partition exists (the model cannot be
    trained on the given cluster at the given batch size)."""


class PassError(RuntimeError):
    """A planner pass failed or the pipeline is mis-assembled."""

    def __init__(self, pass_name: str, message: str) -> None:
        super().__init__(f"planner pass {pass_name!r}: {message}")
        self.pass_name = pass_name


class PlannerPass:
    """Base class of all planner passes.

    Subclasses set :attr:`name`, :attr:`requires` and :attr:`produces`
    and implement :meth:`run`, returning an optional detail dict that is
    attached to the pass's event.  Passes whose work is superseded by a
    cache-restored plan set :attr:`skip_when_planned` so the manager can
    short-circuit them.
    """

    name: str = "pass"
    requires: Tuple[str, ...] = ()
    produces: Tuple[str, ...] = ()
    #: skip this pass when a finished plan is already in the context
    skip_when_planned: bool = False
    #: input facets (beyond ``requires``) this pass reads; the basis of
    #: its input fingerprint under store-backed incremental replanning
    facets: Tuple[str, ...] = ()
    #: whether the pass's artifacts may be reused from / stored into an
    #: ArtifactStore.  False for passes with side effects or checks that
    #: must re-run on every plan (validate, verify, the legacy cache).
    cacheable: bool = False

    def should_skip(self, ctx: PlanningContext) -> Optional[str]:
        """A human-readable skip reason, or ``None`` to run the pass."""
        if self.produces and all(ctx.has(a) for a in self.produces):
            return "artifacts already present"
        if self.skip_when_planned and ctx.get("cache_hit"):
            return "plan loaded from cache"
        return None

    def run(self, ctx: PlanningContext) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class PassManager:
    """Runs a pass list over one context, enforcing artifact invariants
    and recording a timed event per pass."""

    def __init__(self, passes: Sequence[PlannerPass]) -> None:
        self.passes: List[PlannerPass] = list(passes)
        names = [p.name for p in self.passes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pass names in pipeline: {names}")

    def run(self, ctx: PlanningContext) -> PlanningContext:
        """Execute all passes in order; returns the (mutated) context."""
        store = ctx.store
        facets = ctx.facets() if store is not None else None
        reused_passes = 0
        artifacts_loaded = 0
        store_misses = 0
        for p in self.passes:
            reason = p.should_skip(ctx)
            if reason is not None:
                ctx.events.record(p.name, SKIPPED, 0.0, {"reason": reason})
                continue
            fp = None
            inputs: Dict[str, str] = {}
            if store is not None and p.cacheable and p.produces:
                from repro.planner.facets import pass_input_fingerprint

                fp, inputs = pass_input_fingerprint(
                    p, facets, ctx.artifact_fps
                )
            if fp is not None:
                reuse_start = time.perf_counter()
                arts = []
                for artifact in p.produces:
                    art = store.get(artifact, fp, ctx)
                    if art is None:
                        store_misses += 1
                        break
                    arts.append(art)
                if len(arts) == len(p.produces):
                    from repro.planner.store import materialize_for_reuse

                    for artifact, art in zip(p.produces, arts):
                        ctx.put(
                            artifact,
                            materialize_for_reuse(
                                artifact, art.payload, ctx
                            ),
                        )
                        ctx.artifact_fps[artifact] = fp
                    reused_passes += 1
                    artifacts_loaded += len(arts)
                    ctx.tracer.add_span(
                        f"planner.reuse.{p.name}",
                        category="planner.reuse",
                        duration=time.perf_counter() - reuse_start,
                        attrs={
                            "fingerprint": fp,
                            "artifacts": ",".join(p.produces),
                        },
                    )
                    ctx.events.record(
                        p.name,
                        SKIPPED,
                        0.0,
                        {
                            "reason": "artifacts reused from store",
                            "reuse": True,
                            "fingerprint": fp,
                        },
                    )
                    continue
            for artifact in p.requires:
                if not ctx.has(artifact):
                    raise PassError(
                        p.name,
                        f"requires artifact {artifact!r}, but none of the "
                        f"earlier passes produced it (pipeline: "
                        f"{[q.name for q in self.passes]}, available: "
                        f"{sorted(ctx.artifacts)})",
                    )
            start = time.perf_counter()
            rss_before = peak_rss_bytes()
            try:
                detail = p.run(ctx) or {}
            except Exception as exc:
                ctx.events.record(
                    p.name,
                    FAILED,
                    time.perf_counter() - start,
                    {"error": str(exc)},
                )
                if isinstance(exc, (PartitioningError, ValueError, KeyError)):
                    raise  # domain errors keep their type for callers
                raise PassError(p.name, str(exc)) from exc
            elapsed = time.perf_counter() - start
            if rss_before is not None:
                rss_after = peak_rss_bytes()
                if rss_after is not None and rss_after > rss_before:
                    # how much this pass raised the process's resident
                    # high-water mark (0 deltas are omitted as noise)
                    detail["peak_rss_delta"] = rss_after - rss_before
            for artifact in p.produces:
                if not ctx.has(artifact):
                    raise PassError(
                        p.name,
                        f"declared artifact {artifact!r} but did not "
                        f"produce it",
                    )
            ctx.events.record(p.name, OK, elapsed, detail)
            if fp is not None:
                for artifact in p.produces:
                    store.put(artifact, fp, ctx.get(artifact), inputs, ctx)
                    ctx.artifact_fps[artifact] = fp
        if store is not None:
            self._finish_store_run(
                ctx, store, reused_passes, artifacts_loaded, store_misses
            )
        rss = peak_rss_bytes()
        if rss is not None:
            ctx.metrics.gauge("planner.peak_rss_bytes").set(float(rss))
        self._stamp_diagnostics(ctx)
        return ctx

    @staticmethod
    def _finish_store_run(
        ctx: PlanningContext,
        store,
        reused_passes: int,
        artifacts_loaded: int,
        store_misses: int,
    ) -> None:
        """Flush accumulating artifacts and record the reuse gauges."""
        from repro.planner.context import DP_CONTEXT

        # the DP context keeps warming during the stage search; sync the
        # on-disk entry to the post-search state
        fp = ctx.artifact_fps.get(DP_CONTEXT)
        if fp is not None and ctx.has(DP_CONTEXT):
            store.refresh(DP_CONTEXT, fp, ctx)
        metrics = ctx.metrics
        metrics.gauge("planner.reuse.passes_skipped").set(reused_passes)
        metrics.gauge("planner.reuse.artifacts_loaded").set(artifacts_loaded)
        metrics.gauge("planner.reuse.store_hits").set(artifacts_loaded)
        metrics.gauge("planner.reuse.store_misses").set(store_misses)
        for stat, value in store.stats().items():
            metrics.gauge(f"planner.store.{stat}").set(value)

    @staticmethod
    def _stamp_diagnostics(ctx: PlanningContext) -> None:
        """Copy the event log's timings onto the final plan (if any)."""
        plan = ctx.get(EVALUATED) or ctx.get(PLAN)
        if plan is None:
            return
        plan.diagnostics.pass_timings.update(ctx.events.timings())
        if ctx.profiler is not None:
            stats = ctx.profiler.stats()
            plan.diagnostics.profiler_memo_hit_rate = stats["memo_hit_rate"]
            plan.diagnostics.profiler_stats = {
                k: float(v) for k, v in stats.items()
            }
