"""The pass abstraction and the manager that runs a pipeline of passes.

Every pass declares the artifacts it ``requires`` and ``produces``; the
manager checks both around each pass, so a mis-assembled pipeline fails
with "pass X requires artifact Y" instead of an attribute error three
layers deep, and a crashing pass is reported by name with the artifacts
that existed at the time.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.planner.context import EVALUATED, PLAN, PlanningContext
from repro.planner.events import FAILED, OK, SKIPPED


class PartitioningError(RuntimeError):
    """Raised when no feasible partition exists (the model cannot be
    trained on the given cluster at the given batch size)."""


class PassError(RuntimeError):
    """A planner pass failed or the pipeline is mis-assembled."""

    def __init__(self, pass_name: str, message: str) -> None:
        super().__init__(f"planner pass {pass_name!r}: {message}")
        self.pass_name = pass_name


class PlannerPass:
    """Base class of all planner passes.

    Subclasses set :attr:`name`, :attr:`requires` and :attr:`produces`
    and implement :meth:`run`, returning an optional detail dict that is
    attached to the pass's event.  Passes whose work is superseded by a
    cache-restored plan set :attr:`skip_when_planned` so the manager can
    short-circuit them.
    """

    name: str = "pass"
    requires: Tuple[str, ...] = ()
    produces: Tuple[str, ...] = ()
    #: skip this pass when a finished plan is already in the context
    skip_when_planned: bool = False

    def should_skip(self, ctx: PlanningContext) -> Optional[str]:
        """A human-readable skip reason, or ``None`` to run the pass."""
        if self.produces and all(ctx.has(a) for a in self.produces):
            return "artifacts already present"
        if self.skip_when_planned and ctx.get("cache_hit"):
            return "plan loaded from cache"
        return None

    def run(self, ctx: PlanningContext) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class PassManager:
    """Runs a pass list over one context, enforcing artifact invariants
    and recording a timed event per pass."""

    def __init__(self, passes: Sequence[PlannerPass]) -> None:
        self.passes: List[PlannerPass] = list(passes)
        names = [p.name for p in self.passes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pass names in pipeline: {names}")

    def run(self, ctx: PlanningContext) -> PlanningContext:
        """Execute all passes in order; returns the (mutated) context."""
        for p in self.passes:
            reason = p.should_skip(ctx)
            if reason is not None:
                ctx.events.record(p.name, SKIPPED, 0.0, {"reason": reason})
                continue
            for artifact in p.requires:
                if not ctx.has(artifact):
                    raise PassError(
                        p.name,
                        f"requires artifact {artifact!r}, but none of the "
                        f"earlier passes produced it (pipeline: "
                        f"{[q.name for q in self.passes]}, available: "
                        f"{sorted(ctx.artifacts)})",
                    )
            start = time.perf_counter()
            try:
                detail = p.run(ctx) or {}
            except Exception as exc:
                ctx.events.record(
                    p.name,
                    FAILED,
                    time.perf_counter() - start,
                    {"error": str(exc)},
                )
                if isinstance(exc, (PartitioningError, ValueError, KeyError)):
                    raise  # domain errors keep their type for callers
                raise PassError(p.name, str(exc)) from exc
            elapsed = time.perf_counter() - start
            for artifact in p.produces:
                if not ctx.has(artifact):
                    raise PassError(
                        p.name,
                        f"declared artifact {artifact!r} but did not "
                        f"produce it",
                    )
            ctx.events.record(p.name, OK, elapsed, detail)
        self._stamp_diagnostics(ctx)
        return ctx

    @staticmethod
    def _stamp_diagnostics(ctx: PlanningContext) -> None:
        """Copy the event log's timings onto the final plan (if any)."""
        plan = ctx.get(EVALUATED) or ctx.get(PLAN)
        if plan is None:
            return
        plan.diagnostics.pass_timings.update(ctx.events.timings())
        if ctx.profiler is not None:
            stats = ctx.profiler.stats()
            plan.diagnostics.profiler_memo_hit_rate = stats["memo_hit_rate"]
            plan.diagnostics.profiler_stats = {
                k: float(v) for k, v in stats.items()
            }
