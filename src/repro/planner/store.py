"""Content-addressed artifact store for incremental replanning.

Every pass artifact (atomic partition, coarsened blocks, profile
tensors, DP solution, plan) becomes a first-class :class:`Artifact`:
addressed by ``(name, fingerprint)`` where the fingerprint is the
producing pass's *input* fingerprint (facet digests + required-artifact
fingerprints, see :mod:`repro.planner.facets`).  Since every pass is
deterministic, equal inputs imply an equal output, so the input
fingerprint doubles as the content address -- no output hashing needed.

Two backends:

* an in-memory LRU (optionally byte-budgeted) holding live payload
  objects, which makes same-process delta replans free, and
* an optional :class:`DiskBackend` that serializes the artifacts that
  have a codec (``components``/``blocks``/``search_result`` as JSON,
  ``dp_context`` as ``npz``) under ``<cache_dir>/artifacts/``, with an
  LRU byte budget over *all* files under the cache root -- including the
  legacy whole-plan deployment entries, whose reads and writes
  :mod:`repro.planner.cache` routes through the same backend.

Reusing a loaded artifact sometimes needs run-specific fix-up (a
``DPContext`` must be rebound to the new cluster, a plan must be
deep-copied so later mutation cannot leak between runs); those hooks
live in :func:`materialize_for_reuse`.
"""

from __future__ import annotations

import copy
import io
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, is_dataclass, fields as dc_fields
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.planner.context import (
    BLOCKS,
    COMPONENTS,
    DP_CONTEXT,
    EVALUATED,
    PLAN,
    SEARCH_RESULT,
    PlanningContext,
)


# ----------------------------------------------------------------------
# artifacts
# ----------------------------------------------------------------------
@dataclass
class Artifact:
    """One content-addressed planning artifact.

    Attributes:
        name: artifact kind (``blocks``, ``dp_context``, ...).
        fingerprint: the producing pass's input fingerprint; together
            with ``name`` this is the store address.
        inputs: the declared inputs behind the fingerprint, each mapped
            to its own digest (``facet:arch`` -> ..., ``artifact:blocks``
            -> ...), kept for provenance and debugging.
        payload: the live artifact object.
        nbytes: estimated in-memory size (LRU accounting).
    """

    name: str
    fingerprint: str
    inputs: Dict[str, str] = field(default_factory=dict)
    payload: Any = None
    nbytes: int = 0

    @property
    def key(self) -> str:
        return f"{self.name}:{self.fingerprint}"


def _estimate_nbytes(obj: Any, depth: int = 0) -> int:
    """Rough recursive in-memory size, for LRU accounting only."""
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, str)):
        return len(obj)
    if obj is None or isinstance(obj, (bool, int, float)):
        return 8
    if depth >= 4:
        return 64
    if isinstance(obj, dict):
        return 64 + sum(
            _estimate_nbytes(k, depth + 1) + _estimate_nbytes(v, depth + 1)
            for k, v in obj.items()
        )
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 64 + sum(_estimate_nbytes(v, depth + 1) for v in obj)
    if is_dataclass(obj) and not isinstance(obj, type):
        return 64 + sum(
            _estimate_nbytes(getattr(obj, f.name), depth + 1)
            for f in dc_fields(obj)
        )
    return 256


# ----------------------------------------------------------------------
# disk backend (shared by artifacts and the legacy deployment cache)
# ----------------------------------------------------------------------
class DiskBackend:
    """Byte-budgeted file store rooted at the planner cache directory.

    All reads and writes go through here -- artifact files under
    ``artifacts/`` and the legacy whole-plan deployment JSONs at the
    root -- so one LRU budget (least-recently-*used*, tracked via file
    mtimes: reads touch) bounds the combined footprint.  Writes are
    write-then-rename, so a crash or a concurrent planner never leaves a
    truncated file at a final path.

    Concurrency contract: safe for concurrent callers in one process
    (counters and budget enforcement are lock-guarded) *and* across
    processes sharing one cache root -- readers see either the old or
    the new bytes of an entry, never a mix, and a process killed
    mid-write leaves only an orphaned ``*.tmp`` that budget accounting
    and reads both ignore.  This is what lets the plan service
    (:mod:`repro.service`) recover with miss-then-repair semantics after
    a hard kill.
    """

    def __init__(
        self, root: Path, byte_budget: Optional[int] = None
    ) -> None:
        self.root = Path(root)
        self.byte_budget = byte_budget
        self._lock = threading.Lock()
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    def path(self, relpath: str) -> Path:
        return self.root / relpath

    # -- reads ----------------------------------------------------------
    def read_bytes(self, relpath: str) -> Optional[bytes]:
        path = self.path(relpath)
        try:
            data = path.read_bytes()
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        try:  # LRU recency: a read makes the entry young again
            os.utime(path)
        except OSError:
            pass
        return data

    def read_text(self, relpath: str) -> Optional[str]:
        data = self.read_bytes(relpath)
        return None if data is None else data.decode()

    # -- writes ---------------------------------------------------------
    def write_bytes(self, relpath: str, data: bytes) -> Path:
        path = self.path(relpath)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._enforce_budget(protect=path)
        return path

    def write_text(self, relpath: str, text: str) -> Path:
        return self.write_bytes(relpath, text.encode())

    # -- accounting -----------------------------------------------------
    def _entries(self):
        if not self.root.exists():
            return []
        out = []
        for path in self.root.rglob("*"):
            if not path.is_file() or path.suffix == ".tmp":
                continue
            try:
                st = path.stat()
            except OSError:
                continue
            out.append((path, st.st_size, st.st_mtime))
        return out

    def bytes_used(self) -> int:
        return sum(size for _, size, _ in self._entries())

    def _enforce_budget(self, protect: Optional[Path] = None) -> None:
        if self.byte_budget is None:
            return
        with self._lock:
            entries = self._entries()
            used = sum(size for _, size, _ in entries)
            if used <= self.byte_budget:
                return
            # oldest mtime first = least recently used first
            entries.sort(key=lambda e: e[2])
            for path, size, _ in entries:
                if used <= self.byte_budget:
                    break
                if protect is not None and path == protect:
                    continue  # never evict the entry being written
                try:
                    path.unlink()
                except OSError:
                    continue
                used -= size
                self.evictions += 1

    def stats(self) -> Dict[str, float]:
        return {
            "bytes": float(self.bytes_used()),
            "budget_bytes": (
                float(self.byte_budget) if self.byte_budget else 0.0
            ),
            "evictions": float(self.evictions),
            "hits": float(self.hits),
            "misses": float(self.misses),
        }


# ----------------------------------------------------------------------
# disk codecs
# ----------------------------------------------------------------------
class ArtifactCodec:
    """Serialize one artifact kind for the disk backend.  Artifacts
    without a codec (plans: the legacy deployment JSON already persists
    them whole) live in the memory backend only."""

    ext = "json"

    def encode(self, payload: Any, ctx: PlanningContext) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes, ctx: PlanningContext) -> Any:
        raise NotImplementedError

    def size_of(self, payload: Any) -> Optional[int]:
        return None


class _ComponentsCodec(ArtifactCodec):
    def encode(self, payload: Any, ctx: PlanningContext) -> bytes:
        doc = [
            [c.index, c.non_constant_task, list(c.tasks)] for c in payload
        ]
        return json.dumps(doc).encode()

    def decode(self, data: bytes, ctx: PlanningContext) -> Any:
        from repro.partitioner.atomic import AtomicComponent

        return [
            AtomicComponent(
                index=idx, non_constant_task=nct, tasks=tuple(tasks)
            )
            for idx, nct, tasks in json.loads(data.decode())
        ]


class _BlocksCodec(ArtifactCodec):
    def encode(self, payload: Any, ctx: PlanningContext) -> bytes:
        doc = [
            [b.index, list(b.atomic_indices), list(b.tasks)] for b in payload
        ]
        return json.dumps(doc).encode()

    def decode(self, data: bytes, ctx: PlanningContext) -> Any:
        from repro.partitioner.blocks import Block

        return [
            Block(
                index=idx,
                atomic_indices=tuple(atoms),
                tasks=tuple(tasks),
            )
            for idx, atoms, tasks in json.loads(data.decode())
        ]


class _DPContextCodec(ArtifactCodec):
    """``npz`` of the reusable numeric caches plus a JSON header.

    The context is rebuilt against the *current* run's graph and
    profiler at decode time; that is sound because the artifact address
    already pins the graph, block list, batch size, device performance
    model and same-node p2p affine (anything else and the fingerprint
    would differ, so this entry would never be looked up).
    """

    ext = "npz"

    def encode(self, payload: Any, ctx: PlanningContext) -> bytes:
        meta = {
            "batch_size": payload.batch_size,
            "blocks": [
                [b.index, list(b.atomic_indices), list(b.tasks)]
                for b in payload.blocks
            ],
        }
        header = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        buf = io.BytesIO()
        np.savez_compressed(
            buf, __meta__=header, **payload.export_cache_state()
        )
        return buf.getvalue()

    def decode(self, data: bytes, ctx: PlanningContext) -> Any:
        from repro.partitioner.blocks import Block
        from repro.partitioner.stage_dp import DPContext

        with np.load(io.BytesIO(data), allow_pickle=False) as npz:
            arrays = {name: npz[name] for name in npz.files}
        meta = json.loads(arrays.pop("__meta__").tobytes().decode())
        blocks = [
            Block(
                index=idx,
                atomic_indices=tuple(atoms),
                tasks=tuple(tasks),
            )
            for idx, atoms, tasks in meta["blocks"]
        ]
        dp_ctx = DPContext(
            ctx.graph,
            blocks,
            ctx.ensure_profiler(),
            meta["batch_size"],
            metrics=ctx.metrics,
            memory_budget=ctx.config.memory_budget,
        )
        dp_ctx.import_cache_state(arrays)
        return dp_ctx

    def size_of(self, payload: Any) -> Optional[int]:
        total = 1024
        for arr in payload.export_cache_state().values():
            total += int(arr.nbytes)
        return total


class _SearchResultCodec(ArtifactCodec):
    def encode(self, payload: Any, ctx: PlanningContext) -> bytes:
        sol = payload.solution
        doc = {
            "solution": {
                "boundaries": sol.boundaries,
                "device_counts": sol.device_counts,
                "num_microbatches": sol.num_microbatches,
                "num_stages": sol.num_stages,
                "replica_factor": sol.replica_factor,
                "objective": sol.objective,
                "max_tf": sol.max_tf,
                "max_tb": sol.max_tb,
                "stage_profiles": [
                    [
                        p.time_fwd,
                        p.time_bwd,
                        p.memory,
                        p.microbatch_size,
                        p.in_bytes,
                        p.out_bytes,
                        p.param_count,
                    ]
                    for p in sol.stage_profiles
                ],
            },
            "num_pipeline_nodes": payload.num_pipeline_nodes,
            "devices_per_pipeline": payload.devices_per_pipeline,
            "replica_factor": payload.replica_factor,
            "candidates_tried": payload.candidates_tried,
            "dp_calls": payload.dp_calls,
        }
        return json.dumps(doc).encode()

    def decode(self, data: bytes, ctx: PlanningContext) -> Any:
        from repro.partitioner.search import SearchResult
        from repro.partitioner.stage_dp import DPSolution, StageProfile

        doc = json.loads(data.decode())
        s = doc["solution"]
        solution = DPSolution(
            boundaries=list(s["boundaries"]),
            device_counts=list(s["device_counts"]),
            num_microbatches=s["num_microbatches"],
            num_stages=s["num_stages"],
            replica_factor=s["replica_factor"],
            objective=s["objective"],
            max_tf=s["max_tf"],
            max_tb=s["max_tb"],
            stage_profiles=[
                StageProfile(
                    time_fwd=tf,
                    time_bwd=tb,
                    memory=mem,
                    microbatch_size=mb,
                    in_bytes=inb,
                    out_bytes=outb,
                    param_count=params,
                )
                for tf, tb, mem, mb, inb, outb, params in s["stage_profiles"]
            ],
        )
        return SearchResult(
            solution=solution,
            num_pipeline_nodes=doc["num_pipeline_nodes"],
            devices_per_pipeline=doc["devices_per_pipeline"],
            replica_factor=doc["replica_factor"],
            candidates_tried=doc["candidates_tried"],
            dp_calls=doc["dp_calls"],
        )


CODECS: Dict[str, ArtifactCodec] = {
    COMPONENTS: _ComponentsCodec(),
    BLOCKS: _BlocksCodec(),
    DP_CONTEXT: _DPContextCodec(),
    SEARCH_RESULT: _SearchResultCodec(),
}


# ----------------------------------------------------------------------
# reuse fix-up
# ----------------------------------------------------------------------
def materialize_for_reuse(
    name: str, payload: Any, ctx: PlanningContext
) -> Any:
    """Prepare a stored payload for use in a new planning run."""
    if name == DP_CONTEXT:
        # keep every numeric cache; retarget cluster/metrics/budget, and
        # let the run share the context's profiler (with its memo) so a
        # warm delta replan performs no fresh profiling at all
        payload.rebind(
            ctx.cluster,
            metrics=ctx.metrics,
            memory_budget=ctx.config.memory_budget,
        )
        if ctx.profiler is None:
            ctx.profiler = payload.profiler
        return payload
    if name in (PLAN, EVALUATED):
        # plans are mutated downstream (evaluation, diagnostics
        # stamping, callers); isolate each run with a copy
        return copy.deepcopy(payload)
    return payload


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class ArtifactStore:
    """Content-addressed artifact storage with an in-memory LRU front
    and an optional :class:`DiskBackend` behind it.

    ``get``/``put`` address artifacts by ``(name, fingerprint)``.  The
    memory tier holds live objects (``memory_budget_bytes`` caps the
    estimated footprint; least recently used artifacts are dropped
    first); the disk tier persists every artifact that has a codec, and
    a memory miss that hits disk re-materializes the payload and
    promotes it.

    Concurrency contract: ``get``/``put``/``refresh``/``stats`` are
    linearizable (one internal RLock), so one store may back many
    concurrent planning runs -- the plan service shares a single store
    across all requests.  The lock covers the store's own state only:
    a *payload* handed out by ``get`` may still be mutated by its reuse
    fix-up (:func:`materialize_for_reuse` rebinds a ``dp_context`` in
    place), which is why runs that can share payloads -- same model
    family -- must be serialized by the caller (see
    :mod:`repro.service.engine` for the keyed-mutex pattern).
    """

    def __init__(
        self,
        memory_budget_bytes: Optional[int] = None,
        disk: Optional[DiskBackend] = None,
    ) -> None:
        self.memory_budget_bytes = memory_budget_bytes
        self.disk = disk
        self._lock = threading.RLock()
        self._mem: "OrderedDict[str, Artifact]" = OrderedDict()
        self._mem_bytes = 0
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.memory_evictions = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _relpath(name: str, fingerprint: str) -> str:
        codec = CODECS[name]
        return f"artifacts/{name}-{fingerprint}.{codec.ext}"

    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._mem

    # ------------------------------------------------------------------
    def get(
        self,
        name: str,
        fingerprint: str,
        ctx: Optional[PlanningContext] = None,
    ) -> Optional[Artifact]:
        key = f"{name}:{fingerprint}"
        with self._lock:
            art = self._mem.get(key)
            if art is not None:
                self._mem.move_to_end(key)
                self.hits += 1
                return art
            codec = CODECS.get(name)
            if (
                self.disk is not None
                and codec is not None
                and ctx is not None
            ):
                data = self.disk.read_bytes(
                    self._relpath(name, fingerprint)
                )
                if data is not None:
                    try:
                        payload = codec.decode(data, ctx)
                    except (ValueError, KeyError, OSError):
                        # a corrupt file is a miss, not a failure
                        self.misses += 1
                        return None
                    art = self._insert(name, fingerprint, payload, {})
                    self.hits += 1
                    self.disk_hits += 1
                    return art
            self.misses += 1
            return None

    def put(
        self,
        name: str,
        fingerprint: str,
        payload: Any,
        inputs: Optional[Dict[str, str]] = None,
        ctx: Optional[PlanningContext] = None,
    ) -> Artifact:
        with self._lock:
            art = self._insert(name, fingerprint, payload, dict(inputs or {}))
            self._write_disk(art, ctx)
            return art

    def refresh(
        self, name: str, fingerprint: str, ctx: PlanningContext
    ) -> None:
        """Re-serialize a (mutable) artifact's current state to disk.

        The ``dp_context`` payload accumulates caches *after* its
        producing pass finishes (the stage search fills the per-batch
        time prefixes and profile tensors), so the manager refreshes it
        once the run is over; without this, the on-disk entry would only
        ever hold the eagerly-built range matrices.
        """
        with self._lock:
            art = self._mem.get(f"{name}:{fingerprint}")
            if art is not None:
                art.nbytes = self._payload_nbytes(name, art.payload)
                self._write_disk(art, ctx)

    # ------------------------------------------------------------------
    @staticmethod
    def _payload_nbytes(name: str, payload: Any) -> int:
        codec = CODECS.get(name)
        if codec is not None:
            size = codec.size_of(payload)
            if size is not None:
                return size
        return _estimate_nbytes(payload)

    def _insert(
        self,
        name: str,
        fingerprint: str,
        payload: Any,
        inputs: Dict[str, str],
    ) -> Artifact:
        key = f"{name}:{fingerprint}"
        old = self._mem.pop(key, None)
        if old is not None:
            self._mem_bytes -= old.nbytes
        art = Artifact(
            name=name,
            fingerprint=fingerprint,
            inputs=inputs,
            payload=payload,
            nbytes=self._payload_nbytes(name, payload),
        )
        self._mem[key] = art
        self._mem_bytes += art.nbytes
        if self.memory_budget_bytes is not None:
            while (
                self._mem_bytes > self.memory_budget_bytes
                and len(self._mem) > 1
            ):
                _, evicted = self._mem.popitem(last=False)
                self._mem_bytes -= evicted.nbytes
                self.memory_evictions += 1
        return art

    def _write_disk(
        self, art: Artifact, ctx: Optional[PlanningContext]
    ) -> None:
        codec = CODECS.get(art.name)
        if self.disk is None or codec is None or ctx is None:
            return
        try:
            data = codec.encode(art.payload, ctx)
        except (TypeError, ValueError):  # pragma: no cover - defensive
            return
        self.disk.write_bytes(
            self._relpath(art.name, art.fingerprint), data
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        with self._lock:
            doc = {
                "entries": float(len(self._mem)),
                "memory_bytes": float(self._mem_bytes),
                "hits": float(self.hits),
                "misses": float(self.misses),
                "disk_hits": float(self.disk_hits),
                "memory_evictions": float(self.memory_evictions),
            }
        if self.disk is not None:
            # "backend_" prefix: "disk_hits" above counts decoded
            # artifact promotions, the backend's "hits" counts raw reads
            for k, v in self.disk.stats().items():
                doc[f"backend_{k}"] = v
        return doc
