"""Replan-on-event: verified plan repair for elastic clusters.

A running job occasionally loses a node, gets preempted off one, or is
granted extra capacity.  Throwing the whole planning pipeline at the new
cluster works (delta replanning already reuses the profiling artifacts)
but ignores a cost the scheduler cares about far more than planning
latency: *migration* -- every (replica, stage) pair whose parameters are
not already resident on its newly assigned devices must fetch them over
the network before training resumes.

:func:`repair` therefore tries an **in-place repair** first: keep the
previous plan's stage boundaries and device counts, recompute the
replica factor for the surviving devices, re-profile the stages at the
new per-device batch size (re-optimizing the microbatch count for the
new replica factor), and re-verify the result with :mod:`repro.verify`.
Only the pairs whose devices actually changed migrate, and the
migration is priced by the max-min-fair transfer simulator
(:func:`repro.comm.contention.simulate_transfers`) over the new
cluster's topology.  A repair that needs *zero* migrations is
zero-disruption -- the event removed or added whole replicas -- and is
adopted as-is.  Only when the in-place plan is infeasible (replica
collapse, memory violation, verification failure) does repair fall back
to a full :func:`~repro.planner.replan.replan`, which reuses every
still-valid artifact of the previous run.

Every repair emits ``repair.*`` spans on the context's tracer and
``repair.*`` counters/gauges on its metrics registry; the plan service
surfaces the same mechanism as ``POST /v1/repair`` and the CLI as
``repro plan --repair``.  See ``docs/HETEROGENEOUS.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.comm.contention import Transfer, simulate_transfers
from repro.comm.topology import NetworkTopology
from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import Precision
from repro.partitioner.allocation import allocate_devices
from repro.partitioner.plan import PartitionPlan, StageSpec
from repro.partitioner.stage_dp import scale_stage_profile
from repro.pipeline.hybrid import evaluate_plan
from repro.planner.context import (
    BLOCKS,
    COMPONENTS,
    DP_CONTEXT,
    EVALUATED,
    PLAN,
    VALIDATED,
    PlanningContext,
)
from repro.planner.replan import replan

__all__ = [
    "ClusterEvent",
    "NodeLoss",
    "Preemption",
    "ScaleUp",
    "RepairResult",
    "repair",
    "survivor_map",
]


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterEvent:
    """Base class for elastic-cluster events; subclasses know how to
    produce the post-event :class:`~repro.hardware.cluster.ClusterSpec`."""

    def apply(self, cluster: ClusterSpec) -> ClusterSpec:
        raise NotImplementedError

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class NodeLoss(ClusterEvent):
    """Hard loss of one node (crash, network partition)."""

    node_index: int

    def apply(self, cluster: ClusterSpec) -> ClusterSpec:
        return cluster.drop_node(self.node_index)


@dataclass(frozen=True)
class Preemption(NodeLoss):
    """A node is preempted away by the scheduler.  Capacity-wise this is
    a :class:`NodeLoss`; the distinct type keeps the event log honest
    (preempted nodes drain gracefully, lost nodes do not)."""


@dataclass(frozen=True)
class ScaleUp(ClusterEvent):
    """``extra_nodes`` new nodes join (heterogeneous clusters grow the
    named device class, default the first)."""

    extra_nodes: int
    class_name: Optional[str] = None

    def apply(self, cluster: ClusterSpec) -> ClusterSpec:
        if cluster.device_classes:
            return cluster.grown(self.extra_nodes, self.class_name)
        return cluster.grown(self.extra_nodes)


def _class_first_ranks(cluster: ClusterSpec) -> Dict[str, int]:
    offsets: Dict[str, int] = {}
    off = 0
    for cls in cluster.device_classes:
        offsets[cls.name] = off
        off += cls.total_devices
    return offsets


def survivor_map(
    old: ClusterSpec, new: ClusterSpec, event: ClusterEvent
) -> Dict[int, int]:
    """Mapping ``old rank -> new rank`` for the devices that survive
    ``event`` (lost ranks are simply absent).

    Ranks are laid out node by node in class-declaration order, so a
    node loss shifts every later rank down by the lost node's width, and
    a heterogeneous scale-up shifts the ranks of every class declared
    *after* the grown one.
    """
    if isinstance(event, ScaleUp):
        if not old.device_classes:
            return {r: r for r in range(old.total_devices)}
        old_off = _class_first_ranks(old)
        new_off = _class_first_ranks(new)
        mapping: Dict[int, int] = {}
        for cls in old.device_classes:
            base_o, base_n = old_off[cls.name], new_off[cls.name]
            for i in range(cls.total_devices):
                mapping[base_o + i] = base_n + i
        return mapping
    firsts = old.node_first_ranks()
    lo, hi = firsts[event.node_index], firsts[event.node_index + 1]
    mapping = {}
    for r in range(old.total_devices):
        if r < lo:
            mapping[r] = r
        elif r >= hi:
            mapping[r] = r - (hi - lo)
    return mapping


# ----------------------------------------------------------------------
# result
# ----------------------------------------------------------------------
@dataclass
class RepairResult:
    """Outcome of one :func:`repair` call."""

    plan: PartitionPlan
    context: PlanningContext
    cluster: ClusterSpec
    event: ClusterEvent
    used_full_replan: bool
    #: (replica, stage) pairs that had to fetch parameters
    migrated_pairs: int
    migration_bytes: float
    #: max-min-fair simulated seconds to complete all parameter fetches
    migration_time: float
    #: wall time the repair itself took (monotonic seconds)
    repair_latency: float
    #: why the in-place attempt was abandoned ("" when it succeeded)
    fallback_reason: str = ""
    transfers: List[Transfer] = field(default_factory=list)


def _param_bytes(precision: Precision) -> float:
    # AMP ships FP16 working weights to the new holder; the FP32 master
    # copy travels with the optimizer state, out of scope here
    return 2.0 if precision == Precision.AMP else 4.0


def _migration_transfers(
    old_plan: PartitionPlan,
    new_plan: PartitionPlan,
    smap: Dict[int, int],
) -> Tuple[List[Transfer], int]:
    """Parameter fetches needed to realize ``new_plan`` from the
    surviving state of ``old_plan``.

    DP replicas of a stage hold identical parameters, so a destination
    rank may fetch from *any* surviving holder; sources are chosen
    round-robin to spread load.  A stage with no surviving holder is
    restored from a checkpoint through the lowest surviving rank.
    """
    per_param = _param_bytes(old_plan.precision)
    holders: Dict[int, List[int]] = {}
    if old_plan.assignment is not None:
        for (rep, stage), ranks in old_plan.assignment.ranks.items():
            bucket = holders.setdefault(stage, [])
            for r in ranks:
                n = smap.get(r)
                if n is not None:
                    bucket.append(n)
    for bucket in holders.values():
        bucket.sort()
    transfers: List[Transfer] = []
    migrated = set()
    if new_plan.assignment is None:
        return transfers, 0
    for (rep, stage), ranks in sorted(new_plan.assignment.ranks.items()):
        nbytes = new_plan.stages[stage].profile.param_count * per_param
        if nbytes <= 0:
            continue
        srcs = holders.get(stage, [])
        resident = set(srcs)
        pick = 0
        for dst in ranks:
            if dst in resident:
                continue
            if srcs:
                src = srcs[pick % len(srcs)]
                pick += 1
                tag = "migrate"
            else:
                # all holders lost: checkpoint restore, staged through
                # the lowest-numbered other rank
                src = 0 if dst != 0 else 1
                tag = "restore"
            transfers.append(
                Transfer(src_rank=src, dst_rank=dst, nbytes=nbytes, tag=tag)
            )
            migrated.add((rep, stage))
    return transfers, len(migrated)


def _price_migration(
    cluster: ClusterSpec, transfers: List[Transfer]
) -> float:
    if not transfers:
        return 0.0
    topo = NetworkTopology(cluster)
    results = simulate_transfers(topo, transfers)
    return max(r.finish for r in results)


# ----------------------------------------------------------------------
# in-place repair
# ----------------------------------------------------------------------
def _inplace_plan(
    prev_context: PlanningContext,
    prev_plan: PartitionPlan,
    new_cluster: ClusterSpec,
) -> Tuple[Optional[PartitionPlan], str]:
    """The previous plan re-targeted at ``new_cluster`` -- same stage
    boundaries and device counts, new replica factor, re-profiled
    stages and a re-optimized microbatch count -- or ``(None, reason)``
    when infeasible."""
    dp_ctx = prev_context.get(DP_CONTEXT)
    if dp_ctx is None:
        return None, "no dp_context artifact to re-profile with"
    D = prev_plan.devices_per_pipeline
    total = new_cluster.total_devices
    R_new = total // D
    if R_new < 1:
        return None, f"pipeline needs {D} devices, {total} remain"
    S = prev_plan.num_stages
    checkpointing = S > 1
    config = prev_context.config

    # per-slot capacity / speed under the new cluster: slot j of every
    # replica band maps to ranks {rep * D + j}, and a stage occupying
    # slots [dlo, dhi) is capped by the weakest and paced by the slowest
    mems = new_cluster.rank_memories()
    facs = new_cluster.rank_time_factors(prev_plan.precision)
    slot_mem = [
        min(mems[rep * D + j] for rep in range(R_new)) for j in range(D)
    ]
    slot_fac = [
        max(facs[rep * D + j] for rep in range(R_new)) for j in range(D)
    ]
    if config.memory_budget is not None:
        slot_mem = [min(m, config.memory_budget) for m in slot_mem]

    def build(MB: int) -> Tuple[Optional[PartitionPlan], str]:
        stages: List[StageSpec] = []
        device_counts: List[int] = []
        lo = 0
        dlo = 0
        for old_stage in prev_plan.stages:
            hi = old_stage.block_range[1]
            devs = old_stage.devices_per_pipeline
            prof = dp_ctx.stage_profile(
                lo, hi, devs, R_new, MB, checkpointing
            )
            if prof is None:
                return None, (
                    f"stage {old_stage.index}: microbatch collapses at "
                    f"R={R_new}"
                )
            cap = min(slot_mem[dlo : dlo + devs])
            factor = max(slot_fac[dlo : dlo + devs])
            if prof.memory > cap:
                return None, (
                    f"stage {old_stage.index}: "
                    f"{prof.memory / 2**30:.2f} GiB exceeds "
                    f"{cap / 2**30:.2f} GiB on surviving devices"
                )
            prof = scale_stage_profile(prof, factor)
            stages.append(
                StageSpec(
                    index=old_stage.index,
                    block_range=(lo, hi),
                    tasks=dp_ctx.range_tasks(lo, hi),
                    devices_per_pipeline=devs,
                    microbatch_size=prof.microbatch_size,
                    profile=prof.to_profile_result(),
                )
            )
            device_counts.append(devs)
            lo = hi
            dlo += devs

        assignment = allocate_devices(
            new_cluster,
            device_counts,
            R_new,
            boundary_bytes=[s.profile.out_bytes for s in stages[:-1]],
        )
        plan = PartitionPlan(
            model_name=prev_plan.model_name,
            stages=stages,
            num_microbatches=MB,
            replica_factor=R_new,
            batch_size=prev_plan.batch_size,
            precision=prev_plan.precision,
            cluster=new_cluster,
            assignment=assignment,
            mode=prev_plan.mode,
        )
        plan.diagnostics.num_blocks = prev_plan.diagnostics.num_blocks
        plan.diagnostics.num_atomic_components = (
            prev_plan.diagnostics.num_atomic_components
        )
        evaluate_plan(plan, schedule=config.schedule)
        return plan, ""

    # the microbatch count was tuned for the old replica factor; sweep
    # the same candidate set the stage search uses (powers of two up to
    # the per-replica batch) and keep the fastest feasible schedule, so
    # a structure-stable repair lands on the plan a full replan would
    mb_cap = config.batch_size // R_new
    if config.max_microbatches is not None:
        mb_cap = min(mb_cap, config.max_microbatches)
    candidates = []
    mb = 1
    while mb <= mb_cap:
        candidates.append(mb)
        mb *= 2
    deployed = min(prev_plan.num_microbatches, max(1, mb_cap))
    if deployed not in candidates:
        candidates.append(deployed)

    best: Optional[PartitionPlan] = None
    reason = ""
    for MB in candidates:
        plan, why = build(MB)
        if plan is None:
            reason = reason or why
            continue
        if best is None or plan.iteration_time < best.iteration_time:
            best = plan
    if best is None:
        return None, reason or "no feasible microbatch count"
    return best, ""


def _chained_context(
    prev_context: PlanningContext,
    new_cluster: ClusterSpec,
    plan: PartitionPlan,
) -> PlanningContext:
    """A context for the repaired state that keeps the cluster-agnostic
    artifacts (components, blocks, the profile-tensor DP context) so a
    later repair or full replan reuses them.  The search result is *not*
    carried over: an in-place plan is not what a cold search on the new
    cluster would produce, and must never be stored as if it were."""
    ctx = PlanningContext(
        prev_context.graph,
        new_cluster,
        prev_context.config,
        tracer=prev_context.tracer,
        metrics=prev_context.metrics,
    )
    for name in (VALIDATED, COMPONENTS, BLOCKS, DP_CONTEXT):
        if prev_context.has(name):
            ctx.put(name, prev_context.get(name))
    ctx.put(PLAN, plan)
    ctx.put(EVALUATED, plan)
    return ctx


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def repair(
    prev_context: PlanningContext,
    event: ClusterEvent,
    *,
    plan: Optional[PartitionPlan] = None,
) -> RepairResult:
    """Repair a finished plan after a cluster event, migrating as few
    (replica, stage) pairs as possible.

    Args:
        prev_context: the context of a finished planning run (or the
            ``context`` of a previous :class:`RepairResult` -- repairs
            chain).
        event: what happened to the cluster.
        plan: the currently deployed plan; defaults to the context's
            evaluated plan artifact.

    Returns:
        A :class:`RepairResult` whose plan has been re-verified against
        the post-event cluster.  ``used_full_replan`` reports whether
        the in-place path was abandoned (and ``fallback_reason`` why);
        a repair that needs zero migrations keeps the in-place plan --
        zero transfers means the event was replica-aligned, so staying
        put is zero-disruption and matches the full replan's choice.

    Raises:
        ValueError: when the context holds no plan to repair.

    Example -- lose node 1 of a 4-node job and keep training::

        plan = plan_graph(graph, cluster, config, context=ctx)
        result = repair(ctx, NodeLoss(1))
        result.plan            # re-verified plan on the 3 survivors
        result.migration_time  # seconds to re-shard the parameters
    """
    prev_plan = plan or prev_context.get(EVALUATED) or prev_context.get(PLAN)
    if prev_plan is None:
        raise ValueError(
            "repair needs a finished planning run: the context holds no "
            "plan artifact"
        )
    old_cluster = prev_context.cluster
    new_cluster = event.apply(old_cluster)
    smap = survivor_map(old_cluster, new_cluster, event)
    metrics = prev_context.metrics
    tracer = prev_context.tracer
    t0 = time.perf_counter()

    with tracer.span("repair", category="repair", event=event.kind):
        candidate: Optional[PartitionPlan]
        with tracer.span("repair.inplace", category="repair"):
            candidate, reason = _inplace_plan(
                prev_context, prev_plan, new_cluster
            )
        transfers: List[Transfer] = []
        migrated = 0
        if candidate is not None:
            from repro.verify import check_plan

            with tracer.span("repair.verify", category="repair"):
                report = check_plan(candidate, prev_context.graph)
            if not report.ok:
                candidate = None
                reason = "verification failed: " + "; ".join(
                    str(v) for v in report.violations[:3]
                )
            else:
                # zero transfers means the event removed (or added)
                # whole replicas: every surviving shard is already where
                # the repaired plan needs it, so adopting in place is
                # zero-disruption -- and coincides with what a full
                # replan chooses for replica-aligned events (asserted
                # by the randomized repair harness)
                transfers, migrated = _migration_transfers(
                    prev_plan, candidate, smap
                )

        if candidate is not None:
            ctx = _chained_context(prev_context, new_cluster, candidate)
            used_full = False
            final = candidate
        else:
            with tracer.span(
                "repair.full_replan", category="repair", reason=reason
            ):
                ctx = PlanningContext(
                    prev_context.graph, new_cluster, prev_context.config
                )
                final = replan(
                    prev_context, cluster=new_cluster, context=ctx
                )
            used_full = True
            transfers, migrated = _migration_transfers(
                prev_plan, final, smap
            )

        with tracer.span(
            "repair.migrate", category="repair", transfers=len(transfers)
        ):
            migration_time = _price_migration(new_cluster, transfers)
    latency = time.perf_counter() - t0

    migration_bytes = sum(t.nbytes for t in transfers)
    if used_full:
        metrics.counter("repair.full_replans").inc()
    else:
        metrics.counter("repair.inplace").inc()
    metrics.gauge("repair.migrated_pairs").set(float(migrated))
    metrics.gauge("repair.migration_bytes").set(migration_bytes)
    metrics.gauge("repair.migration_time_s").set(migration_time)
    metrics.gauge("repair.latency_s").set(latency)
    return RepairResult(
        plan=final,
        context=ctx,
        cluster=new_cluster,
        event=event,
        used_full_replan=used_full,
        migrated_pairs=migrated,
        migration_bytes=migration_bytes,
        migration_time=migration_time,
        repair_latency=latency,
        fallback_reason=reason if used_full else "",
        transfers=transfers,
    )
