"""First-class deployment caching for the planning pipeline.

RaNNC persists its partitioning results ("deployments") so relaunching a
job skips the search; :class:`CachePass` folds that into the pass
pipeline.  A ``load``-mode instance runs before the compute passes and,
on a hit, restores the plan so every search pass is skipped; a
``store``-mode instance runs after evaluation and writes the fresh plan
back.  Entries are keyed on graph fingerprint + cluster shape + the
plan-determining planner config (see ``PlanningContext.cache_key``), so
mutating any of the three re-plans instead of serving a stale deployment.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro.partitioner.deployment import (
    DeploymentMismatchError,
    plan_from_json,
    plan_to_json,
)
from repro.planner.context import EVALUATED, PLAN, VERIFIED, PlanningContext
from repro.planner.manager import PlannerPass


def cache_path(ctx: PlanningContext) -> Optional[Path]:
    """Deployment file for this context, or ``None`` if caching is off."""
    if ctx.config.cache_dir is None:
        return None
    safe_model = "".join(
        c if c.isalnum() or c in "-_." else "_" for c in ctx.graph.name
    )
    return Path(ctx.config.cache_dir) / f"{safe_model}-{ctx.cache_key()}.json"


class CachePass(PlannerPass):
    """Load (``mode="load"``) or store (``mode="store"``) a deployment."""

    requires = ()
    produces = ()

    def __init__(self, mode: str = "load") -> None:
        if mode not in ("load", "store"):
            raise ValueError(f"CachePass mode must be load|store, got {mode!r}")
        self.mode = mode
        self.name = f"cache_{mode}"

    def should_skip(self, ctx: PlanningContext) -> Optional[str]:
        if ctx.config.cache_dir is None:
            return "no cache directory configured"
        if self.mode == "store" and ctx.get("cache_hit"):
            return "plan came from the cache"
        return None

    def run(self, ctx: PlanningContext) -> Optional[Dict[str, Any]]:
        path = cache_path(ctx)
        assert path is not None  # should_skip gates the None case
        if self.mode == "load":
            return self._load(ctx, path)
        return self._store(ctx, path)

    def _load(self, ctx: PlanningContext, path: Path) -> Dict[str, Any]:
        if not path.exists():
            return {"hit": False, "path": str(path)}
        try:
            # a restored deployment is held to the same repro.verify
            # invariants as a fresh plan (truncated JSON, dropped stages,
            # over-memory stages, ... all land in the except below)
            plan = plan_from_json(
                path.read_text(),
                ctx.graph,
                ctx.cluster,
                verify=ctx.config.verify,
                optimizer=ctx.config.optimizer,
                profiler=(
                    ctx.ensure_profiler() if ctx.config.verify else None
                ),
            )
        except (DeploymentMismatchError, ValueError, KeyError) as exc:
            # a stale, corrupt or invariant-violating entry is a miss,
            # not a failure; the store pass then repairs it
            return {"hit": False, "path": str(path), "reason": str(exc)}
        plan.diagnostics.cache_hit = True
        ctx.put(PLAN, plan)
        ctx.put(EVALUATED, plan)
        if ctx.config.verify:
            # VerifyPass sees the artifact and skips the duplicate check
            ctx.put(VERIFIED, True)
        ctx.put("cache_hit", True)
        return {"hit": True, "path": str(path), "verified": ctx.config.verify}

    def _store(self, ctx: PlanningContext, path: Path) -> Dict[str, Any]:
        plan = ctx.get(EVALUATED) or ctx.get(PLAN)
        if plan is None:
            return {"stored": False, "reason": "no plan to store"}
        path.parent.mkdir(parents=True, exist_ok=True)
        text = plan_to_json(plan, ctx.graph)
        # write-then-rename so a crash or a concurrent planner never
        # leaves a truncated entry at the final path
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return {"stored": True, "path": str(path)}
