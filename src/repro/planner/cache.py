"""Whole-plan deployment caching as a thin view over the disk backend.

RaNNC persists its partitioning results ("deployments") so relaunching a
job skips the search; :class:`CachePass` folds that into the pass
pipeline.  A ``load``-mode instance runs before the compute passes and,
on a hit, restores the plan so every search pass is skipped; a
``store``-mode instance runs after evaluation and writes the fresh plan
back.  Entries are keyed on graph fingerprint + cluster shape + the
plan-determining planner config (see ``PlanningContext.cache_key``), so
mutating any of the three re-plans instead of serving a stale deployment.

Since the artifact store landed (:mod:`repro.planner.store`), this pass
owns no file I/O of its own: reads and writes go through the context's
:class:`~repro.planner.store.DiskBackend` -- the same backend that holds
the serialized per-pass artifacts when delta replanning is on.  The
entry paths and bytes are unchanged (``<cache_dir>/<model>-<key>.json``,
the version-1 deployment document), but the backend adds the LRU byte
budget (``PlannerConfig.cache_budget_bytes``) that keeps the directory
from growing without bound, plus the ``cache.bytes`` /
``cache.evictions`` gauges ``repro plan --explain`` reports.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional

from repro.partitioner.deployment import (
    DeploymentMismatchError,
    plan_from_json,
    plan_to_json,
)
from repro.planner.context import EVALUATED, PLAN, VERIFIED, PlanningContext
from repro.planner.manager import PlannerPass


def cache_path(ctx: PlanningContext) -> Optional[Path]:
    """Deployment file for this context, or ``None`` if caching is off."""
    if ctx.config.cache_dir is None:
        return None
    return Path(ctx.config.cache_dir) / _cache_relpath(ctx)


def _cache_relpath(ctx: PlanningContext) -> str:
    """Entry file name relative to the cache root."""
    safe_model = "".join(
        c if c.isalnum() or c in "-_." else "_" for c in ctx.graph.name
    )
    return f"{safe_model}-{ctx.cache_key()}.json"


class CachePass(PlannerPass):
    """Load (``mode="load"``) or store (``mode="store"``) a deployment.

    Not ``cacheable``: the deployment entry *is* the persisted form of
    the plan artifacts, addressed by the legacy whole-plan key rather
    than per-pass input fingerprints.
    """

    requires = ()
    produces = ()

    def __init__(self, mode: str = "load") -> None:
        if mode not in ("load", "store"):
            raise ValueError(f"CachePass mode must be load|store, got {mode!r}")
        self.mode = mode
        self.name = f"cache_{mode}"

    def should_skip(self, ctx: PlanningContext) -> Optional[str]:
        if ctx.config.cache_dir is None:
            return "no cache directory configured"
        if self.mode == "store" and ctx.get("cache_hit"):
            return "plan came from the cache"
        return None

    def run(self, ctx: PlanningContext) -> Optional[Dict[str, Any]]:
        backend = ctx.deployment_backend()
        assert backend is not None  # should_skip gates the None case
        relpath = _cache_relpath(ctx)
        if self.mode == "load":
            detail = self._load(ctx, backend, relpath)
        else:
            detail = self._store(ctx, backend, relpath)
        stats = backend.stats()
        ctx.metrics.gauge("cache.bytes").set(stats["bytes"])
        ctx.metrics.gauge("cache.evictions").set(stats["evictions"])
        detail["cache_bytes"] = int(stats["bytes"])
        if stats["evictions"]:
            detail["cache_evictions"] = int(stats["evictions"])
        return detail

    def _load(
        self, ctx: PlanningContext, backend, relpath: str
    ) -> Dict[str, Any]:
        path = str(backend.path(relpath))
        text = backend.read_text(relpath)
        if text is None:
            return {"hit": False, "path": path}
        try:
            # a restored deployment is held to the same repro.verify
            # invariants as a fresh plan (truncated JSON, dropped stages,
            # over-memory stages, ... all land in the except below)
            plan = plan_from_json(
                text,
                ctx.graph,
                ctx.cluster,
                verify=ctx.config.verify,
                optimizer=ctx.config.optimizer,
                profiler=(
                    ctx.ensure_profiler() if ctx.config.verify else None
                ),
            )
        except (DeploymentMismatchError, ValueError, KeyError) as exc:
            # a stale, corrupt or invariant-violating entry is a miss,
            # not a failure; the store pass then repairs it
            return {"hit": False, "path": path, "reason": str(exc)}
        plan.diagnostics.cache_hit = True
        ctx.put(PLAN, plan)
        ctx.put(EVALUATED, plan)
        if ctx.config.verify:
            # VerifyPass sees the artifact and skips the duplicate check
            ctx.put(VERIFIED, True)
        ctx.put("cache_hit", True)
        return {"hit": True, "path": path, "verified": ctx.config.verify}

    def _store(
        self, ctx: PlanningContext, backend, relpath: str
    ) -> Dict[str, Any]:
        plan = ctx.get(EVALUATED) or ctx.get(PLAN)
        if plan is None:
            return {"stored": False, "reason": "no plan to store"}
        # the backend writes via write-then-rename, so a crash or a
        # concurrent planner never leaves a truncated entry
        path = backend.write_text(relpath, plan_to_json(plan, ctx.graph))
        return {"stored": True, "path": str(path)}
