"""First-class deployment caching for the planning pipeline.

RaNNC persists its partitioning results ("deployments") so relaunching a
job skips the search; :class:`CachePass` folds that into the pass
pipeline.  A ``load``-mode instance runs before the compute passes and,
on a hit, restores the plan so every search pass is skipped; a
``store``-mode instance runs after evaluation and writes the fresh plan
back.  Entries are keyed on graph fingerprint + cluster shape + the
plan-determining planner config (see ``PlanningContext.cache_key``), so
mutating any of the three re-plans instead of serving a stale deployment.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional

from repro.partitioner.deployment import (
    DeploymentMismatchError,
    plan_from_json,
    plan_to_json,
)
from repro.planner.context import EVALUATED, PLAN, PlanningContext
from repro.planner.manager import PlannerPass


def cache_path(ctx: PlanningContext) -> Optional[Path]:
    """Deployment file for this context, or ``None`` if caching is off."""
    if ctx.config.cache_dir is None:
        return None
    safe_model = "".join(
        c if c.isalnum() or c in "-_." else "_" for c in ctx.graph.name
    )
    return Path(ctx.config.cache_dir) / f"{safe_model}-{ctx.cache_key()}.json"


class CachePass(PlannerPass):
    """Load (``mode="load"``) or store (``mode="store"``) a deployment."""

    requires = ()
    produces = ()

    def __init__(self, mode: str = "load") -> None:
        if mode not in ("load", "store"):
            raise ValueError(f"CachePass mode must be load|store, got {mode!r}")
        self.mode = mode
        self.name = f"cache_{mode}"

    def should_skip(self, ctx: PlanningContext) -> Optional[str]:
        if ctx.config.cache_dir is None:
            return "no cache directory configured"
        if self.mode == "store" and ctx.get("cache_hit"):
            return "plan came from the cache"
        return None

    def run(self, ctx: PlanningContext) -> Optional[Dict[str, Any]]:
        path = cache_path(ctx)
        assert path is not None  # should_skip gates the None case
        if self.mode == "load":
            return self._load(ctx, path)
        return self._store(ctx, path)

    def _load(self, ctx: PlanningContext, path: Path) -> Dict[str, Any]:
        if not path.exists():
            return {"hit": False, "path": str(path)}
        try:
            plan = plan_from_json(path.read_text(), ctx.graph, ctx.cluster)
        except (DeploymentMismatchError, ValueError, KeyError) as exc:
            # a stale or corrupt entry is a miss, not a failure
            return {"hit": False, "path": str(path), "reason": str(exc)}
        plan.diagnostics.cache_hit = True
        ctx.put(PLAN, plan)
        ctx.put(EVALUATED, plan)
        ctx.put("cache_hit", True)
        return {"hit": True, "path": str(path)}

    def _store(self, ctx: PlanningContext, path: Path) -> Dict[str, Any]:
        plan = ctx.get(EVALUATED) or ctx.get(PLAN)
        if plan is None:
            return {"stored": False, "reason": "no plan to store"}
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(plan_to_json(plan, ctx.graph))
        return {"stored": True, "path": str(path)}
