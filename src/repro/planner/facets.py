"""Input facets: the fingerprint vocabulary of incremental replanning.

A *facet* is a named, hashable slice of the planner's inputs (graph,
cluster, config) that some passes depend on and others do not.  Each
pass declares the facets it reads (``PlannerPass.facets``); its *input
fingerprint* is the hash of those facet digests plus the fingerprints of
the artifacts it requires, so invalidation propagates transitively: a
``comm_model`` change re-fingerprints ``allocate`` and ``evaluate`` but
leaves ``coarsen`` and ``profile_tensors`` untouched, while a graph edit
re-fingerprints everything downstream of ``atomic_partition``.

The facet boundaries encode real dataflow, not convention -- e.g. the
profile tensors price stage boundaries at the *same-node* p2p affine
(footnote 3 of the paper), so ``comm_local`` hashes exactly that pair
and a change to the inter-node bandwidth alone reuses them.  See
``docs/INCREMENTAL.md`` for the full facet-invalidation matrix.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.graph.serialize import canonical_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.ir import TaskGraph
    from repro.hardware.cluster import ClusterSpec
    from repro.planner.context import PlannerConfig
    from repro.planner.manager import PlannerPass

#: facet names, in the order they appear in the invalidation matrix
FACET_NAMES = (
    "graph",
    "arch",
    "capacity",
    "budget",
    "coarsen",
    "batch",
    "cluster_shape",
    "comm_local",
    "comm",
    "search",
    "schedule",
)


def _digest(doc: Any) -> str:
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()[:16]


def compute_facets(
    graph: "TaskGraph", cluster: "ClusterSpec", config: "PlannerConfig"
) -> Dict[str, str]:
    """Digest every facet of one planning run's inputs.

    Args:
        graph: the traced model.
        cluster: the *effective* cluster (after any ``config.comm_model``
            override has been applied, i.e. ``PlanningContext.cluster``).
        config: the planner configuration.
    """
    from repro.partitioner.deployment import graph_fingerprint

    device = cluster.device
    lat, bw = cluster.comm.p2p_affine(same_node=True)
    # device-class data enters the digests only when present, so every
    # homogeneous fingerprint (and hence every cached artifact) stays
    # bit-identical to the pre-heterogeneity planner
    arch_doc: Dict[str, Any] = {
        "device": [
            device.peak_flops_fp32,
            device.peak_flops_fp16,
            device.mem_bandwidth,
            device.matmul_efficiency,
            device.kernel_overhead,
        ],
        "precision": config.precision.value,
        "optimizer": config.optimizer.value,
    }
    if config.mode != "training":
        # like device classes: absent for training runs so every
        # pre-existing training artifact fingerprint stays bit-identical
        arch_doc["mode"] = config.mode
    capacity_doc: Any = [device.memory_bytes, device.memory_reserve_fraction]
    shape_doc: Any = [cluster.num_nodes, cluster.devices_per_node]
    if cluster.device_classes:
        classes = [
            [
                c.name,
                c.num_nodes,
                c.devices_per_node,
                c.straggler_factor,
                c.device.peak_flops_fp32,
                c.device.peak_flops_fp16,
                c.device.mem_bandwidth,
                c.device.matmul_efficiency,
                c.device.kernel_overhead,
                c.device.memory_bytes,
                c.device.memory_reserve_fraction,
            ]
            for c in cluster.device_classes
        ]
        arch_doc["classes"] = classes
        capacity_doc = [capacity_doc, classes]
        shape_doc = [shape_doc, classes]
    return {
        # the traced model itself
        "graph": graph_fingerprint(graph),
        # device performance model + numerics: everything a per-task
        # time or memory profile depends on
        "arch": _digest(arch_doc),
        # per-device memory capacity (bounds coarsening and the DP)
        "capacity": _digest(capacity_doc),
        # the planner-level cap below capacity (DP feasibility only)
        "budget": _digest(config.memory_budget),
        # block-level partitioning knobs
        "coarsen": _digest([config.num_blocks, config.uncoarsen]),
        # global minibatch size
        "batch": _digest(config.batch_size),
        # how many devices Algorithm 2 may spread a pipeline over
        "cluster_shape": _digest(shape_doc),
        # the same-node p2p affine the profile tensors price stage
        # boundaries at (footnote 3): latency + bytes / bandwidth
        "comm_local": _digest([cluster.comm_model, lat, bw]),
        # the full communication model (placement scoring, allreduce)
        "comm": _digest(
            [
                cluster.comm_model,
                cluster.intra_node_bandwidth,
                cluster.inter_node_bandwidth,
                cluster.comm_latency,
                cluster.nvlink_degree,
                cluster.nic_count,
            ]
        ),
        # stage-search envelope
        "search": _digest(config.max_microbatches),
        # pipeline schedule the plan is evaluated under
        "schedule": _digest(config.schedule),
    }


def pass_input_fingerprint(
    p: "PlannerPass",
    facets: Dict[str, str],
    artifact_fps: Dict[str, str],
) -> Tuple[Optional[str], Dict[str, str]]:
    """``(fingerprint, inputs)`` of one pass given the run's facets.

    ``inputs`` maps each declared input (``facet:<name>`` or
    ``artifact:<name>``) to its digest; the fingerprint hashes the pass
    name together with that mapping.  Returns ``(None, {})`` when a
    required artifact has no recorded fingerprint (e.g. it was restored
    through a non-content-addressed path), which disables store reuse
    for the pass rather than guessing.
    """
    inputs: Dict[str, str] = {}
    for facet in p.facets:
        inputs[f"facet:{facet}"] = facets[facet]
    for artifact in p.requires:
        fp = artifact_fps.get(artifact)
        if fp is None:
            return None, {}
        inputs[f"artifact:{artifact}"] = fp
    return _digest({"pass": p.name, "inputs": inputs}), inputs
