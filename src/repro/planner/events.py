"""Structured planner events: one record per executed (or skipped) pass.

The event log is the planner's observability surface: the CLI renders it
(``repro plan --explain``), experiments aggregate it across sweeps, and
tests assert on it (e.g. "the cached run never entered the stage search").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

#: event status values
OK = "ok"
SKIPPED = "skipped"
FAILED = "failed"


@dataclass
class PassEvent:
    """Outcome of one pass execution."""

    name: str
    status: str  # "ok" | "skipped" | "failed"
    wall_time: float = 0.0
    detail: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "wall_time": self.wall_time,
            "detail": dict(self.detail),
        }


class EventLog:
    """Append-only log of :class:`PassEvent` records."""

    def __init__(self) -> None:
        self.events: List[PassEvent] = []

    def record(
        self,
        name: str,
        status: str,
        wall_time: float = 0.0,
        detail: Optional[Dict[str, Any]] = None,
    ) -> PassEvent:
        event = PassEvent(name, status, wall_time, dict(detail or {}))
        self.events.append(event)
        return event

    def find(self, name: str) -> Optional[PassEvent]:
        """The most recent event of pass ``name``, if any."""
        for event in reversed(self.events):
            if event.name == name:
                return event
        return None

    def total_time(self) -> float:
        return sum(e.wall_time for e in self.events)

    def timings(self) -> Dict[str, float]:
        """Per-pass wall time of every non-skipped pass."""
        return {
            e.name: e.wall_time for e in self.events if e.status != SKIPPED
        }

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [e.as_dict() for e in self.events]

    def __iter__(self) -> Iterator[PassEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
