"""Structured planner events: one record per executed (or skipped) pass.

The event log is the planner's long-standing observability surface: the
CLI renders it (``repro plan --explain``), experiments aggregate it
across sweeps, and tests assert on it (e.g. "the cached run never
entered the stage search").

Since the :mod:`repro.obs` layer landed, the log is a **thin view over a
tracer** rather than its own store: :meth:`EventLog.record` appends a
completed :class:`~repro.obs.tracer.Span` (category
:data:`PASS_CATEGORY`, the pass's status and detail as span attributes)
to the backing :class:`~repro.obs.tracer.Tracer`, and every read-side
accessor reconstructs :class:`PassEvent` records from those spans.  One
store means ``repro plan --explain`` tables and an exported Perfetto
``trace.json`` can never disagree about what the planner did.

A pass can be ``skipped`` for two distinct reasons, told apart by the
event detail: a legacy whole-plan cache hit (every compute pass skipped,
``cache_load`` carries the hit), or an **artifact reuse** during a delta
replan — the skipped pass then carries ``reuse=True`` plus the input
``fingerprint`` its artifact was loaded under, and a matching
``planner.reuse.<pass>`` span rides on the same tracer (see
``docs/INCREMENTAL.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.tracer import Span, Tracer

#: event status values
OK = "ok"
SKIPPED = "skipped"
FAILED = "failed"

#: span category of pass events on the backing tracer
PASS_CATEGORY = "planner.pass"


@dataclass
class PassEvent:
    """Outcome of one pass execution."""

    name: str
    status: str  # "ok" | "skipped" | "failed"
    wall_time: float = 0.0
    detail: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "wall_time": self.wall_time,
            "detail": dict(self.detail),
        }


def _event_of(span: Span) -> PassEvent:
    detail = {k: v for k, v in span.attrs.items() if k != "status"}
    return PassEvent(
        span.name, span.attrs.get("status", OK), span.duration, detail
    )


class EventLog:
    """Append-only log of :class:`PassEvent` records, stored as spans.

    Args:
        tracer: the backing tracer; a private always-enabled one is
            created when omitted, so a bare ``EventLog()`` still works
            everywhere it used to.
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()

    def record(
        self,
        name: str,
        status: str,
        wall_time: float = 0.0,
        detail: Optional[Dict[str, Any]] = None,
    ) -> PassEvent:
        """Record a pass outcome as a completed span on the tracer.

        The span is back-dated by ``wall_time`` so it ends "now" — the
        pass manager measures first and records after.
        """
        span = self.tracer.add_span(
            name,
            category=PASS_CATEGORY,
            duration=wall_time,
            attrs={"status": status, **(detail or {})},
        )
        return _event_of(span)

    @property
    def events(self) -> List[PassEvent]:
        """The pass events, reconstructed from the tracer's spans."""
        return [_event_of(s) for s in self.tracer.spans(PASS_CATEGORY)]

    def find(self, name: str) -> Optional[PassEvent]:
        """The most recent event of pass ``name``, if any."""
        for event in reversed(self.events):
            if event.name == name:
                return event
        return None

    def total_time(self) -> float:
        return sum(e.wall_time for e in self.events)

    def timings(self) -> Dict[str, float]:
        """Per-pass wall time of every non-skipped pass."""
        return {
            e.name: e.wall_time for e in self.events if e.status != SKIPPED
        }

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [e.as_dict() for e in self.events]

    def __iter__(self) -> Iterator[PassEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
