"""Pass-based planning engine.

The paper's three-phase flow (atomic partitioning, block coarsening, the
Algorithm-1/2 stage search) is expressed as discrete
:class:`~repro.planner.manager.PlannerPass` objects threaded through a
shared :class:`~repro.planner.context.PlanningContext` by a
:class:`~repro.planner.manager.PassManager`.  ``auto_partition`` is a
thin wrapper over :func:`default_passes`; baselines and experiments
assemble their own pipelines from the same building blocks, and every
run yields a structured per-pass event log (``repro plan --explain``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.graph.ir import TaskGraph
from repro.hardware.cluster import ClusterSpec
from repro.partitioner.plan import PartitionPlan
from repro.planner.cache import CachePass, cache_path
from repro.planner.context import (
    BLOCKS,
    COMPONENTS,
    DP_CONTEXT,
    EVALUATED,
    FRAMEWORK_RESULT,
    PLAN,
    SEARCH_RESULT,
    VALIDATED,
    VERIFIED,
    PlannerConfig,
    PlanningContext,
)
from repro.planner.events import EventLog, PassEvent
from repro.planner.facets import FACET_NAMES, compute_facets
from repro.planner.manager import (
    PartitioningError,
    PassError,
    PassManager,
    PlannerPass,
)
from repro.planner.passes import (
    AllocatePass,
    AtomicPartitionPass,
    CoarsenPass,
    EvaluatePass,
    ProfileTensorsPass,
    StageSearchPass,
    ValidatePass,
    VerifyPass,
)
from repro.planner.repair import (
    ClusterEvent,
    NodeLoss,
    Preemption,
    RepairResult,
    ScaleUp,
    repair,
    survivor_map,
)
from repro.planner.replan import ensure_store, replan
from repro.planner.store import Artifact, ArtifactStore, DiskBackend
from repro.profiler.profiler import GraphProfiler


def default_passes() -> List[PlannerPass]:
    """The standard ``auto_partition`` pipeline.

    ``validate`` always runs (it is cheap and guards the cache path too);
    ``cache_load`` short-circuits every later compute pass on a hit; the
    compute passes mirror the paper's phases, with ``profile_tensors``
    building the reusable DP profile planes between coarsening and the
    stage search; ``verify`` holds the fresh plan to the
    :mod:`repro.verify` invariants (a cache hit was already verified
    during the load); ``cache_store`` persists a freshly computed plan.
    Both cache passes self-skip when no cache directory is configured.
    """
    return [
        ValidatePass(),
        CachePass("load"),
        AtomicPartitionPass(),
        CoarsenPass(),
        ProfileTensorsPass(),
        StageSearchPass(),
        AllocatePass(),
        EvaluatePass(),
        VerifyPass(),
        CachePass("store"),
    ]


def plan_graph(
    graph: TaskGraph,
    cluster: ClusterSpec,
    config: PlannerConfig,
    profiler: Optional[GraphProfiler] = None,
    passes: Optional[List[PlannerPass]] = None,
    context: Optional[PlanningContext] = None,
) -> PartitionPlan:
    """Run a planning pipeline and return the finished plan.

    Pass ``context`` to keep a handle on the artifacts and event log
    (e.g. for ``--explain`` rendering); otherwise one is created.
    """
    ctx = context or PlanningContext(graph, cluster, config, profiler)
    PassManager(passes if passes is not None else default_passes()).run(ctx)
    plan = ctx.get(EVALUATED) or ctx.get(PLAN)
    if plan is None:
        raise PassError(
            "pipeline",
            "no pass produced a plan artifact "
            f"(artifacts: {sorted(ctx.artifacts)})",
        )
    return plan


def run_framework_pipeline(
    graph: TaskGraph,
    cluster: ClusterSpec,
    config: PlannerConfig,
    passes: List[PlannerPass],
    profiler: Optional[GraphProfiler] = None,
    context: Optional[PlanningContext] = None,
):
    """Run a baseline-framework pipeline and return its result artifact.

    Baselines (GPipe, PipeDream-2BW, Megatron-LM, data parallelism)
    share this entry point: each contributes a search pass producing the
    ``FRAMEWORK_RESULT`` artifact, and gets the same context, event log
    and profiler handling as ``auto_partition``.
    """
    ctx = context or PlanningContext(graph, cluster, config, profiler)
    PassManager(passes).run(ctx)
    return ctx.require(FRAMEWORK_RESULT)


__all__ = [
    "Artifact",
    "ArtifactStore",
    "AllocatePass",
    "AtomicPartitionPass",
    "BLOCKS",
    "COMPONENTS",
    "CachePass",
    "ClusterEvent",
    "CoarsenPass",
    "DP_CONTEXT",
    "DiskBackend",
    "EVALUATED",
    "EvaluatePass",
    "EventLog",
    "FACET_NAMES",
    "FRAMEWORK_RESULT",
    "GraphProfiler",
    "NodeLoss",
    "PLAN",
    "PartitioningError",
    "PassError",
    "PassEvent",
    "PassManager",
    "PlannerConfig",
    "PlannerPass",
    "PlanningContext",
    "Preemption",
    "ProfileTensorsPass",
    "RepairResult",
    "SEARCH_RESULT",
    "ScaleUp",
    "StageSearchPass",
    "VALIDATED",
    "VERIFIED",
    "ValidatePass",
    "VerifyPass",
    "cache_path",
    "compute_facets",
    "default_passes",
    "ensure_store",
    "plan_graph",
    "repair",
    "replan",
    "run_framework_pipeline",
    "survivor_map",
]
