"""repro -- reproduction of RaNNC: "Automatic Graph Partitioning for Very
Large-scale Deep Learning" (Tanaka et al., IPDPS 2021).

Public API highlights:

* :func:`repro.partitioner.auto_partition` -- one-call automatic hybrid-
  parallel partitioning of an unannotated model graph.
* :mod:`repro.models` -- the paper's workloads (enlarged BERT / ResNet).
* :mod:`repro.nn` -- PyTorch-style module frontend + tracer.
* :mod:`repro.hardware` -- simulated cluster specs (the paper's testbed).
* :mod:`repro.runtime` -- NumPy execution of whole or partitioned graphs.
* :mod:`repro.experiments` -- regenerate every paper table and figure.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.hardware import ClusterSpec, DeviceSpec, Precision, paper_cluster
from repro.partitioner import PartitioningError, PartitionPlan, auto_partition

__version__ = "1.0.0"

__all__ = [
    "ClusterSpec",
    "DeviceSpec",
    "PartitionPlan",
    "PartitioningError",
    "Precision",
    "auto_partition",
    "paper_cluster",
    "__version__",
]
