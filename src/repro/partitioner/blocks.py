"""Block-level partitioning (Sec. III-B).

Groups atomic subcomponents into ``k`` coarse-grained *blocks* balancing
two criteria: computation-time balance and inter-block communication.
The three steps follow the k-way multilevel scheme the paper adapts from
Karypis-Kumar / Huynh et al.:

1. **Coarsening** -- iteratively merge each group (visited in ascending
   order of computation time) with the adjacent group minimizing the
   merged computation time, subject to convexity and the device-memory
   bound.  Levels are recorded for the next step.

2. **Uncoarsening** -- walk the levels back from coarsest to finest; for
   each recorded merge ``v U w``, try to move ``v`` (or ``w``) into an
   adjacent group if that reduces the bytes crossing group boundaries,
   keeping convexity and memory feasibility.  Moves are evaluated exactly
   on the contracted group DAG.

3. **Compaction** -- if more than ``k`` groups remain, topologically sort
   them and repeatedly merge the cheapest group with its cheaper
   list-neighbour (any consecutive range of a topological order is convex,
   so no convexity check is needed here) until ``k`` blocks remain or no
   merge fits in memory.

Implementation note (documented in DESIGN.md): on very large graphs
(>#`uncoarsen_max_groups` groups) uncoarsening only revisits the coarse
levels, where the final block boundaries are actually decided; fine-level
moves on a 15 000-component graph cost O(records x |E|) for no measurable
communication gain on the paper's chain-structured workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph.ir import TaskGraph, ValueKind
from repro.graph.traversal import GroupGraph
from repro.partitioner.atomic import AtomicComponent, classify_tasks
from repro.profiler.profiler import GraphProfiler


@dataclass(frozen=True)
class Block:
    """A coarse-grained block: the unit of stage-level partitioning."""

    index: int
    atomic_indices: Tuple[int, ...]
    tasks: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.tasks)


@dataclass
class _MergeRecord:
    """One coarsening merge: the two parts' atomic-id sets at merge time
    and the group count of the level it happened in."""

    part_v: FrozenSet[int]
    part_w: FrozenSet[int]
    level_group_count: int


class BlockPartitioner:
    """Stateful driver of the three block-partitioning steps."""

    def __init__(
        self,
        graph: TaskGraph,
        components: Sequence[AtomicComponent],
        profiler: GraphProfiler,
        num_blocks: int = 32,
        ref_batch_size: int = 1,
        uncoarsen: bool = True,
        uncoarsen_max_groups: int = 512,
        balance_factor: float = 0.25,
    ) -> None:
        self.graph = graph
        self.components = list(components)
        self.profiler = profiler
        self.k = num_blocks
        self.ref_batch_size = max(1, ref_batch_size)
        self.uncoarsen_enabled = uncoarsen
        self.uncoarsen_max_groups = uncoarsen_max_groups
        self.balance_factor = balance_factor

        n = len(self.components)
        if n == 0:
            raise ValueError("no atomic components")

        # --- atomic-level DAG over components (edges between the unique
        # owners of non-constant tasks; cloned constants are internal) ----
        non_constant = classify_tasks(graph)
        owner: Dict[str, int] = {}
        for comp in self.components:
            owner[comp.non_constant_task] = comp.index
        self.comp_succ: List[Set[int]] = [set() for _ in range(n)]
        self.comp_pred: List[Set[int]] = [set() for _ in range(n)]
        self.edge_bytes: Dict[Tuple[int, int], float] = {}
        act_factor = profiler.precision.activation_bytes_factor
        for producer, consumer in graph.iter_edges():
            if not (non_constant.get(producer) and non_constant.get(consumer)):
                continue
            a, b = owner[producer], owner[consumer]
            if a == b:
                continue
            self.comp_succ[a].add(b)
            self.comp_pred[b].add(a)
        # byte weight per cross-component value edge (for comm objective)
        for value in graph.values.values():
            if value.producer is None or not non_constant.get(value.producer):
                continue
            a = owner[value.producer]
            scale = act_factor if value.dtype.value.startswith("float") else 1.0
            nbytes = value.nbytes(self.ref_batch_size) * scale
            for consumer in set(value.consumers):
                if not non_constant.get(consumer):
                    continue
                b = owner[consumer]
                if a == b:
                    continue
                key = (a, b)
                self.edge_bytes[key] = self.edge_bytes.get(key, 0.0) + nbytes

        # --- per-component cost coefficients -----------------------------
        tf, tb = profiler._times_at(self.ref_batch_size)
        self.comp_time = np.zeros(n)
        self.comp_saved = np.zeros(n)
        self.comp_param_ids: List[FrozenSet[int]] = []
        for comp in self.components:
            idx = profiler.indices_of(comp.tasks)
            self.comp_time[comp.index] = float(tf[idx].sum() + tb[idx].sum())
            self.comp_saved[comp.index] = float(
                profiler.saved_bytes[idx].sum()
            )
            pids: Set[int] = set()
            for i in idx:
                pids.update(profiler._task_param_ids[i])
            self.comp_param_ids.append(frozenset(pids))

        # --- mutable partition state -------------------------------------
        # group id -> set of atomic indices; group ids are stable ints
        self.group_atoms: Dict[int, Set[int]] = {
            i: {i} for i in range(n)
        }
        self.atom_owner: List[int] = list(range(n))
        self.gg = GroupGraph(
            range(n),
            [(a, b) for a in range(n) for b in self.comp_succ[a]],
        )
        self.records: List[_MergeRecord] = []
        self.memory_limit = profiler.cluster.device.usable_memory

    # ------------------------------------------------------------------
    # cost helpers (incremental aggregates)
    # ------------------------------------------------------------------
    def _group_time(self, atoms: Set[int]) -> float:
        return float(self.comp_time[list(atoms)].sum())

    def _group_memory(self, atoms: Set[int]) -> float:
        """Loose memory estimate used during block formation: static
        parameter/optimizer state plus one reference microbatch's
        checkpointed activations.  The DP re-checks memory exactly."""
        saved = float(self.comp_saved[list(atoms)].sum())
        saved *= self.ref_batch_size * self.profiler.precision.activation_bytes_factor
        pids: Set[int] = set()
        for a in atoms:
            pids.update(self.comp_param_ids[a])
        params = int(
            self.profiler._param_sizes_arr[
                np.fromiter(pids, dtype=np.int64)
            ].sum()
        ) if pids else 0
        return self.profiler.memory_model.static_bytes(params) + saved

    def _cut_bytes_of_group(self, gid: int) -> float:
        """Bytes on edges crossing the boundary of group ``gid``."""
        atoms = self.group_atoms[gid]
        total = 0.0
        for (a, b), w in self.edge_bytes.items():
            if (a in atoms) != (b in atoms):
                total += w
        return total

    def total_cut_bytes(self) -> float:
        """Bytes crossing any group boundary (the uncoarsening objective)."""
        total = 0.0
        for (a, b), w in self.edge_bytes.items():
            if self.atom_owner[a] != self.atom_owner[b]:
                total += w
        return total

    # ------------------------------------------------------------------
    # step 1: coarsening
    # ------------------------------------------------------------------
    def coarsen(self) -> None:
        """Iteratively merge groups until ``k`` remain or nothing merges.

        Merges respect a load threshold of ``balance_factor x total / k``
        (the streaming-partitioning balance criterion the paper adapts):
        a merge that would create a group heavier than the ideal per-block
        load is rejected, so no block becomes "a strong bottleneck".  The
        compaction step lifts the threshold when memory-feasible merges
        are still needed to reach exactly ``k`` groups.
        """
        threshold = self.balance_factor * float(self.comp_time.sum()) / self.k
        while len(self.group_atoms) > self.k:
            ordered = sorted(
                self.group_atoms,
                key=lambda g: self._group_time(self.group_atoms[g]),
            )
            consumed: Set[int] = set()
            merged_any = False
            level_count = len(self.group_atoms)
            for v in ordered:
                if v in consumed or v not in self.group_atoms:
                    continue
                if len(self.group_atoms) <= self.k:
                    break
                best_w: Optional[int] = None
                best_time = float("inf")
                neighbors = set(self.gg.succ[v]) | set(self.gg.pred[v])
                for w in neighbors:
                    if w in consumed:
                        continue
                    if not self.gg.can_merge(v, w):
                        continue
                    merged_atoms = self.group_atoms[v] | self.group_atoms[w]
                    if self._group_memory(merged_atoms) > self.memory_limit:
                        continue
                    t = self._group_time(merged_atoms)
                    if t > threshold:
                        continue
                    if t < best_time:
                        best_time = t
                        best_w = w
                if best_w is None:
                    continue
                self.records.append(
                    _MergeRecord(
                        part_v=frozenset(self.group_atoms[v]),
                        part_w=frozenset(self.group_atoms[best_w]),
                        level_group_count=level_count,
                    )
                )
                self._do_merge(v, best_w)
                consumed.add(v)
                consumed.add(best_w)
                merged_any = True
            if not merged_any:
                break

    def _do_merge(self, keep: int, absorb: int) -> None:
        for a in self.group_atoms[absorb]:
            self.atom_owner[a] = keep
        self.group_atoms[keep] |= self.group_atoms.pop(absorb)
        self.gg.merge(keep, absorb)

    # ------------------------------------------------------------------
    # step 2: uncoarsening (boundary refinement)
    # ------------------------------------------------------------------
    def uncoarsen(self) -> int:
        """Walk merge records coarse-to-fine, moving merge parts into
        adjacent groups when it reduces crossing bytes.  Returns the number
        of moves applied."""
        if not self.uncoarsen_enabled:
            return 0
        moves = 0
        for record in reversed(self.records):
            if record.level_group_count > self.uncoarsen_max_groups:
                continue
            for part in (record.part_v, record.part_w):
                if self._try_move(part):
                    moves += 1
        return moves

    def _part_owner(self, part: FrozenSet[int]) -> Optional[int]:
        owners = {self.atom_owner[a] for a in part}
        return owners.pop() if len(owners) == 1 else None

    def _try_move(self, part: FrozenSet[int]) -> bool:
        g = self._part_owner(part)
        if g is None or part == frozenset(self.group_atoms[g]):
            return False  # scattered by an earlier move, or whole group
        # candidate target groups: those adjacent to the part
        targets: Set[int] = set()
        for a in part:
            for b in self.comp_succ[a] | self.comp_pred[a]:
                t = self.atom_owner[b]
                if t != g:
                    targets.add(t)
        if not targets:
            return False
        before = self._local_cut(part, g)
        best_target: Optional[int] = None
        best_after = before
        for t in targets:
            after = self._local_cut(part, t)
            if after < best_after and self._move_is_valid(part, g, t):
                best_after = after
                best_target = t
        if best_target is None:
            return False
        self._apply_move(part, g, best_target)
        return True

    def _local_cut(self, part: FrozenSet[int], owner_group: int) -> float:
        """Bytes on edges incident to ``part`` that would cross a group
        boundary if ``part`` lived in ``owner_group``."""
        total = 0.0
        for (a, b), w in self.edge_bytes.items():
            a_in, b_in = a in part, b in part
            if a_in == b_in:
                continue
            other = b if a_in else a
            # edge crosses unless the other endpoint is in owner_group
            # (edges internal to the part are excluded above)
            if self.atom_owner[other] != owner_group:
                total += w
        return total

    def _move_is_valid(self, part: FrozenSet[int], g: int, t: int) -> bool:
        """Check convexity of (g - part) and (t + part) plus memory of
        (t + part), on the contracted group DAG with g split."""
        remaining = self.group_atoms[g] - part
        target_atoms = self.group_atoms[t] | part
        if self._group_memory(target_atoms) > self.memory_limit:
            return False
        # build a contracted adjacency over current groups, with g split
        # into `remaining` and `part`; then both changed sets must be
        # convex.  Node labels: group ids, plus -1 for `part`.
        label: Dict[int, int] = {}
        for a in part:
            label[a] = -1
        succ: Dict[int, Set[int]] = {}

        def lab(atom: int) -> int:
            lbl = label.get(atom)
            return lbl if lbl is not None else self.atom_owner[atom]

        for a in range(len(self.components)):
            la = lab(a)
            for b in self.comp_succ[a]:
                lb = lab(b)
                if la != lb:
                    succ.setdefault(la, set()).add(lb)
            succ.setdefault(la, set())
        # after the move, `part` fuses with t: contract labels -1 and t
        def final(lbl: int) -> int:
            return t if lbl == -1 else lbl

        fsucc: Dict[int, Set[int]] = {}
        for a, bs in succ.items():
            fa = final(a)
            fsucc.setdefault(fa, set())
            for b_ in bs:
                fb = final(b_)
                if fa != fb:
                    fsucc[fa].add(fb)
        return _is_dag(fsucc)

    def _apply_move(self, part: FrozenSet[int], g: int, t: int) -> None:
        for a in part:
            self.atom_owner[a] = t
        self.group_atoms[g] -= part
        self.group_atoms[t] |= part
        if not self.group_atoms[g]:
            del self.group_atoms[g]
        self._rebuild_group_graph()

    def _rebuild_group_graph(self) -> None:
        gids = list(self.group_atoms)
        edges = []
        for a in range(len(self.components)):
            for b in self.comp_succ[a]:
                ga, gb = self.atom_owner[a], self.atom_owner[b]
                if ga != gb:
                    edges.append((ga, gb))
        self.gg = GroupGraph(gids, edges)

    # ------------------------------------------------------------------
    # step 3: compaction
    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Compact the remaining groups into exactly ``k`` balanced,
        contiguous blocks.

        The paper's greedy rule (cheapest group absorbs its cheaper
        topo-list neighbour, :meth:`compact_greedy`) can pair a tiny group
        with a near-threshold one, creating a bottleneck block ~1.5x the
        ideal load.  Since any consecutive range of a topological order is
        convex, the same step can instead solve the classic *linear
        partitioning* problem exactly: binary-search the max block load
        and greedily pack groups in topological order under that cap (and
        the device-memory cap).  This refinement is documented as
        deviation D3 in DESIGN.md and ablated in the benchmarks.
        """
        order = self.gg.topo_order()
        if len(order) <= self.k:
            return
        times = [self._group_time(self.group_atoms[g]) for g in order]
        best = None
        if len(order) <= 1024:
            best = self._exact_partition(order, times)
        if best is None:
            lo = max(times)
            hi = sum(times)
            # The binary search re-packs the same topological order 40
            # times; part memory depends only on the (start, end) range of
            # ``order``, so a shared memo returns the identical float on
            # revisits instead of re-deduplicating parameter ids.
            mem_memo: Dict[Tuple[int, int], float] = {}
            for _ in range(40):
                cap = 0.5 * (lo + hi)
                parts = self._pack(order, times, cap, mem_memo)
                if parts is not None and len(parts) <= self.k:
                    best = parts
                    hi = cap
                else:
                    lo = cap
        if best is None:
            # memory constraints defeat every cap: fall back to greedy
            self.compact_greedy()
            return
        self._rebuild_from_parts(best)

    def _exact_partition(
        self, order: List[int], times: List[float]
    ) -> Optional[List[List[int]]]:
        """Optimal minimax contiguous partition into exactly ``k`` parts
        (classic linear-partitioning DP); returns ``None`` if any part of
        the optimum violates the memory cap (caller falls back)."""
        n = len(order)
        k = min(self.k, n)
        prefix = np.concatenate([[0.0], np.cumsum(times)])
        INF = float("inf")
        cost = np.full((k + 1, n + 1), INF)
        cut = np.zeros((k + 1, n + 1), dtype=np.int64)
        cost[0, 0] = 0.0
        for parts in range(1, k + 1):
            for end in range(parts, n - (k - parts) + 1):
                starts = np.arange(parts - 1, end)
                bins = prefix[end] - prefix[starts]
                cand = np.maximum(cost[parts - 1, starts], bins)
                j = int(np.argmin(cand))
                cost[parts, end] = cand[j]
                cut[parts, end] = starts[j]
        if not np.isfinite(cost[k, n]):
            return None
        bounds = [n]
        end = n
        for parts in range(k, 0, -1):
            end = int(cut[parts, end])
            bounds.append(end)
        bounds.reverse()
        parts_list: List[List[int]] = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            part = order[lo:hi]
            atoms: Set[int] = set()
            for gid in part:
                atoms |= self.group_atoms[gid]
            if self._group_memory(atoms) > self.memory_limit:
                return None
            parts_list.append(part)
        return parts_list

    def _pack(
        self,
        order: List[int],
        times: List[float],
        cap: float,
        mem_memo: Optional[Dict[Tuple[int, int], float]] = None,
    ) -> Optional[List[List[int]]]:
        """Greedy prefix packing under a load cap and the memory cap.

        ``mem_memo`` (shared across the caller's binary-search rounds)
        caches part memory by ``(start, end)`` indices into ``order`` --
        the candidate atom set, and hence the float, is fully determined
        by the range, so hits reproduce the uncached value exactly.
        """
        parts: List[List[int]] = []
        current: List[int] = []
        atoms: Set[int] = set()
        acc = 0.0
        start = 0
        for idx, (gid, t) in enumerate(zip(order, times)):
            if not current:
                if t > cap:
                    return None  # a single group exceeds the load cap
                current, atoms, acc = [gid], set(self.group_atoms[gid]), t
                start = idx
                continue
            candidate = atoms | self.group_atoms[gid]
            if acc + t > cap:
                over = True
            elif mem_memo is None:
                over = self._group_memory(candidate) > self.memory_limit
            else:
                mem = mem_memo.get((start, idx))
                if mem is None:
                    mem = mem_memo[(start, idx)] = self._group_memory(
                        candidate
                    )
                over = mem > self.memory_limit
            if over:
                parts.append(current)
                if t > cap:
                    return None
                current, atoms, acc = [gid], set(self.group_atoms[gid]), t
                start = idx
            else:
                current.append(gid)
                atoms, acc = candidate, acc + t
        if current:
            parts.append(current)
        return parts

    def _rebuild_from_parts(self, parts: List[List[int]]) -> None:
        new_groups: Dict[int, Set[int]] = {}
        for i, gids in enumerate(parts):
            atoms: Set[int] = set()
            for gid in gids:
                atoms |= self.group_atoms[gid]
            new_groups[i] = atoms
            for a in atoms:
                self.atom_owner[a] = i
        self.group_atoms = new_groups
        self._rebuild_group_graph()

    def compact_greedy(self) -> None:
        """The paper's literal compaction rule: in ascending order of
        computation time, merge each group with its cheaper topologically
        adjacent list-neighbour until ``k`` groups remain."""
        while len(self.group_atoms) > self.k:
            order = self.gg.topo_order()
            pos = {g: i for i, g in enumerate(order)}
            by_time = sorted(
                order, key=lambda g: self._group_time(self.group_atoms[g])
            )
            merged = False
            for v in by_time:
                i = pos[v]
                candidates = []
                if i > 0:
                    candidates.append(order[i - 1])
                if i + 1 < len(order):
                    candidates.append(order[i + 1])
                if not candidates:
                    continue
                candidates.sort(
                    key=lambda g: self._group_time(self.group_atoms[g])
                )
                for w in candidates:
                    merged_atoms = self.group_atoms[v] | self.group_atoms[w]
                    if self._group_memory(merged_atoms) > self.memory_limit:
                        continue
                    # merging list-adjacent groups of a topological order
                    # is always convex (interval argument), but the group
                    # graph must stay acyclic -- guaranteed for immediate
                    # neighbours only when they are also DAG-compatible:
                    if not self._list_merge_keeps_dag(v, w):
                        continue
                    self._do_merge(v, w)
                    merged = True
                    break
                if merged:
                    break
            if not merged:
                break  # memory prevents reaching k; return what we have

    def _list_merge_keeps_dag(self, v: int, w: int) -> bool:
        """Merging consecutive topo-list groups keeps the contracted graph
        acyclic iff no *other* group lies on a path between them."""
        if not self.gg.adjacent(v, w):
            return True  # independent groups: union is trivially fine
        return self.gg.can_merge(v, w)

    # ------------------------------------------------------------------
    def run(self) -> List[Block]:
        """Execute coarsening, uncoarsening and compaction; return blocks
        in topological order."""
        self.coarsen()
        self.uncoarsen()
        if len(self.group_atoms) > self.k:
            self.compact()
        order = self.gg.topo_order()
        task_pos = {t: i for i, t in enumerate(self.graph.tasks)}
        blocks: List[Block] = []
        for new_idx, gid in enumerate(order):
            atoms = sorted(self.group_atoms[gid])
            tasks: Set[str] = set()
            for a in atoms:
                tasks.update(self.components[a].tasks)
            blocks.append(
                Block(
                    index=new_idx,
                    atomic_indices=tuple(atoms),
                    tasks=tuple(sorted(tasks, key=task_pos.__getitem__)),
                )
            )
        return blocks


def block_partition(
    graph: TaskGraph,
    components: Sequence[AtomicComponent],
    profiler: GraphProfiler,
    num_blocks: int = 32,
    ref_batch_size: int = 1,
    uncoarsen: bool = True,
) -> List[Block]:
    """Convenience wrapper running the full block-level phase."""
    return BlockPartitioner(
        graph,
        components,
        profiler,
        num_blocks=num_blocks,
        ref_batch_size=ref_batch_size,
        uncoarsen=uncoarsen,
    ).run()


def _is_dag(succ: Dict[int, Set[int]]) -> bool:
    """Cycle check via iterative DFS colouring."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {n: WHITE for n in succ}
    for root in succ:
        if colour[root] != WHITE:
            continue
        stack: List[Tuple[int, iter]] = [(root, iter(succ[root]))]
        colour[root] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                c = colour.get(nxt, WHITE)
                if c == GREY:
                    return False
                if c == WHITE:
                    colour[nxt] = GREY
                    stack.append((nxt, iter(succ.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return True
