"""Optional numba-JIT kernel for the banded ``form_stage_dp`` reduction.

The kernel reduces one stage count of the banded DP (see
``_banded_stage_numpy`` in ``stage_dp``) with explicit loops, which numba
compiles to native code.  It is written to be *bit-identical* to the
NumPy engine: the same float64 max/add expressions per transition, the
same first-minimum ``b'`` tie-break (strict ``<`` while scanning ``b'``
ascending, matching ``np.argmin``), the same cross-column update rule
``(v < cur) | (v == cur and b' < cur_b')``, and the same memory/bs
failure-mask accumulation that drives the ``d_min`` replay.

numba is an *optional* dependency: when it is absent the decorator is a
no-op and the kernel remains a plain-Python function -- far too slow for
production but exactly the same semantics, which is how the parity tests
exercise the kernel logic on tiny graphs without numba installed.
``resolve_dp_engine`` only routes to the kernel when
:func:`kernel_available` is true, i.e. when numba is importable (or a
test forces ``NUMBA_AVAILABLE``).
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only when numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):
        """No-op stand-in: keeps the kernel importable (and testable as
        plain Python) when numba is not installed."""
        if args and callable(args[0]):
            return args[0]

        def decorate(fn):
            return fn

        return decorate


def kernel_available() -> bool:
    """Whether the JIT kernel should be selected by the engine resolver.
    Reads :data:`NUMBA_AVAILABLE` at call time so tests can force the
    plain-Python kernel path."""
    return NUMBA_AVAILABLE


@njit(cache=True)
def banded_stage_kernel(
    band_tf,       # (P, k, span) float64
    band_tb,       # (P, k, span) float64
    band_mem,      # (P, k, span) float64
    plane_of_r,    # (D+1,) int64, -1 = microbatch collapsed
    prev_ok,       # (k+1, D+1) bool: finite V[s-1] states
    ptf,           # (k+1, D+1) float64: tf[s-1]
    ptb,           # (k+1, D+1) float64: tb[s-1]
    s,             # current stage count
    b_hi,          # k - (S - s)
    d_hi,          # D - (S - s)
    M,             # usable device memory
    best,          # (k+1, D+1) float64, in/out
    best_tf,       # (k+1, D+1) float64, in/out
    best_tb,       # (k+1, D+1) float64, in/out
    best_bp,       # (k+1, D+1) int64, in/out
    best_dp,       # (k+1, D+1) int64, in/out
    memf,          # (k+1, D+1) bool, in/out
    bsf,           # (k+1, D+1) bool, in/out
):
    span = band_tf.shape[2]
    for dpp in range(s - 1, d_hi):
        col_any = False
        for bp in range(s - 1, b_hi):
            if prev_ok[bp, dpp]:
                col_any = True
                break
        if not col_any:
            continue
        nd = d_hi - dpp
        for r in range(1, nd + 1):
            d = dpp + r
            p = plane_of_r[r]
            if p < 0:
                # microbatch collapsed at this replica count: every valid
                # transition is a bs failure (the dense engine's FIN plane
                # is all-False there)
                for b in range(s, b_hi + 1):
                    if bsf[b, d]:
                        continue
                    for bp in range(s - 1, b):
                        if prev_ok[bp, dpp]:
                            bsf[b, d] = True
                            break
                continue
            for b in range(s, b_hi + 1):
                vbest = np.inf
                bpbest = -1
                ctf_best = 0.0
                ctb_best = 0.0
                for bp in range(s - 1, b):
                    if not prev_ok[bp, dpp]:
                        continue
                    j = b - bp - 1
                    if j >= span:
                        continue
                    if band_mem[p, bp, j] > M:
                        memf[b, d] = True
                        continue
                    ctf = ptf[bp, dpp]
                    stf = band_tf[p, bp, j]
                    if stf > ctf:
                        ctf = stf
                    ctb = ptb[bp, dpp]
                    stb = band_tb[p, bp, j]
                    if stb > ctb:
                        ctb = stb
                    v = ctf + ctb
                    if v < vbest:   # strict: first minimum in b' order
                        vbest = v
                        bpbest = bp
                        ctf_best = ctf
                        ctb_best = ctb
                if bpbest >= 0:
                    cur = best[b, d]
                    if vbest < cur or (
                        vbest == cur and bpbest < best_bp[b, d]
                    ):
                        best[b, d] = vbest
                        best_tf[b, d] = ctf_best
                        best_tb[b, d] = ctb_best
                        best_bp[b, d] = bpbest
                        best_dp[b, d] = dpp
