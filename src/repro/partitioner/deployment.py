"""Deployment cache: (de)serialize partition plans to JSON.

RaNNC saves partitioning results ("deployments") so that relaunching a
job skips the search entirely; this module provides the same: a plan can
be written next to a checkpoint and restored against the same graph and
cluster.  A content hash of the graph guards against restoring a plan for
a different (or modified) model.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from typing import Any, Dict, Optional

from repro.graph.ir import TaskGraph
from repro.graph.serialize import graph_to_json
from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import Precision
from repro.partitioner.allocation import allocate_devices
from repro.partitioner.plan import PartitionPlan, StageSpec
from repro.pipeline.hybrid import evaluate_plan
from repro.profiler.memory import OptimizerKind
from repro.profiler.profiler import GraphProfiler, ProfileResult


class DeploymentMismatchError(ValueError):
    """The stored deployment does not match the supplied graph/cluster."""


#: per-object fingerprint memo -- graphs are immutable once traced, and
#: serializing a large graph is the single most expensive step of a
#: cache lookup / facet digest, so hash each instance at most once
_fingerprint_memo: "weakref.WeakKeyDictionary[TaskGraph, str]" = (
    weakref.WeakKeyDictionary()
)


def graph_fingerprint(graph: TaskGraph) -> str:
    """Stable content hash of a traced graph."""
    fp = _fingerprint_memo.get(graph)
    if fp is None:
        fp = hashlib.sha256(graph_to_json(graph).encode()).hexdigest()[:16]
        _fingerprint_memo[graph] = fp
    return fp


def plan_to_json(plan: PartitionPlan, graph: TaskGraph) -> str:
    """Serialize a plan (with the graph's fingerprint) to JSON."""
    doc: Dict[str, Any] = {
        "version": 1,
        "model_name": plan.model_name,
        "graph_fingerprint": graph_fingerprint(graph),
        "batch_size": plan.batch_size,
        "precision": plan.precision.value,
        "num_microbatches": plan.num_microbatches,
        "replica_factor": plan.replica_factor,
        "cluster": {
            "num_nodes": plan.cluster.num_nodes,
            "devices_per_node": plan.cluster.devices_per_node,
        },
        "stages": [
            {
                "index": s.index,
                "block_range": list(s.block_range),
                "tasks": list(s.tasks),
                "devices_per_pipeline": s.devices_per_pipeline,
                "microbatch_size": s.microbatch_size,
                "profile": {
                    "time_fwd": s.profile.time_fwd,
                    "time_bwd": s.profile.time_bwd,
                    "memory": s.profile.memory,
                    "param_count": s.profile.param_count,
                    "in_bytes": s.profile.in_bytes,
                    "out_bytes": s.profile.out_bytes,
                },
            }
            for s in plan.stages
        ],
    }
    if plan.mode != "training":
        # stored only when non-default, so pre-existing training
        # deployments stay byte-identical
        doc["mode"] = plan.mode
    return json.dumps(doc, sort_keys=True)


def plan_from_json(
    text: str,
    graph: TaskGraph,
    cluster: ClusterSpec,
    *,
    verify: bool = True,
    optimizer: OptimizerKind = OptimizerKind.ADAM,
    profiler: Optional[GraphProfiler] = None,
) -> PartitionPlan:
    """Restore a plan; re-validates it against graph and cluster.

    Raises :class:`DeploymentMismatchError` if the graph content or the
    cluster shape changed since the plan was saved.  With ``verify``
    (the default) the restored plan is additionally held to the full
    :mod:`repro.verify` invariants -- a stored deployment that drops a
    stage, duplicates a task or no longer fits device memory raises
    :class:`repro.verify.PlanVerificationError` instead of being
    silently deployed (``optimizer``/``profiler`` feed the memory
    re-derivation; the deployment JSON does not store the optimizer).
    """
    doc = json.loads(text)
    if doc.get("version") != 1:
        raise DeploymentMismatchError(f"unknown deployment version: {doc.get('version')!r}")
    if doc["graph_fingerprint"] != graph_fingerprint(graph):
        raise DeploymentMismatchError(
            "deployment was computed for a different model graph"
        )
    if (
        doc["cluster"]["num_nodes"] != cluster.num_nodes
        or doc["cluster"]["devices_per_node"] != cluster.devices_per_node
    ):
        raise DeploymentMismatchError(
            "deployment was computed for a different cluster shape"
        )
    missing = [
        t
        for sdoc in doc["stages"]
        for t in sdoc["tasks"]
        if t not in graph.tasks
    ]
    if missing:
        raise DeploymentMismatchError(
            f"deployment references unknown tasks: {missing[:3]}"
        )

    stages = [
        StageSpec(
            index=sdoc["index"],
            block_range=tuple(sdoc["block_range"]),
            tasks=tuple(sdoc["tasks"]),
            devices_per_pipeline=sdoc["devices_per_pipeline"],
            microbatch_size=sdoc["microbatch_size"],
            profile=ProfileResult(**sdoc["profile"]),
        )
        for sdoc in doc["stages"]
    ]
    plan = PartitionPlan(
        model_name=doc["model_name"],
        stages=stages,
        num_microbatches=doc["num_microbatches"],
        replica_factor=doc["replica_factor"],
        batch_size=doc["batch_size"],
        precision=Precision(doc["precision"]),
        cluster=cluster,
        assignment=allocate_devices(
            cluster,
            [s.devices_per_pipeline for s in stages],
            doc["replica_factor"],
        ),
        mode=doc.get("mode", "training"),
    )
    plan = evaluate_plan(plan, schedule="sync")
    if verify:
        # local import: repro.verify depends on repro.partitioner types
        from repro.verify import verify_plan

        verify_plan(
            plan, graph, cluster, profiler=profiler, optimizer=optimizer
        )
    return plan
