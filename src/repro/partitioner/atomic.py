"""Atomic-level partitioning (Sec. III-A).

Two traversals over the task graph:

1. **Forward** (input -> output): classify every task as *non-constant*
   (its output depends on the model's input: some input value is a model
   input or the output of another non-constant task) or *constant*
   (computable from parameters/constants alone, e.g. the transpose of a
   weight matrix).

2. **Backward** (output -> input): every non-constant task seeds one
   atomic subcomponent; each constant task is folded into the
   subcomponent(s) consuming its output.  When a constant task's output
   feeds several subcomponents, the task *and its constant predecessors*
   are cloned into each (the paper's cloning rule), so the components
   remain independently executable.

The result guarantees the paper's replication property: every atomic
subcomponent contains exactly one non-constant task, so replicating it
under data parallelism is never wasted work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.graph.ir import TaskGraph, ValueKind


@dataclass(frozen=True)
class AtomicComponent:
    """An atomic subcomponent: one non-constant task plus the constant
    tasks folded (possibly as clones) into it.

    ``tasks`` is ordered with constants first, the non-constant task last,
    consistent with intra-component execution order.
    """

    index: int
    non_constant_task: str
    tasks: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.tasks)


def classify_tasks(graph: TaskGraph) -> Dict[str, bool]:
    """Forward traversal: map task name -> is_non_constant.

    A task is non-constant iff any of its inputs is a model input or the
    output of a non-constant task.  Tasks are visited in the graph's
    topological insertion order, so producers are classified first.
    """
    non_constant: Dict[str, bool] = {}
    for tname, task in graph.tasks.items():
        flag = False
        for vname in task.inputs:
            value = graph.values[vname]
            if value.kind is ValueKind.INPUT:
                flag = True
                break
            if value.producer is not None and non_constant[value.producer]:
                flag = True
                break
        non_constant[tname] = flag
    return non_constant


def _constant_closure(
    graph: TaskGraph, seed: str, non_constant: Dict[str, bool]
) -> List[str]:
    """The constant task ``seed`` plus all its (necessarily constant)
    predecessors, in topological order."""
    members: Set[str] = set()
    stack = [seed]
    while stack:
        tname = stack.pop()
        if tname in members:
            continue
        members.add(tname)
        for vname in graph.tasks[tname].inputs:
            producer = graph.values[vname].producer
            if producer is not None:
                if non_constant[producer]:  # pragma: no cover - impossible
                    raise AssertionError(
                        f"constant task {tname} consumes non-constant {producer}"
                    )
                stack.append(producer)
    return [t for t in graph.tasks if t in members]


def atomic_partition(graph: TaskGraph) -> List[AtomicComponent]:
    """Identify atomic subcomponents (backward traversal with cloning).

    Returns components in topological order of their non-constant tasks.
    Constant tasks shared by several components appear in each of them
    (clones); non-constant tasks appear in exactly one.
    """
    non_constant = classify_tasks(graph)
    order = list(graph.tasks)

    # one component per non-constant task, keyed by that task's name
    component_of_nc: Dict[str, int] = {}
    nc_order: List[str] = [t for t in order if non_constant[t]]
    if not nc_order:
        raise ValueError(
            "model has no non-constant task: nothing depends on its inputs"
        )
    for i, tname in enumerate(nc_order):
        component_of_nc[tname] = i

    members: List[Set[str]] = [set([t]) for t in nc_order]

    # Backward traversal: attach each constant task (with its constant
    # predecessor closure) to every component that consumes its output.
    targets_of_const: Dict[str, Set[int]] = {}
    for tname in reversed(order):
        if non_constant[tname]:
            continue
        task = graph.tasks[tname]
        targets: Set[int] = set()
        for vname in task.outputs:
            for consumer in graph.values[vname].consumers:
                if non_constant[consumer]:
                    targets.add(component_of_nc[consumer])
                else:
                    # consumed by another constant task: inherit that
                    # task's targets (it was processed already -- it is a
                    # successor, hence later in topological order)
                    targets.update(targets_of_const.get(consumer, ()))
        if not targets:
            # dead constant subtree (no path to any non-constant task):
            # attach to the first component so every task is placed
            targets = {0}
        targets_of_const[tname] = targets
        closure = _constant_closure(graph, tname, non_constant)
        for idx in targets:
            members[idx].update(closure)

    order_index = {t: j for j, t in enumerate(order)}
    components: List[AtomicComponent] = []
    for i, nc_task in enumerate(nc_order):
        ordered = sorted(members[i], key=order_index.__getitem__)
        components.append(
            AtomicComponent(index=i, non_constant_task=nc_task, tasks=tuple(ordered))
        )
    return components


def check_atomic_invariants(
    graph: TaskGraph, components: List[AtomicComponent]
) -> None:
    """Assert the Sec. III-A invariants (used by tests and the API):

    * every task appears in >= 1 component;
    * every *non-constant* task appears in exactly one;
    * each component has exactly one non-constant task;
    * within a component, the non-constant task is reachable from every
      constant member (constants are its predecessors' closure).
    """
    non_constant = classify_tasks(graph)
    seen_counts: Dict[str, int] = {t: 0 for t in graph.tasks}
    for comp in components:
        ncs = [t for t in comp.tasks if non_constant[t]]
        if ncs != [comp.non_constant_task]:
            raise AssertionError(
                f"component {comp.index} has non-constant tasks {ncs}, "
                f"expected exactly [{comp.non_constant_task}]"
            )
        for t in comp.tasks:
            seen_counts[t] += 1
    for t, count in seen_counts.items():
        if count == 0:
            raise AssertionError(f"task {t!r} not covered by any component")
        if non_constant[t] and count != 1:
            raise AssertionError(
                f"non-constant task {t!r} appears in {count} components"
            )
