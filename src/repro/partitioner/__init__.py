"""The paper's contribution: three-phase automatic graph partitioning.

* :mod:`repro.partitioner.atomic` -- atomic-level partitioning (Sec. III-A):
  classify constant vs. non-constant tasks, form one atomic subcomponent
  per non-constant task, cloning shared constant subtrees.
* :mod:`repro.partitioner.blocks` -- block-level partitioning (Sec. III-B):
  multilevel coarsening / uncoarsening / compaction to ``k`` balanced,
  convex, memory-feasible blocks.
* :mod:`repro.partitioner.stage_dp` -- stage-level partitioning
  (Sec. III-C, Algorithm 1): dynamic programming over stage boundaries and
  per-stage replica counts with the ``d_min`` pruning rule.
* :mod:`repro.partitioner.search` -- Algorithm 2: the outer loop over node
  counts, stage counts and microbatch counts.
* :mod:`repro.partitioner.api` -- ``auto_partition``: the one-call entry
  point, a thin wrapper over the pass pipeline of :mod:`repro.planner`
  (which also folds in the deployment cache of
  :mod:`repro.partitioner.deployment`).
"""

from repro.partitioner.atomic import AtomicComponent, atomic_partition
from repro.partitioner.blocks import Block, BlockPartitioner, block_partition
from repro.partitioner.plan import (
    DeviceAssignment,
    PartitionPlan,
    PlanDiagnostics,
    StageSpec,
)
from repro.partitioner.stage_dp import DPContext, DPSolution, form_stage_dp
from repro.partitioner.search import SearchResult, form_stage
from repro.partitioner.api import PartitioningError, auto_partition

__all__ = [
    "AtomicComponent",
    "Block",
    "BlockPartitioner",
    "DPContext",
    "DPSolution",
    "DeviceAssignment",
    "PartitionPlan",
    "PlanDiagnostics",
    "SearchResult",
    "StageSpec",
    "atomic_partition",
    "PartitioningError",
    "auto_partition",
    "block_partition",
    "form_stage",
    "form_stage_dp",
]
