"""Partition-plan data types: stages, device assignments, full plans."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import Precision
from repro.profiler.profiler import ProfileResult


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage of the final plan.

    Attributes:
        index: stage position in the pipeline (0-based).
        block_range: half-open block interval ``(lo, hi]`` in the paper's
            1-based convention, i.e. blocks ``lo+1 .. hi`` (0-based:
            ``blocks[lo:hi]``).
        tasks: all task names of the stage.
        devices_per_pipeline: devices allocated to this stage inside ONE
            pipeline replica (``d_i - d_{i-1}`` of Algorithm 1).
        microbatch_size: per-device microbatch size the stage was
            profiled with (``BS/R/MB/(d_i - d_{i-1})``).
        profile: the ``(t_f, t_b, m)`` profile of the stage.
    """

    index: int
    block_range: Tuple[int, int]
    tasks: Tuple[str, ...]
    devices_per_pipeline: int
    microbatch_size: int
    profile: ProfileResult

    @property
    def time_fwd(self) -> float:
        return self.profile.time_fwd

    @property
    def time_bwd(self) -> float:
        return self.profile.time_bwd


@dataclass(frozen=True)
class DeviceAssignment:
    """Mapping of (pipeline replica, stage) -> global device ranks.

    Device ranks are assigned contiguously: pipeline replica ``r`` owns
    ranks ``[r*D, (r+1)*D)`` and its stages take consecutive ranks inside
    that range, so adjacent stages land on the same node whenever possible
    (the alignment Algorithm 2 aims at with ``D = D_node x n``).
    """

    ranks: Dict[Tuple[int, int], Tuple[int, ...]]
    cluster: ClusterSpec

    def devices_of(self, replica: int, stage: int) -> Tuple[int, ...]:
        return self.ranks[(replica, stage)]

    def stage_spans_nodes(self, replica: int, stage: int) -> bool:
        nodes = {self.cluster.node_of(r) for r in self.ranks[(replica, stage)]}
        return len(nodes) > 1

    def crossing_is_internode(self, replica: int, stage: int) -> bool:
        """Whether the boundary between ``stage`` and ``stage+1`` crosses
        a node boundary (determines p2p bandwidth)."""
        a = self.ranks[(replica, stage)]
        b = self.ranks.get((replica, stage + 1))
        if b is None:
            return False
        return self.cluster.node_of(a[-1]) != self.cluster.node_of(b[0])

    def total_devices_used(self) -> int:
        return sum(len(v) for v in self.ranks.values())


@dataclass
class PlanDiagnostics:
    """Typed search/evaluation diagnostics attached to every plan.

    Replaces the old stringly-keyed ``extras`` dict: the planner passes
    fill in the fields they own, and :meth:`as_dict` provides a flat
    float-valued view for JSON serialization and table rendering.
    """

    # search statistics (StageSearchPass)
    dp_calls: int = 0
    candidates_tried: int = 0
    states_evaluated: int = 0
    num_blocks: int = 0
    num_atomic_components: int = 0
    # throughput breakdown (EvaluatePass / evaluate_plan)
    pipeline_time: float = 0.0
    allreduce_time: float = 0.0
    optimizer_time: float = 0.0
    # communication model the evaluation priced the plan under, and the
    # allreduce algorithm of the dominant stage group ("" until the
    # plan is evaluated; always "ring" under the flat model)
    comm_model: str = ""
    allreduce_algorithm: str = ""
    # planner instrumentation
    cache_hit: bool = False
    profiler_memo_hit_rate: float = 0.0
    profiler_stats: Dict[str, float] = field(default_factory=dict)
    pass_timings: Dict[str, float] = field(default_factory=dict)
    # escape hatch for experiment-specific annotations
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        """Flat float view (per-pass timings keyed ``pass_time.<name>``)."""
        doc: Dict[str, float] = {
            "dp_calls": float(self.dp_calls),
            "candidates_tried": float(self.candidates_tried),
            "states_evaluated": float(self.states_evaluated),
            "num_blocks": float(self.num_blocks),
            "num_atomic_components": float(self.num_atomic_components),
            "pipeline_time": self.pipeline_time,
            "allreduce_time": self.allreduce_time,
            "optimizer_time": self.optimizer_time,
            "cache_hit": float(self.cache_hit),
            "profiler_memo_hit_rate": self.profiler_memo_hit_rate,
        }
        for name, value in self.profiler_stats.items():
            doc[f"profiler.{name}"] = float(value)
        for name, seconds in self.pass_timings.items():
            doc[f"pass_time.{name}"] = seconds
        doc.update(self.extra)
        return doc


@dataclass
class PartitionPlan:
    """The complete result of automatic partitioning for one model."""

    model_name: str
    stages: List[StageSpec]
    num_microbatches: int
    replica_factor: int  # R of Algorithm 2: whole-pipeline replicas
    batch_size: int
    precision: Precision
    cluster: ClusterSpec
    assignment: Optional[DeviceAssignment] = None
    #: "training" or "inference" -- which cost/memory semantics the
    #: stage profiles were computed under (inference stages carry
    #: time_bwd == 0 and forward-only memory)
    mode: str = "training"
    # filled in by the throughput evaluation
    iteration_time: float = 0.0
    throughput: float = 0.0
    diagnostics: PlanDiagnostics = field(default_factory=PlanDiagnostics)

    @property
    def extras(self) -> Dict[str, float]:
        """Deprecated flat dict view of :attr:`diagnostics`.

        Predates :class:`PlanDiagnostics`; read the typed fields (or
        ``plan.diagnostics.as_dict()``) instead.
        """
        warnings.warn(
            "PartitionPlan.extras is deprecated; use plan.diagnostics "
            "(or plan.diagnostics.as_dict() for the flat view)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.diagnostics.as_dict()

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def per_microbatch_time(self) -> float:
        """The DP objective: max stage forward + max stage backward."""
        if not self.stages:
            return 0.0
        return max(s.time_fwd for s in self.stages) + max(
            s.time_bwd for s in self.stages
        )

    @property
    def devices_per_pipeline(self) -> int:
        return sum(s.devices_per_pipeline for s in self.stages)

    @property
    def total_devices(self) -> int:
        return self.devices_per_pipeline * self.replica_factor

    def stage_replicas(self, stage: int) -> int:
        """Total data-parallel replicas of one stage across the job."""
        return self.stages[stage].devices_per_pipeline * self.replica_factor

    def summary(self) -> str:
        lines = [
            f"PartitionPlan[{self.model_name}] stages={self.num_stages} "
            f"microbatches={self.num_microbatches} R={self.replica_factor} "
            f"BS={self.batch_size} devices={self.total_devices}",
        ]
        for s in self.stages:
            lines.append(
                f"  stage {s.index}: blocks({s.block_range[0]},{s.block_range[1]}] "
                f"tasks={len(s.tasks)} devices={s.devices_per_pipeline} "
                f"mb={s.microbatch_size} tf={s.time_fwd * 1e3:.2f}ms "
                f"tb={s.time_bwd * 1e3:.2f}ms mem={s.profile.memory / 2**30:.2f}GiB"
            )
        if self.throughput:
            lines.append(
                f"  iteration={self.iteration_time * 1e3:.1f}ms "
                f"throughput={self.throughput:.1f} samples/s"
            )
        return "\n".join(lines)
