"""One-call public API: ``auto_partition``.

A thin wrapper over the pass-based planning engine
(:mod:`repro.planner`): it assembles the default pass list — validate ->
cache load -> atomic-level partitioning -> block-level coarsening ->
profile-tensor construction -> Algorithm-2 stage search -> device
allocation -> throughput evaluation -> cache store — and returns the
finished plan.  Callers that need the event log or a custom pipeline use
:func:`repro.planner.plan_graph` directly; ``reuse_from`` turns the call
into a delta replan (see :mod:`repro.planner.replan`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.graph.ir import TaskGraph
from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import Precision
from repro.partitioner.plan import PartitionPlan
from repro.planner import (
    PartitioningError,
    PlannerConfig,
    PlanningContext,
    plan_graph,
)
from repro.profiler.memory import OptimizerKind
from repro.profiler.profiler import GraphProfiler

__all__ = ["PartitioningError", "auto_partition"]


def auto_partition(
    graph: TaskGraph,
    cluster: ClusterSpec,
    batch_size: int,
    precision: Precision = Precision.FP32,
    num_blocks: int = 32,
    optimizer: OptimizerKind = OptimizerKind.ADAM,
    uncoarsen: bool = True,
    max_microbatches: Optional[int] = None,
    validate: bool = True,
    verify: bool = True,
    profiler: Optional[GraphProfiler] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    context: Optional[PlanningContext] = None,
    comm_model: Optional[str] = None,
    memory_budget: Optional[float] = None,
    cache_budget_bytes: Optional[int] = None,
    dp_engine: str = "numpy",
    search_backend: str = "thread",
    search_workers: Optional[int] = None,
    reuse_from: Optional[PlanningContext] = None,
    mode: str = "training",
) -> PartitionPlan:
    """Automatically partition ``graph`` for hybrid parallelism.

    This is the user-facing equivalent of wrapping a PyTorch module in
    ``pyrannc.RaNNCModule``: no annotations, no manual stages.

    Example -- partition BERT-base for one 8-V100 node and re-plan the
    same model for two nodes, reusing the profiling work::

        from repro.hardware import paper_cluster
        from repro.models import BertConfig, build_bert
        from repro.planner import PlannerConfig, PlanningContext

        graph = build_bert(BertConfig(hidden_size=768, num_layers=12,
                                      num_heads=12))
        ctx = PlanningContext(graph, paper_cluster(1),
                              PlannerConfig(batch_size=64))
        plan = auto_partition(graph, paper_cluster(1), batch_size=64,
                              context=ctx)
        bigger = auto_partition(graph, paper_cluster(2), batch_size=64,
                                reuse_from=ctx)   # delta replan

    Args:
        graph: the traced model (see :mod:`repro.models`).
        cluster: target cluster (e.g. ``paper_cluster()``).
        batch_size: global minibatch size.
        precision: FP32 or AMP mixed precision.
        num_blocks: ``k`` of block-level partitioning (paper uses 32).
        optimizer: optimizer whose state enters the memory estimate.
        uncoarsen: enable the uncoarsening refinement step.
        max_microbatches: optional cap on the microbatch search.
        validate: structurally validate the graph first.
        verify: hold the finished plan (fresh or cache-restored) to the
            :mod:`repro.verify` invariants; violations raise
            :class:`repro.verify.PlanVerificationError`.
        profiler: reuse an existing profiler (e.g. across experiments).
        cache_dir: directory of cached deployments; a repeated call with
            identical graph / cluster / planner config loads the plan
            from disk instead of re-running the stage search.
        context: supply a :class:`PlanningContext` to inspect the
            per-pass event log and artifacts after the call.
        comm_model: communication cost model (``"flat"`` or
            ``"topology"``, see :mod:`repro.comm`); ``None`` inherits
            the cluster's own ``comm_model`` setting.
        memory_budget: optional per-device memory cap (bytes) for the
            stage search, below the hardware capacity; ``None`` uses
            the full capacity.
        cache_budget_bytes: LRU byte budget for the on-disk cache
            (deployment entries + artifacts); ``None`` is unbounded.
        dp_engine: Algorithm-1 evaluation engine
            (:data:`~repro.partitioner.stage_dp.DP_ENGINES`); every
            engine is bit-identical, ``"numba"`` opts into the JIT
            kernel with a NumPy fallback.
        search_backend: Algorithm-2 sweep pool (``"thread"``,
            ``"process"`` or ``"serial"``); bit-identical plans and
            counters under every backend.
        search_workers: worker-pool size for the sweep (``None``: CPU
            count, capped at the candidate count).
        reuse_from: the :class:`PlanningContext` of a previous planning
            run; still-valid artifacts (coarsening, profile tensors,
            DP solution) are reused and only the invalidated passes
            rerun -- a *delta replan* (see :mod:`repro.planner.replan`).
        mode: ``"training"`` (default) plans a full training iteration;
            ``"inference"`` plans forward-only serving (no backward or
            optimizer cost, weights-plus-KV memory accounting; see
            ``docs/SERVING_SIM.md``).

    Returns:
        A fully evaluated :class:`PartitionPlan`.

    Raises:
        PartitioningError: if no feasible partition exists.
    """
    config = PlannerConfig(
        batch_size=batch_size,
        precision=precision,
        num_blocks=num_blocks,
        optimizer=optimizer,
        uncoarsen=uncoarsen,
        max_microbatches=max_microbatches,
        validate=validate,
        verify=verify,
        cache_dir=cache_dir,
        comm_model=comm_model,
        memory_budget=memory_budget,
        cache_budget_bytes=cache_budget_bytes,
        dp_engine=dp_engine,
        search_backend=search_backend,
        search_workers=search_workers,
        mode=mode,
    )
    if context is None:
        context = PlanningContext(graph, cluster, config, profiler)
    else:
        context.config = config
        if comm_model is not None:
            context.cluster = context.cluster.with_comm_model(comm_model)
        if profiler is not None:
            context.profiler = profiler
    if reuse_from is not None:
        from repro.planner import ensure_store

        context.attach_store(ensure_store(reuse_from))
    return plan_graph(graph, cluster, config, context=context)
