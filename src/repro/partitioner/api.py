"""One-call public API: ``auto_partition``.

Runs the full RaNNC flow on an unannotated model graph: validate ->
atomic-level partitioning -> block-level partitioning -> Algorithm-2
search -> device allocation -> throughput evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.graph.ir import TaskGraph
from repro.graph.validate import validate_graph
from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import Precision
from repro.partitioner.allocation import allocate_devices
from repro.partitioner.atomic import atomic_partition
from repro.partitioner.blocks import block_partition
from repro.partitioner.plan import PartitionPlan, StageSpec
from repro.partitioner.search import form_stage
from repro.partitioner.stage_dp import DPContext
from repro.pipeline.hybrid import evaluate_plan
from repro.profiler.memory import OptimizerKind
from repro.profiler.profiler import GraphProfiler, ProfileResult


class PartitioningError(RuntimeError):
    """Raised when no feasible partition exists (the model cannot be
    trained on the given cluster at the given batch size)."""


def auto_partition(
    graph: TaskGraph,
    cluster: ClusterSpec,
    batch_size: int,
    precision: Precision = Precision.FP32,
    num_blocks: int = 32,
    optimizer: OptimizerKind = OptimizerKind.ADAM,
    uncoarsen: bool = True,
    max_microbatches: Optional[int] = None,
    validate: bool = True,
    profiler: Optional[GraphProfiler] = None,
) -> PartitionPlan:
    """Automatically partition ``graph`` for hybrid parallelism.

    This is the user-facing equivalent of wrapping a PyTorch module in
    ``pyrannc.RaNNCModule``: no annotations, no manual stages.

    Args:
        graph: the traced model (see :mod:`repro.models`).
        cluster: target cluster (e.g. ``paper_cluster()``).
        batch_size: global minibatch size.
        precision: FP32 or AMP mixed precision.
        num_blocks: ``k`` of block-level partitioning (paper uses 32).
        optimizer: optimizer whose state enters the memory estimate.
        uncoarsen: enable the uncoarsening refinement step.
        max_microbatches: optional cap on the microbatch search.
        validate: structurally validate the graph first.
        profiler: reuse an existing profiler (e.g. across experiments).

    Returns:
        A fully evaluated :class:`PartitionPlan`.

    Raises:
        PartitioningError: if no feasible partition exists.
    """
    if validate:
        validate_graph(graph)
    if batch_size < 1:
        raise ValueError("batch size must be >= 1")
    if profiler is None:
        profiler = GraphProfiler(graph, cluster, precision, optimizer)

    components = atomic_partition(graph)
    blocks = block_partition(
        graph,
        components,
        profiler,
        num_blocks=num_blocks,
        uncoarsen=uncoarsen,
    )
    ctx = DPContext(graph, blocks, profiler, batch_size)
    result = form_stage(
        ctx,
        num_nodes=cluster.num_nodes,
        devices_per_node=cluster.devices_per_node,
        batch_size=batch_size,
        max_microbatches=max_microbatches,
    )
    if result is None:
        raise PartitioningError(
            f"no feasible partition for {graph.name!r} on "
            f"{cluster.total_devices} devices at batch size {batch_size}"
        )

    sol = result.solution
    stages = []
    lo = 0
    for i, (hi, devs) in enumerate(zip(sol.boundaries, sol.device_counts)):
        prof = sol.stage_profiles[i]
        stages.append(
            StageSpec(
                index=i,
                block_range=(lo, hi),
                tasks=ctx.range_tasks(lo, hi),
                devices_per_pipeline=devs,
                microbatch_size=prof.microbatch_size,
                profile=ProfileResult(
                    time_fwd=prof.time_fwd,
                    time_bwd=prof.time_bwd,
                    memory=prof.memory,
                    param_count=prof.param_count,
                    in_bytes=prof.in_bytes,
                    out_bytes=prof.out_bytes,
                ),
            )
        )
        lo = hi

    assignment = allocate_devices(
        cluster, sol.device_counts, result.replica_factor
    )
    plan = PartitionPlan(
        model_name=graph.name,
        stages=stages,
        num_microbatches=sol.num_microbatches,
        replica_factor=result.replica_factor,
        batch_size=batch_size,
        precision=precision,
        cluster=cluster,
        assignment=assignment,
    )
    plan.extras["dp_calls"] = float(result.dp_calls)
    plan.extras["num_blocks"] = float(len(blocks))
    plan.extras["num_atomic_components"] = float(len(components))
    return evaluate_plan(plan, schedule="sync")
