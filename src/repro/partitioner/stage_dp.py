"""Stage-level partitioning: Algorithm 1 (``form_stage_dp``).

The DP searches, for a fixed number of stages ``S``, total devices ``D``,
replica factor ``R`` and microbatch count ``MB``, over

* stage boundaries ``b_0 = 0 < b_1 < ... < b_S = |B|`` in the
  topologically-sorted block list, and
* cumulative device counts ``d_0 = 0 < d_1 < ... < d_S = D`` (stage ``i``
  runs on ``d_i - d_{i-1}`` devices, i.e. that many intra-stage replicas),

minimizing ``V = max_i t_f(stage_i) + max_i t_b(stage_i)`` where each
stage is profiled at per-replica microbatch ``BS / R / MB / (d_i -
d_{i-1})``, subject to the device-memory bound, with the paper's
``d_min`` pruning rule.

Deviation noted from the pseudocode: we initialize ``V[0, b, d] = 0`` only
at ``(b, d) = (0, 0)`` (the pseudocode's blanket ``V[0, b, d] = 0`` would
let solutions silently skip a prefix of blocks / devices, contradicting
the recurrence for ``E_S`` in the text).

All candidate-stage profiles for one DP call are precomputed into dense
``(lo, hi, replicas)`` tensors.  The tensors are built without any
per-entry Python work: a stage profile depends on the replica count only
through the per-replica microbatch ``bs = BS // (R * MB * r)``, so one
``(k+1, k+1)`` plane of broadcast prefix-sum differences per distinct
``bs`` covers the whole replica axis.  Range boundary bytes come from an
incremental per-``lo`` sweep (extend ``hi`` one block at a time) and
unique-parameter sizes from a 2-D difference-array rectangle sum, both
exactly reproducing the per-entry results -- the per-entry builder is
kept as ``profile_tensors_reference`` and property-tested against the
vectorized one.  The DP reduction itself is likewise evaluated for a
whole ``(b, d)`` grid per stage count, with the ``d_min`` pruning rule
replayed over the precomputed failure masks so the visited-state count
and all write decisions match the cell-by-cell loop bit for bit.  The
pure-Python transcription stays in ``reference_form_stage_dp`` as the
oracle.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.ir import TaskGraph, ValueKind
from repro.obs.metrics import MetricsRegistry, point_name
from repro.obs.tracer import Span, Tracer
from repro.partitioner.blocks import Block
from repro.profiler.profiler import GraphProfiler, ProfileResult

INFEASIBLE = None

#: (k+1)^2 * (D+1)^2 ceiling for the all-(b, d) DP evaluation; above it
#: (e.g. the no-coarsening ablation's atomic-level contexts, k in the
#: hundreds) a banded engine is used instead, which never materializes
#: the dense (k+1, k+1, D+1) candidate tensors.
FULL_TENSOR_MAX_CELLS = 2_000_000

#: accepted values for the ``engine`` knob of :func:`form_stage_dp` /
#: ``PlannerConfig.dp_engine``.  All engines are bit-identical (plans,
#: tie-breaks and ``states_evaluated`` counters); the knob only selects
#: the evaluation strategy:
#:
#: * ``"numpy"`` (default; ``"auto"`` is an alias): the dense full-slab
#:   engine when the 4-D candidate space fits under
#:   :data:`FULL_TENSOR_MAX_CELLS`, else the banded engine.
#: * ``"numba"``: the banded layout reduced by a JIT-compiled kernel
#:   (``repro.partitioner._dp_kernels``); falls back to the banded NumPy
#:   engine when numba is not installed.
#: * ``"banded"``: force the banded NumPy engine even when the dense
#:   tensors would fit.
#: * ``"dense"``: the pre-banded behavior (full slab when it fits, else
#:   the per-(s, b) row engine) -- kept as the benchmarking baseline.
#: * ``"rows"``: force the per-(s, b) row engine.
DP_ENGINES = ("auto", "numpy", "numba", "banded", "dense", "rows")


def resolve_dp_engine(
    engine: str, k: int, D: int, *, banded_supported: bool = True
) -> str:
    """Resolve an ``engine`` knob value to a concrete evaluation mode
    (``"full"``, ``"banded"``, ``"kernel"`` or ``"rows"``) for a DP call
    of ``k`` blocks and ``D`` devices.

    Contexts whose profiles cannot be deduplicated by per-replica
    microbatch (a custom ``stage_profile`` without a matching
    ``_profile_planes``; see :attr:`DPContext.supports_banded`) fall back
    to the dense engines regardless of the knob.
    """
    if engine not in DP_ENGINES:
        raise ValueError(
            f"unknown dp engine {engine!r}; expected one of {DP_ENGINES}"
        )
    full_fits = (k + 1) * (k + 1) * (D + 1) * (D + 1) <= FULL_TENSOR_MAX_CELLS
    if engine == "rows":
        return "rows"
    if engine == "dense" or not banded_supported:
        return "full" if full_fits else "rows"
    if engine in ("auto", "numpy"):
        return "full" if full_fits else "banded"
    if engine == "banded":
        return "banded"
    # engine == "numba"
    from repro.partitioner._dp_kernels import kernel_available

    return "kernel" if kernel_available() else "banded"


@dataclass(frozen=True)
class StageProfile:
    """Profile of one candidate stage (blocks ``(lo, hi]``, ``r`` replicas)."""

    time_fwd: float
    time_bwd: float
    memory: float
    microbatch_size: int
    in_bytes: float
    out_bytes: float
    param_count: int

    def to_profile_result(self) -> ProfileResult:
        """The stage profile as a :class:`ProfileResult` (the plan-level
        type); keeps the two dataclasses from drifting apart."""
        return ProfileResult(
            time_fwd=self.time_fwd,
            time_bwd=self.time_bwd,
            memory=self.memory,
            param_count=self.param_count,
            in_bytes=self.in_bytes,
            out_bytes=self.out_bytes,
        )


def scale_stage_profile(prof: StageProfile, factor: float) -> StageProfile:
    """A stage profile with its times scaled by a device-class factor
    (heterogeneous clusters: the stage runs at its slowest device's
    pace; memory and traffic are byte counts and do not scale)."""
    if factor == 1.0:
        return prof
    return StageProfile(
        time_fwd=prof.time_fwd * factor,
        time_bwd=prof.time_bwd * factor,
        memory=prof.memory,
        microbatch_size=prof.microbatch_size,
        in_bytes=prof.in_bytes,
        out_bytes=prof.out_bytes,
        param_count=prof.param_count,
    )


@dataclass
class DPSolution:
    """Result of one ``form_stage_dp`` call."""

    boundaries: List[int]        # b_1 .. b_S (b_S = |B|)
    device_counts: List[int]     # d_i - d_{i-1} per stage (within a pipeline)
    num_microbatches: int
    num_stages: int
    replica_factor: int
    objective: float             # V[S, |B|, D]
    max_tf: float
    max_tb: float
    stage_profiles: List[StageProfile]
    _iteration_time: Optional[float] = field(
        default=None, repr=False, compare=False
    )

    def estimated_iteration_time(self) -> float:
        """Synchronous-pipeline iteration estimate used to rank solutions
        (event-driven simulation of the flush schedule over the profiled
        per-stage times).  Memoized: ``form_stage`` calls this once per
        ``min()`` comparison, and the inputs are frozen at construction."""
        if self._iteration_time is None:
            from repro.pipeline.simulator import simulate_sync_pipeline

            tf = [p.time_fwd for p in self.stage_profiles]
            tb = [p.time_bwd for p in self.stage_profiles]
            self._iteration_time = simulate_sync_pipeline(
                tf, tb, self.num_microbatches
            )
        return self._iteration_time


@dataclass
class BandedProfile:
    """Banded candidate-stage profiles for one ``(D, R, MB,
    checkpointing)`` key.

    A stage profile depends on the replica count ``r`` only through the
    per-replica microbatch ``bs = BS // (R * MB * r)``, so the replica
    axis collapses to one plane per *distinct* ``bs`` -- and within one
    DP call every reachable stage spans at most ``k - S + 1`` blocks, so
    each plane needs only that diagonal band.  Entry ``[p, lo, j]``
    profiles blocks ``(lo, lo + 1 + j]`` at microbatch ``bs_list[p]``;
    entries past the block count hold +inf.  Peak memory is
    ``O(P * k * band)`` instead of the dense ``O(k^2 * D)``.
    """

    span: int                 # widest stored stage span (band width)
    bs_list: List[int]        # distinct per-replica microbatch sizes
    plane_of_r: np.ndarray    # (D+1,) plane index per r; -1 = bs < 1
    tf: np.ndarray            # (P, k, span) forward time
    tb: np.ndarray            # (P, k, span) backward time
    mem: np.ndarray           # (P, k, span) memory bytes

    def nbytes(self) -> int:
        return self.tf.nbytes + self.tb.nbytes + self.mem.nbytes


class DPContext:
    """Precomputed range profiles over one fixed block list.

    Shared across every ``form_stage_dp`` call of an Algorithm-2 search so
    block-range aggregates (task times, activation sizes, boundary bytes,
    unique parameter counts) are computed once.

    Concurrency contract:

    * **Intra-run** (reads + memoization): all mutable caches and
      counters are guarded by an RLock -- the Algorithm-2 sweep may issue
      DP calls from a thread pool, and both the cached tensors and the
      ``dp_calls`` / ``states_evaluated`` statistics must come out
      identical to a serial sweep.
    * **Cross-run** (rebinding): :meth:`rebind` and
      :meth:`set_memory_budget` mutate the shared payload *in place*
      when a ``dp_context`` artifact is reused from an
      :class:`~repro.planner.store.ArtifactStore`
      (``materialize_for_reuse``).  They are single-writer operations:
      they must not race with another run's DP calls on the same
      payload.  The RLock does not serialize whole runs -- callers that
      can share a payload (same model family, e.g. the plan service in
      :mod:`repro.service.engine`) must hold their own per-model mutex
      around the entire pipeline execution.
    """

    def __init__(
        self,
        graph: TaskGraph,
        blocks: Sequence[Block],
        profiler: GraphProfiler,
        batch_size: int,
        metrics: Optional[MetricsRegistry] = None,
        memory_budget: Optional[float] = None,
    ) -> None:
        self.graph = graph
        self.blocks = list(blocks)
        self.profiler = profiler
        self.batch_size = batch_size
        #: optional metrics sink (``profiler.tensor_*`` counters); safe
        #: to attach after construction too
        self.metrics = metrics
        self.cluster = profiler.cluster
        #: optional per-device memory cap below the hardware capacity
        #: (``PlannerConfig.memory_budget``); bounds the DP's feasibility
        #: check without touching the profiles themselves
        self.memory_budget = memory_budget
        k = len(self.blocks)
        self.k = k

        self._block_idx = [
            profiler.indices_of(b.tasks) for b in self.blocks
        ]
        # prefix over blocks of batch-1 saved-activation bytes
        saved = np.array(
            [float(profiler.saved_bytes[idx].sum()) for idx in self._block_idx]
        )
        self._saved_prefix = np.concatenate([[0.0], np.cumsum(saved)])
        # prefix over blocks of batch-1 attention K/V bytes (inference
        # memory accounting; the training memory model ignores it).  The
        # getattr guards profilers unpickled from pre-mode artifacts.
        kv_task = getattr(profiler, "kv_saved_bytes", None)
        if kv_task is None:
            kv = np.zeros(k)
        else:
            kv = np.array(
                [float(kv_task[idx].sum()) for idx in self._block_idx]
            )
        self._kv_prefix = np.concatenate([[0.0], np.cumsum(kv)])
        #: forward-only profile semantics (no recompute, no gradient
        #: return traffic on the backward edge)
        self._inference = getattr(profiler, "mode", "training") == "inference"

        self._lock = threading.RLock()
        self._time_prefix: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._range_meta: Dict[Tuple[int, int], Tuple[int, float, float]] = {}
        self._range_mats: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = None
        self._tensor_cache: Dict[
            Tuple[int, int, int, bool],
            Tuple[np.ndarray, np.ndarray, np.ndarray],
        ] = {}
        self._dp_tensor_cache: Dict[
            Tuple[int, int, int, bool],
            Tuple[np.ndarray, ...],
        ] = {}
        self._band_cache: Dict[
            Tuple[int, int, int, bool], BandedProfile
        ] = {}
        self._hetero_cache: Dict[
            Tuple[int, int], Tuple[np.ndarray, np.ndarray]
        ] = {}
        self.dp_calls = 0
        self.states_evaluated = 0

    # ------------------------------------------------------------------
    # pickling (process-pool Algorithm-2 workers)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Constructor arguments plus the reusable numeric caches.

        The lock, the metrics sink and the derived tensor/band caches are
        dropped: workers re-derive tensors from the exported prefix/range
        arrays (pure broadcasting), aggregate their own counters, and the
        parent replays those counters in candidate order so a process-pool
        sweep stays bit-identical to a serial one.
        """
        with self._lock:
            return {
                "graph": self.graph,
                "blocks": self.blocks,
                "profiler": self.profiler,
                "batch_size": self.batch_size,
                "memory_budget": self.memory_budget,
                "cache_state": self.export_cache_state(),
            }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__init__(
            state["graph"],
            state["blocks"],
            state["profiler"],
            state["batch_size"],
            metrics=None,
            memory_budget=state["memory_budget"],
        )
        self.import_cache_state(state["cache_state"])

    # ------------------------------------------------------------------
    @property
    def usable_memory(self) -> float:
        """Per-device memory the DP may fill: hardware capacity, further
        capped by :attr:`memory_budget` when one is set."""
        capacity = self.cluster.device.usable_memory
        if self.memory_budget is not None:
            capacity = min(capacity, self.memory_budget)
        return capacity

    def set_memory_budget(self, budget: Optional[float]) -> None:
        """Change the memory cap; drops only the budget-dependent derived
        masks (:meth:`_dp_tensors`), never the profile tensors."""
        with self._lock:
            if budget != self.memory_budget:
                self.memory_budget = budget
                self._dp_tensor_cache.clear()

    def rebind(
        self,
        cluster: "ClusterSpec",
        metrics: Optional[MetricsRegistry] = None,
        memory_budget: Optional[float] = None,
    ) -> "DPContext":
        """Retarget a reused context at a new planning run.

        The expensive caches (range matrices, per-batch time prefixes,
        profile tensors) depend only on the graph, the block list, the
        batch size, the device's *performance* model and the same-node
        p2p affine -- exactly the facets the artifact store keys the
        ``dp_context`` artifact on -- so a delta replan that changes the
        cluster shape, the capacity or the memory budget keeps them all.
        The derived DP masks additionally depend on
        :attr:`usable_memory` (their OVER plane), so they are dropped
        only when the effective capacity/budget actually changed; the
        per-run counters are reset so the new run's diagnostics start
        from zero.
        """
        self.profiler.rebind_cluster(cluster)
        with self._lock:
            old_usable = self.usable_memory
            if cluster != self.cluster:
                self._hetero_cache.clear()
            self.cluster = cluster
            self.metrics = metrics
            if memory_budget != self.memory_budget:
                self.memory_budget = memory_budget
            if self.usable_memory != old_usable:
                self._dp_tensor_cache.clear()
            self.dp_calls = 0
            self.states_evaluated = 0
        return self

    # ------------------------------------------------------------------
    # cache snapshot (artifact-store disk codec)
    # ------------------------------------------------------------------
    def export_cache_state(self) -> Dict[str, np.ndarray]:
        """The reusable numeric caches as named arrays (for ``npz``
        serialization by the artifact store's disk backend).

        Covers the saved-activation prefix, the range matrices and the
        per-batch time prefixes; the profile/DP tensors are derived from
        these by pure broadcasting and are cheaper to rebuild than to
        store."""
        with self._lock:
            arrays: Dict[str, np.ndarray] = {
                "saved_prefix": self._saved_prefix,
                "kv_prefix": self._kv_prefix,
            }
            if self._range_mats is not None:
                in1, out1, params = self._range_mats
                arrays["range_in1"] = in1
                arrays["range_out1"] = out1
                arrays["range_params"] = params
            for bs, (tf, tb) in self._time_prefix.items():
                arrays[f"time_tf_{bs}"] = tf
                arrays[f"time_tb_{bs}"] = tb
            return arrays

    def import_cache_state(self, arrays: Dict[str, np.ndarray]) -> None:
        """Restore the caches exported by :meth:`export_cache_state`."""
        with self._lock:
            if "saved_prefix" in arrays:
                self._saved_prefix = np.asarray(arrays["saved_prefix"])
            if "kv_prefix" in arrays:
                self._kv_prefix = np.asarray(arrays["kv_prefix"])
            if "range_in1" in arrays:
                self._range_mats = (
                    np.asarray(arrays["range_in1"]),
                    np.asarray(arrays["range_out1"]),
                    np.asarray(arrays["range_params"]),
                )
            for name, arr in arrays.items():
                if name.startswith("time_tf_"):
                    bs = int(name[len("time_tf_"):])
                    self._time_prefix[bs] = (
                        np.asarray(arr),
                        np.asarray(arrays[f"time_tb_{bs}"]),
                    )

    # ------------------------------------------------------------------
    def _count_dp_call(self) -> None:
        with self._lock:
            self.dp_calls += 1

    def _count_states(self, n: int) -> None:
        with self._lock:
            self.states_evaluated += n

    # ------------------------------------------------------------------
    def _time_prefix_at(self, bs: int) -> Tuple[np.ndarray, np.ndarray]:
        """Prefix sums over blocks of per-block (t_f, t_b) at batch bs."""
        with self._lock:
            cached = self._time_prefix.get(bs)
            if cached is not None:
                return cached
            tf_all, tb_all = self.profiler._times_at(bs)
            tf = np.array([float(tf_all[idx].sum()) for idx in self._block_idx])
            tb = np.array([float(tb_all[idx].sum()) for idx in self._block_idx])
            result = (
                np.concatenate([[0.0], np.cumsum(tf)]),
                np.concatenate([[0.0], np.cumsum(tb)]),
            )
            self._time_prefix[bs] = result
            return result

    # ------------------------------------------------------------------
    def _range_matrices(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(IN1, OUT1, PARAMS)`` dense ``(k+1, k+1)`` range matrices.

        ``IN1[lo, hi]`` / ``OUT1[lo, hi]`` are the precision-scaled
        boundary bytes of blocks ``(lo, hi]`` at batch size 1, and
        ``PARAMS[lo, hi]`` the unique-parameter size of the range.  Both
        byte matrices are built by extending ``hi`` one block at a time
        (instead of re-walking ``graph.boundary_values`` per range) with
        the running sums accumulated in exactly the discovery order the
        per-range walk uses, so every entry is bit-identical to
        ``_range_meta_reference``.  PARAMS uses a 2-D difference array:
        a parameter occurring in block ``j`` with previous occurrence in
        block ``q`` contributes its size to every range with
        ``q < lo <= j < hi``, a rectangle, and the double cumulative sum
        of the per-occurrence corner updates yields all ranges at once.
        """
        with self._lock:
            if self._range_mats is not None:
                return self._range_mats
            k = self.k
            graph = self.graph
            profiler = self.profiler
            values = graph.values
            factor = profiler.precision.activation_bytes_factor
            is_output = set(graph.output_names)

            task_block: Dict[str, int] = {}
            for j, blk in enumerate(self.blocks):
                for t in blk.tasks:
                    task_block[t] = j

            # unique-parameter sizes via the rectangle difference array
            sizes = profiler._param_sizes_arr
            diff = np.zeros((k + 2, k + 2), dtype=np.int64)
            last_occ: Dict[int, int] = {}
            for j, blk in enumerate(self.blocks):
                seen_here: set = set()
                for t in blk.tasks:
                    for pid in profiler._task_param_ids[profiler._index[t]]:
                        if pid in seen_here:
                            continue
                        seen_here.add(pid)
                        q = last_occ.get(pid, -1)
                        sz = int(sizes[pid])
                        diff[q + 1, j + 1] += sz
                        diff[j + 1, j + 1] -= sz
                        diff[q + 1, k + 1] -= sz
                        diff[j + 1, k + 1] += sz
                        last_occ[pid] = j
            PARAMS = diff.cumsum(axis=0).cumsum(axis=1)[: k + 1, : k + 1]

            def scaled_bytes1(vname: str) -> float:
                value = values[vname]
                scale = (
                    factor if value.dtype.value.startswith("float") else 1.0
                )
                return value.nbytes(1) * scale

            # per-block event lists, in task order, reused by every lo
            block_inputs: List[List[Tuple[str, int, float]]] = []
            block_outputs: List[List[Tuple[str, float, int, bool]]] = []
            for j, blk in enumerate(self.blocks):
                inp: List[Tuple[str, int, float]] = []
                outp: List[Tuple[str, float, int, bool]] = []
                for t in blk.tasks:
                    task = graph.tasks[t]
                    for vname in task.inputs:
                        value = values[vname]
                        producer = value.producer
                        pb = task_block[producer] if producer else -1
                        if value.kind in (ValueKind.PARAM, ValueKind.CONST):
                            nbytes1 = 0.0  # listed at the cut, never summed
                        else:
                            nbytes1 = scaled_bytes1(vname)
                        inp.append((vname, pb, nbytes1))
                    for vname in task.outputs:
                        ext0 = sum(
                            1 for c in values[vname].consumers
                            if task_block[c] > j
                        )
                        outp.append(
                            (vname, scaled_bytes1(vname), ext0,
                             vname in is_output)
                        )
                block_inputs.append(inp)
                block_outputs.append(outp)
            # values each block absorbs from earlier blocks of the range
            consumed: List[List[Tuple[str, int]]] = [[] for _ in range(k)]
            for vname, value in values.items():
                if value.producer is None:
                    continue
                pb = task_block[value.producer]
                per: Dict[int, int] = {}
                for c in value.consumers:
                    jb = task_block[c]
                    if jb > pb:
                        per[jb] = per.get(jb, 0) + 1
                for jb, cnt in per.items():
                    consumed[jb].append((vname, cnt))

            IN1 = np.zeros((k + 1, k + 1))
            OUT1 = np.zeros((k + 1, k + 1))
            for lo in range(k):
                seen_in: set = set()
                in_run = 0.0
                out_map: Dict[str, float] = {}
                rem: Dict[str, int] = {}
                for j in range(lo, k):
                    for vname, pb, nbytes1 in block_inputs[j]:
                        if pb < lo and vname not in seen_in:
                            seen_in.add(vname)
                            in_run += nbytes1
                    if j > lo:
                        for vname, cnt in consumed[j]:
                            r = rem.get(vname)
                            if r is None:
                                continue  # produced before lo
                            r -= cnt
                            rem[vname] = r
                            if (
                                r == 0
                                and vname in out_map
                                and vname not in is_output
                            ):
                                del out_map[vname]
                    for vname, nbytes1, ext0, is_out in block_outputs[j]:
                        if ext0 > 0 or is_out:
                            out_map[vname] = nbytes1
                        rem[vname] = ext0
                    total_out = 0.0
                    for nbytes1 in out_map.values():
                        total_out += nbytes1
                    IN1[lo, j + 1] = in_run
                    OUT1[lo, j + 1] = total_out

            self._range_mats = (IN1, OUT1, PARAMS)
            return self._range_mats

    def range_meta(self, lo: int, hi: int) -> Tuple[int, float, float]:
        """(unique params, in_bytes@bs1, out_bytes@bs1) of blocks (lo, hi]."""
        key = (lo, hi)
        cached = self._range_meta.get(key)
        if cached is not None:
            return cached
        IN1, OUT1, PARAMS = self._range_matrices()
        result = (int(PARAMS[lo, hi]), float(IN1[lo, hi]), float(OUT1[lo, hi]))
        self._range_meta[key] = result
        return result

    def _range_meta_reference(self, lo: int, hi: int) -> Tuple[int, float, float]:
        """Per-range recomputation of :meth:`range_meta` (the pre-sweep
        implementation); kept as the oracle for the matrix builder."""
        tasks: List[str] = []
        for j in range(lo, hi):
            tasks.extend(self.blocks[j].tasks)
        idx = np.concatenate([self._block_idx[j] for j in range(lo, hi)])
        params = self.profiler.unique_param_count(idx)
        in_bytes, out_bytes = self.profiler.boundary_bytes(tasks, 1)
        return (params, in_bytes, out_bytes)

    def range_tasks(self, lo: int, hi: int) -> Tuple[str, ...]:
        tasks: List[str] = []
        seen = set()
        for j in range(lo, hi):
            for t in self.blocks[j].tasks:
                if t not in seen:
                    seen.add(t)
                    tasks.append(t)
        return tuple(tasks)

    # ------------------------------------------------------------------
    def stage_profile(
        self, lo: int, hi: int, replicas: int, R: int, MB: int, checkpointing: bool
    ) -> Optional[StageProfile]:
        """Profile blocks ``(lo, hi]`` on ``replicas`` devices; ``None`` if
        the per-replica microbatch collapses below one sample.

        With a single stage (``checkpointing=False``), microbatches are
        plain gradient accumulation: backward runs right after each
        forward, so only ONE microbatch's activations are ever live.  In a
        flush-synchronous pipeline every stage stashes all ``MB``
        microbatch inputs."""
        bs = self.batch_size // (R * MB * replicas)
        if bs < 1:
            return None
        tf_prefix, tb_prefix = self._time_prefix_at(bs)
        t_f = float(tf_prefix[hi] - tf_prefix[lo])
        t_b = float(tb_prefix[hi] - tb_prefix[lo])
        if checkpointing and not self._inference:
            t_b += t_f
        params, in1, out1 = self.range_meta(lo, hi)
        in_bytes = in1 * bs
        out_bytes = out1 * bs
        # execution time includes sending outputs forward / input grads back
        # (inference never returns input gradients: t_b stays exactly 0)
        t_f += self.cluster.p2p_time(out_bytes) if out_bytes else 0.0
        if not self._inference:
            t_b += self.cluster.p2p_time(in_bytes) if in_bytes else 0.0
        act_factor = self.profiler.precision.activation_bytes_factor
        saved = float(
            self._saved_prefix[hi] - self._saved_prefix[lo]
        ) * bs * act_factor
        kv = float(
            self._kv_prefix[hi] - self._kv_prefix[lo]
        ) * bs * act_factor
        memory = self.profiler.memory_model.total_bytes(
            param_count=params,
            saved_act_bytes_micro=saved,
            boundary_in_bytes_micro=in_bytes,
            microbatches_in_flight=MB if checkpointing else 1,
            checkpointing=checkpointing,
            kv_bytes_micro=kv,
        )
        return StageProfile(
            time_fwd=t_f,
            time_bwd=t_b,
            memory=memory,
            microbatch_size=bs,
            in_bytes=in_bytes,
            out_bytes=out_bytes,
            param_count=params,
        )

    # ------------------------------------------------------------------
    def _profile_planes(
        self, bs: int, MB: int, checkpointing: bool
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(k+1, k+1)`` t_f / t_b / memory planes at one per-replica
        microbatch size: the whole-plane form of :meth:`stage_profile`.

        Operation order mirrors ``stage_profile`` exactly (prefix
        difference, checkpointing recompute, then the same-node p2p
        affine term ``latency + bytes / bandwidth`` of
        ``ClusterSpec.p2p_time`` gated on non-zero traffic) so each entry
        is the identical float64 arithmetic, just elementwise.  The
        ``(latency, bandwidth)`` pair comes from the cluster's configured
        communication model (``p2p_affine``), which keeps the plane and
        the scalar path exact under both the flat and topology models.
        """
        IN1, OUT1, PARAMS = self._range_matrices()
        tf_prefix, tb_prefix = self._time_prefix_at(bs)
        tf_plane = tf_prefix[None, :] - tf_prefix[:, None]
        tb_plane = tb_prefix[None, :] - tb_prefix[:, None]
        if checkpointing and not self._inference:
            tb_plane = tb_plane + tf_plane
        in_b = IN1 * bs
        out_b = OUT1 * bs
        lat, bw = self.cluster.comm.p2p_affine(same_node=True)
        tf_plane = tf_plane + np.where(out_b != 0.0, lat + out_b / bw, 0.0)
        if not self._inference:
            tb_plane = tb_plane + np.where(
                in_b != 0.0, lat + in_b / bw, 0.0
            )
        act_factor = self.profiler.precision.activation_bytes_factor
        saved = (
            self._saved_prefix[None, :] - self._saved_prefix[:, None]
        ) * bs * act_factor
        kv = (
            self._kv_prefix[None, :] - self._kv_prefix[:, None]
        ) * bs * act_factor
        mem_plane = self.profiler.memory_model.total_bytes(
            param_count=PARAMS,
            saved_act_bytes_micro=saved,
            boundary_in_bytes_micro=in_b,
            microbatches_in_flight=MB if checkpointing else 1,
            checkpointing=checkpointing,
            kv_bytes_micro=kv,
        )
        return tf_plane, tb_plane, mem_plane

    def profile_tensors(
        self, D: int, R: int, MB: int, checkpointing: bool
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense (k+1, k+1, D+1) tensors of stage t_f / t_b / memory.

        Entry ``[lo, hi, r]`` profiles blocks ``(lo, hi]`` on ``r``
        devices; infeasible entries (bs < 1, empty range) hold +inf.
        Cached across ``form_stage_dp`` calls (the tensors are identical
        for every stage count S > 1 at the same D, R, MB).

        A profile depends on ``r`` only through ``bs = BS // (R*MB*r)``,
        so one :meth:`_profile_planes` call per distinct ``bs`` fills the
        whole replica axis.  Subclasses that override ``stage_profile``
        without providing a matching ``_profile_planes`` fall back to the
        per-entry builder so their profile semantics are preserved.
        """
        cache_key = (D, R, MB, checkpointing)
        with self._lock:
            cached = self._tensor_cache.get(cache_key)
            if cached is not None:
                if self.metrics is not None:
                    self.metrics.counter("profiler.tensor_cache_hits").inc()
                return cached
            if self.metrics is not None:
                self.metrics.counter("profiler.tensor_builds").inc()
            vectorized = (
                type(self).stage_profile is DPContext.stage_profile
                or type(self)._profile_planes is not DPContext._profile_planes
            )
            if vectorized:
                result = self._profile_tensors_vectorized(
                    D, R, MB, checkpointing
                )
            else:
                result = self.profile_tensors_reference(D, R, MB, checkpointing)
            self._tensor_cache[cache_key] = result
            return result

    def _profile_tensors_vectorized(
        self, D: int, R: int, MB: int, checkpointing: bool
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        k = self.k
        TF = np.full((k + 1, k + 1, D + 1), np.inf)
        TB = np.full((k + 1, k + 1, D + 1), np.inf)
        MEM = np.full((k + 1, k + 1, D + 1), np.inf)
        by_bs: Dict[int, List[int]] = {}
        for r in range(1, D + 1):
            bs = self.batch_size // (R * MB * r)
            if bs < 1:
                continue  # microbatch collapsed: stays +inf
            by_bs.setdefault(bs, []).append(r)
        empty_range = ~np.triu(np.ones((k + 1, k + 1), dtype=bool), 1)
        for bs, replica_counts in by_bs.items():
            tf_plane, tb_plane, mem_plane = self._profile_planes(
                bs, MB, checkpointing
            )
            tf_plane = np.where(empty_range, np.inf, tf_plane)
            tb_plane = np.where(empty_range, np.inf, tb_plane)
            mem_plane = np.where(empty_range, np.inf, mem_plane)
            for r in replica_counts:
                TF[:, :, r] = tf_plane
                TB[:, :, r] = tb_plane
                MEM[:, :, r] = mem_plane
        return TF, TB, MEM

    def _dp_tensors(
        self, D: int, R: int, MB: int, checkpointing: bool
    ) -> Tuple[np.ndarray, ...]:
        """Profile tensors plus the DP's derived masks (finite stage /
        memory over budget), cached so repeated ``form_stage_dp`` calls
        with the same parameters skip recomputing them."""
        key = (D, R, MB, checkpointing)
        with self._lock:
            cached = self._dp_tensor_cache.get(key)
            if cached is not None:
                return cached
            TF, TB, MEM = self.profile_tensors(D, R, MB, checkpointing)
            FIN = np.isfinite(TF)
            OVER = MEM > self.usable_memory
            result = (TF, TB, MEM, FIN, OVER)
            self._dp_tensor_cache[key] = result
            return result

    def hetero_tables(self, D: int, R: int) -> Tuple[np.ndarray, np.ndarray]:
        """Position-dependent capacity/speed tables for a heterogeneous
        cluster: ``(MINMEM, SLOW)``, both ``(D+1, D+1)``.

        A stage at cumulative-device boundary ``(d', d)`` occupies slot
        range ``[d', d)`` of every one of the ``R`` contiguous replica
        bands (the contract of ``allocate_devices``), i.e. global ranks
        ``r*D + d' .. r*D + d - 1``.  ``MINMEM[d', d]`` is the smallest
        usable memory over those ranks (the stage must fit its tightest
        device) and ``SLOW[d', d]`` the largest reference-relative time
        factor (the stage runs at its slowest device's pace).  Cached per
        ``(D, R)``; requires ``D * R <= cluster.total_devices``.
        """
        key = (D, R)
        with self._lock:
            cached = self._hetero_cache.get(key)
            if cached is not None:
                return cached
            mems = np.asarray(self.cluster.rank_memories())
            facs = np.asarray(
                self.cluster.rank_time_factors(self.profiler.precision)
            )
            if D * R > mems.size:
                raise ValueError(
                    f"D*R = {D * R} exceeds the cluster's "
                    f"{mems.size} devices"
                )
            # collapse the replica axis first: slot j of a band maps to
            # rank r*D + j, and a stage's constraint is the worst over
            # every replica band it appears in
            slot_mem = mems[: D * R].reshape(R, D).min(axis=0)
            slot_fac = facs[: D * R].reshape(R, D).max(axis=0)
            MINMEM = np.full((D + 1, D + 1), np.inf)
            SLOW = np.ones((D + 1, D + 1))
            for dp in range(D):
                MINMEM[dp, dp + 1:] = np.minimum.accumulate(slot_mem[dp:])
                SLOW[dp, dp + 1:] = np.maximum.accumulate(slot_fac[dp:])
            result = (MINMEM, SLOW)
            self._hetero_cache[key] = result
            return result

    # ------------------------------------------------------------------
    # banded construction (O(band * D) peak memory)
    # ------------------------------------------------------------------
    @property
    def supports_banded(self) -> bool:
        """Whether profiles may be deduplicated by per-replica microbatch
        (the precondition of the banded/JIT engines): true for the default
        profile semantics and for subclasses that provide a matching
        ``_profile_planes``; false for a custom ``stage_profile`` alone,
        which may depend on ``r`` directly."""
        return (
            type(self).stage_profile is DPContext.stage_profile
            or type(self)._profile_planes is not DPContext._profile_planes
        )

    def profile_bands(
        self, D: int, R: int, MB: int, checkpointing: bool, span: int
    ) -> BandedProfile:
        """Banded profiles covering stage spans up to ``span`` blocks.

        Cached per ``(D, R, MB, checkpointing)`` and grown on demand: a
        request wider than the cached band rebuilds it (Algorithm 2
        issues the widest request of a node level first -- smallest
        ``S`` -- so serial sweeps build each band exactly once).
        """
        span = int(min(max(span, 1), self.k))
        key = (D, R, MB, checkpointing)
        with self._lock:
            cached = self._band_cache.get(key)
            if cached is not None and cached.span >= span:
                if self.metrics is not None:
                    self.metrics.counter("profiler.band_cache_hits").inc()
                return cached
            if self.metrics is not None:
                self.metrics.counter("profiler.band_builds").inc()
            band = self._build_bands(D, R, MB, checkpointing, span)
            self._band_cache[key] = band
            return band

    def _build_bands(
        self, D: int, R: int, MB: int, checkpointing: bool, span: int
    ) -> BandedProfile:
        k = self.k
        bs_list: List[int] = []
        plane_index: Dict[int, int] = {}
        plane_of_r = np.full(D + 1, -1, dtype=np.int64)
        for r in range(1, D + 1):
            bs = self.batch_size // (R * MB * r)
            if bs < 1:
                continue  # microbatch collapsed: stays -1
            p = plane_index.get(bs)
            if p is None:
                p = len(bs_list)
                plane_index[bs] = p
                bs_list.append(bs)
            plane_of_r[r] = p
        P = len(bs_list)
        tf = np.full((P, k, span), np.inf)
        tb = np.full((P, k, span), np.inf)
        mem = np.full((P, k, span), np.inf)
        direct = (
            type(self)._profile_planes is DPContext._profile_planes
        )
        for p, bs in enumerate(bs_list):
            if direct:
                tf[p], tb[p], mem[p] = self._band_plane(
                    bs, MB, checkpointing, span
                )
            else:
                # subclass planes: build dense once, slice the band out
                # (transiently O(k^2) but still deduplicated over r)
                planes = self._profile_planes(bs, MB, checkpointing)
                tf[p] = _band_from_plane(planes[0], span)
                tb[p] = _band_from_plane(planes[1], span)
                mem[p] = _band_from_plane(planes[2], span)
        return BandedProfile(
            span=span, bs_list=bs_list, plane_of_r=plane_of_r,
            tf=tf, tb=tb, mem=mem,
        )

    def _band_plane(
        self, bs: int, MB: int, checkpointing: bool, span: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The diagonal band of :meth:`_profile_planes`, gathered without
        materializing the dense plane.  Entry ``[lo, j]`` profiles blocks
        ``(lo, lo + 1 + j]``; the arithmetic (prefix difference,
        checkpointing recompute, p2p affine term, memory model) runs in
        the exact order of the dense builder so every in-range entry is
        the identical float64 result."""
        k = self.k
        IN1, OUT1, PARAMS = self._range_matrices()
        tf_prefix, tb_prefix = self._time_prefix_at(bs)
        lo = np.arange(k)[:, None]
        hi = lo + 1 + np.arange(span)[None, :]
        valid = hi <= k
        hic = np.minimum(hi, k)
        tf_band = tf_prefix[hic] - tf_prefix[lo]
        tb_band = tb_prefix[hic] - tb_prefix[lo]
        if checkpointing and not self._inference:
            tb_band = tb_band + tf_band
        in_b = IN1[lo, hic] * bs
        out_b = OUT1[lo, hic] * bs
        lat, bw = self.cluster.comm.p2p_affine(same_node=True)
        tf_band = tf_band + np.where(out_b != 0.0, lat + out_b / bw, 0.0)
        if not self._inference:
            tb_band = tb_band + np.where(
                in_b != 0.0, lat + in_b / bw, 0.0
            )
        act_factor = self.profiler.precision.activation_bytes_factor
        saved = (
            self._saved_prefix[hic] - self._saved_prefix[lo]
        ) * bs * act_factor
        kv = (
            self._kv_prefix[hic] - self._kv_prefix[lo]
        ) * bs * act_factor
        mem_band = self.profiler.memory_model.total_bytes(
            param_count=PARAMS[lo, hic],
            saved_act_bytes_micro=saved,
            boundary_in_bytes_micro=in_b,
            microbatches_in_flight=MB if checkpointing else 1,
            checkpointing=checkpointing,
            kv_bytes_micro=kv,
        )
        return (
            np.where(valid, tf_band, np.inf),
            np.where(valid, tb_band, np.inf),
            np.where(valid, mem_band, np.inf),
        )

    def profile_tensors_reference(
        self, D: int, R: int, MB: int, checkpointing: bool
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-entry O(k^2 * D) tensor builder: one ``stage_profile`` call
        per ``(lo, hi, r)``.  The oracle for the plane-based builder, and
        the fallback for contexts with a custom ``stage_profile``."""
        k = self.k
        TF = np.full((k + 1, k + 1, D + 1), np.inf)
        TB = np.full((k + 1, k + 1, D + 1), np.inf)
        MEM = np.full((k + 1, k + 1, D + 1), np.inf)
        for lo in range(k):
            for hi in range(lo + 1, k + 1):
                for r in range(1, D + 1):
                    prof = self.stage_profile(lo, hi, r, R, MB, checkpointing)
                    if prof is None:
                        continue
                    TF[lo, hi, r] = prof.time_fwd
                    TB[lo, hi, r] = prof.time_bwd
                    MEM[lo, hi, r] = prof.memory
        return TF, TB, MEM


def _band_from_plane(plane: np.ndarray, span: int) -> np.ndarray:
    """Gather the diagonal band (``hi = lo + 1 + j``) out of a dense
    ``(k+1, k+1)`` range plane; out-of-range entries become +inf."""
    k = plane.shape[0] - 1
    lo = np.arange(k)[:, None]
    hi = lo + 1 + np.arange(span)[None, :]
    valid = hi <= k
    return np.where(valid, plane[lo, np.minimum(hi, k)], np.inf)


def _replica_groups(plane_of_r: np.ndarray, max_r: int) -> List[Tuple[int, int, int]]:
    """Contiguous replica-count runs ``(r_start, r_end, plane)`` sharing
    one per-replica microbatch plane (``plane = -1``: bs collapsed)."""
    groups: List[Tuple[int, int, int]] = []
    r = 1
    while r <= max_r:
        p = int(plane_of_r[r])
        r2 = r
        while r2 + 1 <= max_r and int(plane_of_r[r2 + 1]) == p:
            r2 += 1
        groups.append((r, r2, p))
        r = r2 + 1
    return groups


def _banded_stage_numpy(
    bands: BandedProfile,
    prev_ok: np.ndarray,
    ptf: np.ndarray,
    ptb: np.ndarray,
    s: int,
    b_hi: int,
    d_hi: int,
    M: float,
    best: np.ndarray,
    best_tf: np.ndarray,
    best_tb: np.ndarray,
    best_bp: np.ndarray,
    best_dp: np.ndarray,
    memf: np.ndarray,
    bsf: np.ndarray,
    slab_cache: Optional[Dict[int, Tuple]] = None,
) -> None:
    """One stage count of the banded DP engine.

    Mirrors the full-slab engine's per-``d'`` column reduction, but the
    per-stage slab lives in band coordinates -- ``(b', b)`` restricted to
    the reachable rows/cols, which for stage ``s`` of an ``S``-stage DP
    is exactly a ``(k - S + 1)``-square -- and the replica axis is
    reduced one *bs-group* at a time: ``r`` values sharing a per-replica
    microbatch have identical candidate values, so each group's argmin is
    computed once and broadcast across the group's ``d`` range.  The
    update rule, tie-breaks and failure-mask accumulation are the exact
    expressions of the dense engine, so every written cell is
    bit-identical.

    The per-stage ``(b', b)`` slab of plane ``p`` is a *diagonal shear*
    of the band matrix: ``slab[i, j] = band[s - 1 + i, j - i]``.  Each
    plane is materialized once per DP call (``slab_cache``, shared
    across the ``s`` loop since ``nb = k - S + 1`` is constant) as the
    band padded on the right with ``nb`` INF columns; every stage's
    slab is then a zero-copy strided view whose out-of-band cells
    (``j < i``) land in the neighbouring row's INF padding.
    Over-memory and out-of-band infeasibility are poisoned into the
    padded TF as INF, so the candidate value ``max(prev, TF) +
    max(prev, TB)`` is INF exactly where the dense engine's masked
    ``np.where(ok, ..., INF)`` is, with no mask passes at all.
    """
    INF = np.inf
    bsl = slice(s, b_hi + 1)
    psl = slice(s - 1, b_hi)
    nb = b_hi - s + 1        # = k - S + 1: cols b = s .. b_hi
    col_ok = prev_ok.any(axis=0)
    cols = np.arange(nb)
    groups = _replica_groups(bands.plane_of_r, d_hi - (s - 1))
    if slab_cache is None:
        slab_cache = {}
    views: Dict[int, Tuple] = {}
    cand_tf = np.empty((nb, nb))
    cand_tb = np.empty((nb, nb))
    v = np.empty((nb, nb))
    pcol_tf = np.empty((nb, 1))
    as_strided = np.lib.stride_tricks.as_strided
    for dp_ in range(s - 1, d_hi):
        if not col_ok[dp_]:
            continue
        nd = d_hi - dp_
        pok = prev_ok[psl, dp_]
        # column b has a valid (b', b) pair iff some b' <= b has pok
        any_valid = np.logical_or.accumulate(pok)
        # prev TF carries INF at infeasible rows so they never win; TB
        # needs no poisoning (one INF operand already forces v to INF)
        pcol_tf[:, 0] = np.where(pok, ptf[psl, dp_], INF)
        pcol_tb = ptb[psl, dp_][:, None]
        for r1, r2, p in groups:
            if r1 > nd:
                break
            g = slice(dp_ + r1, dp_ + min(r2, nd) + 1)
            if p < 0:
                # microbatch collapsed for this whole run of r: the dense
                # engine's FIN plane is all-False there, so every valid
                # transition records a bs failure
                bsf[bsl, g] |= any_valid[:, None]
                continue
            view = views.get(p)
            if view is None:
                padded = slab_cache.get(p)
                if padded is None:
                    kk, span = bands.tf[p].shape
                    over_full = bands.mem[p] > M  # (k, span)
                    tfp = np.full((kk, span + nb), INF)
                    if over_full.any():
                        tfp[:, :span] = np.where(over_full, INF, bands.tf[p])
                        row_over = over_full.any(axis=1)
                        ovp = np.zeros((kk, span + nb), dtype=bool)
                        ovp[:, :span] = over_full
                    else:
                        tfp[:, :span] = bands.tf[p]
                        row_over = None
                        ovp = None
                    tbp = np.full((kk, span + nb), INF)
                    tbp[:, :span] = bands.tb[p]
                    padded = (tfp, tbp, ovp, row_over)
                    slab_cache[p] = padded
                tfp, tbp, ovp, row_over = padded
                t0, t1 = tfp.strides
                shear = (nb, nb), (t0 - t1, t1)
                Ptf = as_strided(tfp[s - 1:], *shear)
                Ptb = as_strided(tbp[s - 1:], *shear)
                Pover = None
                if row_over is not None and row_over[psl].any():
                    b0, b1 = ovp.strides
                    Pover = as_strided(ovp[s - 1:], (nb, nb), (b0 - b1, b1))
                view = (Ptf, Ptb, Pover)
                views[p] = view
            Ptf, Ptb, Pover = view
            # in-band entries are always finite (every span 1..k-S+1 is a
            # real block range), so fin == in_band and valid & ~fin == 0:
            # present-bs groups never contribute to bsf
            if Pover is not None:
                ovm_cols = (pok[:, None] & Pover).any(axis=0)
                if ovm_cols.any():
                    memf[bsl, g] |= ovm_cols[:, None]
            np.maximum(pcol_tf, Ptf, out=cand_tf)
            np.maximum(pcol_tb, Ptb, out=cand_tb)
            np.add(cand_tf, cand_tb, out=v)
            bp_idx = np.argmin(v, axis=0)     # (b,): smallest b' wins
            vmin = v[bp_idx, cols]
            if not np.isfinite(vmin).any():   # == the dense ok.any() skip
                continue
            bpg = bp_idx + (s - 1)
            cur = best[bsl, g]
            cur_bp = best_bp[bsl, g]
            upd = (vmin[:, None] < cur) | (
                (vmin[:, None] == cur) & (bpg[:, None] < cur_bp)
            )
            if upd.any():
                ctf = cand_tf[bp_idx, cols]
                ctb = cand_tb[bp_idx, cols]
                best[bsl, g] = np.where(upd, vmin[:, None], cur)
                best_tf[bsl, g] = np.where(upd, ctf[:, None], best_tf[bsl, g])
                best_tb[bsl, g] = np.where(upd, ctb[:, None], best_tb[bsl, g])
                best_bp[bsl, g] = np.where(upd, bpg[:, None], cur_bp)
                best_dp[bsl, g] = np.where(upd, dp_, best_dp[bsl, g])


def form_stage_dp(
    ctx: DPContext,
    S: int,
    D: int,
    BS: int,
    R: int,
    MB: int,
    dmin_pruning: bool = True,
    *,
    engine: str = "numpy",
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    parent_id: Optional[int] = None,
) -> Optional[DPSolution]:
    """Algorithm 1: DP over stage boundaries and device allocations.

    Args:
        ctx: precomputed block-range profiles (carries ``BS``).
        S: number of stages.
        D: number of devices available to one pipeline.
        BS: global batch size (must equal ``ctx.batch_size``).
        R: replica factor (whole-pipeline copies).
        MB: number of microbatches.
        dmin_pruning: the paper's d_min search-space reduction; disabling
            it is the ablation of DESIGN.md choice #1.
        engine: evaluation strategy, one of :data:`DP_ENGINES`.  Every
            engine returns bit-identical solutions and counters; see
            :func:`resolve_dp_engine` for the mapping to concrete modes.
        tracer: optional :class:`~repro.obs.tracer.Tracer`; when given,
            the whole call is wrapped in a ``dp.form_stage_dp`` span
            carrying ``(S, D, R, MB)``, the visited-state count and the
            outcome.  ``parent_id`` links the span to the coordinating
            Algorithm-2 span when this call runs on a pool thread.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            records ``dp.calls``, ``dp.states_evaluated`` (total and per
            ``(S, MB)`` point) and the ``dp.states_per_call`` histogram.

    Returns:
        The best :class:`DPSolution`, or ``None`` (INFEASIBLE).

    The transition for every ``(b, d)`` cell of one stage count is
    evaluated as a tensor reduction.  When the 4-D candidate space
    ``(b', b, d', d)`` fits under :data:`FULL_TENSOR_MAX_CELLS`, the
    engine loops over the few feasible ``d'`` columns and reduces a
    ``(b', b, r)`` slab per column -- each slab is a pure *slice* of the
    cached profile tensors (``r = d - d'`` increases along the ``d``
    axis), so no gather is materialized; a running lexicographic
    ``(value, b', d')`` minimum reproduces the per-cell flat argmin
    tie-break exactly.  Otherwise a per-``b`` row engine reduces
    ``(b', d', d)`` slabs.  Both paths then *replay* the original cell
    ordering (b ascending, d descending) over the precomputed memory/bs
    failure masks to apply the ``d_min`` rule, so visited-state counts,
    pruning decisions and tie-breaks (first minimum in ``(b', d')``
    row-major order) are identical to the per-cell loop.
    """
    if BS != ctx.batch_size:
        raise ValueError("batch size mismatch with DPContext")
    with ExitStack() as stack:
        sp: Optional[Span] = None
        if tracer is not None and tracer.enabled:
            sp = stack.enter_context(
                tracer.span(
                    "dp.form_stage_dp",
                    category="partitioner.dp",
                    parent_id=parent_id,
                    S=S, D=D, R=R, MB=MB,
                )
            )
        return _form_stage_dp_body(
            ctx, S, D, BS, R, MB, dmin_pruning, engine, sp, metrics
        )


def _form_stage_dp_body(
    ctx: DPContext,
    S: int,
    D: int,
    BS: int,
    R: int,
    MB: int,
    dmin_pruning: bool,
    engine: str,
    sp: Optional[Span],
    metrics: Optional[MetricsRegistry],
) -> Optional[DPSolution]:
    k = ctx.k
    if S < 1 or S > k or S > D:
        if sp is not None:
            sp.set(feasible=False, reason="stage count out of range")
        return INFEASIBLE
    ctx._count_dp_call()
    if metrics is not None:
        metrics.counter("dp.calls").inc()
    checkpointing = S > 1
    M = ctx.usable_memory
    hetero = ctx.cluster.is_heterogeneous
    if hetero:
        # position-aware variant of the rows engine: the memory cap and
        # stage speed depend on WHICH cumulative-device slots [d', d) a
        # stage lands on, so the scalar-M engines cannot apply.  The
        # d_min rule is also off: feasibility is no longer monotone in d
        # once a class boundary sits inside the slot range.
        MINMEM, SLOW = ctx.hetero_tables(D, R)
        if ctx.memory_budget is not None:
            MINMEM = np.minimum(MINMEM, ctx.memory_budget)
        dmin_pruning = False
        mode = "rows"
    else:
        mode = resolve_dp_engine(
            engine, k, D, banded_supported=ctx.supports_banded
        )
    full = mode == "full"
    kernel = None
    if full:
        TF, TB, MEM, FIN, OVER = ctx._dp_tensors(D, R, MB, checkpointing)
        # b' < b (a stage must contain at least one block)
        LT = np.triu(np.ones((k + 1, k + 1), dtype=bool), 1)
    elif mode in ("banded", "kernel"):
        # within this DP call every reachable stage spans at most
        # k - S + 1 blocks, so the band covers the whole search space
        bands = ctx.profile_bands(D, R, MB, checkpointing, k - S + 1)
        # padded shear slabs are shared across the whole s loop: nb =
        # k - S + 1 and the memory budget are constant within one call
        band_slabs: Dict[int, Tuple] = {}
        if mode == "kernel":
            from repro.partitioner._dp_kernels import banded_stage_kernel

            kernel = banded_stage_kernel
    else:
        TF, TB, MEM = ctx.profile_tensors(D, R, MB, checkpointing)

    INF = np.inf
    # broadcastable index planes for gathering the per-(b, r) argmin out
    # of a (b', b, r) slab without take_along_axis overhead
    row_idx = np.arange(k + 1)[:, None]
    col_idx = np.arange(D + 1)[None, :]
    V = np.full((S + 1, k + 1, D + 1), INF)
    tf = np.zeros((S + 1, k + 1, D + 1))
    tb = np.zeros((S + 1, k + 1, D + 1))
    parent_b = np.full((S + 1, k + 1, D + 1), -1, dtype=np.int64)
    parent_d = np.full((S + 1, k + 1, D + 1), -1, dtype=np.int64)
    # deviation from the pseudocode's blanket V[0, b, d] = 0 (see module
    # docstring): only the empty prefix is a valid 0-stage state.
    V[0, 0, 0] = 0.0

    states = 0

    for s in range(1, S + 1):
        # d_min resets at each stage count: memory infeasibility is
        # monotone in d and in b for FIXED s, but a deeper prefix (larger
        # s) has smaller stages and may be feasible where a shallower one
        # was not (deviation D1b in DESIGN.md; the pseudocode keeps d_min
        # global, which can prune true optima)
        d_min = 1
        b_hi = k - (S - s)
        d_hi = D - (S - s)
        prev_ok = np.isfinite(V[s - 1])  # (b', d')
        best = np.full((k + 1, D + 1), INF)
        best_tf = np.zeros((k + 1, D + 1))
        best_tb = np.zeros((k + 1, D + 1))
        best_bp = np.full((k + 1, D + 1), -1, dtype=np.int64)
        best_dp = np.full((k + 1, D + 1), -1, dtype=np.int64)
        memf = np.zeros((k + 1, D + 1), dtype=bool)
        bsf = np.zeros((k + 1, D + 1), dtype=bool)
        keep = np.zeros((k + 1, D + 1), dtype=bool)

        if full:
            # one (b', b, r) slab per feasible d' column: for fixed d',
            # the replica count r = d - d' increases 1:1 along the d
            # axis, so the slab is a pure *slice* TF[..., 1:nd+1] of the
            # cached tensors (no gather materialized).  A running
            # lexicographic (value, b', d') minimum across columns
            # equals the flat (b', d') row-major argmin.
            ptf = tf[s - 1]
            ptb = tb[s - 1]
            col_ok = prev_ok.any(axis=0)
            # finite prev states at stage s-1 only exist for b' in
            # [s-1, b_hi-1] and d' in [s-1, d_hi-1], so the slab can be
            # restricted to those rows (views, no copies)
            bsl = slice(s, b_hi + 1)
            psl = slice(s - 1, b_hi)
            lt = LT[psl, bsl]
            for dp in range(s - 1, d_hi):
                if not col_ok[dp]:
                    continue
                nd = d_hi - dp
                rsl = slice(1, nd + 1)
                ds_ = slice(dp + 1, d_hi + 1)
                pok = prev_ok[psl, dp]
                valid2 = pok[:, None] & lt  # (b', b)
                fin = FIN[psl, bsl, rsl]
                over = OVER[psl, bsl, rsl]
                vf = valid2[:, :, None] & fin
                if over.any():
                    ok = vf & ~over
                    memf[bsl, ds_] |= (vf & over).any(axis=0)
                else:
                    ok = vf
                if not fin.all():
                    bsf[bsl, ds_] |= (valid2[:, :, None] & ~fin).any(axis=0)
                if not ok.any():
                    continue
                cand_tf = np.maximum(
                    ptf[psl, dp][:, None, None], TF[psl, bsl, rsl]
                )
                cand_tb = np.maximum(
                    ptb[psl, dp][:, None, None], TB[psl, bsl, rsl]
                )
                v = np.where(ok, cand_tf + cand_tb, INF)
                bp_idx = np.argmin(v, axis=0)  # (b, r): smallest b' wins
                rows = row_idx[: bp_idx.shape[0]]
                cols = col_idx[:, :nd]
                vmin = v[bp_idx, rows, cols]
                bpg = bp_idx + (s - 1)
                cur = best[bsl, ds_]
                cur_bp = best_bp[bsl, ds_]
                # strict improvement, or an equal value from a smaller
                # b' (equal (value, b') keeps the earlier -- smaller --
                # d'): the (b', d') row-major first-minimum tie-break
                upd = (vmin < cur) | ((vmin == cur) & (bpg < cur_bp))
                if upd.any():
                    ctf = cand_tf[bp_idx, rows, cols]
                    ctb = cand_tb[bp_idx, rows, cols]
                    best[bsl, ds_] = np.where(upd, vmin, cur)
                    best_tf[bsl, ds_] = np.where(upd, ctf, best_tf[bsl, ds_])
                    best_tb[bsl, ds_] = np.where(upd, ctb, best_tb[bsl, ds_])
                    best_bp[bsl, ds_] = np.where(upd, bpg, cur_bp)
                    best_dp[bsl, ds_] = np.where(upd, dp, best_dp[bsl, ds_])
        elif mode in ("banded", "kernel"):
            if kernel is not None:
                kernel(
                    bands.tf, bands.tb, bands.mem, bands.plane_of_r,
                    prev_ok, tf[s - 1], tb[s - 1],
                    s, b_hi, d_hi, float(M),
                    best, best_tf, best_tb, best_bp, best_dp, memf, bsf,
                )
            else:
                _banded_stage_numpy(
                    bands, prev_ok, tf[s - 1], tb[s - 1],
                    s, b_hi, d_hi, M,
                    best, best_tf, best_tb, best_bp, best_dp, memf, bsf,
                    slab_cache=band_slabs,
                )
        else:
            dprimes = np.arange(s - 1, max(d_hi, s - 1))
            ds = np.arange(s, d_hi + 1)
            if dprimes.size and ds.size:
                rmat = ds[None, :] - dprimes[:, None]  # (d', d)
                r_idx = np.clip(rmat, 0, D)
                valid_dp = rmat >= 1
                if hetero:
                    # per-boundary caps/speeds for the slot range [d', d)
                    capmat = MINMEM[dprimes[:, None], ds[None, :]]
                    slowmat = SLOW[dprimes[:, None], ds[None, :]]
                prev_ok_sl = prev_ok[:, s - 1:d_hi]
                tf_sl = tf[s - 1][:, s - 1:d_hi]
                tb_sl = tb[s - 1][:, s - 1:d_hi]
                for b in range(s, b_hi + 1):
                    stage_tf = TF[s - 1:b, b, :][:, r_idx]  # (b', d', d)
                    stage_tb = TB[s - 1:b, b, :][:, r_idx]
                    stage_m = MEM[s - 1:b, b, :][:, r_idx]
                    if hetero:
                        stage_tf = stage_tf * slowmat[None, :, :]
                        stage_tb = stage_tb * slowmat[None, :, :]
                    cand_tf = np.maximum(tf_sl[s - 1:b, :, None], stage_tf)
                    cand_tb = np.maximum(tb_sl[s - 1:b, :, None], stage_tb)
                    v = cand_tf + cand_tb
                    fin = np.isfinite(stage_tf)
                    over = (
                        stage_m > capmat[None, :, :]
                        if hetero
                        else stage_m > M
                    )
                    pok = prev_ok_sl[s - 1:b, :, None] & valid_dp[None, :, :]
                    v = np.where(pok & fin & ~over, v, INF)
                    nbp, ndp, nd = v.shape
                    v2 = v.reshape(nbp * ndp, nd)
                    flat = np.argmin(v2, axis=0)
                    cols = np.arange(nd)
                    ii, jj = np.unravel_index(flat, (nbp, ndp))
                    best[b, s:d_hi + 1] = v2[flat, cols]
                    best_tf[b, s:d_hi + 1] = cand_tf[ii, jj, cols]
                    best_tb[b, s:d_hi + 1] = cand_tb[ii, jj, cols]
                    best_bp[b, s:d_hi + 1] = ii + (s - 1)
                    best_dp[b, s:d_hi + 1] = jj + (s - 1)
                    memf[b, s:d_hi + 1] = (pok & fin & over).any(axis=(0, 1))
                    bsf[b, s:d_hi + 1] = (pok & ~fin).any(axis=(0, 1))

        # replay the (b asc, d desc) cell order over the failure masks to
        # apply d_min pruning with the exact per-cell semantics
        fin_rows = np.isfinite(best).tolist()
        memf_rows = memf.tolist()
        bsf_rows = bsf.tolist()
        for b in range(s, b_hi + 1):
            d_lo = max(d_min, s)
            if d_lo > d_hi:
                continue
            row_fin = fin_rows[b]
            row_memf = memf_rows[b]
            row_bsf = bsf_rows[b]
            stop = d_lo
            for d in range(d_hi, d_lo - 1, -1):
                states += 1
                if (
                    dmin_pruning
                    and not row_fin[d]
                    and row_memf[d]
                    and not row_bsf[d]
                ):
                    # "No solution with d" due to MEMORY: fewer total
                    # devices only raises per-device pressure, so prune
                    # the remaining (descending) d range.  A microbatch-
                    # collapse failure (bs < 1) is NOT monotone in d --
                    # it occurs at HIGH replica counts -- so it must not
                    # escalate d_min.
                    stop = d
                    d_min = d + 1
                    break
            keep[b, stop:d_hi + 1] = True

        written = keep & np.isfinite(best)
        V[s] = np.where(written, best, INF)
        tf[s] = np.where(written, best_tf, 0.0)
        tb[s] = np.where(written, best_tb, 0.0)
        parent_b[s] = np.where(written, best_bp, -1)
        parent_d[s] = np.where(written, best_dp, -1)

    ctx._count_states(states)
    if metrics is not None:
        metrics.counter("dp.states_evaluated").inc(states)
        metrics.counter(point_name("dp.states_evaluated", S=S, MB=MB)).inc(
            states
        )
        metrics.histogram("dp.states_per_call").observe(states)
    if sp is not None:
        sp.set(states_evaluated=states)
    if not np.isfinite(V[S, k, D]):
        if metrics is not None:
            metrics.counter("dp.infeasible").inc()
        if sp is not None:
            sp.set(feasible=False, reason="no finite V[S, k, D]")
        return INFEASIBLE

    # reconstruct boundaries / device counts
    boundaries: List[int] = []
    device_counts: List[int] = []
    b, d = k, D
    for s in range(S, 0, -1):
        pb, pd = int(parent_b[s, b, d]), int(parent_d[s, b, d])
        boundaries.append(b)
        device_counts.append(d - pd)
        b, d = pb, pd
    assert (b, d) == (0, 0), "DP backtrack did not land on the origin"
    boundaries.reverse()
    device_counts.reverse()

    profiles: List[StageProfile] = []
    lo = 0
    dlo = 0
    for hi, devs in zip(boundaries, device_counts):
        prof = ctx.stage_profile(lo, hi, devs, R, MB, checkpointing)
        assert prof is not None
        if hetero:
            prof = scale_stage_profile(prof, float(SLOW[dlo, dlo + devs]))
        profiles.append(prof)
        lo = hi
        dlo += devs

    if sp is not None:
        sp.set(feasible=True, objective=float(V[S, k, D]))
    return DPSolution(
        boundaries=boundaries,
        device_counts=device_counts,
        num_microbatches=MB,
        num_stages=S,
        replica_factor=R,
        objective=float(V[S, k, D]),
        max_tf=float(tf[S, k, D]),
        max_tb=float(tb[S, k, D]),
        stage_profiles=profiles,
    )


def reference_form_stage_dp(
    ctx: DPContext,
    S: int,
    D: int,
    BS: int,
    R: int,
    MB: int,
) -> Optional[DPSolution]:
    """Line-by-line transcription of Algorithm 1 with pure-Python loops.

    Kept as the reference implementation; tests assert it produces the
    same objective as the vectorized :func:`form_stage_dp` on randomized
    small instances.
    """
    if BS != ctx.batch_size:
        raise ValueError("batch size mismatch with DPContext")
    k = ctx.k
    if S < 1 or S > k or S > D:
        return INFEASIBLE
    checkpointing = S > 1
    M = ctx.usable_memory
    INF = float("inf")

    V = {(0, 0, 0): 0.0}
    tf: Dict[Tuple[int, int, int], float] = {(0, 0, 0): 0.0}
    tb: Dict[Tuple[int, int, int], float] = {(0, 0, 0): 0.0}
    parent: Dict[Tuple[int, int, int], Tuple[int, int]] = {}

    for s in range(1, S + 1):
        d_min = 1  # reset per stage count (see vectorized engine)
        for b in range(s, k - (S - s) + 1):
            for d in range(D - (S - s), max(d_min, s) - 1, -1):
                saw_mem_fail = False
                saw_bs_fail = False
                for bp in range(s - 1, b):
                    for dp in range(s - 1, d):
                        prev = V.get((s - 1, bp, dp), INF)
                        if prev == INF:
                            continue  # previous stage infeasible
                        prof = ctx.stage_profile(
                            bp, b, d - dp, R, MB, checkpointing
                        )
                        if prof is None:
                            saw_bs_fail = True
                            continue  # microbatch collapsed below 1
                        if prof.memory > M:
                            saw_mem_fail = True
                            continue  # does not fit device memory
                        cand_tf = max(tf[(s - 1, bp, dp)], prof.time_fwd)
                        cand_tb = max(tb[(s - 1, bp, dp)], prof.time_bwd)
                        v = cand_tf + cand_tb
                        if v < V.get((s, b, d), INF):
                            V[(s, b, d)] = v
                            tf[(s, b, d)] = cand_tf
                            tb[(s, b, d)] = cand_tb
                            parent[(s, b, d)] = (bp, dp)
                if (
                    V.get((s, b, d), INF) == INF
                    and saw_mem_fail
                    and not saw_bs_fail
                ):
                    # memory-driven dead end: monotone in d, prune
                    d_min = d + 1
                    break

    if V.get((S, k, D), INF) == INF:
        return INFEASIBLE

    boundaries: List[int] = []
    device_counts: List[int] = []
    b, d = k, D
    for s in range(S, 0, -1):
        bp, dp = parent[(s, b, d)]
        boundaries.append(b)
        device_counts.append(d - dp)
        b, d = bp, dp
    boundaries.reverse()
    device_counts.reverse()

    profiles = []
    lo = 0
    for hi, devs in zip(boundaries, device_counts):
        prof = ctx.stage_profile(lo, hi, devs, R, MB, checkpointing)
        assert prof is not None
        profiles.append(prof)
        lo = hi

    return DPSolution(
        boundaries=boundaries,
        device_counts=device_counts,
        num_microbatches=MB,
        num_stages=S,
        replica_factor=R,
        objective=V[(S, k, D)],
        max_tf=tf[(S, k, D)],
        max_tb=tb[(S, k, D)],
        stage_profiles=profiles,
    )
