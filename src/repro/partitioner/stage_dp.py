"""Stage-level partitioning: Algorithm 1 (``form_stage_dp``).

The DP searches, for a fixed number of stages ``S``, total devices ``D``,
replica factor ``R`` and microbatch count ``MB``, over

* stage boundaries ``b_0 = 0 < b_1 < ... < b_S = |B|`` in the
  topologically-sorted block list, and
* cumulative device counts ``d_0 = 0 < d_1 < ... < d_S = D`` (stage ``i``
  runs on ``d_i - d_{i-1}`` devices, i.e. that many intra-stage replicas),

minimizing ``V = max_i t_f(stage_i) + max_i t_b(stage_i)`` where each
stage is profiled at per-replica microbatch ``BS / R / MB / (d_i -
d_{i-1})``, subject to the device-memory bound, with the paper's
``d_min`` pruning rule.

Deviation noted from the pseudocode: we initialize ``V[0, b, d] = 0`` only
at ``(b, d) = (0, 0)`` (the pseudocode's blanket ``V[0, b, d] = 0`` would
let solutions silently skip a prefix of blocks / devices, contradicting
the recurrence for ``E_S`` in the text).

All candidate-stage profiles for one DP call are precomputed into dense
``(lo, hi, replicas)`` tensors so the inner double loop over ``(b', d')``
is a vectorized NumPy reduction (see the hpc guide: vectorize the hot
loop, profile before optimizing -- the pure-Python variant of this DP is
kept in ``reference_form_stage_dp`` and property-tested for equivalence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.ir import TaskGraph
from repro.partitioner.blocks import Block
from repro.profiler.profiler import GraphProfiler, ProfileResult

INFEASIBLE = None


@dataclass(frozen=True)
class StageProfile:
    """Profile of one candidate stage (blocks ``(lo, hi]``, ``r`` replicas)."""

    time_fwd: float
    time_bwd: float
    memory: float
    microbatch_size: int
    in_bytes: float
    out_bytes: float
    param_count: int

    def to_profile_result(self) -> ProfileResult:
        """The stage profile as a :class:`ProfileResult` (the plan-level
        type); keeps the two dataclasses from drifting apart."""
        return ProfileResult(
            time_fwd=self.time_fwd,
            time_bwd=self.time_bwd,
            memory=self.memory,
            param_count=self.param_count,
            in_bytes=self.in_bytes,
            out_bytes=self.out_bytes,
        )


@dataclass
class DPSolution:
    """Result of one ``form_stage_dp`` call."""

    boundaries: List[int]        # b_1 .. b_S (b_S = |B|)
    device_counts: List[int]     # d_i - d_{i-1} per stage (within a pipeline)
    num_microbatches: int
    num_stages: int
    replica_factor: int
    objective: float             # V[S, |B|, D]
    max_tf: float
    max_tb: float
    stage_profiles: List[StageProfile]

    def estimated_iteration_time(self) -> float:
        """Synchronous-pipeline iteration estimate used to rank solutions
        (event-driven simulation of the flush schedule over the profiled
        per-stage times)."""
        from repro.pipeline.simulator import simulate_sync_pipeline

        tf = [p.time_fwd for p in self.stage_profiles]
        tb = [p.time_bwd for p in self.stage_profiles]
        return simulate_sync_pipeline(tf, tb, self.num_microbatches)


class DPContext:
    """Precomputed range profiles over one fixed block list.

    Shared across every ``form_stage_dp`` call of an Algorithm-2 search so
    block-range aggregates (task times, activation sizes, boundary bytes,
    unique parameter counts) are computed once.
    """

    def __init__(
        self,
        graph: TaskGraph,
        blocks: Sequence[Block],
        profiler: GraphProfiler,
        batch_size: int,
    ) -> None:
        self.graph = graph
        self.blocks = list(blocks)
        self.profiler = profiler
        self.batch_size = batch_size
        self.cluster = profiler.cluster
        k = len(self.blocks)
        self.k = k

        self._block_idx = [
            profiler.indices_of(b.tasks) for b in self.blocks
        ]
        # prefix over blocks of batch-1 saved-activation bytes
        saved = np.array(
            [float(profiler.saved_bytes[idx].sum()) for idx in self._block_idx]
        )
        self._saved_prefix = np.concatenate([[0.0], np.cumsum(saved)])

        self._time_prefix: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._range_meta: Dict[Tuple[int, int], Tuple[int, float, float]] = {}
        self._tensor_cache: Dict[
            Tuple[int, int, int, bool],
            Tuple[np.ndarray, np.ndarray, np.ndarray],
        ] = {}
        self.dp_calls = 0
        self.states_evaluated = 0

    # ------------------------------------------------------------------
    def _time_prefix_at(self, bs: int) -> Tuple[np.ndarray, np.ndarray]:
        """Prefix sums over blocks of per-block (t_f, t_b) at batch bs."""
        cached = self._time_prefix.get(bs)
        if cached is not None:
            return cached
        tf_all, tb_all = self.profiler._times_at(bs)
        tf = np.array([float(tf_all[idx].sum()) for idx in self._block_idx])
        tb = np.array([float(tb_all[idx].sum()) for idx in self._block_idx])
        result = (
            np.concatenate([[0.0], np.cumsum(tf)]),
            np.concatenate([[0.0], np.cumsum(tb)]),
        )
        self._time_prefix[bs] = result
        return result

    def range_meta(self, lo: int, hi: int) -> Tuple[int, float, float]:
        """(unique params, in_bytes@bs1, out_bytes@bs1) of blocks (lo, hi]."""
        key = (lo, hi)
        cached = self._range_meta.get(key)
        if cached is not None:
            return cached
        tasks: List[str] = []
        for j in range(lo, hi):
            tasks.extend(self.blocks[j].tasks)
        idx = np.concatenate([self._block_idx[j] for j in range(lo, hi)])
        params = self.profiler.unique_param_count(idx)
        in_bytes, out_bytes = self.profiler.boundary_bytes(tasks, 1)
        result = (params, in_bytes, out_bytes)
        self._range_meta[key] = result
        return result

    def range_tasks(self, lo: int, hi: int) -> Tuple[str, ...]:
        tasks: List[str] = []
        seen = set()
        for j in range(lo, hi):
            for t in self.blocks[j].tasks:
                if t not in seen:
                    seen.add(t)
                    tasks.append(t)
        return tuple(tasks)

    # ------------------------------------------------------------------
    def stage_profile(
        self, lo: int, hi: int, replicas: int, R: int, MB: int, checkpointing: bool
    ) -> Optional[StageProfile]:
        """Profile blocks ``(lo, hi]`` on ``replicas`` devices; ``None`` if
        the per-replica microbatch collapses below one sample.

        With a single stage (``checkpointing=False``), microbatches are
        plain gradient accumulation: backward runs right after each
        forward, so only ONE microbatch's activations are ever live.  In a
        flush-synchronous pipeline every stage stashes all ``MB``
        microbatch inputs."""
        bs = self.batch_size // (R * MB * replicas)
        if bs < 1:
            return None
        tf_prefix, tb_prefix = self._time_prefix_at(bs)
        t_f = float(tf_prefix[hi] - tf_prefix[lo])
        t_b = float(tb_prefix[hi] - tb_prefix[lo])
        if checkpointing:
            t_b += t_f
        params, in1, out1 = self.range_meta(lo, hi)
        in_bytes = in1 * bs
        out_bytes = out1 * bs
        # execution time includes sending outputs forward / input grads back
        t_f += self.cluster.p2p_time(out_bytes) if out_bytes else 0.0
        t_b += self.cluster.p2p_time(in_bytes) if in_bytes else 0.0
        act_factor = self.profiler.precision.activation_bytes_factor
        saved = float(
            self._saved_prefix[hi] - self._saved_prefix[lo]
        ) * bs * act_factor
        memory = self.profiler.memory_model.total_bytes(
            param_count=params,
            saved_act_bytes_micro=saved,
            boundary_in_bytes_micro=in_bytes,
            microbatches_in_flight=MB if checkpointing else 1,
            checkpointing=checkpointing,
        )
        return StageProfile(
            time_fwd=t_f,
            time_bwd=t_b,
            memory=memory,
            microbatch_size=bs,
            in_bytes=in_bytes,
            out_bytes=out_bytes,
            param_count=params,
        )

    def profile_tensors(
        self, D: int, R: int, MB: int, checkpointing: bool
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense (k+1, k+1, D+1) tensors of stage t_f / t_b / memory.

        Entry ``[lo, hi, r]`` profiles blocks ``(lo, hi]`` on ``r``
        devices; infeasible entries (bs < 1, empty range) hold +inf.
        Cached across ``form_stage_dp`` calls (the tensors are identical
        for every stage count S > 1 at the same D, R, MB).
        """
        cache_key = (D, R, MB, checkpointing)
        cached = self._tensor_cache.get(cache_key)
        if cached is not None:
            return cached
        k = self.k
        TF = np.full((k + 1, k + 1, D + 1), np.inf)
        TB = np.full((k + 1, k + 1, D + 1), np.inf)
        MEM = np.full((k + 1, k + 1, D + 1), np.inf)
        for lo in range(k):
            for hi in range(lo + 1, k + 1):
                for r in range(1, D + 1):
                    prof = self.stage_profile(lo, hi, r, R, MB, checkpointing)
                    if prof is None:
                        continue
                    TF[lo, hi, r] = prof.time_fwd
                    TB[lo, hi, r] = prof.time_bwd
                    MEM[lo, hi, r] = prof.memory
        result = (TF, TB, MEM)
        self._tensor_cache[cache_key] = result
        return result


def form_stage_dp(
    ctx: DPContext,
    S: int,
    D: int,
    BS: int,
    R: int,
    MB: int,
    dmin_pruning: bool = True,
) -> Optional[DPSolution]:
    """Algorithm 1: DP over stage boundaries and device allocations.

    Args:
        ctx: precomputed block-range profiles (carries ``BS``).
        S: number of stages.
        D: number of devices available to one pipeline.
        BS: global batch size (must equal ``ctx.batch_size``).
        R: replica factor (whole-pipeline copies).
        MB: number of microbatches.
        dmin_pruning: the paper's d_min search-space reduction; disabling
            it is the ablation of DESIGN.md choice #1.

    Returns:
        The best :class:`DPSolution`, or ``None`` (INFEASIBLE).
    """
    if BS != ctx.batch_size:
        raise ValueError("batch size mismatch with DPContext")
    k = ctx.k
    if S < 1 or S > k or S > D:
        return INFEASIBLE
    ctx.dp_calls += 1
    checkpointing = S > 1
    TF, TB, MEM = ctx.profile_tensors(D, R, MB, checkpointing)
    M = ctx.cluster.device.usable_memory

    INF = np.inf
    V = np.full((S + 1, k + 1, D + 1), INF)
    tf = np.zeros((S + 1, k + 1, D + 1))
    tb = np.zeros((S + 1, k + 1, D + 1))
    parent_b = np.full((S + 1, k + 1, D + 1), -1, dtype=np.int64)
    parent_d = np.full((S + 1, k + 1, D + 1), -1, dtype=np.int64)
    # deviation from the pseudocode's blanket V[0, b, d] = 0 (see module
    # docstring): only the empty prefix is a valid 0-stage state.
    V[0, 0, 0] = 0.0

    for s in range(1, S + 1):
        # d_min resets at each stage count: memory infeasibility is
        # monotone in d and in b for FIXED s, but a deeper prefix (larger
        # s) has smaller stages and may be feasible where a shallower one
        # was not (deviation D1b in DESIGN.md; the pseudocode keeps d_min
        # global, which can prune true optima)
        d_min = 1
        for b in range(s, k - (S - s) + 1):
            for d in range(D - (S - s), max(d_min, s) - 1, -1):
                bprimes = np.arange(s - 1, b)
                dprimes = np.arange(s - 1, d)
                if bprimes.size == 0 or dprimes.size == 0:
                    continue
                ctx.states_evaluated += 1
                prevV = V[s - 1][np.ix_(bprimes, dprimes)]
                prevTF = tf[s - 1][np.ix_(bprimes, dprimes)]
                prevTB = tb[s - 1][np.ix_(bprimes, dprimes)]
                r = d - dprimes  # replicas of the s-th stage, per column
                stageTF = TF[bprimes[:, None], b, r[None, :]]
                stageTB = TB[bprimes[:, None], b, r[None, :]]
                stageM = MEM[bprimes[:, None], b, r[None, :]]
                cand_tf = np.maximum(prevTF, stageTF)
                cand_tb = np.maximum(prevTB, stageTB)
                v = cand_tf + cand_tb
                prev_ok = np.isfinite(prevV)
                mem_fail = prev_ok & np.isfinite(stageTF) & (stageM > M)
                bs_fail = prev_ok & ~np.isfinite(stageTF)
                invalid = ~prev_ok | (stageM > M) | ~np.isfinite(stageTF)
                v = np.where(invalid, INF, v)
                flat = int(np.argmin(v))
                best = v.flat[flat]
                if best < V[s, b, d]:
                    i, j = np.unravel_index(flat, v.shape)
                    V[s, b, d] = best
                    tf[s, b, d] = cand_tf[i, j]
                    tb[s, b, d] = cand_tb[i, j]
                    parent_b[s, b, d] = bprimes[i]
                    parent_d[s, b, d] = dprimes[j]
                if (
                    dmin_pruning
                    and not np.isfinite(V[s, b, d])
                    and mem_fail.any()
                    and not bs_fail.any()
                ):
                    # "No solution with d" due to MEMORY: fewer total
                    # devices only raises per-device pressure, so prune
                    # the remaining (descending) d range.  A microbatch-
                    # collapse failure (bs < 1) is NOT monotone in d --
                    # it occurs at HIGH replica counts -- so it must not
                    # escalate d_min.
                    d_min = d + 1
                    break

    if not np.isfinite(V[S, k, D]):
        return INFEASIBLE

    # reconstruct boundaries / device counts
    boundaries: List[int] = []
    device_counts: List[int] = []
    b, d = k, D
    for s in range(S, 0, -1):
        pb, pd = int(parent_b[s, b, d]), int(parent_d[s, b, d])
        boundaries.append(b)
        device_counts.append(d - pd)
        b, d = pb, pd
    assert (b, d) == (0, 0), "DP backtrack did not land on the origin"
    boundaries.reverse()
    device_counts.reverse()

    profiles: List[StageProfile] = []
    lo = 0
    for hi, devs in zip(boundaries, device_counts):
        prof = ctx.stage_profile(lo, hi, devs, R, MB, checkpointing)
        assert prof is not None
        profiles.append(prof)
        lo = hi

    return DPSolution(
        boundaries=boundaries,
        device_counts=device_counts,
        num_microbatches=MB,
        num_stages=S,
        replica_factor=R,
        objective=float(V[S, k, D]),
        max_tf=float(tf[S, k, D]),
        max_tb=float(tb[S, k, D]),
        stage_profiles=profiles,
    )


def reference_form_stage_dp(
    ctx: DPContext,
    S: int,
    D: int,
    BS: int,
    R: int,
    MB: int,
) -> Optional[DPSolution]:
    """Line-by-line transcription of Algorithm 1 with pure-Python loops.

    Kept as the reference implementation; tests assert it produces the
    same objective as the vectorized :func:`form_stage_dp` on randomized
    small instances.
    """
    if BS != ctx.batch_size:
        raise ValueError("batch size mismatch with DPContext")
    k = ctx.k
    if S < 1 or S > k or S > D:
        return INFEASIBLE
    checkpointing = S > 1
    M = ctx.cluster.device.usable_memory
    INF = float("inf")

    V = {(0, 0, 0): 0.0}
    tf: Dict[Tuple[int, int, int], float] = {(0, 0, 0): 0.0}
    tb: Dict[Tuple[int, int, int], float] = {(0, 0, 0): 0.0}
    parent: Dict[Tuple[int, int, int], Tuple[int, int]] = {}

    for s in range(1, S + 1):
        d_min = 1  # reset per stage count (see vectorized engine)
        for b in range(s, k - (S - s) + 1):
            for d in range(D - (S - s), max(d_min, s) - 1, -1):
                saw_mem_fail = False
                saw_bs_fail = False
                for bp in range(s - 1, b):
                    for dp in range(s - 1, d):
                        prev = V.get((s - 1, bp, dp), INF)
                        if prev == INF:
                            continue  # previous stage infeasible
                        prof = ctx.stage_profile(
                            bp, b, d - dp, R, MB, checkpointing
                        )
                        if prof is None:
                            saw_bs_fail = True
                            continue  # microbatch collapsed below 1
                        if prof.memory > M:
                            saw_mem_fail = True
                            continue  # does not fit device memory
                        cand_tf = max(tf[(s - 1, bp, dp)], prof.time_fwd)
                        cand_tb = max(tb[(s - 1, bp, dp)], prof.time_bwd)
                        v = cand_tf + cand_tb
                        if v < V.get((s, b, d), INF):
                            V[(s, b, d)] = v
                            tf[(s, b, d)] = cand_tf
                            tb[(s, b, d)] = cand_tb
                            parent[(s, b, d)] = (bp, dp)
                if (
                    V.get((s, b, d), INF) == INF
                    and saw_mem_fail
                    and not saw_bs_fail
                ):
                    # memory-driven dead end: monotone in d, prune
                    d_min = d + 1
                    break

    if V.get((S, k, D), INF) == INF:
        return INFEASIBLE

    boundaries: List[int] = []
    device_counts: List[int] = []
    b, d = k, D
    for s in range(S, 0, -1):
        bp, dp = parent[(s, b, d)]
        boundaries.append(b)
        device_counts.append(d - dp)
        b, d = bp, dp
    boundaries.reverse()
    device_counts.reverse()

    profiles = []
    lo = 0
    for hi, devs in zip(boundaries, device_counts):
        prof = ctx.stage_profile(lo, hi, devs, R, MB, checkpointing)
        assert prof is not None
        profiles.append(prof)
        lo = hi

    return DPSolution(
        boundaries=boundaries,
        device_counts=device_counts,
        num_microbatches=MB,
        num_stages=S,
        replica_factor=R,
        objective=V[(S, k, D)],
        max_tf=tf[(S, k, D)],
        max_tb=tb[(S, k, D)],
        stage_profiles=profiles,
    )
