"""Device allocation: map pipeline replicas and stages to device ranks.

Each of the ``R`` pipeline replicas receives a contiguous band of
``D = sum_i (d_i - d_{i-1})`` global device ranks; stages take consecutive
ranks within the band.  Because Algorithm 2 aligns ``D`` to whole nodes,
a pipeline never straddles more nodes than necessary and stage-to-stage
edges stay on NVLink wherever the stage boundary does not coincide with a
node boundary.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.hardware.cluster import ClusterSpec
from repro.partitioner.plan import DeviceAssignment


def allocate_devices(
    cluster: ClusterSpec,
    device_counts: List[int],
    replica_factor: int,
) -> DeviceAssignment:
    """Assign global device ranks to every (replica, stage) pair.

    Args:
        cluster: target cluster.
        device_counts: devices per stage within one pipeline
            (``d_i - d_{i-1}`` from Algorithm 1).
        replica_factor: number of whole-pipeline replicas R.

    Raises:
        ValueError: if the allocation does not exactly cover the cluster.
    """
    D = sum(device_counts)
    total = D * replica_factor
    if total != cluster.total_devices:
        raise ValueError(
            f"allocation covers {total} devices, cluster has "
            f"{cluster.total_devices}"
        )
    ranks: Dict[Tuple[int, int], Tuple[int, ...]] = {}
    rank = 0
    for replica in range(replica_factor):
        for stage, count in enumerate(device_counts):
            ranks[(replica, stage)] = tuple(range(rank, rank + count))
            rank += count
    return DeviceAssignment(ranks=ranks, cluster=cluster)
