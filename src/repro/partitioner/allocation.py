"""Device allocation: map pipeline replicas and stages to device ranks.

Each of the ``R`` pipeline replicas receives a contiguous band of
``D = sum_i (d_i - d_{i-1})`` global device ranks; stages take consecutive
ranks within the band.  Because Algorithm 2 aligns ``D`` to whole nodes,
a pipeline never straddles more nodes than necessary and stage-to-stage
edges stay on NVLink wherever the stage boundary does not coincide with a
node boundary (the assumption behind the paper's footnote 3).

Under ``comm_model="topology"`` the allocation stops *assuming* that and
starts checking it: candidate physical orderings of the stages inside
each band are scored by the modeled p2p cost of every stage boundary
(weighted by the bytes that actually cross it), and the cheapest
ordering wins -- with the identity ordering kept on ties, so clusters
where contiguity is already optimal (the common case, and every flat
run) produce byte-identical assignments.  :func:`boundary_report`
summarizes how many boundaries earned the NVLink rate, which
``repro plan --explain`` surfaces as the footnote-3 validation.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.cluster import ClusterSpec
from repro.partitioner.plan import DeviceAssignment

#: permuting S stages costs S! scorings; beyond this we keep contiguity
_MAX_PERMUTE_STAGES = 6


def _order_cost(
    cluster: ClusterSpec,
    device_counts: Sequence[int],
    replica_factor: int,
    order: Sequence[int],
    boundary_bytes: Sequence[float],
) -> float:
    """Total modeled boundary-edge cost of one physical stage ordering
    (summed over replicas; the logical boundary s -> s+1 is priced
    between the last rank of stage s and the first rank of stage s+1)."""
    D = sum(device_counts)
    comm = cluster.comm
    offsets: Dict[int, int] = {}
    off = 0
    for stage in order:
        offsets[stage] = off
        off += device_counts[stage]
    cost = 0.0
    for replica in range(replica_factor):
        base = replica * D
        for s in range(len(device_counts) - 1):
            src = base + offsets[s] + device_counts[s] - 1
            dst = base + offsets[s + 1]
            cost += comm.rank_p2p_time(src, dst, boundary_bytes[s])
    return cost


def allocate_devices(
    cluster: ClusterSpec,
    device_counts: List[int],
    replica_factor: int,
    boundary_bytes: Optional[Sequence[float]] = None,
) -> DeviceAssignment:
    """Assign global device ranks to every (replica, stage) pair.

    Args:
        cluster: target cluster.
        device_counts: devices per stage within one pipeline
            (``d_i - d_{i-1}`` from Algorithm 1).
        replica_factor: number of whole-pipeline replicas R.
        boundary_bytes: per-microbatch bytes crossing each of the
            ``S - 1`` stage boundaries; under ``comm_model="topology"``
            these weight the placement scoring (omitted or under the
            flat model, stages take consecutive ranks unconditionally).

    Raises:
        ValueError: if the allocation needs more devices than the
            cluster has, or ``boundary_bytes`` has the wrong length.
            Partial coverage (``D * R < total_devices``) is allowed:
            elastic repair and heterogeneous prefix levels leave the
            trailing ranks idle.
    """
    D = sum(device_counts)
    total = D * replica_factor
    if total > cluster.total_devices:
        raise ValueError(
            f"allocation covers {total} devices, cluster has "
            f"{cluster.total_devices}"
        )
    S = len(device_counts)
    # validate unconditionally: a malformed boundary list must fail the
    # same way under every comm model, not only when the topology
    # scoring below happens to consume it
    if boundary_bytes is not None and len(boundary_bytes) != S - 1:
        raise ValueError(
            f"boundary_bytes has {len(boundary_bytes)} entries for "
            f"{S - 1} stage boundaries"
        )
    order: Tuple[int, ...] = tuple(range(S))
    if (
        cluster.comm_model == "topology"
        and 2 <= S <= _MAX_PERMUTE_STAGES
    ):
        weights = (
            list(boundary_bytes)
            if boundary_bytes is not None
            else [1.0] * (S - 1)
        )
        # permutations() yields the identity first; strict < keeps it
        # on ties, so the topology model only deviates from contiguity
        # when the network model says a reordering is actually cheaper
        best_cost = None
        for cand in permutations(range(S)):
            cost = _order_cost(
                cluster, device_counts, replica_factor, cand, weights
            )
            if best_cost is None or cost < best_cost:
                best_cost, order = cost, cand
    ranks: Dict[Tuple[int, int], Tuple[int, ...]] = {}
    for replica in range(replica_factor):
        rank = replica * D
        for stage in order:
            count = device_counts[stage]
            ranks[(replica, stage)] = tuple(range(rank, rank + count))
            rank += count
    return DeviceAssignment(ranks=ranks, cluster=cluster)


def boundary_report(
    assignment: DeviceAssignment,
    replica_factor: int,
    num_stages: int,
) -> Dict[str, float]:
    """Footnote-3 accounting: how many stage boundaries (across all
    replicas) stay on the intra-node fabric vs. cross a node boundary."""
    total = 0
    internode = 0
    for replica in range(replica_factor):
        for s in range(num_stages - 1):
            total += 1
            if assignment.crossing_is_internode(replica, s):
                internode += 1
    return {
        "boundaries": float(total),
        "internode_boundaries": float(internode),
        "nvlink_boundary_frac": (
            (total - internode) / total if total else 1.0
        ),
    }
