"""Algorithm 2 (``form_stage``): the outer search loop.

Iterates over the number of compute nodes ``n`` (doubling from 1, skipping
spans that do not divide the node count), derives the devices available to
one pipeline ``D = D_node x n`` and the pipeline replica factor ``R = N /
n``, then tries stage counts ``S`` in the range ``(D_node x (n-1), D_node
x n]`` and microbatch counts ``MB`` doubling from 1.  The first stage
count that yields any feasible DP solution wins; among its microbatch
variants the one with the best estimated iteration time is returned.

The ``(S, MB)`` candidates of one node level are independent DP problems
over a shared :class:`DPContext`, so they can run on a worker pool.  Two
backends are available (``backend=``): ``"thread"`` shares the context
across a thread pool (the caches and counters are lock-guarded and NumPy
releases the GIL inside the reductions), while ``"process"`` forks the
context into a :class:`~concurrent.futures.ProcessPoolExecutor` for true
parallelism on big sweeps -- the context pickles via its
``export/import_cache_state`` snapshot, candidates are chunked by
microbatch count so each worker shares its profile-tensor cache across
the stage counts it owns, and the parent *replays* every worker's
``dp_calls`` / ``states_evaluated`` deltas in candidate order.  Under
every backend the winner is selected from the results in the serial
sweep's candidate order, so the returned plan and all statistics are
identical to a sequential search.

Aligning ``D`` to whole nodes keeps each pipeline inside as few nodes as
possible, which is why stage-to-stage transfers are costed at intra-node
bandwidth (footnote 3 of the paper).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, point_name
from repro.obs.tracer import Tracer
from repro.partitioner.stage_dp import DPContext, DPSolution, form_stage_dp

#: accepted values for the Algorithm-2 ``backend`` knob /
#: ``PlannerConfig.search_backend``
SEARCH_BACKENDS = ("serial", "thread", "process")

#: per-worker DP context of a process-pool sweep, installed once by the
#: pool initializer so every chunk the worker executes shares its caches
_WORKER_CTX: Optional[DPContext] = None


def _init_search_worker(ctx: DPContext) -> None:
    global _WORKER_CTX
    _WORKER_CTX = ctx


def _run_candidate_chunk(
    chunk: List[Tuple[int, int]],
    D: int,
    batch_size: int,
    R: int,
    engine: str,
) -> List[Tuple[Optional[DPSolution], bool, int]]:
    """Worker body: solve a chunk of ``(S, MB)`` candidates on the
    worker-global context, reporting per-candidate counter deltas
    ``(solution, dp_call_made, states_evaluated)`` so the parent can
    replay them deterministically."""
    ctx = _WORKER_CTX
    assert ctx is not None, "process-pool worker used before initialization"
    out: List[Tuple[Optional[DPSolution], bool, int]] = []
    for S, MB in chunk:
        calls0 = ctx.dp_calls
        states0 = ctx.states_evaluated
        sol = form_stage_dp(ctx, S, D, batch_size, R, MB, engine=engine)
        out.append(
            (sol, ctx.dp_calls > calls0, ctx.states_evaluated - states0)
        )
    return out


def _solve_candidates_process(
    ctx: DPContext,
    pairs: List[Tuple[int, int]],
    D: int,
    batch_size: int,
    R: int,
    workers: int,
    engine: str,
    metrics: Optional[MetricsRegistry],
) -> Dict[Tuple[int, int], Optional[DPSolution]]:
    """Evaluate candidates on a process pool, then replay the workers'
    counter deltas in candidate order.

    The replay makes ``ctx.dp_calls`` / ``ctx.states_evaluated`` and the
    ``dp.*`` metrics (totals, per-``(S, MB)`` points, the states
    histogram and the infeasible count) come out identical to a serial
    sweep; per-candidate tracer spans are not recorded, since spans
    cannot cross the process boundary.
    """
    chunks: Dict[int, List[Tuple[int, int]]] = {}
    for pair in pairs:
        chunks.setdefault(pair[1], []).append(pair)
    results: Dict[Tuple[int, int], Optional[DPSolution]] = {}
    stats: Dict[Tuple[int, int], Tuple[bool, int]] = {}
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_search_worker,
        initargs=(ctx,),
    ) as pool:
        futures = {
            mb: pool.submit(
                _run_candidate_chunk, chunk, D, batch_size, R, engine
            )
            for mb, chunk in chunks.items()
        }
        for mb, fut in futures.items():
            for pair, (sol, made_call, states) in zip(
                chunks[mb], fut.result()
            ):
                results[pair] = sol
                stats[pair] = (made_call, states)
    for S, MB in pairs:
        made_call, states = stats[(S, MB)]
        if not made_call:
            continue  # stage count out of range: no DP call was made
        ctx._count_dp_call()
        ctx._count_states(states)
        if metrics is not None:
            metrics.counter("dp.calls").inc()
            metrics.counter("dp.states_evaluated").inc(states)
            metrics.counter(
                point_name("dp.states_evaluated", S=S, MB=MB)
            ).inc(states)
            metrics.histogram("dp.states_per_call").observe(states)
            if results[(S, MB)] is None:
                metrics.counter("dp.infeasible").inc()
    return results


@dataclass
class SearchResult:
    """Outcome of Algorithm 2."""

    solution: DPSolution
    num_pipeline_nodes: int   # n: nodes spanned by one pipeline
    devices_per_pipeline: int  # D
    replica_factor: int        # R
    candidates_tried: int
    dp_calls: int

    @property
    def num_stages(self) -> int:
        return self.solution.num_stages


def _solve_candidates(
    ctx: DPContext,
    pairs: List[Tuple[int, int]],
    D: int,
    batch_size: int,
    R: int,
    parallel: bool,
    max_workers: Optional[int],
    backend: str = "thread",
    engine: str = "numpy",
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    parent_id: Optional[int] = None,
) -> Dict[Tuple[int, int], Optional[DPSolution]]:
    """Run ``form_stage_dp`` for every ``(S, MB)`` candidate pair.

    Returns results keyed by pair so the caller ranks them in candidate
    order regardless of worker completion order.  When a tracer is
    given, every candidate carries its own ``dp.form_stage_dp`` span
    (thread/serial backends only); ``parent_id`` links spans recorded on
    pool threads back to the node-level span of the coordinating thread.
    """
    if backend not in SEARCH_BACKENDS:
        raise ValueError(
            f"unknown search backend {backend!r}; "
            f"expected one of {SEARCH_BACKENDS}"
        )
    workers = max_workers or min(len(pairs), os.cpu_count() or 1)
    if (
        not parallel
        or backend == "serial"
        or len(pairs) <= 1
        or (backend == "process" and workers <= 1)
    ):
        # A one-worker process pool would pay fork + context-pickle cost
        # for zero concurrency (e.g. single-core hosts), so it degrades
        # to the serial sweep -- same results, counters and plan.
        return {
            (S, MB): form_stage_dp(
                ctx, S, D, batch_size, R, MB, engine=engine,
                tracer=tracer, metrics=metrics, parent_id=parent_id,
            )
            for S, MB in pairs
        }
    if backend == "process":
        return _solve_candidates_process(
            ctx, pairs, D, batch_size, R, workers, engine, metrics
        )
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = {
            (S, MB): pool.submit(
                form_stage_dp, ctx, S, D, batch_size, R, MB, engine=engine,
                tracer=tracer, metrics=metrics, parent_id=parent_id,
            )
            for S, MB in pairs
        }
        return {pair: fut.result() for pair, fut in futures.items()}


def form_stage(
    ctx: DPContext,
    num_nodes: int,
    devices_per_node: int,
    batch_size: int,
    max_microbatches: Optional[int] = None,
    search_all_stage_counts: bool = True,
    parallel: bool = True,
    max_workers: Optional[int] = None,
    backend: str = "thread",
    engine: str = "numpy",
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Optional[SearchResult]:
    """Algorithm 2: search over (n, S, MB) for the best feasible plan.

    Args:
        ctx: DP context over the block list (fixes the model + profiler).
        num_nodes: total compute nodes N.
        devices_per_node: devices per node (D_node).
        batch_size: global batch size BS.
        max_microbatches: optional cap on MB (None: up to BS / R).
        search_all_stage_counts: the pseudocode returns at the FIRST stage
            count with any feasible solution; with this flag (default) all
            stage counts of the current node level compete and the best
            estimated iteration time wins.  The strict reading can return
            a pipeline several stages shorter than optimal (see DESIGN.md,
            deviation D2); both modes are tested.
        parallel: evaluate the independent ``(S, MB)`` DP candidates of a
            level on a worker pool (deterministic: same plan and counters
            as the serial sweep).
        max_workers: worker-pool size (default: CPU count, capped at the
            candidate count).
        backend: one of :data:`SEARCH_BACKENDS` -- ``"thread"``
            (default), ``"process"`` (true parallelism; the context is
            forked to the workers and counter deltas are replayed in
            candidate order) or ``"serial"`` (force a sequential sweep
            regardless of ``parallel``).
        engine: DP evaluation engine, forwarded to every
            :func:`form_stage_dp` call (see
            :data:`~repro.partitioner.stage_dp.DP_ENGINES`).
        tracer: optional tracer; each node level gets a ``search.level``
            span and each ``(S, MB)`` candidate a ``dp.form_stage_dp``
            span (parented to the level span even across pool threads).
        metrics: optional metrics registry, forwarded to every DP call.

    Returns:
        A :class:`SearchResult`, or ``None`` if no configuration fits.
    """
    if batch_size != ctx.batch_size:
        raise ValueError("batch size mismatch with DPContext")
    if tracer is not None and not tracer.enabled:
        tracer = None
    hetero = ctx.cluster.is_heterogeneous
    if hetero:
        # heterogeneous levels: ``n`` counts a PREFIX of nodes in class
        # declaration order, so ``D`` is that prefix's device total (the
        # per-node counts may differ across classes).  Divisibility is
        # not required -- replicas beyond ``total // D`` stay idle and
        # the DP's position-aware tables price the slots each band
        # actually lands on -- so the doubling sweep always ends on the
        # full-cluster level.
        offsets = ctx.cluster.node_first_ranks()
        total_devices = ctx.cluster.total_devices
        levels: List[int] = []
        lvl = 1
        while lvl < num_nodes:
            levels.append(lvl)
            lvl *= 2
        levels.append(num_nodes)
    else:
        # a span that does not divide the node count (e.g. n=2 on 3
        # nodes) has no integral replica factor; skip the level and
        # keep doubling rather than aborting the search
        levels = []
        lvl = 1
        while lvl <= num_nodes:
            if num_nodes % lvl == 0:
                levels.append(lvl)
            lvl *= 2
    dp_calls = 0
    tried = 0
    for n in levels:
        if hetero:
            D = offsets[n]
            R = total_devices // D
            s_lo = offsets[n - 1] + 1
            s_hi = offsets[n]
        else:
            D = devices_per_node * n
            R = num_nodes // n
            s_lo = devices_per_node * (n - 1) + 1
            s_hi = devices_per_node * n
        mb_cap = batch_size // R
        if max_microbatches is not None:
            mb_cap = min(mb_cap, max_microbatches)
        microbatch_counts: List[int] = []
        MB = 1
        while MB <= mb_cap:
            microbatch_counts.append(MB)
            MB *= 2

        def run_level(
            pairs: List[Tuple[int, int]],
            level_id: Optional[int] = None,
        ) -> List[DPSolution]:
            results = _solve_candidates(
                ctx, pairs, D, batch_size, R, parallel, max_workers,
                backend=backend, engine=engine,
                tracer=tracer, metrics=metrics, parent_id=level_id,
            )
            return [
                results[pair] for pair in pairs if results[pair] is not None
            ]

        level_cm = (
            tracer.span(
                "search.level", category="partitioner.search",
                n=n, D=D, R=R,
            )
            if tracer is not None
            else nullcontext(None)
        )
        with level_cm as level_span:
            level_id = level_span.span_id if level_span is not None else None
            if search_all_stage_counts:
                pairs = [
                    (S, MB)
                    for S in range(s_lo, s_hi + 1)
                    for MB in microbatch_counts
                ]
                solutions = run_level(pairs, level_id)
                dp_calls += len(pairs)
                tried += len(solutions)
            else:
                # strict pseudocode: stop at the FIRST feasible stage
                # count, so stage counts stay sequential (only MB fans
                # out)
                solutions = []
                for S in range(s_lo, s_hi + 1):
                    pairs = [(S, MB) for MB in microbatch_counts]
                    solutions = run_level(pairs, level_id)
                    dp_calls += len(pairs)
                    tried += len(solutions)
                    if solutions:
                        break
            if level_span is not None:
                level_span.set(feasible_candidates=len(solutions))
            if solutions:
                best = min(
                    solutions, key=lambda s: s.estimated_iteration_time()
                )
                if level_span is not None:
                    level_span.set(
                        winner_stages=best.num_stages,
                        winner_microbatches=best.num_microbatches,
                    )
                return SearchResult(
                    solution=best,
                    num_pipeline_nodes=n,
                    devices_per_pipeline=D,
                    replica_factor=R,
                    candidates_tried=tried,
                    dp_calls=dp_calls,
                )
    return None
