"""Algorithm 2 (``form_stage``): the outer search loop.

Iterates over the number of compute nodes ``n`` (doubling from 1), derives
the devices available to one pipeline ``D = D_node x n`` and the pipeline
replica factor ``R = N / n``, then tries stage counts ``S`` in the range
``(D_node x (n-1), D_node x n]`` and microbatch counts ``MB`` doubling
from 1.  The first stage count that yields any feasible DP solution wins;
among its microbatch variants the one with the best estimated iteration
time is returned.

Aligning ``D`` to whole nodes keeps each pipeline inside as few nodes as
possible, which is why stage-to-stage transfers are costed at intra-node
bandwidth (footnote 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.partitioner.stage_dp import DPContext, DPSolution, form_stage_dp


@dataclass
class SearchResult:
    """Outcome of Algorithm 2."""

    solution: DPSolution
    num_pipeline_nodes: int   # n: nodes spanned by one pipeline
    devices_per_pipeline: int  # D
    replica_factor: int        # R
    candidates_tried: int
    dp_calls: int

    @property
    def num_stages(self) -> int:
        return self.solution.num_stages


def form_stage(
    ctx: DPContext,
    num_nodes: int,
    devices_per_node: int,
    batch_size: int,
    max_microbatches: Optional[int] = None,
    search_all_stage_counts: bool = True,
) -> Optional[SearchResult]:
    """Algorithm 2: search over (n, S, MB) for the best feasible plan.

    Args:
        ctx: DP context over the block list (fixes the model + profiler).
        num_nodes: total compute nodes N.
        devices_per_node: devices per node (D_node).
        batch_size: global batch size BS.
        max_microbatches: optional cap on MB (None: up to BS / R).
        search_all_stage_counts: the pseudocode returns at the FIRST stage
            count with any feasible solution; with this flag (default) all
            stage counts of the current node level compete and the best
            estimated iteration time wins.  The strict reading can return
            a pipeline several stages shorter than optimal (see DESIGN.md,
            deviation D2); both modes are tested.

    Returns:
        A :class:`SearchResult`, or ``None`` if no configuration fits.
    """
    if batch_size != ctx.batch_size:
        raise ValueError("batch size mismatch with DPContext")
    n = 1
    dp_calls = 0
    tried = 0
    while n <= num_nodes:
        if num_nodes % n:
            raise ValueError(
                f"node count {num_nodes} must be divisible by pipeline span {n}"
            )
        D = devices_per_node * n
        R = num_nodes // n
        s_lo = devices_per_node * (n - 1) + 1
        s_hi = devices_per_node * n
        level_solutions: List[DPSolution] = []
        for S in range(s_lo, s_hi + 1):
            solutions: List[DPSolution] = []
            MB = 1
            mb_cap = batch_size // R
            if max_microbatches is not None:
                mb_cap = min(mb_cap, max_microbatches)
            while MB <= mb_cap:
                dp_calls += 1
                sol = form_stage_dp(ctx, S, D, batch_size, R, MB)
                if sol is not None:
                    solutions.append(sol)
                    tried += 1
                MB *= 2
            if solutions and not search_all_stage_counts:
                best = min(
                    solutions, key=lambda s: s.estimated_iteration_time()
                )
                return SearchResult(
                    solution=best,
                    num_pipeline_nodes=n,
                    devices_per_pipeline=D,
                    replica_factor=R,
                    candidates_tried=tried,
                    dp_calls=dp_calls,
                )
            level_solutions.extend(solutions)
        if level_solutions:
            best = min(
                level_solutions, key=lambda s: s.estimated_iteration_time()
            )
            return SearchResult(
                solution=best,
                num_pipeline_nodes=n,
                devices_per_pipeline=D,
                replica_factor=R,
                candidates_tried=tried,
                dp_calls=dp_calls,
            )
        n *= 2
    return None
