"""The docs checker itself (tools/check_docs.py): the repo's own docs
must pass, and the checker must actually catch breakage."""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_docs.py"

spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


class TestRepoDocs:
    def test_repo_docs_pass(self):
        result = subprocess.run(
            [sys.executable, str(CHECKER)],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "links OK" in result.stdout
        assert "doctests OK" in result.stdout

    def test_observability_examples_exist(self):
        text = (REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text()
        blocks = check_docs.extract_python_blocks(text)
        assert len(blocks) >= 4
        assert any(">>>" in b for b in blocks)


class TestChecker:
    def test_broken_link_detected(self, tmp_path):
        (tmp_path / "doc.md").write_text(
            "see [here](missing.md) and [ok](other.md) and "
            "[web](https://example.com) and [frag](#section)\n"
        )
        (tmp_path / "other.md").write_text("x\n")
        errors = check_docs.check_links(tmp_path, ["doc.md"])
        assert errors == ["doc.md: broken link -> missing.md"]

    def test_fragment_on_relative_link_stripped(self, tmp_path):
        (tmp_path / "doc.md").write_text("[s](other.md#part)\n")
        (tmp_path / "other.md").write_text("x\n")
        assert check_docs.check_links(tmp_path, ["doc.md"]) == []

    def test_failing_doctest_detected(self, tmp_path):
        (tmp_path / "bad.md").write_text(
            "```python\n>>> 1 + 1\n3\n\n```\n"
        )
        failures, attempts = check_docs.run_doctests(tmp_path, ["bad.md"])
        assert (failures, attempts) == (1, 1)

    def test_state_shared_across_blocks(self, tmp_path):
        (tmp_path / "two.md").write_text(
            "first:\n```python\n>>> x = 2\n\n```\n"
            "later:\n```python\n>>> x + 1\n3\n\n```\n"
        )
        failures, attempts = check_docs.run_doctests(tmp_path, ["two.md"])
        assert (failures, attempts) == (0, 2)
