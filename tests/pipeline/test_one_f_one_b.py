"""Tests for the synchronous 1F1B (PipeDream-Flush) schedule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.one_f_one_b import (
    compare_schedules,
    gpipe_peak_inflight,
    simulate_sync_1f1b,
)
from repro.pipeline.simulator import simulate_sync_pipeline


class TestOneFOneB:
    def test_uniform_matches_gpipe_makespan(self):
        result = simulate_sync_1f1b([1.0] * 4, [2.0] * 4, 8)
        assert result.makespan == pytest.approx(
            simulate_sync_pipeline([1.0] * 4, [2.0] * 4, 8)
        )

    def test_stash_bound_is_min_depth(self):
        """1F1B's whole point: stage s stashes at most min(S - s, MB)."""
        result = simulate_sync_1f1b([1.0] * 4, [2.0] * 4, 8)
        assert result.peak_inflight == [4, 3, 2, 1]

    def test_stash_bounded_by_mb(self):
        result = simulate_sync_1f1b([1.0] * 6, [1.0] * 6, 2)
        assert all(p <= 2 for p in result.peak_inflight)

    def test_single_stage(self):
        result = simulate_sync_1f1b([1.0], [2.0], 4)
        assert result.makespan == pytest.approx(12.0)
        assert result.peak_inflight == [1]

    def test_memory_ratio(self):
        result = simulate_sync_1f1b([1.0] * 4, [1.0] * 4, 16)
        assert result.memory_ratio_vs_gpipe(16) == pytest.approx(4 / 16)

    def test_gpipe_reference(self):
        assert gpipe_peak_inflight(3, 8) == [8, 8, 8]

    def test_compare_schedules(self):
        g, o, gs, os_ = compare_schedules([1.0, 1.0], [2.0, 2.0], 4)
        assert g == pytest.approx(o)
        assert max(os_) < max(gs)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            simulate_sync_1f1b([], [], 1)
        with pytest.raises(ValueError):
            simulate_sync_1f1b([1.0], [1.0], 0)


@settings(max_examples=25, deadline=None)
@given(
    times=st.lists(
        st.tuples(
            st.floats(min_value=0.05, max_value=3.0),
            st.floats(min_value=0.05, max_value=3.0),
        ),
        min_size=1, max_size=5,
    ),
    mb=st.integers(min_value=1, max_value=10),
)
def test_1f1b_properties(times, mb):
    """Properties for arbitrary stage times:

    * every microbatch completes (finite makespan);
    * the stash bound min(S - s, MB) holds on every stage;
    * 1F1B is never slower than 5% over GPipe (it reorders the same work
      with the same dependency structure; small rounding slack).
    """
    tf = [a for a, _ in times]
    tb = [b for _, b in times]
    S = len(tf)
    result = simulate_sync_1f1b(tf, tb, mb)
    gpipe = simulate_sync_pipeline(tf, tb, mb)
    assert result.makespan < float("inf")
    for s, peak in enumerate(result.peak_inflight):
        assert peak <= min(S - s, mb)
    assert result.makespan <= gpipe * 1.05 + 1e-9
    # lower bound: the busiest stage's total work
    work = mb * max(f + b for f, b in zip(tf, tb))
    assert result.makespan >= work - 1e-9