"""Tests for pipeline schedules and simulators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.schedule import (
    bubble_fraction,
    render_schedule,
    schedule_makespan_slots,
    sync_pipeline_schedule,
)
from repro.pipeline.simulator import (
    simulate_async_1f1b,
    simulate_sync_pipeline,
    sync_pipeline_lower_bound,
    sync_pipeline_wave_estimate,
)


class TestSchedule:
    def test_event_counts(self):
        events = sync_pipeline_schedule(4, 8)
        assert len(events) == 2 * 4 * 8
        assert sum(1 for e in events if e.phase == "F") == 32

    def test_forward_slots(self):
        events = {(e.stage, e.microbatch, e.phase): e.slot
                  for e in sync_pipeline_schedule(3, 4)}
        assert events[(0, 0, "F")] == 0
        assert events[(1, 0, "F")] == 1
        assert events[(2, 3, "F")] == 5

    def test_no_stage_conflicts(self):
        """A stage never runs two microbatches in one slot."""
        events = sync_pipeline_schedule(4, 6)
        seen = set()
        for e in events:
            key = (e.stage, e.slot)
            assert key not in seen, f"conflict at {key}"
            seen.add(key)

    def test_dependencies_respected(self):
        """F(s, m) after F(s-1, m); B(s, m) after B(s+1, m)."""
        S, MB = 4, 5
        slot = {(e.stage, e.microbatch, e.phase): e.slot
                for e in sync_pipeline_schedule(S, MB)}
        for m in range(MB):
            for s in range(1, S):
                assert slot[(s, m, "F")] > slot[(s - 1, m, "F")]
            for s in range(S - 1):
                assert slot[(s, m, "B")] > slot[(s + 1, m, "B")]
            assert slot[(S - 1, m, "B")] >= slot[(S - 1, m, "F")] + 1

    def test_makespan(self):
        assert schedule_makespan_slots(4, 8) == 22
        events = sync_pipeline_schedule(4, 8)
        assert max(e.slot for e in events) + 1 == 22

    def test_bubble_fraction(self):
        assert bubble_fraction(1, 8) == 0.0
        assert bubble_fraction(4, 8) == pytest.approx(3 / 11)

    def test_render(self):
        text = render_schedule(sync_pipeline_schedule(2, 2), 2)
        assert "stage0" in text and "F0" in text and "B1" in text

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sync_pipeline_schedule(0, 4)


class TestSyncSimulator:
    def test_single_stage(self):
        # pure gradient accumulation: MB * (tf + tb)
        assert simulate_sync_pipeline([1.0], [2.0], 4) == pytest.approx(12.0)

    def test_uniform_matches_wave_formula(self):
        S, MB = 4, 8
        t = simulate_sync_pipeline([1.0] * S, [1.0] * S, MB)
        assert t == pytest.approx(2 * (MB + S - 1))

    def test_bottleneck_dominates(self):
        slow = simulate_sync_pipeline([1.0, 5.0], [1.0, 5.0], 8)
        fast = simulate_sync_pipeline([1.0, 1.0], [1.0, 1.0], 8)
        assert slow > 4 * fast / 2

    def test_more_microbatches_amortize_bubble(self):
        """Throughput (MB/time) improves with MB for multi-stage pipes."""
        per_mb = [
            simulate_sync_pipeline([1.0] * 4, [2.0] * 4, mb) / mb
            for mb in (1, 2, 8, 32)
        ]
        assert per_mb == sorted(per_mb, reverse=True)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            simulate_sync_pipeline([], [], 1)
        with pytest.raises(ValueError):
            simulate_sync_pipeline([1.0], [1.0, 2.0], 1)
        with pytest.raises(ValueError):
            simulate_sync_pipeline([1.0], [1.0], 0)


class TestAsyncSimulator:
    def test_steady_state(self):
        assert simulate_async_1f1b([1.0, 2.0], [2.0, 3.0], 10) == pytest.approx(50.0)

    def test_async_beats_sync_bubble(self):
        tf, tb = [1.0] * 4, [2.0] * 4
        assert simulate_async_1f1b(tf, tb, 8) < simulate_sync_pipeline(tf, tb, 8)


class TestBounds:
    @settings(max_examples=40, deadline=None)
    @given(
        times=st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=5.0),
                st.floats(min_value=0.01, max_value=5.0),
            ),
            min_size=1, max_size=6,
        ),
        mb=st.integers(min_value=1, max_value=16),
    )
    def test_sim_bounded_by_wave_formula_and_work(self, times, mb):
        """Property: work lower bound <= event sim <= wave upper bound."""
        tf = [a for a, _ in times]
        tb = [b for _, b in times]
        sim = simulate_sync_pipeline(tf, tb, mb)
        upper = sync_pipeline_wave_estimate(tf, tb, mb)
        # the busiest stage must run MB forwards and MB backwards
        work = mb * max(f + b for f, b in zip(tf, tb))
        assert sim >= work - 1e-9
        assert sim <= upper + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        mb=st.integers(min_value=1, max_value=12),
        s=st.integers(min_value=1, max_value=6),
    )
    def test_uniform_exactness(self, mb, s):
        """Property: for uniform stages the sim equals the closed form."""
        sim = simulate_sync_pipeline([1.0] * s, [1.0] * s, mb)
        assert sim == pytest.approx(2 * (mb + s - 1))

    def test_wave_estimate_is_not_a_lower_bound(self):
        """On non-uniform stages the wave formula strictly OVER-estimates
        the simulated makespan -- the historical ``lower_bound`` name was
        wrong about the direction."""
        tf, tb = [1.0, 0.1, 0.1], [1.0, 0.1, 0.1]
        sim = simulate_sync_pipeline(tf, tb, 4)
        estimate = sync_pipeline_wave_estimate(tf, tb, 4)
        assert estimate > sim  # upper bound, strictly loose here

    @settings(max_examples=40, deadline=None)
    @given(
        times=st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=5.0),
                st.floats(min_value=0.01, max_value=5.0),
            ),
            min_size=2, max_size=6,
        ),
        mb=st.integers(min_value=1, max_value=16),
    )
    def test_wave_estimate_bound_direction(self, times, mb):
        """Property: the wave estimate never under-estimates the sim."""
        tf = [a for a, _ in times]
        tb = [b for _, b in times]
        assert sync_pipeline_wave_estimate(tf, tb, mb) >= (
            simulate_sync_pipeline(tf, tb, mb) - 1e-9
        )

    def test_deprecated_alias(self):
        with pytest.warns(DeprecationWarning, match="upper bound"):
            legacy = sync_pipeline_lower_bound([1.0, 2.0], [2.0, 1.0], 4)
        assert legacy == sync_pipeline_wave_estimate(
            [1.0, 2.0], [2.0, 1.0], 4
        )
