"""Tests for the timeline/Gantt module and its agreement with the scalar
pipeline simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.simulator import simulate_sync_pipeline
from repro.pipeline.timeline import (
    Timeline,
    build_sync_timeline,
    plan_timeline,
    render_gantt,
)


class TestBuildTimeline:
    def test_interval_count(self):
        tl = build_sync_timeline([1.0, 1.0], [2.0, 2.0], 3)
        assert len(tl.intervals) == 2 * 2 * 3

    def test_validate_passes(self):
        tl = build_sync_timeline([1.0, 0.5, 2.0], [2.0, 1.0, 3.0], 4)
        tl.validate()

    def test_makespan_matches_simulator(self):
        tf, tb = [1.0, 3.0, 0.5], [2.0, 4.0, 1.0]
        tl = build_sync_timeline(tf, tb, 5)
        assert tl.makespan == pytest.approx(
            simulate_sync_pipeline(tf, tb, 5)
        )

    def test_busy_time(self):
        tl = build_sync_timeline([1.0, 1.0], [2.0, 2.0], 4)
        # each stage runs 4 forwards (1.0) + 4 backwards (2.0)
        assert tl.stage_busy_time(0) == pytest.approx(12.0)
        assert 0 < tl.stage_utilization(0) <= 1.0

    def test_bubble_decreases_with_microbatches(self):
        tf, tb = [1.0] * 4, [2.0] * 4
        b2 = build_sync_timeline(tf, tb, 2).bubble_fraction()
        b16 = build_sync_timeline(tf, tb, 16).bubble_fraction()
        assert b16 < b2

    def test_single_stage_no_bubble(self):
        tl = build_sync_timeline([1.0], [2.0], 4)
        assert tl.bubble_fraction() == pytest.approx(0.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            build_sync_timeline([], [], 1)
        with pytest.raises(ValueError):
            build_sync_timeline([1.0], [1.0], 0)


class TestRender:
    def test_render_contains_stages_and_stats(self):
        tl = build_sync_timeline([1.0, 1.0], [1.0, 1.0], 4)
        text = render_gantt(tl, width=40)
        assert "stage0" in text and "stage1" in text
        assert "makespan" in text and "bubble" in text

    def test_render_width(self):
        tl = build_sync_timeline([1.0], [1.0], 2)
        line = render_gantt(tl, width=30).splitlines()[0]
        assert line.count("|") == 2


class TestPlanTimeline:
    def test_from_real_plan(self, tiny_bert, cluster):
        from repro.partitioner import auto_partition

        plan = auto_partition(tiny_bert, cluster, 64)
        tl = plan_timeline(plan)
        tl.validate()
        assert tl.num_stages == plan.num_stages
        assert tl.makespan == pytest.approx(plan.diagnostics.pipeline_time)


@settings(max_examples=30, deadline=None)
@given(
    times=st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=3.0),
            st.floats(min_value=0.01, max_value=3.0),
        ),
        min_size=1, max_size=5,
    ),
    mb=st.integers(min_value=1, max_value=10),
)
def test_timeline_simulator_agreement_property(times, mb):
    """Property: interval replay and scalar simulator agree exactly, and
    the timeline is structurally valid, for arbitrary stage times."""
    tf = [a for a, _ in times]
    tb = [b for _, b in times]
    tl = build_sync_timeline(tf, tb, mb)
    tl.validate()
    assert tl.makespan == pytest.approx(simulate_sync_pipeline(tf, tb, mb))
