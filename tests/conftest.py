"""Shared fixtures: small graphs, clusters and profilers used across the
test suite."""

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.hardware import paper_cluster, tiny_cluster
from repro.models import (
    BertConfig,
    ResNetConfig,
    build_bert,
    build_diamond,
    build_fig2_example,
    build_mlp,
    build_resnet,
)
from repro.profiler import GraphProfiler


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def mlp_graph():
    return build_mlp((16, 32, 32, 8))


@pytest.fixture
def diamond_graph():
    return build_diamond(width=16)


@pytest.fixture
def fig2_graph():
    return build_fig2_example(dim=8)


@pytest.fixture
def tiny_bert_config():
    return BertConfig(
        hidden_size=32, num_layers=2, num_heads=4, seq_len=16, vocab_size=101
    )


@pytest.fixture
def tiny_bert(tiny_bert_config):
    return build_bert(tiny_bert_config)


@pytest.fixture
def tiny_resnet():
    return build_resnet(
        ResNetConfig(depth=50, width_factor=1, image_size=32, num_classes=10)
    )


@pytest.fixture
def cluster():
    return paper_cluster()


@pytest.fixture
def small_cluster():
    return tiny_cluster(num_nodes=1, devices_per_node=4,
                        memory_bytes=2 * 1024**3)


@pytest.fixture
def bert_profiler(tiny_bert, cluster):
    return GraphProfiler(tiny_bert, cluster)


def chain_graph(n_layers: int = 6, width: int = 8):
    """A configurable linear chain used by property tests."""
    b = GraphBuilder(f"chain{n_layers}")
    x = b.input("x", (1, width))
    h = x
    for i in range(n_layers):
        h = b.linear(h, width, name=f"fc{i}")
        h = b.op("relu", [h], name=f"act{i}")
    y = b.input("y", (1, width))
    loss = b.op("mse_loss", [h, y], name="loss")
    return b.finish([loss])
