"""Property tests for the vectorized candidate-stage builders and the
vectorized Algorithm-1 engines against their per-entry / pure-Python
oracles.

The vectorized paths must be *exactly* equal (not approximately): the
plane builders reproduce the per-entry float64 arithmetic operation by
operation, and both DP engines replay the reference cell ordering for
``d_min`` pruning, so every comparison below uses strict equality.
"""

import dataclasses
import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.partitioner.stage_dp as stage_dp_mod
from repro.hardware import tiny_cluster
from repro.models import build_mlp
from repro.partitioner.atomic import atomic_partition
from repro.partitioner.blocks import Block, block_partition
from repro.partitioner.search import form_stage
from repro.partitioner.stage_dp import (
    DPContext,
    form_stage_dp,
    reference_form_stage_dp,
)
from repro.profiler import GraphProfiler


def make_ctx(k=6, batch_size=32, num_nodes=1, devices_per_node=4,
             memory_bytes=4 * 1024**3):
    graph = build_mlp((32, 64, 64, 64, 64, 16))
    cluster = tiny_cluster(num_nodes=num_nodes,
                           devices_per_node=devices_per_node,
                           memory_bytes=memory_bytes)
    profiler = GraphProfiler(graph, cluster)
    blocks = block_partition(graph, atomic_partition(graph), profiler,
                             num_blocks=k)
    return DPContext(graph, blocks, profiler, batch_size)


def solution_key(sol):
    """Every observable field of a DPSolution, ready for == comparison.

    Profiles are compared as field tuples: two runs build distinct
    StageProfile instances and dataclass ``__eq__`` requires identical
    classes, while the engines must agree on the *values*.
    """
    if sol is None:
        return None
    return (
        sol.boundaries,
        sol.device_counts,
        sol.num_microbatches,
        sol.num_stages,
        sol.replica_factor,
        sol.objective,
        sol.max_tf,
        sol.max_tb,
        [dataclasses.astuple(p)[:7] for p in sol.stage_profiles],
    )


class TestRangeMatrices:
    def test_all_ranges_match_reference(self):
        ctx = make_ctx()
        for lo in range(ctx.k):
            for hi in range(lo + 1, ctx.k + 1):
                assert ctx.range_meta(lo, hi) == \
                    ctx._range_meta_reference(lo, hi), (lo, hi)

    def test_all_ranges_match_reference_bert(self, tiny_bert, cluster):
        profiler = GraphProfiler(tiny_bert, cluster)
        blocks = block_partition(
            tiny_bert, atomic_partition(tiny_bert), profiler, num_blocks=8
        )
        ctx = DPContext(tiny_bert, blocks, profiler, 32)
        for lo in range(ctx.k):
            for hi in range(lo + 1, ctx.k + 1):
                assert ctx.range_meta(lo, hi) == \
                    ctx._range_meta_reference(lo, hi), (lo, hi)


class TestProfileTensors:
    @pytest.mark.parametrize(
        "D,R,MB,ckpt",
        [(4, 1, 1, False), (4, 1, 2, True), (3, 2, 4, True), (4, 2, 8, True),
         (2, 1, 16, True)],
    )
    def test_vectorized_matches_per_entry(self, D, R, MB, ckpt):
        ctx = make_ctx()
        fast = ctx._profile_tensors_vectorized(D, R, MB, ckpt)
        slow = ctx.profile_tensors_reference(D, R, MB, ckpt)
        for a, b in zip(fast, slow):
            assert np.array_equal(a, b)  # bit-exact, inf pattern included

    def test_dispatch_uses_vectorized_builder(self):
        ctx = make_ctx()
        TF, TB, MEM = ctx.profile_tensors(4, 1, 2, True)
        ref = ctx.profile_tensors_reference(4, 1, 2, True)
        assert np.array_equal(TF, ref[0])
        assert np.array_equal(TB, ref[1])
        assert np.array_equal(MEM, ref[2])

    def test_tensor_and_mask_caches_reused(self):
        ctx = make_ctx()
        a = ctx.profile_tensors(4, 1, 2, True)
        b = ctx.profile_tensors(4, 1, 2, True)
        assert all(x is y for x, y in zip(a, b))
        m1 = ctx._dp_tensors(4, 1, 2, True)
        m2 = ctx._dp_tensors(4, 1, 2, True)
        assert all(x is y for x, y in zip(m1, m2))

    def test_overridden_stage_profile_falls_back(self):
        class Doubled(DPContext):
            def stage_profile(self, lo, hi, replicas, R, MB, checkpointing):
                prof = super().stage_profile(
                    lo, hi, replicas, R, MB, checkpointing
                )
                if prof is None:
                    return None
                return dataclasses.replace(prof, time_fwd=prof.time_fwd * 2)

        base = make_ctx()
        ctx = Doubled(base.graph, base.blocks, base.profiler, base.batch_size)
        TF, _, _ = ctx.profile_tensors(4, 1, 1, False)
        ref = ctx.profile_tensors_reference(4, 1, 1, False)
        assert np.array_equal(TF, ref[0])  # the subclass's doubled times


class TestDPEngineEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        S=st.integers(min_value=1, max_value=4),
        D=st.integers(min_value=1, max_value=4),
        MB=st.sampled_from([1, 2, 4, 8]),
        R=st.sampled_from([1, 2]),
    )
    def test_full_engine_matches_reference(self, S, D, MB, R):
        ctx = make_ctx()
        fast = form_stage_dp(ctx, S, D, 32, R, MB)
        ref = reference_form_stage_dp(ctx, S, D, 32, R, MB)
        assert solution_key(fast) == solution_key(ref)

    @settings(max_examples=10, deadline=None)
    @given(
        S=st.integers(min_value=1, max_value=4),
        MB=st.sampled_from([1, 2, 4]),
        mem_mib=st.sampled_from([8, 16, 32, 64]),
    )
    def test_tight_memory_matches_reference(self, S, MB, mem_mib):
        """Memory-tight instances exercise the d_min replay: memory dead
        ends must prune exactly like the reference's per-cell loop."""
        ctx = make_ctx(memory_bytes=mem_mib * 1024**2)
        fast = form_stage_dp(ctx, S, 4, 32, 1, MB)
        ref = reference_form_stage_dp(ctx, S, 4, 32, 1, MB)
        assert solution_key(fast) == solution_key(ref)

    def test_row_engine_matches_full_engine(self, monkeypatch):
        """Forcing the per-(s, b) row engine (as used at atomic scale)
        must not change any field of any solution."""
        expected = {}
        ctx = make_ctx()
        for S, MB in itertools.product((1, 2, 3, 4), (1, 2, 4)):
            expected[(S, MB)] = solution_key(
                form_stage_dp(ctx, S, 4, 32, 1, MB)
            )
        full_states = ctx.states_evaluated

        monkeypatch.setattr(stage_dp_mod, "FULL_TENSOR_MAX_CELLS", 0)
        ctx2 = make_ctx()
        for (S, MB), want in expected.items():
            got = solution_key(form_stage_dp(ctx2, S, 4, 32, 1, MB))
            assert got == want, (S, MB)
        assert ctx2.states_evaluated == full_states

    def test_dmin_pruning_reduces_states(self):
        """With tight memory the pruning must visit strictly fewer states
        and still return the same objective."""
        pruned = make_ctx(memory_bytes=48 * 1024**2)
        unpruned = make_ctx(memory_bytes=48 * 1024**2)
        a = form_stage_dp(pruned, 2, 4, 32, 1, 2, dmin_pruning=True)
        b = form_stage_dp(unpruned, 2, 4, 32, 1, 2, dmin_pruning=False)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.objective == b.objective
        assert pruned.states_evaluated <= unpruned.states_evaluated


class TestAlgorithm2:
    def test_parallel_search_is_deterministic(self):
        serial = make_ctx(num_nodes=2, batch_size=32)
        threaded = make_ctx(num_nodes=2, batch_size=32)
        a = form_stage(serial, 2, 4, 32, parallel=False)
        b = form_stage(threaded, 2, 4, 32, parallel=True, max_workers=4)
        assert (a is None) == (b is None)
        assert solution_key(a.solution) == solution_key(b.solution)
        assert a.num_pipeline_nodes == b.num_pipeline_nodes
        assert a.devices_per_pipeline == b.devices_per_pipeline
        assert a.replica_factor == b.replica_factor
        assert a.candidates_tried == b.candidates_tried
        assert a.dp_calls == b.dp_calls
        assert serial.dp_calls == threaded.dp_calls
        assert serial.states_evaluated == threaded.states_evaluated

    @pytest.mark.parametrize("search_all", [True, False])
    def test_non_divisor_node_count_is_skipped(self, search_all):
        """3 nodes at n=2 used to raise ValueError mid-search; the level
        must be skipped and the search continue."""
        ctx = make_ctx(num_nodes=3, batch_size=48)
        result = form_stage(
            ctx, 3, 4, 48, search_all_stage_counts=search_all
        )
        assert result is not None
        assert result.num_pipeline_nodes == 1
        assert result.replica_factor == 3

    def test_estimated_iteration_time_memoized(self, monkeypatch):
        ctx = make_ctx()
        sol = form_stage_dp(ctx, 2, 4, 32, 1, 2)
        assert sol is not None

        import repro.pipeline.simulator as sim_mod

        calls = {"n": 0}
        original = sim_mod.simulate_sync_pipeline

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(sim_mod, "simulate_sync_pipeline", counting)
        first = sol.estimated_iteration_time()
        second = sol.estimated_iteration_time()
        assert first == second > 0
        assert calls["n"] == 1


class TestSummedAtomicContext:
    def test_vectorized_planes_match_per_entry(self, tiny_bert, cluster):
        """The ablation context overrides stage_profile AND supplies a
        matching plane builder; both must agree entry for entry."""
        from repro.experiments.coarsening_ablation import SummedAtomicContext

        profiler = GraphProfiler(tiny_bert, cluster)
        comps = atomic_partition(tiny_bert)
        atom_blocks = [
            Block(index=i, atomic_indices=(i,), tasks=c.tasks)
            for i, c in enumerate(comps)
        ]
        ctx = SummedAtomicContext(tiny_bert, atom_blocks, profiler, 32)
        for D, R, MB, ckpt in [(4, 1, 2, True), (2, 2, 1, False),
                               (4, 2, 4, True)]:
            fast = ctx.profile_tensors(D, R, MB, ckpt)
            slow = ctx.profile_tensors_reference(D, R, MB, ckpt)
            for a, b in zip(fast, slow):
                assert np.array_equal(a, b)
