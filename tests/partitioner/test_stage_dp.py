"""Tests for Algorithm 1 (form_stage_dp): correctness, optimality on
brute-forceable instances, pruning, and engine equivalence."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import paper_cluster, tiny_cluster
from repro.models import BertConfig, build_bert, build_mlp
from repro.partitioner.atomic import atomic_partition
from repro.partitioner.blocks import block_partition
from repro.partitioner.stage_dp import (
    DPContext,
    form_stage_dp,
    reference_form_stage_dp,
)
from repro.profiler import GraphProfiler


def make_ctx(graph=None, k=6, batch_size=32, cluster=None):
    graph = graph or build_mlp((32, 64, 64, 64, 64, 16))
    cluster = cluster or tiny_cluster(num_nodes=1, devices_per_node=4,
                                      memory_bytes=4 * 1024**3)
    profiler = GraphProfiler(graph, cluster)
    blocks = block_partition(graph, atomic_partition(graph), profiler,
                             num_blocks=k)
    return DPContext(graph, blocks, profiler, batch_size), cluster


class TestStageProfile:
    def test_microbatch_collapse_infeasible(self):
        ctx, _ = make_ctx(batch_size=4)
        # bs = 4/(1*4*2) < 1
        assert ctx.stage_profile(0, 1, 2, 1, 4, True) is None

    def test_comm_included(self):
        ctx, cluster = make_ctx()
        prof = ctx.stage_profile(0, 1, 1, 1, 1, False)
        # stage output must be sent: fwd time includes a p2p latency
        assert prof.time_fwd > cluster.comm_latency

    def test_checkpoint_recompute(self):
        ctx, _ = make_ctx()
        plain = ctx.stage_profile(0, 2, 1, 1, 1, False)
        ckpt = ctx.stage_profile(0, 2, 1, 1, 1, True)
        assert ckpt.time_bwd > plain.time_bwd

    def test_range_meta_cached(self):
        ctx, _ = make_ctx()
        a = ctx.range_meta(0, 3)
        b = ctx.range_meta(0, 3)
        assert a is b

    def test_range_tasks_dedup(self, tiny_bert, cluster):
        profiler = GraphProfiler(tiny_bert, cluster)
        blocks = block_partition(
            tiny_bert, atomic_partition(tiny_bert), profiler, num_blocks=4
        )
        ctx = DPContext(tiny_bert, blocks, profiler, 8)
        tasks = ctx.range_tasks(0, 4)
        assert len(tasks) == len(set(tasks))
        assert set(tasks) == set(tiny_bert.tasks)


class TestFormStageDP:
    def test_single_stage(self):
        ctx, _ = make_ctx()
        sol = form_stage_dp(ctx, 1, 4, 32, 1, 1)
        assert sol is not None
        assert sol.boundaries == [ctx.k]
        assert sol.device_counts == [4]

    def test_full_coverage_and_devices(self):
        ctx, _ = make_ctx()
        for S in (2, 3, 4):
            sol = form_stage_dp(ctx, S, 4, 32, 1, 2)
            if sol is None:
                continue
            assert sol.boundaries[-1] == ctx.k
            assert len(sol.boundaries) == S
            assert sum(sol.device_counts) == 4
            assert all(d >= 1 for d in sol.device_counts)
            assert sorted(sol.boundaries) == sol.boundaries

    def test_infeasible_when_stages_exceed_blocks(self):
        ctx, _ = make_ctx(k=3)
        assert form_stage_dp(ctx, 5, 4, 32, 1, 1) is None

    def test_infeasible_when_stages_exceed_devices(self):
        ctx, _ = make_ctx()
        assert form_stage_dp(ctx, 5, 4, 32, 1, 1) is None

    def test_memory_infeasibility(self):
        cluster = tiny_cluster(num_nodes=1, devices_per_node=2,
                               memory_bytes=2 * 1024**2)  # 2 MiB
        g = build_mlp((256, 512, 512, 256))
        profiler = GraphProfiler(g, cluster)
        blocks = block_partition(g, atomic_partition(g), profiler, num_blocks=4)
        ctx = DPContext(g, blocks, profiler, 8)
        assert form_stage_dp(ctx, 1, 2, 8, 1, 1) is None

    def test_batch_mismatch_raises(self):
        ctx, _ = make_ctx(batch_size=32)
        with pytest.raises(ValueError, match="batch size"):
            form_stage_dp(ctx, 1, 4, 64, 1, 1)

    def test_objective_is_max_tf_plus_max_tb(self):
        ctx, _ = make_ctx()
        sol = form_stage_dp(ctx, 2, 4, 32, 1, 2)
        assert sol is not None
        tf = max(p.time_fwd for p in sol.stage_profiles)
        tb = max(p.time_bwd for p in sol.stage_profiles)
        assert sol.objective == pytest.approx(tf + tb)
        assert sol.max_tf == pytest.approx(tf)
        assert sol.max_tb == pytest.approx(tb)

    def test_optimal_vs_bruteforce(self):
        """Exhaustive check on a small instance: the DP objective equals
        the best over all boundary/device assignments."""
        ctx, _ = make_ctx(k=5, batch_size=16)
        S, D, MB = 2, 3, 1
        sol = form_stage_dp(ctx, S, D, 16, 1, MB)
        assert sol is not None

        best = float("inf")
        for b1 in range(1, ctx.k):
            for d1 in range(1, D):
                profs = [
                    ctx.stage_profile(0, b1, d1, 1, MB, True),
                    ctx.stage_profile(b1, ctx.k, D - d1, 1, MB, True),
                ]
                if any(p is None for p in profs):
                    continue
                M = ctx.cluster.device.usable_memory
                if any(p.memory > M for p in profs):
                    continue
                v = max(p.time_fwd for p in profs) + max(
                    p.time_bwd for p in profs
                )
                best = min(best, v)
        assert sol.objective == pytest.approx(best)

    def test_dmin_pruning_preserves_solution(self):
        ctx1, _ = make_ctx()
        ctx2, _ = make_ctx()
        a = form_stage_dp(ctx1, 3, 4, 32, 1, 2, dmin_pruning=True)
        b = form_stage_dp(ctx2, 3, 4, 32, 1, 2, dmin_pruning=False)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.objective == pytest.approx(b.objective)

    def test_estimated_iteration_time_positive(self):
        ctx, _ = make_ctx()
        sol = form_stage_dp(ctx, 2, 4, 32, 1, 2)
        assert sol.estimated_iteration_time() > 0


class TestEngineEquivalence:
    @pytest.mark.parametrize("S,D,MB", [(1, 4, 1), (2, 4, 2), (3, 4, 1),
                                        (2, 3, 4), (4, 4, 1)])
    def test_matches_reference(self, S, D, MB):
        ctx, _ = make_ctx()
        fast = form_stage_dp(ctx, S, D, 32, 1, MB)
        ref = reference_form_stage_dp(ctx, S, D, 32, 1, MB)
        assert (fast is None) == (ref is None)
        if fast is not None:
            assert fast.objective == pytest.approx(ref.objective)
            assert fast.boundaries == ref.boundaries
            assert fast.device_counts == ref.device_counts

    @settings(max_examples=12, deadline=None)
    @given(
        S=st.integers(min_value=1, max_value=4),
        D=st.integers(min_value=1, max_value=4),
        MB=st.sampled_from([1, 2, 4]),
        R=st.sampled_from([1, 2]),
    )
    def test_matches_reference_property(self, S, D, MB, R):
        ctx, _ = make_ctx(batch_size=32)
        fast = form_stage_dp(ctx, S, D, 32, R, MB)
        ref = reference_form_stage_dp(ctx, S, D, 32, R, MB)
        assert (fast is None) == (ref is None)
        if fast is not None:
            assert fast.objective == pytest.approx(ref.objective)


class TestOnBert:
    def test_bert_multistage(self, tiny_bert, cluster):
        profiler = GraphProfiler(tiny_bert, cluster)
        blocks = block_partition(
            tiny_bert, atomic_partition(tiny_bert), profiler, num_blocks=8
        )
        ctx = DPContext(tiny_bert, blocks, profiler, 32)
        sol = form_stage_dp(ctx, 4, 8, 32, 4, 2)
        assert sol is not None
        assert len(sol.boundaries) == 4
        assert sum(sol.device_counts) == 8
