"""Tests for block-level partitioning: coarsening, uncoarsening,
compaction, and the structural invariants of the result."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.traversal import is_convex
from repro.hardware import paper_cluster, tiny_cluster
from repro.models import BertConfig, build_bert, build_diamond, build_mlp
from repro.partitioner.atomic import atomic_partition
from repro.partitioner.blocks import Block, BlockPartitioner, block_partition
from repro.profiler import GraphProfiler


def make_partitioner(graph, k=4, cluster=None, **kwargs):
    cluster = cluster or paper_cluster()
    profiler = GraphProfiler(graph, cluster)
    comps = atomic_partition(graph)
    return BlockPartitioner(graph, comps, profiler, num_blocks=k, **kwargs)


def check_block_invariants(graph, blocks, k):
    """Structural invariants every block partition must satisfy."""
    # each non-constant task appears in exactly one block; coverage total
    from repro.partitioner.atomic import classify_tasks

    nc = classify_tasks(graph)
    count = {t: 0 for t in graph.tasks}
    for b in blocks:
        for t in b.tasks:
            count[t] += 1
    for t, c in count.items():
        assert c >= 1, f"task {t} uncovered"
        if nc[t]:
            assert c == 1, f"non-constant task {t} in {c} blocks"
    assert len(blocks) <= max(k, len(blocks))
    # every block is convex
    for b in blocks:
        assert is_convex(graph, b.tasks), f"block {b.index} not convex"
    # blocks are topologically ordered: edges only point forward
    owner = {}
    for b in blocks:
        for t in b.tasks:
            if nc[t]:
                owner[t] = b.index
    for a, c in graph.iter_edges():
        if nc.get(a) and nc.get(c):
            assert owner[a] <= owner[c]


class TestBlockPartitionSmall:
    def test_mlp_chain(self, mlp_graph):
        bp = make_partitioner(mlp_graph, k=3)
        blocks = bp.run()
        assert len(blocks) == 3
        check_block_invariants(mlp_graph, blocks, 3)

    def test_diamond(self, diamond_graph):
        bp = make_partitioner(diamond_graph, k=2)
        blocks = bp.run()
        check_block_invariants(diamond_graph, blocks, 2)

    def test_fig2(self, fig2_graph):
        blocks = make_partitioner(fig2_graph, k=2).run()
        check_block_invariants(fig2_graph, blocks, 2)

    def test_k_larger_than_components(self, mlp_graph):
        bp = make_partitioner(mlp_graph, k=100)
        blocks = bp.run()
        # no forced merging: one block per atomic component
        assert len(blocks) == len(mlp_graph.tasks)
        check_block_invariants(mlp_graph, blocks, 100)

    def test_k_one(self, mlp_graph):
        blocks = make_partitioner(mlp_graph, k=1).run()
        assert len(blocks) == 1
        assert set(blocks[0].tasks) == set(mlp_graph.tasks)


class TestBert:
    def test_bert_blocks(self, tiny_bert):
        blocks = make_partitioner(tiny_bert, k=8).run()
        assert len(blocks) == 8
        check_block_invariants(tiny_bert, blocks, 8)

    def test_balance_quality(self):
        """Blocks of a uniform 12-layer BERT should be well balanced
        (the phase's whole purpose)."""
        g = build_bert(
            BertConfig(hidden_size=64, num_layers=12, num_heads=4,
                       seq_len=32, vocab_size=128)
        )
        bp = make_partitioner(g, k=8)
        blocks = bp.run()
        times = [bp._group_time(set(b.atomic_indices)) for b in blocks]
        assert max(times) / np.mean(times) < 1.5

    def test_memory_constraint_respected(self):
        """On a tiny-memory device no block may exceed the loose memory
        estimate (unless a single atom already does)."""
        g = build_bert(
            BertConfig(hidden_size=64, num_layers=4, num_heads=4,
                       seq_len=32, vocab_size=128)
        )
        cluster = tiny_cluster(memory_bytes=64 * 1024**2)
        bp = make_partitioner(g, k=2, cluster=cluster)
        blocks = bp.run()
        limit = cluster.device.usable_memory
        single_atom_max = max(
            bp._group_memory({i}) for i in range(len(bp.components))
        )
        for b in blocks:
            mem = bp._group_memory(set(b.atomic_indices))
            assert mem <= max(limit, single_atom_max) + 1e-6


class TestCoarsening:
    def test_records_accumulate(self, tiny_bert):
        bp = make_partitioner(tiny_bert, k=4)
        bp.coarsen()
        assert len(bp.records) >= 1
        assert all(r.part_v and r.part_w for r in bp.records)

    def test_threshold_respected(self, tiny_bert):
        bp = make_partitioner(tiny_bert, k=4)
        threshold = bp.balance_factor * float(bp.comp_time.sum()) / bp.k
        bp.coarsen()
        for atoms in bp.group_atoms.values():
            if len(atoms) > 1:  # merged groups obey the cap
                assert bp._group_time(atoms) <= threshold + 1e-12

    def test_groups_stay_convex_through_coarsening(self, diamond_graph):
        bp = make_partitioner(diamond_graph, k=2)
        bp.coarsen()
        for atoms in bp.group_atoms.values():
            tasks = set()
            for a in atoms:
                tasks |= set(bp.components[a].tasks)
            assert is_convex(diamond_graph, tasks)


class TestUncoarsening:
    def test_never_increases_cut(self, tiny_bert):
        bp = make_partitioner(tiny_bert, k=4)
        bp.coarsen()
        before = bp.total_cut_bytes()
        bp.uncoarsen()
        assert bp.total_cut_bytes() <= before + 1e-9

    def test_disabled(self, tiny_bert):
        bp = make_partitioner(tiny_bert, k=4, uncoarsen=False)
        bp.coarsen()
        assert bp.uncoarsen() == 0

    def test_moves_keep_convexity(self, tiny_bert):
        bp = make_partitioner(tiny_bert, k=4)
        bp.coarsen()
        bp.uncoarsen()
        for atoms in bp.group_atoms.values():
            tasks = set()
            for a in atoms:
                tasks |= set(bp.components[a].tasks)
            assert is_convex(tiny_bert, tasks)


class TestCompaction:
    def test_exact_partition_reaches_k(self, tiny_bert):
        bp = make_partitioner(tiny_bert, k=3)
        bp.coarsen()
        bp.compact()
        assert len(bp.group_atoms) == 3

    def test_greedy_variant_also_reaches_k(self, tiny_bert):
        bp = make_partitioner(tiny_bert, k=3)
        bp.coarsen()
        bp.compact_greedy()
        assert len(bp.group_atoms) <= max(
            3, len(bp.group_atoms)
        )  # merges until k or stuck
        # rebuild blocks and verify invariants regardless
        blocks = []
        order = bp.gg.topo_order()
        task_pos = {t: i for i, t in enumerate(tiny_bert.tasks)}
        for i, gid in enumerate(order):
            tasks = set()
            for a in bp.group_atoms[gid]:
                tasks |= set(bp.components[a].tasks)
            blocks.append(Block(i, tuple(sorted(bp.group_atoms[gid])),
                                tuple(sorted(tasks, key=task_pos.__getitem__))))
        check_block_invariants(tiny_bert, blocks, 3)

    def test_exact_beats_or_matches_greedy_balance(self, tiny_bert):
        bp1 = make_partitioner(tiny_bert, k=4)
        bp1.coarsen()
        bp1.compact()
        exact_max = max(
            bp1._group_time(a) for a in bp1.group_atoms.values()
        )
        bp2 = make_partitioner(tiny_bert, k=4)
        bp2.coarsen()
        bp2.compact_greedy()
        greedy_max = max(
            bp2._group_time(a) for a in bp2.group_atoms.values()
        )
        assert exact_max <= greedy_max + 1e-12


@settings(max_examples=15, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=6),
    layers=st.integers(min_value=2, max_value=6),
)
def test_block_invariants_random_chains(k, layers):
    """Property: invariants hold for any (k, depth) on MLP chains."""
    g = build_mlp(tuple([16] * (layers + 1)))
    cluster = paper_cluster()
    profiler = GraphProfiler(g, cluster)
    blocks = block_partition(g, atomic_partition(g), profiler, num_blocks=k)
    check_block_invariants(g, blocks, k)
    assert len(blocks) <= max(k, 1) or len(blocks) == len(g.tasks)
