"""System-level property tests on random DAG models: the invariants of
every partitioning phase, and numerical equivalence of plan execution,
must hold for arbitrary branchy graphs -- not just the paper's chains."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.traversal import is_convex
from repro.hardware import paper_cluster, tiny_cluster
from repro.models.random_dag import build_random_dag, random_batch
from repro.partitioner import auto_partition
from repro.partitioner.atomic import atomic_partition, check_atomic_invariants
from repro.partitioner.blocks import block_partition
from repro.profiler import GraphProfiler
from repro.runtime import Executor, PartitionedExecutor, init_parameters


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_atomic_invariants_random(seed):
    g = build_random_dag(seed=seed, num_nodes=10)
    comps = atomic_partition(g)
    check_atomic_invariants(g, comps)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    k=st.integers(min_value=1, max_value=5),
)
def test_block_invariants_random(seed, k):
    g = build_random_dag(seed=seed, num_nodes=10)
    profiler = GraphProfiler(g, paper_cluster())
    comps = atomic_partition(g)
    blocks = block_partition(g, comps, profiler, num_blocks=k)
    # coverage + convexity + topological block order
    covered = set()
    for blk in blocks:
        covered |= set(blk.tasks)
        assert is_convex(g, blk.tasks)
    assert covered == set(g.tasks)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_auto_partition_plans_cover_random_dags(seed):
    g = build_random_dag(seed=seed, num_nodes=12)
    cluster = tiny_cluster(num_nodes=1, devices_per_node=2,
                           memory_bytes=512 * 1024**2)
    plan = auto_partition(g, cluster, 8, num_blocks=6)
    covered = set()
    for s in plan.stages:
        covered |= set(s.tasks)
    assert covered == set(g.tasks)
    assert plan.throughput > 0


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    mb=st.sampled_from([1, 2]),
)
def test_plan_execution_equivalence_random(seed, mb):
    """The strongest property: for random DAGs, executing the REAL plan
    partition-wise equals whole-graph execution numerically."""
    g = build_random_dag(seed=seed, num_nodes=10)
    cluster = tiny_cluster(num_nodes=1, devices_per_node=2,
                           memory_bytes=512 * 1024**2)
    plan = auto_partition(g, cluster, 8, num_blocks=4)

    params = init_parameters(g, seed=seed)
    whole = Executor(g, params={k: v.copy() for k, v in params.items()})
    part = PartitionedExecutor(
        g, [s.tasks for s in plan.stages],
        params={k: v.copy() for k, v in params.items()},
        num_microbatches=mb, checkpointing=True,
    )
    batch = random_batch(g, 4, seed=seed + 1)
    lw, gw = whole.loss_and_grads(batch)
    lp, gp = part.loss_and_grads(batch)
    assert abs(lw - lp) < 1e-10
    assert set(gw) == set(gp)
    for kname in gw:
        assert np.abs(gw[kname] - gp[kname]).max() < 1e-9


def test_generator_determinism():
    a = build_random_dag(seed=5)
    b = build_random_dag(seed=5)
    assert list(a.tasks) == list(b.tasks)
    assert a.num_parameters() == b.num_parameters()


def test_generator_variety():
    graphs = [build_random_dag(seed=s) for s in range(5)]
    task_counts = {len(g.tasks) for g in graphs}
    assert len(task_counts) > 1  # different seeds, different structure
