"""Deployment serialization of the planning mode: inference plans
round-trip through JSON with ``mode`` preserved, while training
deployments stay byte-identical to earlier releases (no ``mode`` key)."""

import json

import pytest

from repro.hardware.presets import tiny_cluster
from repro.models.random_dag import build_random_dag
from repro.partitioner import auto_partition
from repro.partitioner.deployment import plan_from_json, plan_to_json


@pytest.fixture(scope="module")
def graph():
    return build_random_dag(seed=1, num_nodes=14, width=64)


@pytest.fixture(scope="module")
def cluster():
    return tiny_cluster(num_nodes=1, devices_per_node=4)


class TestDeploymentMode:
    def test_training_doc_has_no_mode_key(self, graph, cluster):
        plan = auto_partition(graph, cluster, batch_size=32, num_blocks=8)
        doc = json.loads(plan_to_json(plan, graph))
        assert "mode" not in doc

    def test_inference_round_trip(self, graph, cluster):
        plan = auto_partition(
            graph, cluster, batch_size=32, num_blocks=8, mode="inference"
        )
        text = plan_to_json(plan, graph)
        assert json.loads(text)["mode"] == "inference"
        restored = plan_from_json(text, graph, cluster)
        assert restored.mode == "inference"
        assert restored.iteration_time == pytest.approx(plan.iteration_time)
        assert restored.diagnostics.allreduce_time == 0.0
        assert restored.diagnostics.optimizer_time == 0.0

    def test_restored_training_defaults_to_training(self, graph, cluster):
        plan = auto_partition(graph, cluster, batch_size=32, num_blocks=8)
        restored = plan_from_json(plan_to_json(plan, graph), graph, cluster)
        assert restored.mode == "training"
        assert restored.iteration_time == pytest.approx(plan.iteration_time)
