"""Equivalence suite for the native-speed DP core.

Every DP engine (dense slab, banded, JIT kernel, legacy rows) and every
search backend (serial, thread, process) must produce *bit-identical*
results: same plans, same tie-breaks, same ``dp_calls`` /
``states_evaluated`` counters.  The banded profile construction is
additionally checked against the per-entry ``stage_profile`` oracle
(:meth:`DPContext.profile_tensors_reference`) with hypothesis-driven
shapes, so any drift between the vectorized band gather and the scalar
profile arithmetic fails loudly.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import tiny_cluster
from repro.models import build_mlp
from repro.models.random_dag import build_random_dag
from repro.obs import MetricsRegistry
from repro.partitioner import _dp_kernels
from repro.partitioner.atomic import atomic_partition
from repro.partitioner.blocks import block_partition
from repro.partitioner.search import SEARCH_BACKENDS, form_stage
from repro.partitioner.stage_dp import (
    DP_ENGINES,
    DPContext,
    FULL_TENSOR_MAX_CELLS,
    form_stage_dp,
    resolve_dp_engine,
)
from repro.planner import PlannerConfig
from repro.profiler import GraphProfiler

ENGINES = list(DP_ENGINES)


def make_ctx(graph=None, k=6, batch_size=32, cluster=None, seed=None):
    if graph is None:
        graph = (
            build_random_dag(seed=seed, num_nodes=10)
            if seed is not None
            else build_mlp((32, 64, 64, 64, 64, 16))
        )
    cluster = cluster or tiny_cluster(
        num_nodes=1, devices_per_node=4, memory_bytes=4 * 1024**3
    )
    profiler = GraphProfiler(graph, cluster)
    blocks = block_partition(
        graph, atomic_partition(graph), profiler, num_blocks=k
    )
    return DPContext(graph, blocks, profiler, batch_size)


def solution_key(sol):
    """Everything that identifies a DP solution, floats compared exactly."""
    if sol is None:
        return None
    return (
        tuple(sol.boundaries),
        tuple(sol.device_counts),
        sol.num_microbatches,
        sol.replica_factor,
        sol.objective,
        sol.max_tf,
        sol.max_tb,
        tuple((p.time_fwd, p.time_bwd, p.memory) for p in sol.stage_profiles),
    )


# ----------------------------------------------------------------------
# engine knob resolution


class TestResolveEngine:
    def test_small_instances_use_full_slab(self):
        assert resolve_dp_engine("numpy", 6, 4) == "full"
        assert resolve_dp_engine("auto", 6, 4) == "full"
        assert resolve_dp_engine("dense", 6, 4) == "full"

    def test_large_instances_split_by_knob(self):
        k = 600  # (601^2)(33^2) >> FULL_TENSOR_MAX_CELLS
        assert (k + 1) ** 2 * 33**2 > FULL_TENSOR_MAX_CELLS
        assert resolve_dp_engine("numpy", k, 32) == "banded"
        assert resolve_dp_engine("dense", k, 32) == "rows"

    def test_forced_engines(self):
        assert resolve_dp_engine("banded", 6, 4) == "banded"
        assert resolve_dp_engine("rows", 6, 4) == "rows"

    def test_numba_knob_degrades_to_banded_without_numba(self):
        expect = "kernel" if _dp_kernels.kernel_available() else "banded"
        assert resolve_dp_engine("numba", 6, 4) == expect

    def test_numba_knob_uses_kernel_when_available(self, monkeypatch):
        monkeypatch.setattr(_dp_kernels, "NUMBA_AVAILABLE", True)
        assert resolve_dp_engine("numba", 6, 4) == "kernel"

    def test_unsupported_context_falls_back_dense(self):
        assert resolve_dp_engine("banded", 6, 4, banded_supported=False) == (
            "full"
        )
        assert resolve_dp_engine(
            "numba", 600, 32, banded_supported=False
        ) == "rows"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown dp engine"):
            resolve_dp_engine("cuda", 6, 4)


# ----------------------------------------------------------------------
# banded construction vs the per-entry oracle


class TestBandedConstruction:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        D=st.integers(min_value=1, max_value=4),
        R=st.integers(min_value=1, max_value=2),
        MB=st.sampled_from([1, 2, 4]),
        checkpointing=st.booleans(),
    )
    def test_bands_match_reference(self, seed, D, R, MB, checkpointing):
        ctx = make_ctx(seed=seed, k=5, batch_size=16)
        span = ctx.k  # widest possible band: covers every (lo, hi]
        bands = ctx.profile_bands(D, R, MB, checkpointing, span)
        TF, TB, MEM = ctx.profile_tensors_reference(D, R, MB, checkpointing)
        for r in range(1, D + 1):
            p = int(bands.plane_of_r[r])
            if p < 0:
                # collapsed microbatch: the oracle has no entries either
                assert ctx.batch_size // (R * MB * r) < 1
                assert not np.isfinite(TF[:, :, r]).any()
                continue
            for lo in range(ctx.k):
                for j in range(span):
                    hi = lo + 1 + j
                    ref = (
                        (TF[lo, hi, r], TB[lo, hi, r], MEM[lo, hi, r])
                        if hi <= ctx.k
                        else (np.inf, np.inf, np.inf)
                    )
                    got = (
                        bands.tf[p, lo, j],
                        bands.tb[p, lo, j],
                        bands.mem[p, lo, j],
                    )
                    assert got == ref  # bit-identical, inf included

    def test_band_cache_grows_monotonically(self):
        ctx = make_ctx()
        m = MetricsRegistry()
        ctx.metrics = m
        narrow = ctx.profile_bands(4, 1, 2, True, 2)
        assert narrow.span == 2
        wide = ctx.profile_bands(4, 1, 2, True, 4)
        assert wide.span == 4
        again = ctx.profile_bands(4, 1, 2, True, 3)  # narrower: cache hit
        assert again is wide
        assert m.counter("profiler.band_builds").value == 2
        assert m.counter("profiler.band_cache_hits").value == 1

    def test_plane_dedup_by_microbatch(self):
        ctx = make_ctx(batch_size=32)
        bands = ctx.profile_bands(4, 1, 4, False, ctx.k)
        # bs = 32 // (4 * r) = 8, 4, 2, 2 -> r=3 and r=4 share a plane
        assert bands.plane_of_r[3] == bands.plane_of_r[4]
        assert len(bands.bs_list) == len(set(bands.bs_list))


# ----------------------------------------------------------------------
# engine bit-identity (plans AND counters)


class TestEngineBitIdentity:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2_000),
        S=st.integers(min_value=1, max_value=4),
        MB=st.sampled_from([1, 2, 4]),
    )
    def test_engines_identical_on_random_dags(self, seed, S, MB):
        ctx = make_ctx(seed=seed, k=6, batch_size=32)
        keys, counters = {}, {}
        for engine in ENGINES:
            m = MetricsRegistry()
            before = ctx.states_evaluated
            sol = form_stage_dp(
                ctx, S, 4, 32, 1, MB, engine=engine, metrics=m
            )
            keys[engine] = solution_key(sol)
            counters[engine] = (
                ctx.states_evaluated - before,
                m.counter("dp.states_evaluated").value,
                m.counter("dp.calls").value,
            )
        assert len(set(keys.values())) == 1, keys
        assert len(set(counters.values())) == 1, counters

    def test_engines_identical_under_memory_pressure(self):
        # a budget tight enough that memory failures drive d_min pruning
        cluster = tiny_cluster(
            num_nodes=1, devices_per_node=4, memory_bytes=24 * 1024**2
        )
        g = build_mlp((64, 256, 256, 256, 64))
        ctx = make_ctx(graph=g, k=8, batch_size=64, cluster=cluster)
        keys = {
            engine: solution_key(
                form_stage_dp(ctx, 2, 4, 64, 1, 2, engine=engine)
            )
            for engine in ENGINES
        }
        assert len(set(keys.values())) == 1, keys

    def test_python_kernel_matches_numpy(self, monkeypatch):
        # pretend numba is importable so the "numba" knob takes the
        # kernel path; the kernel body is plain Python without the JIT,
        # so this exercises the exact loop nest numba would compile
        monkeypatch.setattr(_dp_kernels, "NUMBA_AVAILABLE", True)
        for S, MB in [(1, 1), (2, 2), (3, 1), (4, 4)]:
            ctx = make_ctx(k=6, batch_size=32)
            ref = form_stage_dp(ctx, S, 4, 32, 1, MB, engine="numpy")
            got = form_stage_dp(ctx, S, 4, 32, 1, MB, engine="numba")
            assert solution_key(got) == solution_key(ref)

    def test_custom_stage_profile_context_avoids_bands(self):
        class Perturbed(DPContext):
            # r enters the profile directly: banding must be refused
            def stage_profile(self, lo, hi, r, R, MB, checkpointing):
                prof = super().stage_profile(lo, hi, r, R, MB, checkpointing)
                if prof is None:
                    return None
                return type(prof)(
                    time_fwd=prof.time_fwd * (1 + 0.01 * r),
                    time_bwd=prof.time_bwd,
                    memory=prof.memory,
                    microbatch_size=prof.microbatch_size,
                    in_bytes=prof.in_bytes,
                    out_bytes=prof.out_bytes,
                    param_count=prof.param_count,
                )

        base = make_ctx()
        ctx = Perturbed(base.graph, base.blocks, base.profiler, 32)
        assert not ctx.supports_banded
        # "banded" silently falls back to a dense engine and still
        # returns the perturbed-profile optimum
        a = form_stage_dp(ctx, 2, 4, 32, 1, 2, engine="banded")
        b = form_stage_dp(ctx, 2, 4, 32, 1, 2, engine="rows")
        assert solution_key(a) == solution_key(b)


# ----------------------------------------------------------------------
# search backends


class TestSearchBackends:
    def run_backend(self, backend):
        ctx = make_ctx(k=8, batch_size=32)
        m = MetricsRegistry()
        res = form_stage(
            ctx, 1, 4, 32, backend=backend, metrics=m, max_workers=2
        )
        assert res is not None
        return (
            solution_key(res.solution),
            res.candidates_tried,
            res.dp_calls,
            ctx.dp_calls,
            ctx.states_evaluated,
            m.snapshot(),
        )

    def test_backends_bit_identical(self):
        results = {b: self.run_backend(b) for b in SEARCH_BACKENDS}
        assert results["serial"] == results["thread"]
        assert results["serial"] == results["process"]

    def test_unknown_backend_rejected(self):
        ctx = make_ctx()
        with pytest.raises(ValueError, match="unknown search backend"):
            form_stage(ctx, 1, 4, 32, backend="mpi")


# ----------------------------------------------------------------------
# context snapshot/fork (the process backend's transport)


class TestContextPickle:
    def test_dp_context_roundtrip_preserves_solutions(self):
        ctx = make_ctx(k=6, batch_size=32)
        before = solution_key(form_stage_dp(ctx, 2, 4, 32, 1, 2))
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone.k == ctx.k
        assert clone.batch_size == ctx.batch_size
        after = solution_key(form_stage_dp(clone, 2, 4, 32, 1, 2))
        assert after == before

    def test_dp_context_roundtrip_carries_warm_caches(self):
        ctx = make_ctx(k=6, batch_size=32)
        form_stage_dp(ctx, 2, 4, 32, 1, 2)  # warm the profile caches
        exported = ctx.export_cache_state()
        clone = pickle.loads(pickle.dumps(ctx))
        assert set(clone.export_cache_state()) == set(exported)

    def test_profiler_lock_survives_roundtrip(self):
        ctx = make_ctx()
        clone_prof = pickle.loads(pickle.dumps(ctx.profiler))
        # the re-created lock must actually work
        with clone_prof._lock:
            pass
        tasks = list(ctx.graph.tasks)[:3]
        assert (
            clone_prof.profile(tasks, 4).time_fwd
            == ctx.profiler.profile(tasks, 4).time_fwd
        )


# ----------------------------------------------------------------------
# config plumbing


class TestConfigKnobs:
    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError, match="dp_engine"):
            PlannerConfig(batch_size=32, dp_engine="cuda")

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError, match="search_backend"):
            PlannerConfig(batch_size=32, search_backend="mpi")

    def test_run_mode_knobs_not_fingerprinted(self):
        base = PlannerConfig(batch_size=32)
        assert (
            PlannerConfig(batch_size=32, dp_engine="banded").fingerprint()
            == base.fingerprint()
        )
        assert (
            PlannerConfig(
                batch_size=32, search_backend="process"
            ).fingerprint()
            == base.fingerprint()
        )
        assert (
            PlannerConfig(batch_size=32, search_workers=7).fingerprint()
            == base.fingerprint()
        )
