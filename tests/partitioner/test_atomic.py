"""Tests for atomic-level partitioning (Sec. III-A)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import BertConfig, build_bert, build_diamond, build_mlp
from repro.models.mlp import build_fig2_example, build_shared_constant
from repro.partitioner.atomic import (
    atomic_partition,
    check_atomic_invariants,
    classify_tasks,
)


class TestClassify:
    def test_fig2_classification(self, fig2_graph):
        nc = classify_tasks(fig2_graph)
        assert not nc["transpose_w1"] and not nc["transpose_w3"]
        assert nc["matmul_1"] and nc["add_1"] and nc["matmul_2"] and nc["loss"]

    def test_all_nonconstant_in_mlp(self, mlp_graph):
        nc = classify_tasks(mlp_graph)
        assert all(nc.values())

    def test_bert_constants_are_decoder_transpose(self, tiny_bert):
        nc = classify_tasks(tiny_bert)
        constants = [t for t, flag in nc.items() if not flag]
        assert constants == ["mlm.decoder_weight_t"]


class TestFig2Example:
    """The paper's running example: components C1..C3 of Fig. 2(b)."""

    def test_components(self, fig2_graph):
        comps = atomic_partition(fig2_graph)
        by_nc = {c.non_constant_task: set(c.tasks) for c in comps}
        # transposes folded into the consuming matmuls (C2, C3)
        assert by_nc["matmul_1"] == {"transpose_w1", "matmul_1"}
        assert by_nc["matmul_2"] == {"transpose_w3", "matmul_2"}
        # the add is its own component (C1)
        assert by_nc["add_1"] == {"add_1"}

    def test_invariants(self, fig2_graph):
        comps = atomic_partition(fig2_graph)
        check_atomic_invariants(fig2_graph, comps)


class TestCloning:
    def test_shared_constant_cloned(self):
        g = build_shared_constant()
        comps = atomic_partition(g)
        check_atomic_invariants(g, comps)
        owners = [c for c in comps if "transpose_w" in c.tasks]
        assert len(owners) == 2
        assert {o.non_constant_task for o in owners} == {"matmul_a", "matmul_b"}

    def test_bert_tied_decoder_not_cloned(self, tiny_bert):
        # single consumer: the transpose lands in exactly one component
        comps = atomic_partition(tiny_bert)
        owners = [c for c in comps if "mlm.decoder_weight_t" in c.tasks]
        assert len(owners) == 1
        assert owners[0].non_constant_task == "mlm.decoder"


class TestInvariants:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: build_mlp((8, 16, 4)),
            lambda: build_diamond(8),
            lambda: build_fig2_example(4),
            lambda: build_shared_constant(4),
            lambda: build_bert(
                BertConfig(hidden_size=32, num_layers=2, num_heads=4,
                           seq_len=8, vocab_size=64)
            ),
        ],
    )
    def test_invariants_hold(self, factory):
        g = factory()
        comps = atomic_partition(g)
        check_atomic_invariants(g, comps)

    def test_one_component_per_nonconstant(self, tiny_bert):
        comps = atomic_partition(tiny_bert)
        nc = classify_tasks(tiny_bert)
        assert len(comps) == sum(nc.values())

    def test_components_topologically_indexed(self, tiny_bert):
        comps = atomic_partition(tiny_bert)
        order = {t: i for i, t in enumerate(tiny_bert.tasks)}
        positions = [order[c.non_constant_task] for c in comps]
        assert positions == sorted(positions)

    def test_bert_component_count_scales_with_layers(self):
        c2 = atomic_partition(
            build_bert(BertConfig(hidden_size=32, num_layers=2, num_heads=4,
                                  seq_len=8, vocab_size=64))
        )
        c4 = atomic_partition(
            build_bert(BertConfig(hidden_size=32, num_layers=4, num_heads=4,
                                  seq_len=8, vocab_size=64))
        )
        assert len(c4) > len(c2)

    def test_errors_without_nonconstant(self):
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder("const_only")
        w = b.param("w", (4, 4))
        wt = b.op("transpose", [w])
        b.input("x", (1, 4))
        g = b.graph
        g.mark_output(wt.name)
        with pytest.raises(ValueError, match="no non-constant"):
            atomic_partition(g)


@settings(max_examples=20, deadline=None)
@given(layers=st.integers(min_value=1, max_value=5))
def test_mlp_components_equal_tasks(layers):
    """Property: in a graph with no constant tasks, every component is a
    singleton and components == tasks."""
    widths = tuple([8] * (layers + 1))
    g = build_mlp(widths)
    comps = atomic_partition(g)
    assert len(comps) == len(g.tasks)
    assert all(len(c) == 1 for c in comps)
