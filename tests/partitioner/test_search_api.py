"""Tests for Algorithm 2 (form_stage), device allocation, plans and the
auto_partition public API."""

import pytest

from repro.hardware import Precision, paper_cluster, tiny_cluster
from repro.models import BertConfig, build_bert, build_mlp, build_resnet
from repro.models.configs import ResNetConfig
from repro.partitioner import PartitioningError, auto_partition
from repro.partitioner.allocation import allocate_devices
from repro.partitioner.atomic import atomic_partition
from repro.partitioner.blocks import block_partition
from repro.partitioner.search import form_stage
from repro.partitioner.stage_dp import DPContext
from repro.profiler import GraphProfiler


def make_ctx(graph, cluster, batch_size, k=8):
    profiler = GraphProfiler(graph, cluster)
    blocks = block_partition(graph, atomic_partition(graph), profiler,
                             num_blocks=k)
    return DPContext(graph, blocks, profiler, batch_size)


class TestFormStage:
    def test_small_model_single_node(self):
        cluster = tiny_cluster(num_nodes=2, devices_per_node=2,
                               memory_bytes=1024**3)
        g = build_mlp((32, 64, 64, 16))
        ctx = make_ctx(g, cluster, 16)
        result = form_stage(ctx, 2, 2, 16)
        assert result is not None
        # tiny model: one pipeline per node, replicated across nodes
        assert result.num_pipeline_nodes == 1
        assert result.replica_factor == 2
        assert sum(result.solution.device_counts) == 2

    def test_escalates_nodes_when_memory_tight(self):
        # model too big for one node's devices but fits across two
        cluster = tiny_cluster(num_nodes=2, devices_per_node=2,
                               memory_bytes=36 * 1024**2)
        g = build_mlp((256, 1024, 1024, 1024, 1024, 256))
        ctx = make_ctx(g, cluster, 8)
        result = form_stage(ctx, 2, 2, 8)
        assert result is not None
        assert result.num_pipeline_nodes == 2
        assert result.replica_factor == 1
        assert result.solution.num_stages >= 3

    def test_infeasible_returns_none(self):
        cluster = tiny_cluster(num_nodes=1, devices_per_node=2,
                               memory_bytes=1024**2)
        g = build_mlp((256, 1024, 1024, 256))
        ctx = make_ctx(g, cluster, 8)
        assert form_stage(ctx, 1, 2, 8) is None

    def test_strict_pseudocode_mode(self):
        cluster = tiny_cluster(num_nodes=1, devices_per_node=4,
                               memory_bytes=1024**3)
        g = build_mlp((32, 64, 64, 64, 16))
        ctx = make_ctx(g, cluster, 16)
        strict = form_stage(ctx, 1, 4, 16, search_all_stage_counts=False)
        full = form_stage(ctx, 1, 4, 16, search_all_stage_counts=True)
        assert strict is not None and full is not None
        # strict returns the first feasible S: never more stages than full
        assert strict.num_stages <= full.num_stages
        # the full search is at least as good
        assert (
            full.solution.estimated_iteration_time()
            <= strict.solution.estimated_iteration_time() + 1e-12
        )

    def test_max_microbatches_cap(self):
        cluster = tiny_cluster(num_nodes=1, devices_per_node=2,
                               memory_bytes=1024**3)
        g = build_mlp((32, 64, 16))
        ctx = make_ctx(g, cluster, 64, k=4)
        result = form_stage(ctx, 1, 2, 64, max_microbatches=2)
        assert result is not None
        assert result.solution.num_microbatches <= 2

    def test_batch_mismatch(self):
        cluster = tiny_cluster()
        g = build_mlp((8, 8))
        ctx = make_ctx(g, cluster, 8, k=2)
        with pytest.raises(ValueError, match="batch size"):
            form_stage(ctx, 1, 4, 16)


class TestAllocation:
    def test_contiguous_assignment(self):
        cluster = paper_cluster()
        assignment = allocate_devices(cluster, [2, 3, 3], 4)
        assert assignment.devices_of(0, 0) == (0, 1)
        assert assignment.devices_of(0, 1) == (2, 3, 4)
        assert assignment.devices_of(1, 0) == (8, 9)
        assert assignment.total_devices_used() == 32

    def test_coverage_enforced(self):
        cluster = paper_cluster()
        # over-subscription always fails
        with pytest.raises(ValueError, match="allocation covers"):
            allocate_devices(cluster, [8, 8], 4)  # 64 > 32
        # partial coverage is allowed: elastic repair and heterogeneous
        # prefix levels leave trailing ranks idle
        assignment = allocate_devices(cluster, [2, 2], 4)  # 16 of 32
        assert assignment.total_devices_used() == 16

    def test_boundary_bytes_validated_under_flat(self):
        # a malformed boundary list must fail under every comm model,
        # not only when the topology scoring consumes it
        cluster = paper_cluster()
        with pytest.raises(ValueError, match="boundary_bytes"):
            allocate_devices(cluster, [4, 4], 4, boundary_bytes=[1.0, 2.0])

    def test_stage_spans_nodes(self):
        cluster = paper_cluster()
        assignment = allocate_devices(cluster, [6, 6, 4], 2)
        assert not assignment.stage_spans_nodes(0, 0)  # ranks 0-5
        assert assignment.stage_spans_nodes(0, 1)  # ranks 6-11 cross node 0/1

    def test_crossing_is_internode(self):
        cluster = paper_cluster()
        assignment = allocate_devices(cluster, [8, 8], 2)
        # stage0 ends at rank 7 (node 0), stage1 starts at rank 8 (node 1)
        assert assignment.crossing_is_internode(0, 0)
        assert not assignment.crossing_is_internode(0, 1)  # last stage


class TestAutoPartition:
    def test_plan_structure(self, tiny_bert, cluster):
        plan = auto_partition(tiny_bert, cluster, 64)
        assert plan.total_devices == cluster.total_devices
        assert plan.throughput > 0
        assert plan.iteration_time > 0
        covered = set()
        for s in plan.stages:
            covered |= set(s.tasks)
        assert covered == set(tiny_bert.tasks)
        assert plan.assignment is not None
        assert plan.per_microbatch_time > 0
        assert "pipeline_time" in plan.diagnostics.as_dict()

    def test_summary_renders(self, tiny_bert, cluster):
        plan = auto_partition(tiny_bert, cluster, 64)
        text = plan.summary()
        assert "PartitionPlan" in text and "stage 0" in text

    def test_small_model_becomes_data_parallel(self, cluster):
        g = build_mlp((64, 128, 64, 10))
        plan = auto_partition(g, cluster, 64)
        assert plan.num_stages == 1  # degenerates to DP + accumulation

    def test_infeasible_raises(self):
        cluster = tiny_cluster(num_nodes=1, devices_per_node=2,
                               memory_bytes=1024**2)
        g = build_mlp((256, 1024, 1024, 256))
        with pytest.raises(PartitioningError):
            auto_partition(g, cluster, 8)

    def test_bad_batch_size(self, tiny_bert, cluster):
        with pytest.raises(ValueError):
            auto_partition(tiny_bert, cluster, 0)

    def test_validation_catches_corrupt_graph(self, mlp_graph, cluster):
        mlp_graph.tasks["act0"].op_type = "mystery"
        with pytest.raises(Exception, match="unknown op"):
            auto_partition(mlp_graph, cluster, 8)

    def test_amp_plan(self, tiny_bert, cluster):
        fp32 = auto_partition(tiny_bert, cluster, 64, precision=Precision.FP32)
        amp = auto_partition(tiny_bert, cluster, 64, precision=Precision.AMP)
        assert amp.throughput > fp32.throughput

    def test_resnet_partition(self, cluster):
        g = build_resnet(ResNetConfig(depth=50, width_factor=1, image_size=64))
        plan = auto_partition(g, cluster, 64)
        assert plan.throughput > 0

    def test_stage_devices_sum_to_pipeline(self, tiny_bert, cluster):
        plan = auto_partition(tiny_bert, cluster, 64)
        assert plan.devices_per_pipeline * plan.replica_factor == 32
        for i in range(plan.num_stages):
            assert plan.stage_replicas(i) == (
                plan.stages[i].devices_per_pipeline * plan.replica_factor
            )
