"""Topology-aware device allocation: permutation scoring, the identity
tie-break that keeps flat runs byte-identical, and the footnote-3
property that full plans keep stage boundaries on NVLink whenever a
pipeline fits inside a node."""

import pytest

from repro.hardware.presets import paper_cluster, tiny_cluster
from repro.models import BertConfig, build_bert
from repro.partitioner import auto_partition
from repro.partitioner.allocation import allocate_devices, boundary_report


class TestAllocateDevices:
    def test_flat_model_never_permutes(self):
        cl = tiny_cluster(num_nodes=2, devices_per_node=2)
        asg = allocate_devices(cl, [1, 1, 1, 1], 1,
                               boundary_bytes=[1e3, 1e9, 1e3])
        # contiguous identity order regardless of the weights
        assert [asg.devices_of(0, s) for s in range(4)] == [
            (0,), (1,), (2,), (3,)
        ]

    def test_identity_wins_ties_under_topology(self):
        # uniform weights on a single node: every ordering costs the
        # same, so the assignment must stay byte-identical to flat
        cl = tiny_cluster(num_nodes=1, devices_per_node=4,
                          comm_model="topology")
        asg = allocate_devices(cl, [2, 1, 1], 1)
        assert [asg.devices_of(0, s) for s in range(3)] == [
            (0, 1), (2,), (3,)
        ]

    def test_reorders_to_keep_heavy_boundary_on_nvlink(self):
        # four 1-device stages on a 2x2 cluster: contiguity forces one
        # boundary across the node gap; the scoring must move the cheap
        # boundary there, not the 1 GB one
        cl = tiny_cluster(num_nodes=2, devices_per_node=2,
                          comm_model="topology")
        asg = allocate_devices(cl, [1, 1, 1, 1], 1,
                               boundary_bytes=[1e3, 1e9, 1e3])
        assert not asg.crossing_is_internode(0, 1)
        report = boundary_report(asg, 1, 4)
        assert report["internode_boundaries"] >= 1.0  # the gap is real
        # and the allocation still covers each rank exactly once
        used = sorted(r for s in range(4) for r in asg.devices_of(0, s))
        assert used == [0, 1, 2, 3]

    def test_wrong_boundary_bytes_length_raises(self):
        cl = tiny_cluster(num_nodes=1, devices_per_node=4,
                          comm_model="topology")
        with pytest.raises(ValueError, match="boundary_bytes"):
            allocate_devices(cl, [2, 2], 1, boundary_bytes=[1.0, 2.0])

    def test_oversubscription_raises(self):
        cl = tiny_cluster()  # 1 node x 4 devices
        with pytest.raises(ValueError, match="allocation covers"):
            allocate_devices(cl, [3, 3], 1)  # 6 > 4
        # partial coverage is legal (elastic repair / hetero prefixes)
        asg = allocate_devices(cl, [2], 1)
        assert asg.total_devices_used() == 2


class TestBoundaryReport:
    def test_all_nvlink_on_single_node(self):
        cl = tiny_cluster(num_nodes=1, devices_per_node=4)
        asg = allocate_devices(cl, [2, 2], 1)
        report = boundary_report(asg, 1, 2)
        assert report == {
            "boundaries": 1.0,
            "internode_boundaries": 0.0,
            "nvlink_boundary_frac": 1.0,
        }

    def test_single_stage_has_no_boundaries(self):
        cl = tiny_cluster(num_nodes=1, devices_per_node=4)
        asg = allocate_devices(cl, [4], 1)
        assert boundary_report(asg, 1, 1)["nvlink_boundary_frac"] == 1.0


class TestFootnote3:
    """The paper's footnote 3: because Algorithm 2 aligns pipelines to
    whole nodes, stage-to-stage traffic travels over NVLink.  Under the
    topology model the planner now *checks* that instead of assuming
    it."""

    @pytest.mark.parametrize("num_nodes", [2, 4])
    def test_planned_stage_edges_stay_on_nvlink(self, num_nodes):
        graph = build_bert(
            BertConfig(hidden_size=768, num_layers=12, num_heads=12)
        )
        cluster = paper_cluster(num_nodes, comm_model="topology")
        plan = auto_partition(graph, cluster, batch_size=256)
        assert plan.assignment is not None
        D = sum(s.devices_per_pipeline for s in plan.stages)
        assert D <= cluster.devices_per_node  # premise of footnote 3
        report = boundary_report(
            plan.assignment, plan.replica_factor, plan.num_stages
        )
        assert report["internode_boundaries"] == 0.0
        assert report["nvlink_boundary_frac"] == 1.0
        assert plan.diagnostics.comm_model == "topology"
