"""Tests for the deployment cache (plan JSON round-trip) and plan-driven
runtime execution (PartitionedExecutor.from_plan)."""

import numpy as np
import pytest

from repro.hardware import paper_cluster, tiny_cluster
from repro.models import BertConfig, build_bert, build_mlp
from repro.partitioner import auto_partition
from repro.partitioner.deployment import (
    DeploymentMismatchError,
    graph_fingerprint,
    plan_from_json,
    plan_to_json,
)
from repro.runtime import Executor, PartitionedExecutor, init_parameters


@pytest.fixture(scope="module")
def bert_setup():
    cfg = BertConfig(hidden_size=32, num_layers=2, num_heads=4, seq_len=16,
                     vocab_size=101)
    graph = build_bert(cfg)
    cluster = paper_cluster()
    plan = auto_partition(graph, cluster, 64)
    return cfg, graph, cluster, plan


class TestFingerprint:
    def test_stable(self, mlp_graph):
        assert graph_fingerprint(mlp_graph) == graph_fingerprint(mlp_graph)

    def test_sensitive_to_content(self):
        a = graph_fingerprint(build_mlp((8, 16, 4)))
        b = graph_fingerprint(build_mlp((8, 17, 4)))
        assert a != b


class TestRoundTrip:
    def test_plan_preserved(self, bert_setup):
        _, graph, cluster, plan = bert_setup
        text = plan_to_json(plan, graph)
        restored = plan_from_json(text, graph, cluster)
        assert restored.num_stages == plan.num_stages
        assert restored.num_microbatches == plan.num_microbatches
        assert restored.replica_factor == plan.replica_factor
        assert restored.batch_size == plan.batch_size
        for a, b in zip(restored.stages, plan.stages):
            assert a.tasks == b.tasks
            assert a.devices_per_pipeline == b.devices_per_pipeline
            assert a.profile.time_fwd == pytest.approx(b.profile.time_fwd)
        # throughput re-evaluated identically
        assert restored.throughput == pytest.approx(plan.throughput)

    def test_wrong_graph_rejected(self, bert_setup):
        _, graph, cluster, plan = bert_setup
        text = plan_to_json(plan, graph)
        other = build_mlp((8, 16, 4))
        with pytest.raises(DeploymentMismatchError, match="different model"):
            plan_from_json(text, other, cluster)

    def test_wrong_cluster_rejected(self, bert_setup):
        _, graph, cluster, plan = bert_setup
        text = plan_to_json(plan, graph)
        with pytest.raises(DeploymentMismatchError, match="cluster"):
            plan_from_json(text, graph, tiny_cluster())

    def test_corrupt_version_rejected(self, bert_setup):
        _, graph, cluster, plan = bert_setup
        text = plan_to_json(plan, graph).replace('"version": 1', '"version": 9')
        with pytest.raises(DeploymentMismatchError, match="version"):
            plan_from_json(text, graph, cluster)


class TestFromPlan:
    def test_plan_execution_matches_whole_graph(self, bert_setup, rng):
        """End-to-end: the REAL partitioner's plan, executed by the REAL
        runtime, equals whole-graph execution."""
        cfg, graph, cluster, plan = bert_setup
        params = init_parameters(graph, seed=11)
        whole = Executor(graph, params={k: v.copy() for k, v in params.items()})
        pe = PartitionedExecutor.from_plan(
            graph, plan, params={k: v.copy() for k, v in params.items()}
        )
        n = plan.num_microbatches * 2
        batch = {
            "input_ids": rng.integers(0, cfg.vocab_size, (n, cfg.seq_len)),
            "token_type_ids": rng.integers(0, 2, (n, cfg.seq_len)),
            "attention_mask": np.zeros((n, 1, 1, cfg.seq_len)),
            "mlm_labels": rng.integers(0, cfg.vocab_size, (n, cfg.seq_len)),
            "nsp_labels": rng.integers(0, 2, (n,)),
        }
        lw, gw = whole.loss_and_grads(batch)
        lp, gp = pe.loss_and_grads(batch)
        assert lw == pytest.approx(lp, abs=1e-10)
        for k in gw:
            assert np.abs(gw[k] - gp[k]).max() < 1e-9

    def test_from_plan_respects_microbatches(self, bert_setup):
        _, graph, _, plan = bert_setup
        pe = PartitionedExecutor.from_plan(graph, plan)
        assert pe.num_microbatches == plan.num_microbatches
        assert pe.checkpointing == (plan.num_stages > 1)
