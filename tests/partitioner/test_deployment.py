"""Tests for the deployment cache (plan JSON round-trip) and plan-driven
runtime execution (PartitionedExecutor.from_plan)."""

import json

import numpy as np
import pytest

from repro.hardware import paper_cluster, tiny_cluster
from repro.models import BertConfig, build_bert, build_mlp
from repro.partitioner import auto_partition
from repro.partitioner.deployment import (
    DeploymentMismatchError,
    graph_fingerprint,
    plan_from_json,
    plan_to_json,
)
from repro.runtime import Executor, PartitionedExecutor, init_parameters
from repro.verify import PlanVerificationError


@pytest.fixture(scope="module")
def bert_setup():
    cfg = BertConfig(hidden_size=32, num_layers=2, num_heads=4, seq_len=16,
                     vocab_size=101)
    graph = build_bert(cfg)
    cluster = paper_cluster()
    plan = auto_partition(graph, cluster, 64)
    return cfg, graph, cluster, plan


class TestFingerprint:
    def test_stable(self, mlp_graph):
        assert graph_fingerprint(mlp_graph) == graph_fingerprint(mlp_graph)

    def test_sensitive_to_content(self):
        a = graph_fingerprint(build_mlp((8, 16, 4)))
        b = graph_fingerprint(build_mlp((8, 17, 4)))
        assert a != b


class TestRoundTrip:
    def test_plan_preserved(self, bert_setup):
        _, graph, cluster, plan = bert_setup
        text = plan_to_json(plan, graph)
        restored = plan_from_json(text, graph, cluster)
        assert restored.num_stages == plan.num_stages
        assert restored.num_microbatches == plan.num_microbatches
        assert restored.replica_factor == plan.replica_factor
        assert restored.batch_size == plan.batch_size
        for a, b in zip(restored.stages, plan.stages):
            assert a.tasks == b.tasks
            assert a.devices_per_pipeline == b.devices_per_pipeline
            assert a.profile.time_fwd == pytest.approx(b.profile.time_fwd)
        # throughput re-evaluated identically
        assert restored.throughput == pytest.approx(plan.throughput)

    def test_wrong_graph_rejected(self, bert_setup):
        _, graph, cluster, plan = bert_setup
        text = plan_to_json(plan, graph)
        other = build_mlp((8, 16, 4))
        with pytest.raises(DeploymentMismatchError, match="different model"):
            plan_from_json(text, other, cluster)

    def test_wrong_cluster_rejected(self, bert_setup):
        _, graph, cluster, plan = bert_setup
        text = plan_to_json(plan, graph)
        with pytest.raises(DeploymentMismatchError, match="cluster"):
            plan_from_json(text, graph, tiny_cluster())

    def test_corrupt_version_rejected(self, bert_setup):
        _, graph, cluster, plan = bert_setup
        text = plan_to_json(plan, graph).replace('"version": 1', '"version": 9')
        with pytest.raises(DeploymentMismatchError, match="version"):
            plan_from_json(text, graph, cluster)


class TestRestoredPlanVerification:
    """Regressions: structurally well-formed deployment JSON whose
    *content* violates plan invariants must be rejected on load, not
    silently deployed."""

    @pytest.fixture(scope="class")
    def pipelined_setup(self):
        from repro.models.random_dag import build_random_dag

        cluster = tiny_cluster(num_nodes=1, devices_per_node=4,
                               memory_bytes=256 * 1024)
        for seed in range(8):
            graph = build_random_dag(seed=seed, num_nodes=14, width=64)
            plan = auto_partition(graph, cluster, 32, num_blocks=8)
            if plan.num_stages >= 2:
                return graph, cluster, plan
        raise AssertionError("no seed in 0..7 produced a multi-stage plan")

    @staticmethod
    def drop_last_stage(doc):
        """Remove the final stage but keep the device allocation exactly
        covering the cluster (otherwise allocation fails first)."""
        removed = doc["stages"].pop()
        doc["stages"][0]["devices_per_pipeline"] += (
            removed["devices_per_pipeline"]
        )

    def test_dropped_stage_rejected(self, pipelined_setup):
        graph, cluster, plan = pipelined_setup
        doc = json.loads(plan_to_json(plan, graph))
        self.drop_last_stage(doc)
        with pytest.raises(PlanVerificationError, match="not assigned"):
            plan_from_json(json.dumps(doc), graph, cluster)

    def test_task_in_two_stages_rejected(self, pipelined_setup):
        from repro.partitioner.atomic import classify_tasks

        graph, cluster, plan = pipelined_setup
        doc = json.loads(plan_to_json(plan, graph))
        non_constant = classify_tasks(graph)
        stolen = next(
            t for t in doc["stages"][1]["tasks"] if non_constant[t]
        )
        doc["stages"][0]["tasks"].append(stolen)
        with pytest.raises(PlanVerificationError, match="exactly one"):
            plan_from_json(json.dumps(doc), graph, cluster)

    def test_over_memory_stage_rejected(self, pipelined_setup):
        """Scale the batch and every stage's microbatch size together so
        divisibility still holds but activations no longer fit."""
        graph, cluster, plan = pipelined_setup
        doc = json.loads(plan_to_json(plan, graph))
        doc["batch_size"] *= 64
        for sdoc in doc["stages"]:
            sdoc["microbatch_size"] *= 64
        with pytest.raises(PlanVerificationError, match="memory"):
            plan_from_json(json.dumps(doc), graph, cluster)

    def test_verify_opt_out_restores_legacy_load(self, pipelined_setup):
        graph, cluster, plan = pipelined_setup
        doc = json.loads(plan_to_json(plan, graph))
        self.drop_last_stage(doc)
        restored = plan_from_json(
            json.dumps(doc), graph, cluster, verify=False
        )
        assert restored.num_stages == plan.num_stages - 1


class TestFromPlan:
    def test_plan_execution_matches_whole_graph(self, bert_setup, rng):
        """End-to-end: the REAL partitioner's plan, executed by the REAL
        runtime, equals whole-graph execution."""
        cfg, graph, cluster, plan = bert_setup
        params = init_parameters(graph, seed=11)
        whole = Executor(graph, params={k: v.copy() for k, v in params.items()})
        pe = PartitionedExecutor.from_plan(
            graph, plan, params={k: v.copy() for k, v in params.items()}
        )
        n = plan.num_microbatches * 2
        batch = {
            "input_ids": rng.integers(0, cfg.vocab_size, (n, cfg.seq_len)),
            "token_type_ids": rng.integers(0, 2, (n, cfg.seq_len)),
            "attention_mask": np.zeros((n, 1, 1, cfg.seq_len)),
            "mlm_labels": rng.integers(0, cfg.vocab_size, (n, cfg.seq_len)),
            "nsp_labels": rng.integers(0, 2, (n,)),
        }
        lw, gw = whole.loss_and_grads(batch)
        lp, gp = pe.loss_and_grads(batch)
        assert lw == pytest.approx(lp, abs=1e-10)
        for k in gw:
            assert np.abs(gw[k] - gp[k]).max() < 1e-9

    def test_from_plan_respects_microbatches(self, bert_setup):
        _, graph, _, plan = bert_setup
        pe = PartitionedExecutor.from_plan(graph, plan)
        assert pe.num_microbatches == plan.num_microbatches
        assert pe.checkpointing == (plan.num_stages > 1)
