"""Focused tests for uncoarsening boundary moves on graphs where the cut
size actually differs between candidate boundaries (wide vs. narrow
activations), plus evaluate_plan schedule variants."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.traversal import is_convex
from repro.hardware import paper_cluster
from repro.partitioner.atomic import atomic_partition
from repro.partitioner.blocks import BlockPartitioner
from repro.profiler import GraphProfiler


def bottleneck_chain():
    """x(8) -> fc_a(256) -> relu -> fc_b(8) -> relu -> fc_c(256) -> loss.

    The cut after ``relu_a`` carries a 256-wide activation; the cut after
    ``relu_b`` only 8 -- a 32x communication difference between adjacent
    boundaries."""
    b = GraphBuilder("bottleneck")
    x = b.input("x", (1, 8))
    h = b.linear(x, 256, name="fc_a")
    h = b.op("relu", [h], name="relu_a")
    h = b.linear(h, 8, name="fc_b")
    h = b.op("relu", [h], name="relu_b")
    h = b.linear(h, 256, name="fc_c")
    y = b.input("y", (1, 256))
    loss = b.op("mse_loss", [h, y], name="loss")
    return b.finish([loss])


@pytest.fixture
def bp():
    graph = bottleneck_chain()
    profiler = GraphProfiler(graph, paper_cluster())
    comps = atomic_partition(graph)
    return BlockPartitioner(graph, comps, profiler, num_blocks=2), graph


def comp_index(bp_obj, task_name):
    for comp in bp_obj.components:
        if comp.non_constant_task == task_name:
            return comp.index
    raise KeyError(task_name)


class TestBoundaryMove:
    def _force_partition(self, bp_obj, boundary_after: str):
        """Split the chain into two groups right after ``boundary_after``."""
        order = [c.non_constant_task for c in bp_obj.components]
        cut = order.index(boundary_after) + 1
        g0 = set(range(cut))
        g1 = set(range(cut, len(order)))
        bp_obj.group_atoms = {0: g0, 1: g1}
        for a in g0:
            bp_obj.atom_owner[a] = 0
        for a in g1:
            bp_obj.atom_owner[a] = 1
        bp_obj._rebuild_group_graph()

    def test_move_reduces_wide_cut(self, bp):
        bp_obj, graph = bp
        # boundary on the WIDE edge (after relu_a): 256-float cut
        self._force_partition(bp_obj, "relu_a")
        wide_cut = bp_obj.total_cut_bytes()

        # moving {fc_b, relu_b} into group 0 shifts the boundary to the
        # narrow edge
        part = frozenset(
            {comp_index(bp_obj, "fc_b"), comp_index(bp_obj, "relu_b")}
        )
        moved = bp_obj._try_move(part)
        assert moved
        assert bp_obj.total_cut_bytes() < wide_cut / 8

    def test_move_keeps_convexity(self, bp):
        bp_obj, graph = bp
        self._force_partition(bp_obj, "relu_a")
        part = frozenset(
            {comp_index(bp_obj, "fc_b"), comp_index(bp_obj, "relu_b")}
        )
        bp_obj._try_move(part)
        for atoms in bp_obj.group_atoms.values():
            tasks = set()
            for a in atoms:
                tasks |= set(bp_obj.components[a].tasks)
            assert is_convex(graph, tasks)

    def test_no_move_from_narrow_cut(self, bp):
        bp_obj, graph = bp
        # boundary already on the NARROW edge: no single part move helps
        self._force_partition(bp_obj, "relu_b")
        narrow_cut = bp_obj.total_cut_bytes()
        part = frozenset({comp_index(bp_obj, "fc_b")})
        bp_obj._try_move(part)
        assert bp_obj.total_cut_bytes() <= narrow_cut

    def test_full_pipeline_prefers_narrow_boundary(self):
        """End-to-end: with k=2, the final blocks should cut the narrow
        edge, not the wide one."""
        graph = bottleneck_chain()
        profiler = GraphProfiler(graph, paper_cluster())
        comps = atomic_partition(graph)
        blocks = BlockPartitioner(
            graph, comps, profiler, num_blocks=2
        ).run()
        if len(blocks) == 2:
            in_bytes, out_bytes = graph.cut_bytes(blocks[0].tasks, 1)
            # the boundary activation is the narrow (8-float) one
            assert out_bytes <= 8 * 4


class TestEvaluatePlanSchedules:
    def test_async_schedule(self, tiny_bert, cluster):
        from repro.partitioner import auto_partition
        from repro.pipeline.hybrid import evaluate_plan

        plan = auto_partition(tiny_bert, cluster, 64)
        sync_time = plan.iteration_time
        evaluate_plan(plan, schedule="async_1f1b")
        assert plan.iteration_time <= sync_time  # no flush bubble

    def test_unknown_schedule(self, tiny_bert, cluster):
        from repro.partitioner import auto_partition
        from repro.pipeline.hybrid import evaluate_plan

        plan = auto_partition(tiny_bert, cluster, 64)
        with pytest.raises(ValueError, match="unknown schedule"):
            evaluate_plan(plan, schedule="bogus")
